"""Dispersive-readout physics simulator.

Replaces the paper's five-qubit hardware dataset (Lienhard et al.) with a
first-principles synthetic equivalent. The chain is:

1. :mod:`repro.physics.jumps` — continuous-time Markov sampling of each
   qubit's level trajectory during the measurement window (relaxation and
   measurement-induced excitation, including leakage to |2>).
2. :mod:`repro.physics.dispersive` + :mod:`repro.physics.trajectories` —
   the readout resonator's complex field, evolved exactly through each
   piecewise-constant level segment (cavity ring-up, state-dependent pull).
3. :mod:`repro.physics.multiplex` — frequency multiplexing of all qubits
   onto one feedline with inter-resonator crosstalk.
4. :mod:`repro.physics.noise` + :mod:`repro.physics.adc` — amplifier noise
   and ADC sampling/quantization.
"""

from repro.physics.adc import ADCConfig
from repro.physics.device import (
    ChipConfig,
    QubitParams,
    default_five_qubit_chip,
)
from repro.physics.drift import DEMO_DRIFT, DriftModel
from repro.physics.jumps import TransitionRates, sample_level_matrix
from repro.physics.simulator import ReadoutSimulator, SimulationResult

__all__ = [
    "QubitParams",
    "ChipConfig",
    "ADCConfig",
    "DEMO_DRIFT",
    "DriftModel",
    "default_five_qubit_chip",
    "TransitionRates",
    "sample_level_matrix",
    "ReadoutSimulator",
    "SimulationResult",
]
