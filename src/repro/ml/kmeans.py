"""k-means clustering with k-means++ seeding (Lloyd's algorithm).

Used as the final step of spectral clustering (on the Laplacian embedding)
and directly as an ablation baseline for leakage-cluster detection.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_2d_float, check_random_state
from repro.exceptions import ConfigurationError, DataError, NotFittedError

__all__ = ["KMeans"]


def _kmeans_plus_plus(
    x: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    """Choose k initial centroids with the k-means++ D^2 weighting."""
    n = x.shape[0]
    centroids = np.empty((k, x.shape[1]))
    centroids[0] = x[rng.integers(n)]
    closest_sq = np.sum((x - centroids[0]) ** 2, axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with a centroid; pick randomly.
            centroids[i] = x[rng.integers(n)]
            continue
        probs = closest_sq / total
        centroids[i] = x[rng.choice(n, p=probs)]
        dist_sq = np.sum((x - centroids[i]) ** 2, axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centroids


class KMeans:
    """Lloyd's k-means with k-means++ initialization and restarts.

    Parameters
    ----------
    n_clusters:
        Number of clusters ``k``.
    n_init:
        Independent restarts; the lowest-inertia run wins.
    max_iter:
        Lloyd iterations per restart.
    tol:
        Relative centroid-shift tolerance for convergence.
    seed:
        RNG seed or generator.
    """

    def __init__(
        self,
        n_clusters: int,
        n_init: int = 8,
        max_iter: int = 200,
        tol: float = 1e-7,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if n_clusters < 1:
            raise ConfigurationError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_init < 1 or max_iter < 1:
            raise ConfigurationError("n_init and max_iter must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = np.inf

    def _single_run(
        self, x: np.ndarray, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, float]:
        centroids = _kmeans_plus_plus(x, self.n_clusters, rng)
        labels = np.zeros(x.shape[0], dtype=np.int64)
        for _ in range(self.max_iter):
            dists = (
                np.sum(x * x, axis=1)[:, None]
                - 2.0 * x @ centroids.T
                + np.sum(centroids * centroids, axis=1)[None, :]
            )
            labels = np.argmin(dists, axis=1)
            new_centroids = centroids.copy()
            for j in range(self.n_clusters):
                members = x[labels == j]
                if members.shape[0]:
                    new_centroids[j] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the point farthest from
                    # its centroid, the standard empty-cluster repair.
                    farthest = np.argmax(np.min(dists, axis=1))
                    new_centroids[j] = x[farthest]
            shift = np.linalg.norm(new_centroids - centroids)
            scale = np.linalg.norm(centroids) + 1e-12
            centroids = new_centroids
            if shift / scale < self.tol:
                break
        dists = (
            np.sum(x * x, axis=1)[:, None]
            - 2.0 * x @ centroids.T
            + np.sum(centroids * centroids, axis=1)[None, :]
        )
        labels = np.argmin(dists, axis=1)
        inertia = float(np.sum(np.min(np.maximum(dists, 0.0), axis=1)))
        return centroids, labels, inertia

    def fit(self, x: np.ndarray) -> "KMeans":
        """Cluster the rows of ``x``; results land on the fitted attributes."""
        x = as_2d_float(x)
        if x.shape[0] < self.n_clusters:
            raise DataError(
                f"need at least {self.n_clusters} points, got {x.shape[0]}"
            )
        rng = check_random_state(self.seed)
        best = None
        for _ in range(self.n_init):
            centroids, labels, inertia = self._single_run(x, rng)
            if best is None or inertia < best[2]:
                best = (centroids, labels, inertia)
        self.cluster_centers_, self.labels_, self.inertia_ = best
        return self

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        """Fit and return the cluster labels of the training points."""
        return self.fit(x).labels_

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Assign new points to the nearest fitted centroid."""
        if self.cluster_centers_ is None:
            raise NotFittedError("KMeans is not fitted")
        x = as_2d_float(x)
        dists = (
            np.sum(x * x, axis=1)[:, None]
            - 2.0 * x @ self.cluster_centers_.T
            + np.sum(self.cluster_centers_**2, axis=1)[None, :]
        )
        return np.argmin(dists, axis=1)
