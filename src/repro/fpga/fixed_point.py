"""Fixed-point number formats for FPGA datapath emulation.

Mirrors the ``ap_fixed<W, I>`` types hls4ml generates: ``total_bits``
overall width with ``integer_bits`` in front of the binary point (signed,
two's complement, round-to-nearest, saturation at the extremes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["FixedPointFormat"]


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point format ``ap_fixed<total_bits, integer_bits>``.

    Parameters
    ----------
    total_bits:
        Word width including the sign bit.
    integer_bits:
        Bits in front of the binary point, including the sign bit.
    """

    total_bits: int = 16
    integer_bits: int = 6

    def __post_init__(self) -> None:
        if not 2 <= self.total_bits <= 64:
            raise ConfigurationError(
                f"total_bits must be in [2, 64], got {self.total_bits}"
            )
        if not 1 <= self.integer_bits <= self.total_bits:
            raise ConfigurationError(
                f"integer_bits must be in [1, {self.total_bits}], "
                f"got {self.integer_bits}"
            )

    @property
    def fraction_bits(self) -> int:
        """Bits behind the binary point."""
        return self.total_bits - self.integer_bits

    @property
    def resolution(self) -> float:
        """Smallest representable step."""
        return 2.0 ** (-self.fraction_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return 2.0 ** (self.integer_bits - 1) - self.resolution

    @property
    def min_value(self) -> float:
        """Most negative representable value."""
        return -(2.0 ** (self.integer_bits - 1))

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round to the nearest representable value, saturating at the ends."""
        arr = np.asarray(values, dtype=np.float64)
        scaled = np.rint(arr / self.resolution) * self.resolution
        return np.clip(scaled, self.min_value, self.max_value)

    def quantization_error(self, values: np.ndarray) -> np.ndarray:
        """Element-wise error introduced by :meth:`quantize`."""
        arr = np.asarray(values, dtype=np.float64)
        return self.quantize(arr) - arr

    def covers(self, values: np.ndarray) -> bool:
        """True when no element of ``values`` would saturate."""
        arr = np.asarray(values, dtype=np.float64)
        return bool(
            np.all(arr <= self.max_value) and np.all(arr >= self.min_value)
        )
