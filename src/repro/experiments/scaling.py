"""Model-size scaling with qubit count and level count (Sec V.C).

The paper's central architectural argument: joint-head designs scale
exponentially — their output layer enumerates ``k**n`` states — while the
modular design's total size grows polynomially in (n, k): each qubit's
network has input ``n * k * (k+1) * ... `` more precisely ``O(n k^2)``
features (three filters per level pair per qubit) and a k-way output.

This runner evaluates the closed-form parameter counts of all three
architectures across a (n, k) grid, using the paper's published layer
rules:

- FNN: raw input ``2 * trace_len`` -> 500 -> 250 -> ``k**n``;
- HERQULES: ``n * k * (k - 1)`` filter scores -> 60 -> 120 -> ``k**n``;
- OURS: ``P = 3 * n * k * (k - 1) / 2`` scores -> ``P/2`` -> ``P/4`` -> k,
  replicated n times.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.exceptions import ConfigurationError
from repro.experiments.report import format_rows
from repro.fpga.resources import network_shape_stats

__all__ = [
    "ScalingResult",
    "run_scaling",
    "fnn_architecture",
    "herqules_architecture",
    "ours_architecture",
    "total_parameters",
]


def _pairs(k: int) -> int:
    """Level pairs per qubit: k choose 2."""
    return k * (k - 1) // 2


def fnn_architecture(n_qubits: int, n_levels: int, trace_len: int = 500):
    """FNN layer widths for an (n, k) system."""
    if n_qubits < 1 or n_levels < 2:
        raise ConfigurationError("need n_qubits >= 1 and n_levels >= 2")
    return (2 * trace_len, 500, 250, n_levels**n_qubits)


def herqules_architecture(n_qubits: int, n_levels: int):
    """HERQULES layer widths: QMF+RMF scores into a joint k^n head."""
    if n_qubits < 1 or n_levels < 2:
        raise ConfigurationError("need n_qubits >= 1 and n_levels >= 2")
    n_features = n_qubits * 2 * _pairs(n_levels)
    return (n_features, 60, 120, n_levels**n_qubits)


def ours_architecture(n_qubits: int, n_levels: int):
    """Per-qubit network widths of the paper's design (one of n replicas)."""
    if n_qubits < 1 or n_levels < 2:
        raise ConfigurationError("need n_qubits >= 1 and n_levels >= 2")
    n_features = n_qubits * 3 * _pairs(n_levels)
    return (n_features, max(2, n_features // 2), max(2, n_features // 4), n_levels)


def total_parameters(design: str, n_qubits: int, n_levels: int) -> int:
    """Closed-form parameter count of a design at (n, k)."""
    if design == "fnn":
        return network_shape_stats(fnn_architecture(n_qubits, n_levels))[0]
    if design == "herqules":
        return network_shape_stats(herqules_architecture(n_qubits, n_levels))[0]
    if design == "ours":
        per_net = network_shape_stats(ours_architecture(n_qubits, n_levels))[0]
        return per_net * n_qubits
    raise ConfigurationError(f"unknown design {design!r}")


@dataclass(frozen=True)
class ScalingResult(ExperimentResult):
    """Parameter counts over the (n, k) grid.

    ``parameters[design]`` is a dict mapping (n_qubits, n_levels) to the
    total trainable parameter count.
    """

    qubit_range: tuple[int, ...]
    level_range: tuple[int, ...]
    parameters: dict

    def _measured(self) -> dict:
        return {
            "qubit_range": self.qubit_range,
            "level_range": self.level_range,
            "parameters": self.parameters,
            "growth_exponent": {
                design: self.growth_exponent(design)
                for design in sorted(self.parameters)
            },
        }

    def growth_exponent(self, design: str, n_levels: int = 3) -> float:
        """Fitted log-growth rate per added qubit at fixed k.

        For exponential designs this approaches ``log(k)``; for the
        modular design it approaches the polynomial's log-slope, which
        tends to zero as n grows.
        """
        counts = np.array(
            [self.parameters[design][(n, n_levels)] for n in self.qubit_range],
            dtype=np.float64,
        )
        logs = np.log(counts)
        return float(np.polyfit(self.qubit_range, logs, 1)[0])

    def format_table(self) -> str:
        rows = []
        for n in self.qubit_range:
            rows.append(
                (
                    n,
                    self.parameters["fnn"][(n, 3)],
                    self.parameters["herqules"][(n, 3)],
                    self.parameters["ours"][(n, 3)],
                )
            )
        table = format_rows(
            ("n_qubits", "FNN", "HERQULES", "OURS"),
            rows,
            title="Sec V.C: model size vs qubit count (3-level)",
        )
        return (
            f"{table}\n"
            f"log-growth per qubit: FNN {self.growth_exponent('fnn'):.2f}, "
            f"HERQULES {self.growth_exponent('herqules'):.2f}, "
            f"OURS {self.growth_exponent('ours'):.2f} "
            f"(log 3 = {np.log(3):.2f} is pure-exponential growth)"
        )


@experiment("scaling", tags=("scaling",), paper_ref="Sec. V.C")
def run_scaling(
    profile: Profile = QUICK,
    qubit_range: tuple[int, ...] = (2, 3, 4, 5, 6, 7, 8, 9, 10),
    level_range: tuple[int, ...] = (2, 3, 4),
) -> ScalingResult:
    """Tabulate parameter counts for all designs over the (n, k) grid."""
    parameters: dict[str, dict] = {"fnn": {}, "herqules": {}, "ours": {}}
    for design in parameters:
        for n in qubit_range:
            for k in level_range:
                parameters[design][(n, k)] = total_parameters(design, n, k)
    return ScalingResult(
        qubit_range=tuple(qubit_range),
        level_range=tuple(level_range),
        parameters=parameters,
    )
