"""Table IV — three-level fidelity: the paper's design vs the FNN.

Paper: OURS F5Q = 0.9052 vs FNN 0.8985, a 6.6% relative improvement
computed as (F_ours - F_fnn) / (1 - F_fnn). At profile scale the FNN is
data-starved, so the measured relative improvement is larger; the
direction and the OURS absolute level (~0.89-0.91) match the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.experiments.common import get_trained
from repro.experiments.report import format_rows

__all__ = ["Table4Result", "run_table4"]

#: The paper's 6.6% relative accuracy improvement over the FNN.
PAPER_RELATIVE_IMPROVEMENT = 0.066

PAPER_VALUES = {
    "fnn": {"fidelities": (0.967, 0.728, 0.928, 0.932, 0.962), "f5q": 0.8985},
    "ours": {"fidelities": (0.971, 0.745, 0.923, 0.939, 0.969), "f5q": 0.9052},
}


@dataclass(frozen=True)
class Table4Result(ExperimentResult):
    """Measured per-qubit fidelity of the FNN baseline and OURS."""

    rows: list[dict]

    def _measured(self) -> dict:
        out = {r["design"]: {k: v for k, v in r.items() if k != "design"}
               for r in self.rows}
        out["relative_improvement"] = self.relative_improvement
        return out

    def _paper_values(self) -> dict:
        return {
            **PAPER_VALUES,
            "relative_improvement": PAPER_RELATIVE_IMPROVEMENT,
        }

    @property
    def relative_improvement(self) -> float:
        """(F_ours - F_fnn) / (1 - F_fnn), the paper's 6.6% metric."""
        by_name = {r["design"]: r["f5q"] for r in self.rows}
        fnn, ours = by_name["fnn"], by_name["ours"]
        return (ours - fnn) / (1.0 - fnn)

    def format_table(self) -> str:
        table = format_rows(
            ("Design", "Q1", "Q2", "Q3", "Q4", "Q5", "F5Q", "Paper F5Q"),
            [
                (
                    r["design"],
                    *[float(f) for f in r["fidelities"]],
                    r["f5q"],
                    PAPER_VALUES[r["design"]]["f5q"],
                )
                for r in self.rows
            ],
            title="Table IV: three-level readout fidelity, FNN vs OURS",
        )
        return (
            f"{table}\n"
            f"relative improvement: {self.relative_improvement:.1%} "
            f"(paper: 6.6%)"
        )


@experiment("table4", tags=("fidelity",), paper_ref="Table IV")
def run_table4(profile: Profile = QUICK) -> Table4Result:
    """Fit and score the FNN baseline and the paper's design."""
    rows = []
    for design in ("fnn", "ours"):
        trained = get_trained(profile, design)
        rows.append(
            {
                "design": design,
                "fidelities": tuple(trained.fidelities),
                "f5q": trained.f5q,
                "n_parameters": trained.n_parameters,
            }
        )
    return Table4Result(rows=rows)
