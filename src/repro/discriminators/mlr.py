"""The paper's discriminator: matched filters + modular per-qubit networks.

Every qubit gets nine matched-filter scores (QMF/RMF/EMF, Tab. III); the
scores of *all* qubits are merged into one feature vector (45 entries for
five qubits) so each per-qubit network sees its neighbors and can undo
crosstalk. Each network is tiny — input P = 9n, hidden layers floor(P/2)
and floor(P/4), output k — so total model size grows polynomially in
(n, k) instead of exponentially (Sec V.C).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_random_state, child_rng
from repro.data.basis import digits_to_state
from repro.data.dataset import ReadoutCorpus
from repro.discriminators.base import Discriminator
from repro.discriminators.features import MatchedFilterFeatureExtractor
from repro.discriminators.registry import NN_LEARNING_RATE, register
from repro.exceptions import ConfigurationError
from repro.ml.dataset import StandardScaler
from repro.ml.nn import Adam, MLPClassifier, train_classifier

__all__ = ["MLRDiscriminator"]


@register(
    "ours",
    aliases=("mlr",),
    description="matched filters + modular per-qubit NNs (the paper's design)",
)
class MLRDiscriminator(Discriminator):
    """Multi-Level Readout discriminator (the paper's "OURS").

    Parameters
    ----------
    include_rmf, include_emf:
        Feature-family toggles, used by the ablation benches; the paper's
        design enables both.
    neighbor_features:
        When True (the paper's design), every per-qubit network sees the
        matched-filter scores of *all* qubits, which is what lets it undo
        readout crosstalk; False restricts each head to its own qubit's
        scores (the crosstalk ablation).
    decimation, variance_mode, min_error_traces:
        Matched-filter front-end configuration.
    epochs, batch_size, learning_rate, seed:
        Training budget for the per-qubit networks.
    hidden_shrink:
        Hidden widths are ``floor(P / hidden_shrink[i])`` for input width
        P; the paper uses (2, 4).
    """

    name = "ours"

    @classmethod
    def from_profile(cls, profile) -> "MLRDiscriminator":
        return cls(
            epochs=profile.nn_epochs,
            batch_size=profile.batch_size,
            learning_rate=NN_LEARNING_RATE,
            seed=profile.seed + 10,
        )

    def __init__(
        self,
        include_rmf: bool = True,
        include_emf: bool = True,
        neighbor_features: bool = True,
        decimation: int = 5,
        variance_mode: str = "sum",
        min_error_traces: int = 6,
        epochs: int = 30,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-3,
        patience: int = 20,
        hidden_shrink: tuple[int, ...] = (2, 4),
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if not hidden_shrink or any(s < 1 for s in hidden_shrink):
            raise ConfigurationError("hidden_shrink must be positive factors")
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.patience = patience
        self.hidden_shrink = tuple(int(s) for s in hidden_shrink)
        self.neighbor_features = neighbor_features
        self._rng = check_random_state(seed)
        self.extractor = MatchedFilterFeatureExtractor(
            include_qmf=True,
            include_rmf=include_rmf,
            include_emf=include_emf,
            decimation=decimation,
            variance_mode=variance_mode,
            min_error_traces=min_error_traces,
        )
        self.models: list[MLPClassifier] | None = None
        self.scaler: StandardScaler | None = None
        # Calibration-time references for online drift detection: the
        # joint-assignment distribution and mean top-2 probability margin
        # this model produced on its own training corpus. Carried in the
        # artifact so a serving monitor can score live traffic against
        # the device as it looked when the kernels were fitted.
        self.reference_assignment_: np.ndarray | None = None
        self.reference_margin_: float | None = None

    @property
    def n_parameters(self) -> int:
        if self.models is None:
            raise ConfigurationError(
                "architecture unknown before fit(); call fit() first"
            )
        return sum(m.n_parameters for m in self.models)

    def _architecture(self, n_features: int, n_levels: int) -> tuple[int, ...]:
        hidden = tuple(
            max(2, n_features // shrink) for shrink in self.hidden_shrink
        )
        return (n_features, *hidden, n_levels)

    def _head_features(self, x: np.ndarray, qubit: int) -> np.ndarray:
        """Feature block fed to one qubit's head."""
        if self.neighbor_features:
            return x
        width = self.extractor.filters_per_qubit
        return x[:, width * qubit : width * (qubit + 1)]

    def fit(self, corpus: ReadoutCorpus, indices: np.ndarray) -> "MLRDiscriminator":
        idx = self._resolve_indices(corpus, indices)
        features = self.extractor.fit_transform(corpus, idx)
        self.scaler = StandardScaler()
        x = self.scaler.fit_transform(features)
        self.models = []
        for q in range(corpus.n_qubits):
            x_q = self._head_features(x, q)
            model = MLPClassifier(
                self._architecture(x_q.shape[1], corpus.n_levels),
                seed=child_rng(self._rng, q, 0),
            )
            train_classifier(
                model,
                x_q,
                corpus.qubit_labels(q)[idx],
                epochs=self.epochs,
                batch_size=self.batch_size,
                optimizer=Adam(self.learning_rate, weight_decay=self.weight_decay),
                patience=self.patience,
                seed=child_rng(self._rng, q, 1),
            )
            self.models.append(model)
        self._fitted = True
        self._record_reference(x, corpus.n_levels)
        return self

    def head_levels_and_margin(
        self, x: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Per-qubit argmax levels and the mean top-2 probability margin.

        ``x`` is the scaled feature matrix. The one implementation both
        fit-time reference recording and the streaming engine use —
        drift scoring compares the two, so they must never diverge.
        Argmax over probabilities reproduces :meth:`MLPClassifier
        .predict` bit for bit (softmax is monotone).
        """
        levels = np.empty((x.shape[0], len(self.models)), dtype=np.int64)
        margin_total = 0.0
        for q, model in enumerate(self.models):
            proba = model.predict_proba(self._head_features(x, q))
            levels[:, q] = np.argmax(proba, axis=1)
            top2 = np.sort(proba, axis=1)[:, -2:]
            margin_total += float(np.sum(top2[:, 1] - top2[:, 0]))
        return levels, margin_total / (x.shape[0] * len(self.models))

    def _record_reference(self, x: np.ndarray, n_levels: int) -> None:
        """Snapshot the drift-detection references on the training set."""
        levels, mean_margin = self.head_levels_and_margin(x)
        joint = digits_to_state(levels, n_levels)
        counts = np.bincount(joint, minlength=n_levels ** len(self.models))
        self.reference_assignment_ = counts / counts.sum()
        self.reference_margin_ = mean_margin

    def _features(
        self, corpus: ReadoutCorpus, indices: np.ndarray | None
    ) -> np.ndarray:
        idx = self._resolve_indices(corpus, indices)
        return self.scaler.transform(self.extractor.transform(corpus, idx))

    def predict_qubit_levels(
        self, corpus: ReadoutCorpus, indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-qubit levels predicted by each modular head."""
        self._require_fitted()
        x = self._features(corpus, indices)
        levels = np.empty((x.shape[0], len(self.models)), dtype=np.int64)
        for q, model in enumerate(self.models):
            levels[:, q] = model.predict(self._head_features(x, q))
        return levels

    def predict(
        self, corpus: ReadoutCorpus, indices: np.ndarray | None = None
    ) -> np.ndarray:
        self._require_fitted()
        levels = self.predict_qubit_levels(corpus, indices)
        return digits_to_state(levels, corpus.n_levels)

    def with_recalibrated_scaler(
        self, corpus: ReadoutCorpus, indices: np.ndarray
    ) -> "MLRDiscriminator":
        """Copy sharing kernels and networks, with the feature scaler refit.

        This is the paper's no-retraining fast-readout mode: shortening the
        readout window truncates the matched-filter kernels, which shifts
        the score scales; refitting only the (closed-form) normalization on
        the shortened training features requires no gradient steps.
        """
        import copy

        self._require_fitted()
        clone = copy.copy(self)
        clone.scaler = StandardScaler()
        clone.scaler.fit(
            self.extractor.transform(corpus, self._resolve_indices(corpus, indices))
        )
        return clone

    def _artifact_meta(self) -> dict:
        ext_meta, _ = self.extractor.artifact_state()
        return {
            "extractor": ext_meta,
            "neighbor_features": self.neighbor_features,
            "hidden_shrink": list(self.hidden_shrink),
            "layer_sizes": [list(m.layer_sizes) for m in self.models],
        }

    def _artifact_arrays(self) -> dict[str, np.ndarray]:
        _, arrays = self.extractor.artifact_state()
        self._pack_scaler(arrays, self.scaler)
        for q, model in enumerate(self.models):
            self._pack_mlp(arrays, model, f"model{q}")
        if self.reference_assignment_ is not None:
            arrays["reference_assignment"] = self.reference_assignment_
            arrays["reference_margin"] = np.asarray(
                [self.reference_margin_], dtype=np.float64
            )
        return arrays

    @classmethod
    def _from_artifacts(
        cls, meta: dict, arrays: dict[str, np.ndarray]
    ) -> "MLRDiscriminator":
        from repro.discriminators.features import MatchedFilterFeatureExtractor

        extractor = MatchedFilterFeatureExtractor.from_artifact_state(
            meta["extractor"], arrays
        )
        disc = cls(
            include_rmf=extractor.include_rmf,
            include_emf=extractor.include_emf,
            neighbor_features=bool(meta["neighbor_features"]),
            decimation=extractor.decimation,
            variance_mode=extractor.variance_mode,
            min_error_traces=extractor.min_error_traces,
            hidden_shrink=tuple(meta["hidden_shrink"]),
        )
        disc.extractor = extractor
        disc.scaler = cls._unpack_scaler(arrays)
        disc.models = [
            cls._unpack_mlp(sizes, arrays, f"model{q}")
            for q, sizes in enumerate(meta["layer_sizes"])
        ]
        # Artifacts written before drift detection landed carry no
        # references; such models still serve, just without a monitor.
        if "reference_assignment" in arrays:
            disc.reference_assignment_ = np.asarray(
                arrays["reference_assignment"], dtype=np.float64
            )
            disc.reference_margin_ = float(arrays["reference_margin"][0])
        disc._fitted = True
        return disc

    def predict_proba_qubit(
        self,
        qubit: int,
        corpus: ReadoutCorpus,
        indices: np.ndarray | None = None,
    ) -> np.ndarray:
        """Level probabilities for one qubit's head."""
        self._require_fitted()
        if not 0 <= qubit < len(self.models):
            raise ConfigurationError(f"qubit must be in [0, {len(self.models)})")
        x = self._features(corpus, indices)
        return self.models[qubit].predict_proba(self._head_features(x, qubit))
