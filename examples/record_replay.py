"""Record once, replay bit-deterministically: the instrument-backend seam.

A `ServeSpec` picks its traffic source by name (`TrafficSpec.backend`);
adding `record_path` tees whatever that backend streams into a versioned
on-disk corpus — per-chunk `.npy` files plus a checksummed manifest that
pins the format version, the chip SHA, and the traffic seed. A second
session with `backend="replay"` serves the corpus back: the manifest is
validated against the serving chip, every chunk file against its
checksum, and the replayed run reproduces the recorded assignment
counts exactly.

The same round trip is available from the CLI::

    PYTHONPATH=src python -m repro record --out corpus --shots 512 \
        --qubits-per-feedline 2 --json record.json
    PYTHONPATH=src python -m repro replay --corpus corpus \
        --qubits-per-feedline 2 --json replay.json
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.backends import load_corpus
from repro.serve import (
    BatchingSpec,
    CalibrationSpec,
    ClusterSpec,
    ServeSpec,
    TrafficSpec,
    serve_once,
)


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="repro-record-") as tmp:
        corpus_dir = Path(tmp) / "corpus"
        registry = str(Path(tmp) / "registry")

        # Session 1: simulator traffic, with a recording tee.
        recorded = serve_once(
            ServeSpec(
                traffic=TrafficSpec(
                    shots=120, chunk_size=40, record_path=str(corpus_dir)
                ),
                cluster=ClusterSpec(qubits_per_feedline=2),
                batching=BatchingSpec(batch_size=40),
                calibration=CalibrationSpec(registry_dir=registry),
            )
        )

        corpus = load_corpus(corpus_dir)
        print(
            f"recorded {corpus.n_shots} shots in "
            f"{len(corpus.manifest['chunks'])} chunks "
            f"(chip {corpus.chip_sha[:12]}, seed {corpus.seed})"
        )

        # Session 2: replay the corpus through the same datapath. The
        # shared registry means the warm session performs zero refits.
        replayed = serve_once(
            ServeSpec(
                traffic=TrafficSpec(
                    shots=120,
                    chunk_size=40,
                    backend="replay",
                    corpus_path=str(corpus_dir),
                ),
                cluster=ClusterSpec(qubits_per_feedline=2),
                batching=BatchingSpec(batch_size=40),
                calibration=CalibrationSpec(registry_dir=registry),
            )
        )

        print(f"recorded counts: {recorded.assignment_counts}")
        print(f"replayed counts: {replayed.assignment_counts}")
        match = replayed.assignment_counts == recorded.assignment_counts
        print(f"bit-deterministic replay: {'yes' if match else 'NO'}")


if __name__ == "__main__":
    main()
