"""QEC cycle-time model for the surface-17 circuit (Sec VII.B).

The cycle follows the Versluis et al. schedule: two single-qubit gate
layers, four entangling-gate steps, then ancilla measurement and the
discriminator decision. Measurement dominates; shortening it from 1 us to
800 ns cuts the cycle by up to ~17%, the paper's reported figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["SurfaceCodeTiming", "cycle_time_ns", "cycle_time_reduction"]


@dataclass(frozen=True)
class SurfaceCodeTiming:
    """Per-operation timings of one QEC cycle (nanoseconds).

    Defaults are typical superconducting-stack numbers that reproduce the
    paper's operating point: 2 x 20 ns single-qubit layers + 4 x 32 ns CZ
    steps + 8 ns discriminator latency = 176 ns of non-measurement time,
    so a 1000 -> 800 ns readout cut shortens the cycle by 17%.
    """

    t_single_qubit_ns: float = 20.0
    t_two_qubit_ns: float = 32.0
    n_single_qubit_layers: int = 2
    n_two_qubit_steps: int = 4
    t_discriminator_ns: float = 8.0

    def __post_init__(self) -> None:
        if self.t_single_qubit_ns <= 0 or self.t_two_qubit_ns <= 0:
            raise ConfigurationError("gate times must be positive")
        if self.n_single_qubit_layers < 0 or self.n_two_qubit_steps < 0:
            raise ConfigurationError("layer counts must be >= 0")
        if self.t_discriminator_ns < 0:
            raise ConfigurationError("t_discriminator_ns must be >= 0")

    @property
    def gate_time_ns(self) -> float:
        """Total non-measurement time per cycle."""
        return (
            self.n_single_qubit_layers * self.t_single_qubit_ns
            + self.n_two_qubit_steps * self.t_two_qubit_ns
            + self.t_discriminator_ns
        )


def cycle_time_ns(
    readout_ns: float, timing: SurfaceCodeTiming | None = None
) -> float:
    """Total QEC cycle time for a given readout duration."""
    if readout_ns <= 0:
        raise ConfigurationError("readout_ns must be positive")
    timing = timing or SurfaceCodeTiming()
    return timing.gate_time_ns + readout_ns


def cycle_time_reduction(
    baseline_readout_ns: float,
    reduced_readout_ns: float,
    timing: SurfaceCodeTiming | None = None,
) -> float:
    """Fractional cycle-time reduction from shortening the readout.

    ``cycle_time_reduction(1000, 800)`` reproduces the paper's "up to 17%
    decrease in QEC cycle time".
    """
    if reduced_readout_ns > baseline_readout_ns:
        raise ConfigurationError(
            "reduced readout must not exceed the baseline readout"
        )
    base = cycle_time_ns(baseline_readout_ns, timing)
    reduced = cycle_time_ns(reduced_readout_ns, timing)
    return (base - reduced) / base
