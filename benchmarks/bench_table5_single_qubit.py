"""Table V bench: single-qubit fidelity on the leak-prone qubits.

Paper: LDA 0.8966 < QDA 0.914 < NN 0.939 < OURS 0.959 on qubit 3. On the
synthetic device the integrated-IQ baselines are stronger than on hardware
(clouds are closer to Gaussian), so the methods compress into a ~1% band;
the asserted shape is that all methods land in the paper's high-fidelity
regime and that no baseline beats OURS by a meaningful margin (see
EXPERIMENTS.md for the discussion).
"""

from benchmarks.conftest import run_once
from repro.experiments.table5 import run_table5


def test_table5_single_qubit_fidelity(benchmark, profile):
    result = run_once(benchmark, run_table5, profile)
    print("\n" + result.format_table())
    for qubit, values in result.fidelities.items():
        assert all(0.85 < v <= 1.0 for v in values.values()), (qubit, values)
        # Compressed ordering: OURS within 1.5% of the best baseline.
        best_baseline = max(values["lda"], values["qda"], values["nn"])
        assert values["ours"] > best_baseline - 0.015
