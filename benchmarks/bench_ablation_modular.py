"""Ablation bench: modular per-qubit heads vs a joint k^n head.

The paper's central architectural choice. Both models consume identical
matched-filter features; only the classifier head differs (five 3-way
networks vs one 243-way network). The modular head also brings the ~30x
parameter saving.
"""

from repro.discriminators import HerqulesDiscriminator, MLRDiscriminator
from repro.experiments.common import NN_LEARNING_RATE, get_readout_bundle
from repro.ml.metrics import geometric_mean_fidelity, per_qubit_fidelity


def test_ablation_modular_vs_joint_head(benchmark, profile):
    bundle = get_readout_bundle(profile)

    def run():
        modular = MLRDiscriminator(
            include_emf=False,  # match HERQULES features exactly
            epochs=profile.nn_epochs,
            learning_rate=NN_LEARNING_RATE,
            seed=profile.seed + 92,
        )
        joint = HerqulesDiscriminator(
            epochs=profile.nn_epochs,
            learning_rate=NN_LEARNING_RATE,
            seed=profile.seed + 92,
        )
        out = {}
        for name, disc in (("modular", modular), ("joint", joint)):
            disc.fit(bundle.corpus, bundle.train_idx)
            pred = disc.predict(bundle.corpus, bundle.test_idx)
            fid = per_qubit_fidelity(
                bundle.test_labels, pred,
                bundle.corpus.n_qubits, bundle.corpus.n_levels,
            )
            out[name] = (geometric_mean_fidelity(fid), disc.n_parameters)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nmodular-vs-joint head ablation (same QMF+RMF features):")
    for name, (f5q, params) in results.items():
        print(f"  {name:8s}: F5Q={f5q:.4f} params={params}")
    assert results["modular"][0] > results["joint"][0] - 0.01
    assert results["modular"][1] < results["joint"][1] / 5
