"""Tests for the experiment runners and the CLI (fast paths + mini profile)."""

import numpy as np
import pytest

from repro.api import experiments
from repro.config import QUICK, Profile
from repro.experiments.common import clear_caches, get_readout_bundle, get_trained
from repro.experiments.fig1d import run_fig1d
from repro.experiments.fig5a import run_fig5a
from repro.experiments.headline import run_headline
from repro.experiments.report import format_rows
from repro.experiments.sec3 import run_sec3_cnot_leakage
from repro.experiments.sec7b import run_sec7b_cycle_time
from repro.experiments.sec7d import run_sec7d_power

#: Small profile for training-path tests: full architecture, tiny corpus.
MINI = Profile(
    name="mini",
    shots_per_state=6,
    calibration_shots=600,
    nn_epochs=40,
    fnn_epochs=3,
    batch_size=128,
    qec_shots=40,
    qudit_shots=500,
    spectral_max_points=600,
    seed=77,
)


@pytest.fixture(scope="module", autouse=True)
def _clean_caches():
    clear_caches()
    yield
    clear_caches()


class TestFastRunners:
    def test_fig1d_ratios(self):
        result = run_fig1d(QUICK)
        assert result.fnn_over_ours == pytest.approx(60, rel=0.05)
        assert result.herqules_over_ours == pytest.approx(4, rel=0.05)
        assert "LUT" in result.format_table()

    def test_fig5a_ratios(self):
        result = run_fig5a(QUICK)
        assert result.ratio("lut") == pytest.approx(4, rel=0.05)
        assert result.ratio("ff") == pytest.approx(5, rel=0.05)

    def test_sec7b_cycle_time(self):
        result = run_sec7b_cycle_time(QUICK)
        assert result.reduction == pytest.approx(0.17, abs=0.005)

    def test_sec7d_power(self):
        result = run_sec7d_power(QUICK)
        assert result.power_mw == pytest.approx(1.561, abs=1e-3)
        assert result.latency_cycles == 5
        assert result.total_parameters == 6505

    def test_headline_model_size(self):
        result = run_headline(QUICK)
        assert result.model_size_vs_fnn == pytest.approx(105.6, rel=0.02)
        assert 4 < result.model_size_vs_herqules < 12

    def test_sec3_cnot_leakage(self):
        result = run_sec3_cnot_leakage(QUICK)
        assert 0.015 <= result.single_gate_transfer <= 0.02
        assert result.growth_ratio_at_12 == pytest.approx(3.0, abs=0.6)
        # Leakage grows monotonically with gate count.
        curve = result.leaked_control_population
        assert all(b > a for a, b in zip(curve, curve[1:]))

    def test_experiment_registry_complete(self):
        expected = {
            "table1", "table2", "table4", "table5", "table6",
            "fig1c", "fig1d", "fig3", "fig5a", "fig5b",
            "sec3", "sec7b", "sec7d", "headline", "scaling", "fnn_scaling",
        }
        assert set(experiments) == expected


class TestTrainingRunners:
    """Mini-profile smoke tests of the corpus-driven runners."""

    def test_bundle_is_cached(self):
        a = get_readout_bundle(MINI)
        b = get_readout_bundle(MINI)
        assert a is b
        assert a.corpus.n_traces == 243 * MINI.shots_per_state
        assert np.intersect1d(a.train_idx, a.test_idx).size == 0

    def test_trained_design_scores(self):
        trained = get_trained(MINI, "ours")
        assert trained.f5q > 0.75
        assert trained.n_parameters == 6505
        # Cached on second call.
        assert get_trained(MINI, "ours") is trained

    def test_ours_beats_herqules_at_mini_scale(self):
        ours = get_trained(MINI, "ours")
        herq = get_trained(MINI, "herqules")
        assert ours.f5q > herq.f5q

    def test_table1_orderings(self):
        result = experiments["table1"].run(MINI)
        by_name = {r["design"]: r for r in result.rows}
        assert (
            by_name["ERASER+M"]["accuracy"] >= by_name["ERASER"]["accuracy"] - 0.01
        )
        assert "Table I" in result.format_table()

    def test_fig5b_accuracy_improves_with_duration(self):
        result = experiments["fig5b"].run(
            MINI, durations_ns=(500, 1000)
        )
        assert result.accuracy_at(1000) > result.accuracy_at(500) - 0.02
        assert len(result.truncated_accuracy) == 2

    def test_fig3_detects_leakage(self):
        result = experiments["fig3"].run(MINI)
        assert result.detection_recall > 0.5
        assert sum(result.cluster_sizes) == MINI.calibration_shots
        assert result.state_mean_traces.shape[0] == 3


class TestReportAndCLI:
    def test_format_rows_alignment(self):
        table = format_rows(("A", "BB"), [(1, 2.5), ("x", "y")], title="T")
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "2.5000" in table

    def test_cli_list(self, capsys):
        from repro.cli import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out

    def test_cli_runs_fast_experiment(self, capsys):
        from repro.cli import main

        assert main(["sec7b", "--profile", "quick"]) == 0
        out = capsys.readouterr().out
        assert "17" in out

    def test_cli_rejects_unknown_experiment(self, capsys):
        from repro.cli import main

        assert main(["table99"]) == 2

    def test_cli_rejects_unknown_profile(self):
        from repro.cli import main
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["sec7b", "--profile", "mega"])
