"""Tests for the zero-copy hot path: fused kernels, buffer reuse,
shared-memory replay, and the hot-path bugfix sweep that rode along."""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

import numpy as np
import pytest

from repro.config import Profile
from repro.data import generate_corpus
from repro.discriminators import MLRDiscriminator
from repro.dsp.demod import demod_tone, demodulate
from repro.dsp.filters import boxcar_decimate
from repro.dsp.matched_filter import FusedKernelBank, fuse_demod_decimation
from repro.exceptions import ConfigurationError, DataError, ShapeError
from repro.ml import stratified_split
from repro.physics.device import multi_feedline_chips
from repro.pipeline import (
    EXECUTOR_NAMES,
    BatchDiscriminationEngine,
    BufferRing,
    CorpusTraceSource,
    LatencyStats,
    MicroBatcher,
    MultiFeedlineRunner,
    PipelineConfig,
    ReadoutPipeline,
    SharedMemoryTraceSource,
    SharedTraceBlock,
    ShotChunk,
)


def tiny_profile(**overrides) -> Profile:
    """A fast sizing profile for zero-copy tests (not a named profile)."""
    params = dict(
        name="tiny",
        shots_per_state=10,
        calibration_shots=100,
        nn_epochs=8,
        fnn_epochs=2,
        batch_size=64,
        qec_shots=10,
        qudit_shots=10,
        spectral_max_points=100,
        seed=701,
    )
    params.update(overrides)
    return Profile(**params)


@pytest.fixture(scope="module")
def fitted(tiny_corpus):
    train, _ = stratified_split(tiny_corpus.labels, 0.5, seed=31)
    return MLRDiscriminator(epochs=10, learning_rate=3e-3, seed=32).fit(
        tiny_corpus, train
    )


class TestFusedKernelMath:
    def test_fused_weights_reproduce_legacy_chain(self, rng):
        """One weight row == demod -> boxcar -> Re<K, .> exactly (to fp)."""
        n_shots, trace_len, factor = 7, 60, 4
        n_bins = trace_len // factor
        kernels = rng.normal(size=(3, n_bins)) + 1j * rng.normal(
            size=(3, n_bins)
        )
        times = np.arange(trace_len) * 0.5
        tone = demod_tone(-0.17, times)
        feed = rng.normal(size=(n_shots, trace_len)) + 1j * rng.normal(
            size=(n_shots, trace_len)
        )

        demodulated = demodulate(feed, -0.17, times)
        decimated = boxcar_decimate(demodulated, factor)
        legacy = np.real(decimated @ np.conj(kernels).T)

        weights = fuse_demod_decimation(kernels, tone, factor)
        fused = np.real(feed @ weights.T)
        np.testing.assert_allclose(fused, legacy, rtol=1e-12, atol=1e-12)

    def test_fused_weights_drop_trailing_partial_boxcar_group(self, rng):
        """trace_len not divisible by factor: trailing samples drop out,
        exactly like boxcar_decimate."""
        trace_len, factor = 61, 4
        n_bins = trace_len // factor
        kernels = rng.normal(size=(2, n_bins)) + 1j * rng.normal(
            size=(2, n_bins)
        )
        times = np.arange(trace_len) * 0.5
        feed = rng.normal(size=(5, trace_len)) + 1j * rng.normal(
            size=(5, trace_len)
        )
        tone = demod_tone(0.21, times)[: n_bins * factor]
        weights = fuse_demod_decimation(kernels, tone, factor)
        assert weights.shape == (2, n_bins * factor)
        legacy = np.real(
            boxcar_decimate(demodulate(feed, 0.21, times), factor)
            @ np.conj(kernels).T
        )
        np.testing.assert_allclose(
            np.real(feed[:, : n_bins * factor] @ weights.T),
            legacy,
            rtol=1e-12,
            atol=1e-12,
        )

    def test_tone_length_mismatch_rejected(self, rng):
        kernels = rng.normal(size=(2, 10)) * (1 + 0j)
        with pytest.raises(ShapeError):
            fuse_demod_decimation(kernels, np.ones(39, dtype=complex), 4)

    def test_bank_scores_into_preallocated_buffers(self, rng):
        weights = rng.normal(size=(6, 40)) + 1j * rng.normal(size=(6, 40))
        bank = FusedKernelBank(
            weights=weights, filters_per_qubit=3, decimation=4
        )
        feed = rng.normal(size=(9, 40)) + 1j * rng.normal(size=(9, 40))
        expected = bank.scores(feed)
        out = np.empty((9, 6))
        scratch = np.empty((9, 6), dtype=np.complex128)
        got = bank.scores(feed, out=out, scratch=scratch)
        assert got is out
        np.testing.assert_array_equal(got, expected)


class TestFusedEngineInvariance:
    """The tentpole's correctness gate: fused == legacy assignments."""

    def test_fused_matches_legacy_assignments(self, fitted, tiny_corpus):
        feed = tiny_corpus.feedline[:300]
        chip = tiny_corpus.chip
        fused = BatchDiscriminationEngine(fitted, chip, mode="fused")
        legacy = BatchDiscriminationEngine(fitted, chip, mode="legacy")
        rf = fused.process(feed)
        rl = legacy.process(feed)
        np.testing.assert_array_equal(rf.levels, rl.levels)
        np.testing.assert_array_equal(rf.joint, rl.joint)

    def test_fused_matches_legacy_on_truncated_window(
        self, fitted, tiny_corpus
    ):
        """Truncated-window serving: a shorter raw window uses a prefix
        bank and must still agree with the legacy chain on that window."""
        feed = tiny_corpus.feedline[:200, :150]
        chip = tiny_corpus.chip
        rf = BatchDiscriminationEngine(fitted, chip, mode="fused").process(
            feed
        )
        rl = BatchDiscriminationEngine(fitted, chip, mode="legacy").process(
            feed
        )
        np.testing.assert_array_equal(rf.levels, rl.levels)
        np.testing.assert_array_equal(rf.joint, rl.joint)

    def test_fused_stage_schema_and_zero_demod(self, fitted, tiny_corpus):
        result = BatchDiscriminationEngine(
            fitted, tiny_corpus.chip, mode="fused"
        ).process(tiny_corpus.feedline[:32])
        assert set(result.stage_seconds) == {
            "demod",
            "matched_filter",
            "discriminate",
        }
        assert result.stage_seconds["demod"] == 0.0
        assert result.stage_seconds["matched_filter"] > 0.0

    def test_window_longer_than_fitted_rejected(self, fitted, tiny_corpus):
        chip = tiny_corpus.chip
        engine = BatchDiscriminationEngine(fitted, chip, mode="fused")
        long_feed = np.zeros(
            (4, tiny_corpus.feedline.shape[1] + 8), dtype=complex
        )
        with pytest.raises(DataError):
            engine.process(long_feed)

    def test_unknown_mode_rejected(self, fitted, tiny_corpus):
        with pytest.raises(ConfigurationError):
            BatchDiscriminationEngine(
                fitted, tiny_corpus.chip, mode="turbo"
            )

    def test_fused_bank_cached_per_window(self, fitted, tiny_corpus):
        engine = BatchDiscriminationEngine(
            fitted, tiny_corpus.chip, mode="fused"
        )
        engine.process(tiny_corpus.feedline[:8])
        engine.process(tiny_corpus.feedline[:8, :150])
        engine.process(tiny_corpus.feedline[:8])
        assert sorted(engine._fused_banks) == [
            150,
            tiny_corpus.feedline.shape[1],
        ]


class TestLegacyExecutorDispatch:
    """Regression: channel dispatch must survive every executor kind."""

    def test_legacy_engine_with_process_pool(self, fitted, tiny_corpus):
        """The old lambda star-dispatch was unpicklable and crashed any
        process-pool executor handed to the engine."""
        inline = BatchDiscriminationEngine(
            fitted, tiny_corpus.chip, mode="legacy"
        ).process(tiny_corpus.feedline[:64])
        with ProcessPoolExecutor(max_workers=2) as pool:
            engine = BatchDiscriminationEngine(
                fitted, tiny_corpus.chip, executor=pool, mode="legacy"
            )
            sharded = engine.process(tiny_corpus.feedline[:64])
        np.testing.assert_array_equal(sharded.levels, inline.levels)
        np.testing.assert_array_equal(sharded.joint, inline.joint)

    def test_legacy_engine_with_thread_pool(self, fitted, tiny_corpus):
        inline = BatchDiscriminationEngine(
            fitted, tiny_corpus.chip, mode="legacy"
        ).process(tiny_corpus.feedline[:64])
        with ThreadPoolExecutor(max_workers=2) as pool:
            sharded = BatchDiscriminationEngine(
                fitted, tiny_corpus.chip, executor=pool, mode="legacy"
            ).process(tiny_corpus.feedline[:64])
        np.testing.assert_array_equal(sharded.levels, inline.levels)


class TestRebatchLinearity:
    """Regression: list.pop(0) made fine-grained rebatching quadratic."""

    @staticmethod
    def _one_shot_chunks(n, trace_len=4):
        feed = np.zeros((1, trace_len), dtype=complex)
        levels = np.zeros((1, 2), dtype=np.int64)
        return [
            ShotChunk(feedline=feed, prepared_levels=levels, chunk_id=i)
            for i in range(n)
        ]

    def test_ten_thousand_one_shot_chunks_stay_linear(self):
        n = 10_000
        chunks = self._one_shot_chunks(n)
        start = time.perf_counter()
        batches = list(MicroBatcher(256).rebatch(chunks))
        elapsed = time.perf_counter() - start
        assert sum(b.n_shots for b in batches) == n
        assert all(b.n_shots == 256 for b in batches[:-1])
        # Generous absolute bound: linear drains in well under a second
        # even on a loaded CI box; the old quadratic path took minutes.
        assert elapsed < 5.0

    def test_rebatch_splits_and_labels_unchanged(self, rng):
        """Behavioral pin against the deque rewrite: same batches, same
        label carriage, same remainder flush."""
        sizes = [3, 7, 1, 12, 5, 2]
        chunks = []
        cursor = 0
        for i, size in enumerate(sizes):
            feed = (cursor + np.arange(size))[:, None] * (1 + 0j) * np.ones(4)
            levels = (
                None
                if i == 2
                else np.full((size, 2), i, dtype=np.int64)
            )
            chunks.append(
                ShotChunk(feedline=feed, prepared_levels=levels, chunk_id=i)
            )
            cursor += size
        batches = list(MicroBatcher(8).rebatch(chunks))
        assert [b.n_shots for b in batches] == [8, 8, 8, 6]
        merged = np.concatenate([b.feedline for b in batches])
        np.testing.assert_array_equal(
            merged[:, 0].real, np.arange(sum(sizes))
        )
        # The unlabeled chunk (shots 10..10) lands in batch 1 only.
        assert batches[0].prepared_levels is not None
        assert batches[1].prepared_levels is None
        assert batches[2].prepared_levels is not None
        assert batches[3].prepared_levels is not None


class TestCorpusSourceViews:
    """Regression: unshuffled replay copied every chunk via fancy
    indexing; it must yield contiguous views."""

    def test_unshuffled_chunks_are_views(self, tiny_corpus):
        source = CorpusTraceSource(tiny_corpus, chunk_size=64)
        for chunk in source.chunks():
            assert np.shares_memory(chunk.feedline, tiny_corpus.feedline)
            assert np.shares_memory(
                chunk.prepared_levels, tiny_corpus.prepared_levels
            )

    def test_shuffled_chunks_still_copy_and_permute(self, tiny_corpus):
        source = CorpusTraceSource(tiny_corpus, chunk_size=64, shuffle=True,
                                   seed=5)
        chunks = list(source.chunks())
        assert not any(
            np.shares_memory(c.feedline, tiny_corpus.feedline)
            for c in chunks
        )
        merged = np.concatenate([c.feedline for c in chunks])
        assert merged.shape == tiny_corpus.feedline.shape
        assert not np.array_equal(merged, tiny_corpus.feedline)
        np.testing.assert_array_equal(
            np.sort(merged.view(np.float64).ravel()),
            np.sort(tiny_corpus.feedline.view(np.float64).ravel()),
        )


class TestBoundedLatencyStats:
    """Regression: per-batch samples accumulated forever."""

    def test_totals_exact_past_the_window(self):
        stats = LatencyStats("demod", window=16)
        n = 100
        for i in range(n):
            stats.record(0.001 * (i + 1), n_shots=3)
        assert stats.count == n
        assert stats.total_shots == 3 * n
        assert stats.total_seconds == pytest.approx(
            0.001 * n * (n + 1) / 2
        )
        assert stats.window_count == 16
        # Percentiles reflect the bounded recent window only.
        assert stats.percentile(0.0) == pytest.approx(0.001 * (n - 15))
        assert stats.percentile(100.0) == pytest.approx(0.001 * n)

    def test_memory_is_bounded(self):
        stats = LatencyStats(window=8)
        for _ in range(10_000):
            stats.record(0.5)
        assert stats.window_count == 8
        assert stats.count == 10_000

    def test_window_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            LatencyStats(window=0)


class TestBufferRing:
    def test_slots_are_reused_round_robin(self):
        ring = BufferRing(max_batch=32, n_features=6, slots=2)
        a = ring.acquire(16, 40)
        b = ring.acquire(16, 40)
        c = ring.acquire(16, 40)
        assert a.base is not b.base
        assert c.base is a.base  # wrapped around
        assert ring.acquired == 3

    def test_paired_features_matches_by_buffer_identity(self):
        ring = BufferRing(max_batch=32, n_features=6)
        feed = ring.acquire(10, 40)
        features = ring.paired_features(feed)
        assert features.shape == (10, 6)
        foreign = np.zeros((10, 40), dtype=complex)
        assert ring.paired_features(foreign) is None

    def test_oversized_batch_falls_back(self):
        ring = BufferRing(max_batch=8, n_features=6)
        assert ring.acquire(9, 40) is None

    def test_rebatch_assembles_into_ring_slots(self, rng):
        ring = BufferRing(max_batch=8, n_features=6)
        feed = rng.normal(size=(20, 10)) + 1j * rng.normal(size=(20, 10))
        chunks = [
            ShotChunk(
                feedline=feed[i : i + 5],
                prepared_levels=None,
                chunk_id=i,
            )
            for i in range(0, 20, 5)
        ]
        batches = []
        for batch in MicroBatcher(8).rebatch(chunks, ring=ring):
            assert ring.paired_features(batch.feedline) is not None
            batches.append(batch.feedline.copy())
        np.testing.assert_array_equal(np.concatenate(batches), feed)

    def test_results_never_alias_live_buffers(self, fitted, tiny_corpus):
        """Pipeline outputs must survive the ring wrapping: levels and
        joint are fresh arrays, not views of reused scratch."""
        chip = tiny_corpus.chip
        engine = BatchDiscriminationEngine(fitted, chip, mode="fused")
        ring = BufferRing(max_batch=16, n_features=engine.n_features)
        source = CorpusTraceSource(tiny_corpus, chunk_size=16)
        results = []
        for batch in MicroBatcher(16).rebatch(source.chunks(), ring=ring):
            out = ring.paired_features(batch.feedline)
            results.append(engine.process(batch.feedline, out_features=out))
        # Re-run and check the retained outputs were not clobbered.
        joints = [r.joint.copy() for r in results]
        for batch in MicroBatcher(16).rebatch(
            CorpusTraceSource(tiny_corpus, chunk_size=16).chunks(), ring=ring
        ):
            engine.process(
                batch.feedline,
                out_features=ring.paired_features(batch.feedline),
            )
        for kept, again in zip(results, joints):
            np.testing.assert_array_equal(kept.joint, again)
            assert kept.joint.base is None or not np.shares_memory(
                kept.joint, engine._feature_scratch
            )


class TestPipelineEngineParity:
    """End-to-end: the fused pipeline default equals the legacy chain."""

    @pytest.fixture(scope="class")
    def replay_corpus(self, tiny_corpus):
        return tiny_corpus

    def _run(self, fitted, corpus, engine_mode, **config_kw):
        config = PipelineConfig(
            batch_size=48, engine=engine_mode, **config_kw
        )
        pipeline = ReadoutPipeline(fitted, corpus.chip, config)
        return pipeline.run(CorpusTraceSource(corpus, chunk_size=64))

    def test_fused_and_legacy_reports_agree(self, fitted, replay_corpus):
        fused = self._run(fitted, replay_corpus, "fused")
        legacy = self._run(fitted, replay_corpus, "legacy")
        assert fused.assignment_counts == legacy.assignment_counts
        assert fused.accuracy == legacy.accuracy
        assert fused.details["engine"] == "fused"
        assert legacy.details["engine"] == "legacy"

    def test_fused_with_adaptive_batching(self, fitted, replay_corpus):
        fused = self._run(
            fitted,
            replay_corpus,
            "fused",
            adaptive_batching=True,
            max_batch_size=128,
        )
        legacy = self._run(fitted, replay_corpus, "legacy")
        assert fused.assignment_counts == legacy.assignment_counts

    def test_bad_engine_name_rejected(self):
        with pytest.raises(ConfigurationError):
            PipelineConfig(engine="warp")


class TestSharedMemoryReplay:
    def test_block_round_trip_and_views(self, tiny_corpus):
        block = SharedTraceBlock.from_corpus(tiny_corpus)
        try:
            source = SharedMemoryTraceSource(
                block.descriptor, tiny_corpus.chip, chunk_size=64
            )
            chunks = list(source.chunks())
            assert sum(c.n_shots for c in chunks) == tiny_corpus.n_traces
            # Zero-copy: every chunk is a view into the attached mapping.
            for chunk in chunks:
                assert np.shares_memory(chunk.feedline, source.feedline)
            np.testing.assert_array_equal(
                np.concatenate([c.feedline for c in chunks]),
                tiny_corpus.feedline,
            )
            np.testing.assert_array_equal(
                np.concatenate([c.prepared_levels for c in chunks]),
                tiny_corpus.prepared_levels,
            )
            source.close()
            source.close()  # idempotent
        finally:
            block.unlink()
            block.unlink()  # idempotent

    def test_descriptor_is_small_and_picklable(self, tiny_corpus):
        import pickle

        block = SharedTraceBlock.from_corpus(tiny_corpus)
        try:
            payload = pickle.dumps(block.descriptor)
            # The whole point: descriptor bytes << trace bytes.
            assert len(payload) < 1024
            assert tiny_corpus.feedline.nbytes > 100 * len(payload)
            clone = pickle.loads(payload)
            assert clone == block.descriptor
        finally:
            block.unlink()

    def test_qubit_mismatch_rejected(self, tiny_corpus, five_qubit_chip):
        block = SharedTraceBlock.from_corpus(tiny_corpus)
        try:
            with pytest.raises(ShapeError):
                SharedMemoryTraceSource(block.descriptor, five_qubit_chip)
        finally:
            block.unlink()


class TestClusterReplay:
    """run_replay must agree with in-process replay on every executor."""

    @pytest.fixture(scope="class")
    def feedline_chips(self):
        return multi_feedline_chips(2, n_qubits=2, trace_len=120)

    @pytest.fixture(scope="class")
    def replay_corpora(self, feedline_chips):
        return [
            generate_corpus(chip, shots_per_state=8, seed=811 + i)
            for i, chip in enumerate(feedline_chips)
        ]

    @pytest.fixture(scope="class")
    def warm_registry(self, tmp_path_factory, feedline_chips):
        registry_dir = tmp_path_factory.mktemp("replay-registry")
        with MultiFeedlineRunner(
            feedline_chips,
            tiny_profile(),
            executor="serial",
            registry_dir=registry_dir,
        ) as runner:
            runner.prefit()
        return registry_dir

    def test_replay_matches_direct_run_across_executors(
        self, feedline_chips, replay_corpora, warm_registry, fitted
    ):
        del fitted  # unused; keeps fixture ordering obvious
        reference = None
        for executor in EXECUTOR_NAMES:
            with MultiFeedlineRunner(
                feedline_chips,
                tiny_profile(),
                executor=executor,
                workers=2,
                config=PipelineConfig(batch_size=32),
                registry_dir=warm_registry,
            ) as runner:
                report = runner.run_replay(replay_corpora)
            counts = {
                name: fl.assignment_counts
                for name, fl in report.feedline_reports.items()
            }
            assert report.n_shots == sum(
                c.n_traces for c in replay_corpora
            )
            for fl in report.feedline_reports.values():
                assert fl.accuracy is not None
            if reference is None:
                reference = counts
            else:
                assert counts == reference

    def test_replay_accepts_name_keyed_corpora(
        self, feedline_chips, replay_corpora, warm_registry
    ):
        with MultiFeedlineRunner(
            feedline_chips,
            tiny_profile(),
            executor="serial",
            registry_dir=warm_registry,
        ) as runner:
            by_name = {
                spec.name: corpus
                for spec, corpus in zip(runner.feedlines, replay_corpora)
            }
            report = runner.run_replay(by_name)
        assert report.n_shots == sum(c.n_traces for c in replay_corpora)

    def test_replay_count_mismatch_rejected(
        self, feedline_chips, replay_corpora, warm_registry
    ):
        with MultiFeedlineRunner(
            feedline_chips,
            tiny_profile(),
            executor="serial",
            registry_dir=warm_registry,
        ) as runner:
            with pytest.raises(ConfigurationError):
                runner.run_replay(replay_corpora[:1])
