"""Sec III.A — CNOT malfunction and leakage transport with a leaked control.

Paper (IBM Lagos, 10,000 shots): ~3x higher leakage growth within 12
CNOTs when the control starts leaked, and a 1.5-2% per-gate leakage
transfer from control to target.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.experiments.report import format_rows
from repro.qudit import QuditCircuit

__all__ = ["Sec3Result", "run_sec3_cnot_leakage"]

N_CNOTS = 12

#: Paper: 1.5-2% per-gate transfer (midpoint), ~3x growth at 12 CNOTs.
PAPER_VALUES = {"single_gate_transfer": 0.0175, "growth_ratio_at_12": 3.0}


@dataclass(frozen=True)
class Sec3Result(ExperimentResult):
    """Leakage growth curves and the single-gate transfer rate."""

    n_cnots: tuple[int, ...]
    leaked_control_population: tuple[float, ...]
    normal_control_population: tuple[float, ...]
    single_gate_transfer: float
    growth_ratio_at_12: float

    def _paper_values(self) -> dict:
        return PAPER_VALUES

    def format_table(self) -> str:
        rows = [
            (n, leak, norm)
            for n, leak, norm in zip(
                self.n_cnots,
                self.leaked_control_population,
                self.normal_control_population,
            )
        ]
        table = format_rows(
            ("CNOTs", "TargetLeak(leaked ctrl)", "TargetLeak(normal ctrl)"),
            rows,
            title="Sec III.A: repeated-CNOT leakage growth",
        )
        return (
            f"{table}\n"
            f"single-gate transfer: {self.single_gate_transfer:.3%} "
            f"(paper 1.5-2%); growth ratio at 12 CNOTs: "
            f"{self.growth_ratio_at_12:.1f}x (paper ~3x)"
        )


@experiment("sec3", tags=("leakage",), paper_ref="Sec. III.A")
def run_sec3_cnot_leakage(profile: Profile = QUICK) -> Sec3Result:
    """Evolve the repeated-CNOT circuits exactly (density matrix).

    The density-matrix populations are exact expectation values; the
    profile's shot count only matters for the sampled-shot variant used in
    the examples, so results here are deterministic.
    """
    leaked_curve, normal_curve = [], []
    steps = tuple(range(1, N_CNOTS + 1))
    for initial in ((2, 0), (1, 0)):
        circuit = QuditCircuit(2)
        curve = []
        for _ in steps:
            circuit.leaky_cnot(0, 1)
            rho = circuit.run(initial)
            curve.append(rho.leakage_population(1))
        if initial[0] == 2:
            leaked_curve = curve
        else:
            normal_curve = curve

    single = QuditCircuit(2).leaky_cnot(0, 1).run((2, 0))
    transfer = single.leakage_population(1)
    ratio = leaked_curve[-1] / max(normal_curve[-1], 1e-12)
    return Sec3Result(
        n_cnots=steps,
        leaked_control_population=tuple(leaked_curve),
        normal_control_population=tuple(normal_curve),
        single_gate_transfer=transfer,
        growth_ratio_at_12=ratio,
    )
