"""Fig 5(a) — FPGA resource utilization, HERQULES vs the paper's design.

Paper: over 5x fewer flip-flops and 4x fewer LUTs than HERQULES.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.experiments.common import (
    HERQULES_ARCHITECTURE,
    OURS_ARCHITECTURE,
    OURS_REPLICAS,
)
from repro.experiments.report import format_rows
from repro.fpga import XCZU7EV, estimate_network_resources

__all__ = ["Fig5aResult", "run_fig5a"]

#: Paper: "over 5x fewer flip-flops and 4x fewer LUTs than HERQULES".
PAPER_RATIOS = {"lut": 4.0, "ff": 5.0}


@dataclass(frozen=True)
class Fig5aResult(ExperimentResult):
    """Resource estimates and HERQULES/OURS ratios."""

    resources: dict  # {design: {resource: value}}

    def ratio(self, resource: str) -> float:
        """HERQULES-to-OURS ratio for one resource class."""
        return self.resources["herqules"][resource] / self.resources["ours"][resource]

    def _measured(self) -> dict:
        return {
            "resources": self.resources,
            "herqules_over_ours": {
                r: self.ratio(r) for r in ("lut", "ff", "bram", "dsp")
            },
        }

    def _paper_values(self) -> dict:
        return {"herqules_over_ours": PAPER_RATIOS}

    def format_table(self) -> str:
        table = format_rows(
            ("Design", "LUT", "FF", "BRAM", "DSP"),
            [
                (
                    design,
                    round(vals["lut"], 0),
                    round(vals["ff"], 0),
                    round(vals["bram"], 0),
                    round(vals["dsp"], 0),
                )
                for design, vals in self.resources.items()
            ],
            title="Fig 5(a): FPGA resource utilization (xczu7ev counts)",
        )
        return (
            f"{table}\n"
            f"HERQULES/OURS: LUT {self.ratio('lut'):.1f}x (paper >4x), "
            f"FF {self.ratio('ff'):.1f}x (paper >5x)"
        )


@experiment("fig5a", tags=("fpga",), paper_ref="Fig. 5(a)")
def run_fig5a(profile: Profile = QUICK) -> Fig5aResult:
    """Estimate LUT/FF/BRAM/DSP for HERQULES and OURS."""
    resources = {}
    for design, est in (
        ("herqules", estimate_network_resources(HERQULES_ARCHITECTURE)),
        (
            "ours",
            estimate_network_resources(
                OURS_ARCHITECTURE, n_replicas=OURS_REPLICAS
            ),
        ),
    ):
        resources[design] = {
            "lut": est.luts,
            "ff": est.ffs,
            "bram": est.brams,
            "dsp": est.dsps,
            "lut_util": est.utilization(XCZU7EV)["lut"],
            "ff_util": est.utilization(XCZU7EV)["ff"],
        }
    return Fig5aResult(resources=resources)
