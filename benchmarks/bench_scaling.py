"""Sec V.C bench: polynomial vs exponential model-size scaling.

The paper's core architectural claim: joint-head designs (FNN, HERQULES)
scale exponentially with qubit count through their k^n output layer, while
the modular design grows polynomially. Asserted via tail growth ratios:
adding the 10th qubit triples the joint heads (~k = 3x per qubit) but
grows the modular design by only ~(10/9)^3.
"""

from benchmarks.conftest import run_once
from repro.experiments.scaling import run_scaling


def test_scaling_polynomial_vs_exponential(benchmark, profile):
    result = run_once(benchmark, run_scaling, profile)
    print("\n" + result.format_table())
    tail = {}
    for design in ("fnn", "herqules", "ours"):
        tail[design] = (
            result.parameters[design][(10, 3)]
            / result.parameters[design][(9, 3)]
        )
    # Exponential designs approach 3x per added qubit in the tail...
    assert tail["fnn"] > 2.5
    assert tail["herqules"] > 2.5
    # ...the modular design stays polynomial (~(10/9)^3 = 1.37).
    assert tail["ours"] < 1.6
    # At the paper's operating point the counts are exact.
    assert result.parameters["fnn"][(5, 3)] == 686_743
    assert result.parameters["herqules"][(5, 3)] == 38_583
    assert result.parameters["ours"][(5, 3)] == 6_505
