"""Classical signal processing for readout traces.

Implements the filtering stage of the readout pipeline (Fig 1b): digital
down-conversion of the multiplexed feedline to per-qubit baseband,
decimation, mean-trace values, and the matched filters of Sec V.B.
"""

from repro.dsp.demod import demodulate, demodulate_all_qubits
from repro.dsp.filters import boxcar_decimate, fir_lowpass, moving_average
from repro.dsp.matched_filter import (
    MatchedFilterBank,
    apply_matched_filter,
    matched_filter_kernel,
)
from repro.dsp.mtv import mean_trace_value, mtv_points
from repro.dsp.snr import (
    cloud_separation_snr,
    gaussian_overlap_fidelity,
    pairwise_snr_matrix,
)

__all__ = [
    "demodulate",
    "demodulate_all_qubits",
    "boxcar_decimate",
    "moving_average",
    "fir_lowpass",
    "mean_trace_value",
    "mtv_points",
    "matched_filter_kernel",
    "apply_matched_filter",
    "MatchedFilterBank",
    "cloud_separation_snr",
    "gaussian_overlap_fidelity",
    "pairwise_snr_matrix",
]
