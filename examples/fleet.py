"""Fleet serving: many tenants, one shared shard-pool substrate.

One `FleetSpec` names several tenants — each a full `ServeSpec` plus an
SLO section (priority, min/max share, p99 budget) — and one shared pool
they all lease shard workers from. At warm-up the fleet *admits* each
tenant against pool capacity (a tenant demanding more workers than the
pool has is rejected, recorded with the reason, and the rest of the
fleet serves on); queued runs then dispatch under weighted fair sharing
— priorities decide the ratio, the min-share floor keeps any tenant
from starving, and a drain budget shows oversubscription throttling.

The same structure can live in a JSON file (see
`examples/fleet_spec.json`) and drive the CLI instead::

    PYTHONPATH=src python -m repro fleet --spec examples/fleet_spec.json \
        --runs 2 --json fleet.json
"""

from __future__ import annotations

from repro.fleet import (
    FleetPoolSpec,
    FleetSLOSpec,
    FleetSpec,
    ReadoutFleet,
    TenantSpec,
)
from repro.serve import BatchingSpec, ClusterSpec, ServeSpec, TrafficSpec


def main() -> None:
    tenant_serve = ServeSpec(
        traffic=TrafficSpec(shots=120, chunk_size=40),
        cluster=ClusterSpec(qubits_per_feedline=2),
        batching=BatchingSpec(batch_size=40),
    )
    spec = FleetSpec(
        # A 1-worker pool, leasable up to 2x over: 'prio' and 'batch'
        # are admitted and time-share it; 'greedy' demands 4 workers the
        # pool can never grant and is rejected at admission.
        pool=FleetPoolSpec(executor="thread", workers=1,
                           oversubscription=2.0),
        tenants={
            "prio": TenantSpec(
                serve=tenant_serve,
                slo=FleetSLOSpec(priority=3),
            ),
            "batch": TenantSpec(
                serve=tenant_serve,
                # The floor bounds the priority gap: however heavy
                # 'prio' weighs, 'batch' is guaranteed 20% of shots.
                slo=FleetSLOSpec(priority=1, min_share=0.2),
            ),
            "greedy": TenantSpec(
                serve=ServeSpec(
                    traffic=tenant_serve.traffic,
                    cluster=ClusterSpec(
                        feedlines=4, workers=4, qubits_per_feedline=2
                    ),
                    batching=tenant_serve.batching,
                ),
                slo=FleetSLOSpec(priority=1),
            ),
        },
    )

    with ReadoutFleet(spec) as fleet:
        print(
            f"admitted: {', '.join(fleet.tenants)}  "
            f"(rejected: {', '.join(fleet.stats.rejected) or 'none'})\n"
        )
        # Oversubscribe the queues, then drain with a budget: the
        # scheduler dispatches ~3:1 by priority, but the min-share
        # floor serves 'batch' first and keeps it from starving.
        for _ in range(4):
            fleet.submit("prio")
            fleet.submit("batch")
        fleet.drain(max_runs=5)
        left = fleet.pending()
        print(fleet.stats.format_table())
        print(f"\nstill queued after the drain budget: {left} request(s)")
        for name in fleet.tenants:
            runs = fleet.stats.tenants[name].n_runs
            print(f"  {name}: {runs} run(s) completed")


if __name__ == "__main__":
    main()
