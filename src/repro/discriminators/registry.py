"""Discriminator plugin registry: one source of truth for design names.

Historically the design-name → class mapping lived in three places — the
experiment layer's ``_build``, the pipeline runner's hard-coded factory,
and the artifact loader's class table — and adding a discriminator meant
editing all of them.  This module replaces the trio with a single
registry:

- :func:`register` is a class decorator that publishes a discriminator
  under a design name (plus optional aliases) for everything that selects
  designs by string: ``experiments.common.get_trained``, the pipeline's
  calibration factory, and CLI/bench ``--design`` choices.
- Each registered class provides a ``from_profile(profile)`` classmethod
  mapping a sizing :class:`~repro.config.Profile` to a ready-to-fit
  instance (training budget, learning rate, derived seed).
- The registry also records every concrete :class:`Discriminator`
  subclass by class name (via ``Discriminator.__init_subclass__``) so
  ``Discriminator.load_artifacts`` dispatches through the same table.

New discriminators join the system by decorating the class::

    @register("mydesign", aliases=("md",))
    class MyDiscriminator(Discriminator):
        @classmethod
        def from_profile(cls, profile):
            return cls(epochs=profile.nn_epochs, seed=profile.seed + 42)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator

from repro.config import Profile
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (base imports us)
    from repro.discriminators.base import Discriminator

__all__ = [
    "DiscriminatorSpec",
    "register",
    "get",
    "names",
    "specs",
    "build",
    "artifact_class",
    "record_artifact_class",
    "NN_LEARNING_RATE",
]

#: Learning rate shared by the matched-filter discriminator heads
#: (referenced by ``from_profile`` builders and the experiment runners).
NN_LEARNING_RATE = 3e-3

#: Design name -> spec for every registered discriminator design.
_SPECS: dict[str, "DiscriminatorSpec"] = {}
#: Alias -> canonical design name.
_ALIASES: dict[str, str] = {}
#: Class name -> class for artifact loading (every Discriminator subclass,
#: registered design or not).
_ARTIFACT_CLASSES: dict[str, type] = {}


@dataclass(frozen=True)
class DiscriminatorSpec:
    """One registered discriminator design.

    Parameters
    ----------
    name:
        Canonical design name (the paper's vocabulary: ``"ours"``,
        ``"herqules"``, ``"fnn"``, ...).
    cls:
        The :class:`Discriminator` subclass.
    aliases:
        Alternative names resolving to this design.
    description:
        One-line summary shown in CLI/design listings.
    """

    name: str
    cls: type
    aliases: tuple[str, ...] = ()
    description: str = ""

    def build(self, profile: Profile) -> "Discriminator":
        """Instantiate the design sized for ``profile`` (unfitted)."""
        return self.cls.from_profile(profile)


def register(
    name: str, *, aliases: tuple[str, ...] = (), description: str = ""
) -> Callable[[type], type]:
    """Class decorator publishing a discriminator design by name."""

    def _decorate(cls: type) -> type:
        if not callable(getattr(cls, "from_profile", None)):
            raise ConfigurationError(
                f"{cls.__name__} must define from_profile() to register "
                f"as design {name!r}"
            )
        spec = DiscriminatorSpec(
            name=name,
            cls=cls,
            aliases=tuple(aliases),
            description=description or (cls.__doc__ or "").splitlines()[0],
        )
        for key in (name, *spec.aliases):
            owner = _ALIASES.get(key)
            if owner is not None and _SPECS[owner].cls is not cls:
                raise ConfigurationError(
                    f"discriminator design {key!r} already registered by "
                    f"{_SPECS[owner].cls.__name__}"
                )
        _SPECS[name] = spec
        for key in (name, *spec.aliases):
            _ALIASES[key] = name
        return cls

    return _decorate


def get(name: str) -> DiscriminatorSpec:
    """Look up a design by canonical name or alias."""
    canonical = _ALIASES.get(name)
    if canonical is None:
        known = ", ".join(sorted(_SPECS))
        raise ConfigurationError(
            f"unknown discriminator design {name!r}; expected one of: {known}"
        )
    return _SPECS[canonical]


def names() -> tuple[str, ...]:
    """Canonical names of all registered designs (sorted)."""
    return tuple(sorted(_SPECS))


def specs() -> Iterator[DiscriminatorSpec]:
    """All registered design specs, sorted by name."""
    for name in names():
        yield _SPECS[name]


def build(name: str, profile: Profile) -> "Discriminator":
    """Instantiate a registered design sized for ``profile``."""
    return get(name).build(profile)


def record_artifact_class(cls: type) -> None:
    """Track a concrete Discriminator subclass for artifact loading.

    Called from ``Discriminator.__init_subclass__`` — every subclass is
    loadable from artifacts by class name, registered design or not.
    """
    _ARTIFACT_CLASSES[cls.__name__] = cls


def artifact_class(class_name: str) -> type | None:
    """The Discriminator subclass stored under ``class_name``, if any."""
    return _ARTIFACT_CLASSES.get(class_name)
