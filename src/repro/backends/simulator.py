"""Simulator-instrument backend: the in-process dispersive simulator.

Wraps the existing :class:`~repro.pipeline.source.SimulatorTraceSource` /
:class:`~repro.pipeline.source.DriftingTraceSource` pair behind the
:class:`~repro.backends.base.InstrumentBackend` contract, so the serving
layer resolves simulated traffic through the same registry as recorded
or external traffic. The backend owns the *session shot clock*: each
acquisition's drift offset continues where the previous one stopped, so
drift accumulates across runs exactly as
:class:`~repro.serve.service.ReadoutService` threaded it by hand before.
"""

from __future__ import annotations

from typing import Iterator

from repro.backends.base import InstrumentBackend
from repro.exceptions import ConfigurationError
from repro.physics.device import ChipConfig
from repro.pipeline.source import (
    DriftingTraceSource,
    ShotChunk,
    SimulatorTraceSource,
)

__all__ = ["SimulatorBackend"]


class SimulatorBackend(InstrumentBackend):
    """Generates traffic on demand from the dispersive-readout simulator.

    Parameters
    ----------
    chip:
        Device to simulate (the *calibrated* device when drifting).
    chunk_size:
        Shots per simulated chunk.
    drift:
        Optional :class:`~repro.physics.drift.DriftModel`; a null model
        behaves exactly like no model.
    shot_offset:
        Session shots already served before this backend opened — the
        starting position of the drift clock.
    """

    name = "simulator"

    def __init__(
        self,
        chip: ChipConfig,
        chunk_size: int = 256,
        drift=None,
        shot_offset: int = 0,
    ) -> None:
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if shot_offset < 0:
            raise ConfigurationError(
                f"shot_offset must be >= 0, got {shot_offset}"
            )
        self.chip = chip
        self.chunk_size = int(chunk_size)
        self.drift = drift if drift is not None and not drift.is_null else None
        self._delivered = int(shot_offset)

    @property
    def session_shots(self) -> int:
        """Shots delivered so far (the drift clock position)."""
        return self._delivered

    def acquire(
        self, shots: int, seed: int | None = None
    ) -> Iterator[ShotChunk]:
        shots = self.resolve_shots(shots)
        if self.drift is not None:
            source = DriftingTraceSource(
                self.chip,
                self.drift,
                n_shots=shots,
                chunk_size=self.chunk_size,
                seed=seed,
                shot_offset=self._delivered,
            )
        else:
            source = SimulatorTraceSource(
                self.chip,
                n_shots=shots,
                chunk_size=self.chunk_size,
                seed=seed,
            )
        for chunk in source.chunks():
            yield chunk
            # Advance per chunk: an abandoned acquisition leaves the
            # clock at the shots it actually streamed.
            self._delivered += chunk.n_shots

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "labeled": True,
                "deterministic": True,
                "chunk_size": self.chunk_size,
                "drift": None if self.drift is None else self.drift.to_dict(),
                "session_shots": self._delivered,
            }
        )
        return info
