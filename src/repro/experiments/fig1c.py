"""Fig 1(c) — readout classification inaccuracy per qubit, three designs."""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.experiments.common import get_trained
from repro.experiments.report import format_rows

__all__ = ["Fig1cResult", "run_fig1c"]


@dataclass(frozen=True)
class Fig1cResult(ExperimentResult):
    """Per-qubit inaccuracy (1 - fidelity) for each design."""

    inaccuracy: dict  # {design: tuple per qubit}

    def format_table(self) -> str:
        return format_rows(
            ("Design", "Q1", "Q2", "Q3", "Q4", "Q5"),
            [
                (design, *[float(v) for v in values])
                for design, values in self.inaccuracy.items()
            ],
            title="Fig 1(c): readout classification inaccuracy per qubit",
        )


@experiment("fig1c", tags=("fidelity",), paper_ref="Fig. 1(c)")
def run_fig1c(profile: Profile = QUICK) -> Fig1cResult:
    """Compute 1 - F_i for HERQULES, FNN, and OURS."""
    inaccuracy = {}
    for design in ("herqules", "fnn", "ours"):
        trained = get_trained(profile, design)
        inaccuracy[design] = tuple(1.0 - f for f in trained.fidelities)
    return Fig1cResult(inaccuracy=inaccuracy)
