"""Programmatic pipeline execution: the streaming runtime as an API call.

:func:`run_pipeline` is the pipeline counterpart of
:func:`repro.api.run_suite` — one call resolves the profile, builds the
feedline partition, fans the shards out over the chosen executor, and
returns a structured report::

    from repro.api import run_pipeline

    report = run_pipeline("quick", shots=2000, feedlines=3,
                          executor="process", adaptive_batching=True)
    print(report.format_table())
    print(report.to_dict()["shots_per_second"])

With ``feedlines=1`` (the default) it returns the single-feedline
:class:`~repro.pipeline.metrics.PipelineReport`; with more it returns the
aggregate :class:`~repro.pipeline.cluster.ClusterReport`.

Since the :mod:`repro.serve` redesign this function is a thin shim: the
keyword surface is folded into a :class:`~repro.serve.spec.ServeSpec` and
served as a one-shot :class:`~repro.serve.service.ReadoutService` run.
Callers that serve repeated traffic should hold a ``ReadoutService``
directly and amortize the warm-up across runs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import Profile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard: the pipeline
    # package's metrics pull in the experiment layer, which registers
    # itself through repro.api — so the runtime import happens inside
    # :func:`run_pipeline`, not at module load.
    from pathlib import Path

    from repro.pipeline.cluster import ClusterReport
    from repro.pipeline.metrics import PipelineReport

__all__ = ["run_pipeline"]


def run_pipeline(
    profile: str | Profile = "quick",
    *,
    shots: int = 2000,
    feedlines: int = 1,
    executor: str = "thread",
    workers: int | None = None,
    batch_size: int = 64,
    chunk_size: int = 256,
    max_pending: int = 8,
    channel_workers: int = 1,
    adaptive_batching: bool = False,
    max_batch_size: int = 1024,
    target_batch_ms: float | None = None,
    qubits_per_feedline: int = 5,
    registry_dir: "str | Path | None" = None,
    design: str = "ours",
    seed: int | None = None,
) -> "PipelineReport | ClusterReport":
    """Stream simulated readout traffic and return the run report.

    Parameters
    ----------
    profile:
        Profile name (``quick``/``full``/``paper``) or instance, sizing
        the calibration corpus and training budget.
    shots:
        Shots of simulated traffic streamed (per feedline).
    feedlines:
        Readout groups to serve. ``1`` runs the single-feedline chain;
        more partitions :func:`repro.physics.device.multi_feedline_chips`
        readout groups across shard workers.
    executor:
        Shard backend for ``feedlines > 1``: ``serial``, ``thread``, or
        ``process``. Validated — but inert — with a single feedline.
    workers:
        Shard workers (default: one per feedline, capped at the CPU
        count). Validated but inert with a single feedline; distinct
        from ``channel_workers``, which shards qubit channels *within*
        each feedline's demod/matched-filter stages.
    batch_size, chunk_size, max_pending:
        See :class:`repro.pipeline.PipelineConfig` and the sources.
    adaptive_batching, max_batch_size, target_batch_ms:
        Adaptive micro-batching knobs (EWMA-driven batch sizing against
        the FPGA decision budget).
    qubits_per_feedline:
        Qubits per served readout group.
    registry_dir:
        Calibration-registry root; ``None`` serves this call from a
        private temporary registry (fits fresh, stores nothing).
    design:
        Registered discriminator design to serve.
    seed:
        Traffic seed override (calibration stays keyed by the profile).
    """
    from repro.serve import (
        BatchingSpec,
        CalibrationSpec,
        ClusterSpec,
        ServeSpec,
        TrafficSpec,
        serve_once,
    )

    if isinstance(profile, str):
        profile_name, profile_override = profile, None
    else:
        profile_name, profile_override = profile.name, profile
    spec = ServeSpec(
        traffic=TrafficSpec(shots=shots, chunk_size=chunk_size, seed=seed),
        cluster=ClusterSpec(
            feedlines=feedlines,
            executor=executor,
            workers=workers,
            channel_workers=channel_workers,
            qubits_per_feedline=qubits_per_feedline,
        ),
        batching=BatchingSpec(
            batch_size=batch_size,
            max_pending=max_pending,
            adaptive=adaptive_batching,
            max_batch_size=max_batch_size,
            target_batch_ms=target_batch_ms,
        ),
        calibration=CalibrationSpec(
            profile=profile_name,
            design=design,
            registry_dir=None if registry_dir is None else str(registry_dir),
        ),
    )
    return serve_once(spec, profile=profile_override)
