"""Long-lived serving sessions over the streaming readout runtime.

The paper's readout datapath is persistent: calibrated once, then
discriminating shots continuously. :class:`ReadoutService` is that shape
as an API — it resolves a :class:`~repro.serve.spec.ServeSpec` once,
pre-warms the shard executors, pre-fits or loads every per-feedline
discriminator (:meth:`ReadoutService.warm`), and then serves repeated
:meth:`ReadoutService.run` calls against the warm state. A warmed service
never refits behind the caller's back: artifacts live in the calibration
registry (a private temporary one when the spec names none) and fitted
models stay resident in memory between runs. The one sanctioned
exception is *hot recalibration*: when the spec's
:class:`~repro.serve.spec.RecalibrationSpec` is enabled and a run's
online drift score trips the alarm, the service refits through the
shard pool against the drifted device and atomically swaps the next
calibration-artifact version in — without dropping the session.

Cumulative serving telemetry accumulates in :class:`ServiceStats` —
total shots, aggregate shots/sec over the serving walls, per-run
digests, and the warm-up cost those runs amortize.

::

    from repro.serve import ReadoutService, ServeSpec

    with ReadoutService.open("spec.json") as service:   # warms
        for _ in range(10):
            report = service.run()                      # no refits
    print(service.stats.format_table())
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.lockgraph import trace_lock
from repro.config import Profile
from repro.exceptions import ConfigurationError
from repro.serve.spec import ServeSpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.cluster import ClusterReport, MultiFeedlineRunner
    from repro.pipeline.metrics import PipelineReport
    from repro.pipeline.runner import ReadoutPipeline
    from repro.physics.device import ChipConfig

__all__ = ["ReadoutService", "RunStats", "ServiceStats", "serve_once"]


def _report_calibration_cached(report) -> bool | None:
    """Whether a run served warm calibration on every feedline.

    ``PipelineReport`` carries the flag directly; a ``ClusterReport``
    aggregates its feedlines (``None`` when no feedline reports one).
    """
    cached = getattr(report, "calibration_cached", None)
    if cached is not None:
        return bool(cached)
    feedlines = getattr(report, "feedline_reports", None)
    if not feedlines:
        return None
    flags = [
        r.calibration_cached
        for r in feedlines.values()
        if r.calibration_cached is not None
    ]
    return all(flags) if flags else None


@dataclass(frozen=True)
class RunStats:
    """Digest of one :meth:`ReadoutService.run` call."""

    index: int
    n_shots: int
    wall_seconds: float
    shots_per_second: float
    accuracy: float | None
    calibration_cached: bool | None
    drift_score: float | None = None
    drift_alarm: bool | None = None
    recalibrated: bool = False

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "n_shots": self.n_shots,
            "wall_seconds": self.wall_seconds,
            "shots_per_second": self.shots_per_second,
            "accuracy": self.accuracy,
            "calibration_cached": self.calibration_cached,
            "drift_score": self.drift_score,
            "drift_alarm": self.drift_alarm,
            "recalibrated": self.recalibrated,
        }


@dataclass
class ServiceStats:
    """Cumulative telemetry of one serving session.

    Attributes
    ----------
    warm_seconds:
        Wall time spent in :meth:`ReadoutService.warm` (calibration
        fits/loads plus shard-pool spawn) — the cost the warm runs
        amortize. Cumulative: a service re-warmed after ``close()``
        adds each warm-up cycle.
    cold_fits:
        Discriminator fits performed during warm-ups (0 on a fully warm
        registry), cumulative across warm cycles. Runs between a warm-up
        and the next ``close()`` never fit — hot recalibrations are
        accounted separately below.
    recalibrations:
        Drift-triggered hot recalibrations performed this session
        (each refits every feedline at the next artifact version).
    recal_seconds:
        Wall time spent in those recalibrations — the refit cost the
        recovered accuracy paid for.
    runs:
        Per-run digests, in serving order.
    """

    warm_seconds: float = 0.0
    cold_fits: int = 0
    recalibrations: int = 0
    recal_seconds: float = 0.0
    runs: list[RunStats] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def total_shots(self) -> int:
        return sum(run.n_shots for run in self.runs)

    @property
    def total_run_seconds(self) -> float:
        return sum(run.wall_seconds for run in self.runs)

    @property
    def shots_per_second(self) -> float:
        """Aggregate serving throughput over all runs (0.0 before any)."""
        seconds = self.total_run_seconds
        return self.total_shots / seconds if seconds > 0 else 0.0

    def record(
        self,
        report,
        wall_seconds: float,
        calibration_cached: bool | None = None,
        recalibrated: bool = False,
    ) -> RunStats:
        """Fold one run's report into the cumulative stats.

        ``calibration_cached`` overrides the flag derived from the
        report — :class:`ReadoutService` passes its session-cycle view
        (did *this cycle* pay cold fits before this run) so the stats
        mean the same thing for single- and multi-feedline sessions.
        ``recalibrated`` marks a run whose drift alarm triggered a hot
        recalibration after it completed.
        """
        if calibration_cached is None:
            calibration_cached = _report_calibration_cached(report)
        run = RunStats(
            index=len(self.runs),
            n_shots=report.n_shots,
            wall_seconds=wall_seconds,
            shots_per_second=(
                report.n_shots / wall_seconds if wall_seconds > 0 else 0.0
            ),
            accuracy=report.accuracy,
            calibration_cached=calibration_cached,
            drift_score=getattr(report, "drift_score", None),
            drift_alarm=getattr(report, "drift_alarm", None),
            recalibrated=recalibrated,
        )
        self.runs.append(run)
        return run

    def to_dict(self) -> dict:
        """JSON-serializable form (``repro serve --json``)."""
        return {
            "warm_seconds": self.warm_seconds,
            "cold_fits": self.cold_fits,
            "recalibrations": self.recalibrations,
            "recal_seconds": self.recal_seconds,
            "n_runs": self.n_runs,
            "total_shots": self.total_shots,
            "total_run_seconds": self.total_run_seconds,
            "shots_per_second": self.shots_per_second,
            "runs": [run.to_dict() for run in self.runs],
        }

    def format_table(self) -> str:
        """Aligned text report in the house experiment style."""
        from repro.experiments.report import format_rows

        rows = [
            [
                run.index,
                run.n_shots,
                f"{run.shots_per_second:.0f}",
                "-" if run.accuracy is None else f"{run.accuracy:.4f}",
                {True: "warm", False: "cold", None: "-"}[
                    run.calibration_cached
                ],
                (
                    "-"
                    if run.drift_score is None
                    else f"{run.drift_score:.3f}"
                ),
                {True: "ALARM", False: "ok", None: "-"}[run.drift_alarm],
                "yes" if run.recalibrated else "-",
            ]
            for run in self.runs
        ]
        table = format_rows(
            [
                "run",
                "shots",
                "shots/s",
                "accuracy",
                "calibration",
                "drift",
                "alarm",
                "recal",
            ],
            rows,
            title=f"readout service ({self.n_runs} runs)",
        )
        lines = [
            table,
            "",
            f"warm-up              {self.warm_seconds:.2f} s "
            f"({self.cold_fits} cold fit(s))",
            f"cumulative           {self.total_shots} shots in "
            f"{self.total_run_seconds:.2f} s serving "
            f"({self.shots_per_second:.0f} shots/s)",
        ]
        if self.recalibrations:
            lines.append(
                f"recalibrations       {self.recalibrations} in "
                f"{self.recal_seconds:.2f} s"
            )
        return "\n".join(lines)


class ReadoutService:
    """A warm, session-oriented front end to the streaming runtime.

    Parameters
    ----------
    spec:
        The declarative serving configuration.
    profile:
        Optional ready :class:`~repro.config.Profile` instance that wins
        over ``spec.calibration.profile`` — for ad-hoc sizings that are
        not registered profile names (the spec's seed override still
        applies).
    namespace:
        Optional tenant namespace (a registry slug). Prefixes every
        registry device name this session fits or serves
        (``<namespace>.<device>``), so tenants sharing one registry root
        keep disjoint calibration keys — one tenant's versioned
        recalibration can never alter what another serves.
    pool:
        Optional injected shard executor (a fleet's
        :class:`~repro.pipeline.cluster.ShardPoolLease`). Multi-feedline
        sessions then dispatch through the shared substrate instead of
        spawning a private pool; :meth:`close` leaves it up for its
        owner. Single-feedline sessions run inline and ignore it.
    recal_gate:
        Optional context manager (e.g. a shared ``threading.Lock``)
        entered around hot-recalibration refits, so a fleet can
        serialize recalibrations across tenants — one tenant's drift
        storm queues behind the gate instead of monopolizing the pool.
        Defaults to a session-private lock (uncontended, but visible to
        the ``REPRO_LOCK_DEBUG`` lock-order detector).

    Lifecycle: :meth:`warm` (idempotent; implicit on the first
    :meth:`run` and on ``__enter__``) resolves the profile, builds the
    serving topology, pre-fits or loads every discriminator, and
    pre-spawns shard pools; :meth:`run` streams traffic against that
    state; :meth:`close` releases pools and any session-private
    registry. The service is reusable after ``close`` — the next ``run``
    re-warms.
    """

    def __init__(
        self,
        spec: ServeSpec,
        *,
        profile: Profile | None = None,
        namespace: str | None = None,
        pool=None,
        recal_gate=None,
    ):
        if not isinstance(spec, ServeSpec):
            raise ConfigurationError(
                f"spec must be a ServeSpec, got {type(spec).__name__}"
            )
        if namespace is not None:
            from repro.pipeline.registry import _SLUG

            if not isinstance(namespace, str) or not _SLUG.match(namespace):
                raise ConfigurationError(
                    "namespace must be a registry slug (letters, digits, "
                    f"'.', '_', '-'; not starting with punctuation), got "
                    f"{namespace!r}"
                )
        self.spec = spec
        self.stats = ServiceStats()
        self._namespace = namespace
        self._pool = pool
        self._recal_gate = (
            recal_gate
            if recal_gate is not None
            else trace_lock("serve.recal-gate")
        )
        self._profile_override = profile
        self._profile: Profile | None = None
        self._warmed = False
        # Per-warm-cycle accounting (reset by warm()): the cumulative
        # stats cannot tell whether *this* cycle's first run paid a fit.
        self._cycle_cold_fits = 0
        self._cycle_runs = 0
        self._pipeline: "ReadoutPipeline | None" = None
        self._chip: "ChipConfig | None" = None
        self._device: str | None = None
        self._config = None
        self._runner: "MultiFeedlineRunner | None" = None
        self._backend = None
        self._replay_corpus = None
        self._tmp_registry: tempfile.TemporaryDirectory | None = None
        # Drift state (reset each warm cycle): the session shot clock
        # drift accumulates against, the served artifact version on the
        # single-feedline path, and recalibration pacing.
        self._session_shots = 0
        self._version = 0
        self._runs_since_recal: int | None = None

    @classmethod
    def open(
        cls,
        spec: "ServeSpec | str | Path",
        *,
        profile: Profile | None = None,
        warm: bool = True,
    ) -> "ReadoutService":
        """Build a service from a spec object or JSON spec file path."""
        if isinstance(spec, (str, Path)):
            spec = ServeSpec.from_file(spec)
        service = cls(spec, profile=profile)
        if warm:
            service.warm()
        return service

    @property
    def profile(self) -> Profile:
        """The resolved calibration profile (resolves on first access)."""
        if self._profile is None:
            self._profile = self.spec.resolved_profile(self._profile_override)
        return self._profile

    @property
    def registry_dir(self) -> str | None:
        """The active calibration-registry root (set once warmed)."""
        if self._tmp_registry is not None:
            return self._tmp_registry.name
        return self.spec.calibration.registry_dir

    @property
    def session_shots(self) -> int:
        """Per-feedline shots served this warm cycle (the drift clock)."""
        return self._session_shots

    @property
    def backend(self):
        """The resolved instrument backend (single-feedline; once warm)."""
        return self._backend

    def artifact_versions(self) -> dict[str, int]:
        """Calibration-artifact version currently served per feedline."""
        if self._runner is not None:
            return self._runner.artifact_versions()
        return {"feedline-0": self._version}

    def _qubits_per_feedline(self) -> int:
        """Resolved qubit count per served readout group.

        An unset spec value means the base device's full complement —
        the base :class:`ChipConfig` is the source of the default, not a
        magic qubit-count literal.
        """
        qubits = self.spec.cluster.qubits_per_feedline
        if qubits is not None:
            return qubits
        from repro.physics.device import default_five_qubit_chip

        return default_five_qubit_chip().n_qubits

    def _single_feedline_target(self) -> "tuple[ChipConfig, str]":
        """The chip and registry device the one-feedline chain serves.

        A spec asking for the base chip's full qubit complement serves
        the canonical device under its canonical registry slug; anything
        else derives a sliced feedline chip.
        """
        from repro.physics.device import (
            default_five_qubit_chip,
            make_feedline_chip,
        )
        from repro.pipeline.runner import DEFAULT_DEVICE

        base = default_five_qubit_chip()
        qubits = self._qubits_per_feedline()
        if qubits == base.n_qubits:
            return base, DEFAULT_DEVICE
        return make_feedline_chip(0, n_qubits=qubits), f"feedline0-q{qubits}"

    def warm(self) -> "ReadoutService":
        """Resolve the spec and pre-warm all serving state. Idempotent.

        Fits (or loads) every per-feedline discriminator through the
        calibration registry and pre-spawns the shard pools, so
        subsequent :meth:`run` calls measure pure serving. When the spec
        names no ``registry_dir``, the session owns a private temporary
        registry, discarded on :meth:`close` — even then, repeated runs
        within the session never refit.
        """
        if self._warmed:
            return self
        from repro.pipeline.runner import validate_streamable_design

        spec = self.spec
        validate_streamable_design(spec.calibration.design)
        profile = self.profile
        config = spec.pipeline_config()
        wall_start = time.perf_counter()
        try:
            cold_fits = self._warm_state(spec, profile, config)
        except BaseException:
            # A failed warm-up must not leak the spawned shard pool or
            # the session-private registry; close() releases both.
            self.close()
            raise
        self.stats.warm_seconds += time.perf_counter() - wall_start
        self.stats.cold_fits += cold_fits
        self._cycle_cold_fits = cold_fits
        self._cycle_runs = 0
        # A fresh warm cycle is a fresh calibration: the drift clock and
        # artifact versioning restart with it.
        self._session_shots = 0
        self._version = 0
        self._runs_since_recal = None
        self._warmed = True
        return self

    def _warm_state(self, spec: ServeSpec, profile: Profile, config) -> int:
        """Build the serving state; returns this cycle's cold-fit count.

        Split out of :meth:`warm` so its error path can release whatever
        was already created (``self`` fields are assigned as soon as the
        resources exist, before anything else that can fail).
        """
        from repro.pipeline.cluster import MultiFeedlineRunner
        from repro.pipeline.registry import CalibrationRegistry
        from repro.pipeline.runner import (
            ReadoutPipeline,
            fit_or_load_discriminator,
        )
        from repro.physics.device import multi_feedline_chips

        design = spec.calibration.design
        cold_fits = 0
        if spec.cluster.feedlines == 1:
            if (
                spec.calibration.registry_dir is None
                and spec.recalibration.enabled
            ):
                # Hot recalibration swaps *versioned artifacts*; give a
                # registry-less session a private one so the versions
                # have somewhere to live (discarded on close, like the
                # multi-feedline session registry).
                self._tmp_registry = tempfile.TemporaryDirectory(
                    prefix="repro-serve-"
                )
            chip, device = self._single_feedline_target()
            if self._namespace is not None:
                device = f"{self._namespace}.{device}"
            registry_dir = self.registry_dir
            registry = (
                CalibrationRegistry(registry_dir)
                if registry_dir is not None
                else None
            )
            discriminator, cached = fit_or_load_discriminator(
                profile, registry, chip=chip, device=device, design=design
            )
            cold_fits += 0 if cached else 1
            self._chip = chip
            self._device = device
            self._config = config
            self._pipeline = ReadoutPipeline(discriminator, chip, config)
            # Resolve the traffic endpoint through the backend registry
            # — opening validates it (replay checks the corpus against
            # the serving chip, socket handshakes with its peer) before
            # the session reports itself warm.
            from repro.backends import create_backend

            self._backend = create_backend(
                spec.traffic.backend,
                chip,
                chunk_size=spec.traffic.chunk_size,
                drift=spec.drift.model(),
                corpus_path=spec.traffic.corpus_path,
                record_path=spec.traffic.record_path,
                socket_path=spec.traffic.socket_path,
            ).open()
        else:
            if spec.calibration.registry_dir is None:
                # A session-private registry: process shards need the
                # artifacts on disk, and runs after warm-up must never
                # refit even when the caller keeps no registry.
                self._tmp_registry = tempfile.TemporaryDirectory(
                    prefix="repro-serve-"
                )
            chips = multi_feedline_chips(
                spec.cluster.feedlines, n_qubits=self._qubits_per_feedline()
            )
            if self._namespace is not None:
                from repro.pipeline.cluster import FeedlineSpec

                # Tenant-namespaced registry devices: the feedline names
                # (and with them seeds, placement, reports) stay the
                # canonical feedline-<i>, only the artifact keys move
                # into the tenant's namespace.
                feedlines = [
                    FeedlineSpec(
                        name=f"feedline-{i}",
                        chip=chip,
                        device=f"{self._namespace}.feedline-{i}",
                    )
                    for i, chip in enumerate(chips)
                ]
            else:
                feedlines = chips
            runner = MultiFeedlineRunner(
                feedlines,
                profile,
                executor=spec.cluster.executor,
                workers=spec.cluster.workers,
                config=config,
                chunk_size=spec.traffic.chunk_size,
                registry_dir=self.registry_dir,
                design=design,
                pool=self._pool,
            )
            self._runner = runner  # before prefit: errors must close it
            # Pool first, then calibration *through* the pool: cold fits
            # for distinct feedlines run as concurrently as serving.
            runner.prewarm()
            cold_fits += runner.prefit()
            if spec.traffic.backend == "replay":
                # Load and integrity-check the corpus once at warm-up;
                # run() broadcasts it to every feedline over shared
                # memory. Sibling feedline chips differ by design
                # spread, so the check is geometric, not SHA-strict.
                from repro.backends import load_corpus

                corpus = load_corpus(spec.traffic.corpus_path)
                for chip in chips:
                    corpus.require_geometry(chip)
                self._replay_corpus = corpus
        return cold_fits

    def run(
        self, shots: int | None = None, seed: int | None = None
    ) -> "PipelineReport | ClusterReport":
        """Serve one run of traffic against the warm state.

        Parameters
        ----------
        shots:
            Shots streamed this run (per feedline); defaults to the
            spec's ``traffic.shots``.
        seed:
            Traffic seed override; defaults to the spec's
            ``traffic.seed`` (itself defaulting to profile seed + 1).
            With neither given, repeated runs replay identical traffic —
            deterministic serving of the same workload.
        """
        self.warm()
        spec = self.spec
        n_shots = spec.traffic.shots if shots is None else int(shots)
        if n_shots < 1:
            raise ConfigurationError(f"shots must be >= 1, got {n_shots}")
        traffic_seed = spec.traffic.seed if seed is None else int(seed)
        drift_model = spec.drift.model()
        # Calibration state as the *caller* experiences it, identical on
        # both serving paths: this warm cycle's first run paid any cold
        # fits during warm(); every later run is served warm.
        cycle_cached = self._cycle_runs > 0 or self._cycle_cold_fits == 0
        try:
            wall_start = time.perf_counter()
            if self._pipeline is not None:
                resolved_seed = (
                    self.profile.seed + 1
                    if traffic_seed is None
                    else traffic_seed
                )
                # The backend owns the drift clock and stream lifetime;
                # a replay/socket backend delivers its own shot count
                # (the source resolves it) regardless of the request.
                source = self._backend.trace_source(
                    n_shots, seed=resolved_seed
                )
                report = self._pipeline.run(source)
                report.calibration_cached = cycle_cached
            elif self._replay_corpus is not None:
                report = self._runner.run_replay(self._replay_corpus)
                if not cycle_cached:
                    for feedline_report in report.feedline_reports.values():
                        feedline_report.calibration_cached = False
            else:
                report = self._runner.run(
                    n_shots,
                    seed=traffic_seed,
                    drift_model=drift_model,
                    drift_shot_offset=self._session_shots,
                )
                if not cycle_cached:
                    # The feedline chains loaded artifacts this same
                    # cycle's warm() just fitted; to the caller that is
                    # a cold call (one-shot multi-feedline runs kept
                    # this semantic before the serve redesign).
                    for feedline_report in report.feedline_reports.values():
                        feedline_report.calibration_cached = False
            wall = time.perf_counter() - wall_start
            self._cycle_runs += 1
            # Advance the session drift clock by the shots *delivered*
            # (stream-bound backends may not honor the request).
            self._session_shots += (
                report.n_shots if self._pipeline is not None else n_shots
            )
            if self._runs_since_recal is not None:
                self._runs_since_recal += 1
            recalibrated = self._maybe_recalibrate(report, drift_model)
        except BaseException:
            # An exception escaping mid-run must not leak the shard pool
            # or the session-private registry; release both exactly as a
            # failed warm() does. The session re-warms on the next run.
            self.close()
            raise
        self.stats.record(
            report, wall, calibration_cached=cycle_cached,
            recalibrated=recalibrated,
        )
        return report

    # -- hot recalibration ---------------------------------------------

    def _recalibration_due(self, report) -> bool:
        """Whether this run's drift alarm should trigger a refit now."""
        recal = self.spec.recalibration
        if not recal.enabled or not getattr(report, "drift_alarm", False):
            return False
        if (
            recal.max_recalibrations is not None
            and self.stats.recalibrations >= recal.max_recalibrations
        ):
            return False
        return (
            self._runs_since_recal is None
            or self._runs_since_recal >= recal.cooldown_runs
        )

    def _recal_profile(self) -> Profile:
        """The sizing profile recalibration fits run under.

        The spec's shot budget overrides the corpus size; name and seed
        stay the serving profile's (both are baked into the artifact
        key — a recalibrated artifact is a new *version* of the same
        logical artifact, not a different profile's).
        """
        import dataclasses

        profile = self.profile
        budget = self.spec.recalibration.shot_budget
        if budget is not None:
            profile = dataclasses.replace(profile, shots_per_state=budget)
        return profile

    def _maybe_recalibrate(self, report, drift_model) -> bool:
        """Refit against the drifted device when the alarm demands it.

        Runs *between* serving runs on the session's own state — the
        shard pools stay warm, no run is dropped, and the freshly
        fitted artifacts land as the next version in the registry
        before the served version pointer moves (see
        :meth:`CalibrationRegistry.supersede` semantics).
        """
        if not self._recalibration_due(report):
            return False
        from repro.physics.drift import DriftModel

        model = drift_model if drift_model is not None else DriftModel()
        gate = self._recal_gate
        recal_start = time.perf_counter()
        # The gate (a fleet-shared lock) serializes refits across
        # tenants: one tenant's drift storm queues here instead of
        # saturating the shared shard pool with calibration tasks.
        with gate:
            if self._runner is not None:
                self._runner.recalibrate(
                    model, self._session_shots, profile=self._recal_profile()
                )
            else:
                self._recalibrate_single_feedline(model)
        self.stats.recal_seconds += time.perf_counter() - recal_start
        self.stats.recalibrations += 1
        self._runs_since_recal = 0
        return True

    def _recalibrate_single_feedline(self, model) -> None:
        """Fit the next artifact version and hot-swap the one pipeline."""
        from repro.pipeline.registry import CalibrationRegistry
        from repro.pipeline.runner import (
            ReadoutPipeline,
            fit_or_load_discriminator,
        )

        from repro.pipeline.runner import calibration_key

        registry_dir = self.registry_dir
        registry = (
            CalibrationRegistry(registry_dir)
            if registry_dir is not None
            else None
        )
        recal_profile = self._recal_profile()
        # Exceed both the served version and anything already stored: a
        # persistent registry may hold versions a *previous* session
        # recalibrated — serving one as a warm hit would re-introduce
        # the very staleness this refit replaces.
        stored = (
            None
            if registry is None
            else registry.latest_version(
                calibration_key(
                    recal_profile,
                    chip=self._chip,
                    device=self._device,
                    design=self.spec.calibration.design,
                )
            )
        )
        next_version = (
            max(self._version, -1 if stored is None else stored) + 1
        )
        snapshot = model.chip_at(self._chip, self._session_shots)
        discriminator, _ = fit_or_load_discriminator(
            recal_profile,
            registry,
            chip=self._chip,
            device=self._device,
            design=self.spec.calibration.design,
            version=next_version,
            calibration_chip=snapshot,
        )
        # Atomic swap: the new pipeline serves the new artifact and
        # demodulates with the device snapshot it was calibrated at;
        # the old version was never mutated, so a reader mid-swap sees
        # either version whole.
        self._pipeline = ReadoutPipeline(
            discriminator, snapshot, self._config
        )
        self._version = next_version

    def close(self) -> None:
        """Release shard pools and any session-private registry.

        Idempotent; cumulative :attr:`stats` survive, and the next
        :meth:`run` re-warms.
        """
        if self._runner is not None:
            self._runner.close()
            self._runner = None
        if self._backend is not None:
            # Closing a recording backend finalizes its corpus manifest.
            self._backend.close()
            self._backend = None
        self._replay_corpus = None
        self._pipeline = None
        self._chip = None
        self._device = None
        self._config = None
        if self._tmp_registry is not None:
            self._tmp_registry.cleanup()
            self._tmp_registry = None
        self._warmed = False

    def __enter__(self) -> "ReadoutService":
        self.warm()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve_once(
    spec: ServeSpec,
    *,
    profile: Profile | None = None,
    shots: int | None = None,
    seed: int | None = None,
) -> "PipelineReport | ClusterReport":
    """One-shot serving: warm a session, run once, tear it down.

    This is the bridge the legacy fronts (``repro.api.run_pipeline``,
    ``repro pipeline``) stand on — same datapath as a long-lived
    :class:`ReadoutService`, scoped to a single run.
    """
    with ReadoutService(spec, profile=profile) as service:
        return service.run(shots=shots, seed=seed)
