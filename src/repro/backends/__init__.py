"""Pluggable instrument backends: where serving traffic comes from.

The qibolab-style seam between the serving runtime and trace
acquisition: an :class:`~repro.backends.base.InstrumentBackend` is a
session-scoped endpoint (``open``/``acquire``/``close``) streaming
:class:`~repro.pipeline.source.ShotChunk` batches, and the serving layer
resolves one through :func:`~repro.backends.registry.create_backend`
from the ``TrafficSpec.backend`` selection instead of constructing
simulators inline.

Backends:

- ``simulator`` — the in-process dispersive simulator (with optional
  device drift), the default and the only traffic generator.
- ``dummy`` — deterministic seeded random I/Q traffic for harness tests.
- ``replay`` — bit-deterministic replay of a recorded on-disk corpus
  (:mod:`repro.backends.corpus`), chip-SHA-validated against the
  serving device.
- ``socket`` — length-prefixed chunk frames from a local socket/IPC
  peer (:func:`~repro.backends.socketio.serve_corpus_over_socket` is
  the counterpart producer).

Recording is an orthogonal wrapper: ``record_path`` tees any of the
generating backends' chunks into a versioned corpus directory with a
strict-JSON manifest (format version, chip SHA, seed, source/drift
section, per-chunk checksums).
"""

from repro.backends.base import AcquisitionTraceSource, InstrumentBackend
from repro.backends.corpus import (
    CORPUS_FORMAT,
    CORPUS_FORMAT_VERSION,
    CorpusWriter,
    RecordedCorpus,
    chip_sha,
    load_corpus,
)
from repro.backends.dummy import DummyBackend
from repro.backends.recording import RecordingBackend, ReplayBackend
from repro.backends.registry import BACKEND_NAMES, create_backend
from repro.backends.simulator import SimulatorBackend
from repro.backends.socketio import SocketBackend, serve_corpus_over_socket

__all__ = [
    "InstrumentBackend",
    "AcquisitionTraceSource",
    "SimulatorBackend",
    "DummyBackend",
    "RecordingBackend",
    "ReplayBackend",
    "SocketBackend",
    "serve_corpus_over_socket",
    "CorpusWriter",
    "RecordedCorpus",
    "load_corpus",
    "chip_sha",
    "CORPUS_FORMAT",
    "CORPUS_FORMAT_VERSION",
    "BACKEND_NAMES",
    "create_backend",
]
