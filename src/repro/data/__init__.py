"""Synthetic readout corpora and basis-state bookkeeping."""

from repro.data.basis import (
    digits_to_state,
    n_basis_states,
    state_label,
    state_to_digits,
)
from repro.data.dataset import ReadoutCorpus
from repro.data.synthetic import generate_corpus, generate_calibration_shots

__all__ = [
    "n_basis_states",
    "state_to_digits",
    "digits_to_state",
    "state_label",
    "ReadoutCorpus",
    "generate_corpus",
    "generate_calibration_shots",
]
