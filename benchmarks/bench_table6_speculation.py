"""Table VI bench: readout quality vs leakage-speculation accuracy.

Paper: speculation accuracy rises 0.914 -> 0.947 as readout error falls
10% -> 5%; FNN is accurate but slow, OURS accurate and fast. Asserted
shape: speculation accuracy is monotone in the measured readout error,
and OURS is classed fast while the FNN is classed slow.
"""

from benchmarks.conftest import run_once
from repro.experiments.table6 import run_table6


def test_table6_speculation_vs_readout_error(benchmark, profile):
    result = run_once(benchmark, run_table6, profile)
    print("\n" + result.format_table())
    by_name = {r["design"]: r for r in result.rows}
    assert by_name["ours"]["speed"] == "Fast"
    assert by_name["fnn"]["speed"] == "Slow"
    # Monotone mechanism: lower readout error -> better speculation.
    ordered = sorted(result.rows, key=lambda r: r["error_pct"])
    assert ordered[0]["speculation_accuracy"] >= ordered[-1]["speculation_accuracy"]
    # OURS reaches the paper's accuracy band.
    assert by_name["ours"]["speculation_accuracy"] > 0.9
