"""Benchmark configuration: shared profile and single-round defaults.

Each bench regenerates one of the paper's tables/figures at the ``quick``
profile, printing paper-vs-measured values. Corpora and trained models are
cached in-process (see repro.experiments.common), so a full bench session
trains each design once.
"""

from __future__ import annotations

import pytest

from repro.config import QUICK


@pytest.fixture(scope="session")
def profile():
    return QUICK


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
