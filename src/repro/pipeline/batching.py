"""Micro-batching: re-chunk an incoming shot stream to the dispatch size.

Sources produce chunks sized for *generation* efficiency; the
discrimination stages want batches sized for *vectorization* and latency.
:class:`MicroBatcher` decouples the two: it accumulates incoming
:class:`~repro.pipeline.source.ShotChunk` blocks per feedline and emits
uniform micro-batches, flushing any remainder at end of stream so no shot
is ever dropped.

:class:`AdaptiveBatcher` closes the loop: instead of a fixed dispatch
size, it tracks an EWMA of the observed per-shot compute latency and
resizes the next micro-batch so one batch's compute stays on a target
latency derived from the FPGA decision budget — small batches when the
stages are slow (bounded decision latency), large batches when they are
fast (better vectorization and throughput).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from repro.exceptions import ConfigurationError
from repro.pipeline.source import ShotChunk

if TYPE_CHECKING:
    from repro.pipeline.buffers import BufferRing

__all__ = ["MicroBatcher", "AdaptiveBatcher", "MIN_PER_SHOT_SECONDS"]

#: Floor on an observed per-shot latency sample. ``perf_counter`` deltas
#: on a fast batch can quantize to exactly 0.0; feeding those raw into
#: the EWMA drags the estimate toward zero, and ``target / ~0`` then
#: explodes the next batch to ``max_size`` regardless of the real
#: latency. One nanosecond per shot is far below anything the software
#: stages can do, so clamping there never masks a genuine measurement.
MIN_PER_SHOT_SECONDS = 1e-9


class MicroBatcher:
    """Accumulate shots and re-emit them in fixed-size micro-batches.

    Parameters
    ----------
    batch_size:
        Shots per emitted batch. The final batch may be smaller (the
        end-of-stream flush).
    """

    def __init__(self, batch_size: int) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = int(batch_size)

    @property
    def max_emit_size(self) -> int:
        """Upper bound on the shot count of any batch :meth:`rebatch`
        emits — what a reusable buffer ring must be sized for."""
        return self.batch_size

    def rebatch(
        self,
        chunks: Iterable[ShotChunk],
        ring: "BufferRing | None" = None,
    ) -> Iterator[ShotChunk]:
        """Yield uniform micro-batches from an arbitrary chunk stream.

        Batch ids are re-numbered from zero. Ground-truth labels are
        carried per batch: a batch has labels exactly when every chunk
        contributing shots to it has them, so an unlabeled chunk blanks
        only the batches its shots land in, not the rest of the stream.

        ``self.batch_size`` is re-read before every emission, so a
        subclass mutating it between batches (:class:`AdaptiveBatcher`)
        resizes the stream on the fly.

        With a :class:`~repro.pipeline.buffers.BufferRing`, each batch's
        shots are assembled directly into a reused ring slot instead of
        a freshly allocated ``np.concatenate`` — the consumer must
        finish with a batch before the ring wraps back around to its
        slot (one-in-flight for the default two-slot ring).
        """
        # Buffered (feedline, levels-or-None) segments, in arrival
        # order. Deque: a chunk stream much finer than the batch size
        # drains many segments per emission, and list.pop(0) made that
        # quadratic in the segment count.
        segments: deque[tuple[np.ndarray, np.ndarray | None]] = deque()
        buffered = 0
        batch_id = 0

        def emit(take: int) -> ShotChunk:
            nonlocal buffered, batch_id
            dest = None
            if ring is not None:
                dest = ring.acquire(take, segments[0][0].shape[1])
            feeds: list[np.ndarray] = []
            levels: list[np.ndarray] = []
            labeled = True
            need = take
            pos = 0
            while need:
                feed, lev = segments[0]
                n = feed.shape[0]
                take_n = min(n, need)
                if dest is None:
                    feeds.append(feed if take_n == n else feed[:take_n])
                else:
                    dest[pos : pos + take_n] = feed[:take_n]
                pos += take_n
                if lev is None:
                    labeled = False
                else:
                    levels.append(lev if take_n == n else lev[:take_n])
                if take_n == n:
                    segments.popleft()
                else:
                    segments[0] = (
                        feed[take_n:],
                        None if lev is None else lev[take_n:],
                    )
                need -= take_n
            if dest is not None:
                # Assembly is done; hand ownership downstream (a
                # sanitizer ring seals the view read-only here).
                feedline = ring.seal(dest)
            elif len(feeds) == 1:
                feedline = feeds[0]
            else:
                feedline = np.concatenate(feeds)
            batch = ShotChunk(
                feedline=feedline,
                prepared_levels=(
                    (levels[0] if len(levels) == 1 else np.concatenate(levels))
                    if labeled
                    else None
                ),
                chunk_id=batch_id,
            )
            buffered -= take
            batch_id += 1
            return batch

        for chunk in chunks:
            segments.append((chunk.feedline, chunk.prepared_levels))
            buffered += chunk.n_shots
            while buffered >= self.batch_size:
                yield emit(self.batch_size)
        if buffered:
            yield emit(buffered)


class AdaptiveBatcher(MicroBatcher):
    """Resize micro-batches from the observed per-shot latency EWMA.

    The consumer reports each batch's compute time through
    :meth:`observe`; the batcher keeps an exponentially weighted moving
    average of the per-shot latency and sets the next batch size to the
    largest batch whose predicted compute time fits ``target_seconds``,
    clamped to ``[min_size, max_size]``. Until the first observation it
    behaves exactly like a fixed-size :class:`MicroBatcher` at the
    initial size.

    Parameters
    ----------
    batch_size:
        Initial dispatch size (clamped into ``[min_size, max_size]``).
    target_seconds:
        Compute-latency target for one micro-batch; typically the FPGA
        per-shot decision budget times a software slack factor (see
        :class:`~repro.pipeline.runner.PipelineConfig`).
    min_size, max_size:
        Hard bounds on the adapted size; the batcher never dispatches
        below ``min_size`` (>= 1) or above ``max_size``.
    alpha:
        EWMA weight of the newest sample, in (0, 1].
    """

    def __init__(
        self,
        batch_size: int,
        target_seconds: float,
        min_size: int = 1,
        max_size: int = 1024,
        alpha: float = 0.3,
    ) -> None:
        super().__init__(batch_size)
        if target_seconds <= 0:
            raise ConfigurationError(
                f"target_seconds must be positive, got {target_seconds}"
            )
        if min_size < 1:
            raise ConfigurationError(f"min_size must be >= 1, got {min_size}")
        if max_size < min_size:
            raise ConfigurationError(
                f"max_size must be >= min_size, got {max_size} < {min_size}"
            )
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        self.target_seconds = float(target_seconds)
        self.min_size = int(min_size)
        self.max_size = int(max_size)
        self.alpha = float(alpha)
        self.batch_size = min(max(self.batch_size, self.min_size), self.max_size)
        self._ewma_per_shot_s: float | None = None
        self._n_observations = 0
        self._min_chosen: int | None = None
        self._max_chosen: int | None = None

    @property
    def max_emit_size(self) -> int:
        """The adaptive controller never dispatches above ``max_size``."""
        return self.max_size

    @property
    def ewma_per_shot_s(self) -> float | None:
        """Current per-shot latency estimate (None before any sample)."""
        return self._ewma_per_shot_s

    @property
    def n_observations(self) -> int:
        """Latency samples fed back so far."""
        return self._n_observations

    @property
    def chosen_range(self) -> tuple[int, int] | None:
        """(min, max) batch size chosen over all observations, if any.

        These are controller decisions; the sizes actually dispatched
        additionally include the initial ``batch_size`` and the
        end-of-stream flush, and the last chosen size may never run.
        Bounded state on purpose — a long stream must not accumulate a
        per-batch history.
        """
        if self._min_chosen is None:
            return None
        return (self._min_chosen, self._max_chosen)

    def observe(self, seconds: float, n_shots: int) -> int:
        """Feed back one batch's compute time; returns the next size."""
        if seconds < 0:
            raise ConfigurationError("latency sample must be >= 0")
        if n_shots < 1:
            raise ConfigurationError(f"n_shots must be >= 1, got {n_shots}")
        per_shot = max(float(seconds) / int(n_shots), MIN_PER_SHOT_SECONDS)
        if self._ewma_per_shot_s is None:
            self._ewma_per_shot_s = per_shot
        else:
            self._ewma_per_shot_s = (
                self.alpha * per_shot + (1.0 - self.alpha) * self._ewma_per_shot_s
            )
        desired = int(self.target_seconds / self._ewma_per_shot_s)
        self.batch_size = min(max(desired, self.min_size), self.max_size)
        self._n_observations += 1
        if self._min_chosen is None:
            self._min_chosen = self._max_chosen = self.batch_size
        else:
            self._min_chosen = min(self._min_chosen, self.batch_size)
            self._max_chosen = max(self._max_chosen, self.batch_size)
        return self.batch_size
