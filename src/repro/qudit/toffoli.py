"""Qutrit-assisted Toffoli decomposition.

The paper motivates multi-level readout partly through qudit algorithms,
citing efficient Toffoli decompositions that borrow the |2> level
(Gokhale et al. / Litteken et al., ISCA'23). The classic construction
implements a doubly-controlled X on three transmons with only **three
two-qutrit gates** (vs six CNOTs for the textbook qubit-only circuit):

1. ``X12`` on the *second* control, conditioned on the first control
   being |1> — temporarily hides the (1,1) control pattern in |2>;
2. ``X01`` on the target, conditioned on the second control being |2> —
   fires exactly for the original (1,1) pattern;
3. the inverse of step 1 (``X12`` is self-inverse), restoring the second
   control.

Because the intermediate state leaves the computational subspace, any
mid-circuit measurement needs three-level readout — the paper's point.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.qudit.circuit import QuditCircuit

__all__ = [
    "controlled_shift",
    "qutrit_toffoli_circuit",
    "toffoli_truth_table",
    "two_qutrit_gate_count",
]


def _x02(d: int = 3) -> np.ndarray:
    """Pi pulse on the 0-2 transition."""
    gate = np.eye(d, dtype=complex)
    gate[0, 0] = gate[2, 2] = 0.0
    gate[0, 2] = gate[2, 0] = 1.0
    return gate


def controlled_shift(
    control_level: int, target_gate: np.ndarray, d: int = 3
) -> np.ndarray:
    """Two-qutrit unitary applying ``target_gate`` iff the control is at
    ``control_level`` (identity otherwise)."""
    if not 0 <= control_level < d:
        raise ConfigurationError(f"control_level must be in [0, {d})")
    if target_gate.shape != (d, d):
        raise ConfigurationError(f"target gate must be ({d}, {d})")
    dim = d * d
    gate = np.eye(dim, dtype=complex)
    start = control_level * d
    gate[start : start + d, start : start + d] = target_gate
    return gate


def qutrit_toffoli_circuit() -> QuditCircuit:
    """Three-qutrit circuit implementing Toffoli with 3 two-qutrit gates.

    Qudit order: (control A, control B, target).
    """
    from repro.qudit.gates import x01, x12

    circuit = QuditCircuit(3)
    # Step 1: if A == 1, swap B's |1> and |2>: B reaches |2> exactly when
    # the original control pattern was (1, 1); B in |0> is untouched.
    circuit.unitary(controlled_shift(1, x12()), (0, 1), "c1-x12")
    # Step 2: flip the target iff B is in |2> — true exactly when the
    # original pattern was (1, 1).
    circuit.unitary(controlled_shift(2, x01()), (1, 2), "c2-x01")
    # Step 3: undo step 1 (X12 is self-inverse).
    circuit.unitary(controlled_shift(1, x12()), (0, 1), "c1-x12")
    return circuit


def two_qutrit_gate_count(circuit: QuditCircuit) -> int:
    """Number of two-qudit operations in a circuit."""
    return sum(1 for op in circuit.operations if len(op.targets) == 2)


def toffoli_truth_table() -> dict[tuple[int, int, int], tuple[int, int, int]]:
    """Evaluate the qutrit Toffoli on all computational basis inputs.

    Returns a mapping from (A, B, target) inputs to the most likely
    measured output levels.
    """
    circuit = qutrit_toffoli_circuit()
    table = {}
    for a in (0, 1):
        for b in (0, 1):
            for t in (0, 1):
                rho = circuit.run((a, b, t))
                probs = rho.probabilities()
                winner = int(np.argmax(probs))
                digits = []
                rem = winner
                for _ in range(3):
                    digits.append(rem % 3)
                    rem //= 3
                table[(a, b, t)] = tuple(reversed(digits))
    return table
