"""Vectorized discrimination stages with channel-sharded execution.

The multiplexed feedline carries one frequency channel per qubit, and the
front half of discrimination — digital down-conversion, boxcar decimation,
matched-filter scoring — is independent per channel. The
:class:`BatchDiscriminationEngine` exploits that: each micro-batch fans
out one task per qubit channel across a ``concurrent.futures`` executor
(numpy's BLAS kernels release the GIL, so threads shard real work), the
per-channel score blocks are joined qubit-major into the paper's feature
layout, and the tiny per-qubit networks classify the whole batch in one
vectorized pass.

The engine consumes a *fitted* :class:`~repro.discriminators.mlr
.MLRDiscriminator` — it reuses the exact kernels, scaler, and heads, so
streaming predictions match offline ``predict`` bit for bit.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor
from dataclasses import dataclass

import numpy as np

from repro.data.basis import digits_to_state
from repro.discriminators.mlr import MLRDiscriminator
from repro.exceptions import DataError, NotFittedError
from repro.physics.device import ChipConfig

__all__ = ["BatchResult", "BatchDiscriminationEngine"]


@dataclass(frozen=True)
class BatchResult:
    """One micro-batch's discrimination output with stage timings.

    Attributes
    ----------
    levels:
        Per-qubit predicted levels (n_shots, n_qubits).
    joint:
        Joint state labels (n_shots,), base ``n_levels``.
    stage_seconds:
        Wall time per stage for this batch. Sharded stages report their
        critical path (slowest channel), matching what a parallel deploy
        would observe.
    mean_margin:
        Mean top-2 probability margin over every (shot, qubit) head
        decision in the batch — the confidence signal online drift
        detection tracks (a drifting device erodes it long before
        assignments flip en masse).
    """

    levels: np.ndarray
    joint: np.ndarray
    stage_seconds: dict[str, float]
    mean_margin: float = float("nan")

    @property
    def n_shots(self) -> int:
        return self.levels.shape[0]


def _score_channel(
    extractor,
    qubit: int,
    feedline: np.ndarray,
    if_frequency_ghz: float,
    times_ns: np.ndarray,
) -> tuple[np.ndarray, float, float]:
    """Demod + decimate + matched-filter one qubit channel of a batch.

    Delegates to the extractor's own channel helpers so streaming and
    offline scoring cannot drift apart; this wrapper only adds the
    per-substage timing.
    """
    t0 = time.perf_counter()
    traces = extractor.channel_baseband(feedline, if_frequency_ghz, times_ns)
    t1 = time.perf_counter()
    scores = extractor.score_baseband(qubit, traces)
    t2 = time.perf_counter()
    return scores, t1 - t0, t2 - t1


class BatchDiscriminationEngine:
    """Runs fitted-discriminator stages over raw feedline batches.

    Parameters
    ----------
    discriminator:
        A fitted :class:`MLRDiscriminator` whose kernels/scaler/heads are
        served unchanged.
    chip:
        The device the stream comes from (provides IFs and sample times).
    executor:
        Optional ``concurrent.futures`` executor for channel sharding;
        ``None`` runs channels inline (single worker).
    """

    def __init__(
        self,
        discriminator: MLRDiscriminator,
        chip: ChipConfig,
        executor: Executor | None = None,
    ) -> None:
        if not getattr(discriminator, "_fitted", False):
            raise NotFittedError(
                "BatchDiscriminationEngine requires a fitted discriminator"
            )
        extractor = discriminator.extractor
        if extractor.banks_ is None:
            raise NotFittedError("discriminator's feature extractor is not fitted")
        if len(extractor.banks_) != chip.n_qubits:
            raise DataError(
                f"discriminator calibrated for {len(extractor.banks_)} "
                f"qubits, chip has {chip.n_qubits}"
            )
        self.discriminator = discriminator
        self.chip = chip
        self.executor = executor

    def process(self, feedline: np.ndarray) -> BatchResult:
        """Discriminate one micro-batch of raw feedline traces."""
        feedline = np.atleast_2d(np.asarray(feedline))
        times = self.chip.sample_times(feedline.shape[1])
        extractor = self.discriminator.extractor
        disc = self.discriminator

        args = [
            (
                extractor,
                q,
                feedline,
                self.chip.qubits[q].if_frequency_ghz,
                times,
            )
            for q in range(self.chip.n_qubits)
        ]
        if self.executor is None:
            sharded = [_score_channel(*a) for a in args]
        else:
            sharded = list(
                self.executor.map(lambda a: _score_channel(*a), args)
            )

        blocks = [scores for scores, _, _ in sharded]
        # Critical path: the slowest channel bounds the sharded stages.
        demod_s = max(t for _, t, _ in sharded)
        mf_s = max(t for _, _, t in sharded)

        t0 = time.perf_counter()
        x = disc.scaler.transform(np.concatenate(blocks, axis=1))
        # The shared helper keeps serving margins computed exactly like
        # the calibration-time reference margin drift scoring compares
        # against (and its argmax matches offline ``predict``).
        levels, mean_margin = disc.head_levels_and_margin(x)
        joint = digits_to_state(levels, self.chip.n_levels)
        discriminate_s = time.perf_counter() - t0

        return BatchResult(
            levels=levels,
            joint=joint,
            stage_seconds={
                "demod": demod_s,
                "matched_filter": mf_s,
                "discriminate": discriminate_s,
            },
            mean_margin=mean_margin,
        )
