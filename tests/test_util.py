"""Tests for shared helpers."""

import numpy as np
import pytest

from repro._util import as_1d_int, as_2d_float, check_random_state, child_rng
from repro.exceptions import ShapeError


def test_check_random_state_accepts_int_and_generator():
    gen = check_random_state(3)
    assert isinstance(gen, np.random.Generator)
    assert check_random_state(gen) is gen


def test_check_random_state_deterministic():
    a = check_random_state(5).random(4)
    b = check_random_state(5).random(4)
    np.testing.assert_allclose(a, b)


def test_child_rng_streams_differ_by_tag():
    base = check_random_state(1)
    a = child_rng(base, 0).random(4)
    base = check_random_state(1)
    b = child_rng(base, 1).random(4)
    assert not np.allclose(a, b)


def test_as_2d_float_promotes_1d():
    out = as_2d_float([1.0, 2.0])
    assert out.shape == (2, 1)


def test_as_2d_float_rejects_3d():
    with pytest.raises(ShapeError):
        as_2d_float(np.zeros((2, 2, 2)))


def test_as_1d_int_accepts_integral_floats():
    out = as_1d_int(np.array([1.0, 2.0]))
    assert out.dtype == np.int64


def test_as_1d_int_rejects_fractional():
    with pytest.raises(ShapeError):
        as_1d_int(np.array([1.5]))


def test_as_1d_int_rejects_empty():
    with pytest.raises(ShapeError):
        as_1d_int(np.array([], dtype=np.int64))
