"""Vectorized discrimination stages with a fused zero-copy hot path.

The multiplexed feedline carries one frequency channel per qubit, and the
front half of discrimination — digital down-conversion, boxcar decimation,
matched-filter scoring — is linear in the raw trace. The
:class:`BatchDiscriminationEngine` exploits that: in its default
``fused`` mode the demod tone and boxcar weights are folded into every
qubit's matched-filter kernels once at load time (see
:meth:`~repro.discriminators.features.MatchedFilterFeatureExtractor
.fused_kernel_bank`), so one matmul over the stacked
``(n_qubits * n_filters, trace_len)`` weight bank scores *all* channels
of a micro-batch directly from the raw feedline — no per-qubit
``feedline * tone`` copies, no decimated intermediates, no
``np.concatenate`` of per-channel score blocks. Scores land in a
caller-supplied (or engine-owned, reused) feature buffer; the tiny
per-qubit networks then classify the whole batch in one vectorized pass.

The ``legacy`` mode keeps the original per-channel chain — each
micro-batch fans out one task per qubit channel across a
``concurrent.futures`` executor — as the bit-exact reference the fused
path is regression-tested against.

Either way the engine consumes a *fitted* :class:`~repro.discriminators
.mlr.MLRDiscriminator` — it reuses the exact kernels, scaler, and heads,
so streaming predictions match offline ``predict``.
"""

from __future__ import annotations

import time
from concurrent.futures import Executor
from dataclasses import dataclass

import numpy as np

from repro.data.basis import digits_to_state
from repro.discriminators.mlr import MLRDiscriminator
from repro.dsp.matched_filter import FusedKernelBank
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.physics.device import ChipConfig

__all__ = ["ENGINE_MODES", "BatchResult", "BatchDiscriminationEngine"]

#: Valid engine modes: the fused zero-copy path (default) and the
#: per-channel reference chain.
ENGINE_MODES = ("fused", "legacy")


@dataclass(frozen=True)
class BatchResult:
    """One micro-batch's discrimination output with stage timings.

    Attributes
    ----------
    levels:
        Per-qubit predicted levels (n_shots, n_qubits).
    joint:
        Joint state labels (n_shots,), base ``n_levels``.
    stage_seconds:
        Wall time per stage for this batch. Sharded stages report their
        critical path (slowest channel), matching what a parallel deploy
        would observe. The fused path reports its single matmul under
        ``matched_filter`` and 0.0 for ``demod`` — the tone is folded
        into the kernels at load time, so demodulation genuinely costs
        nothing per batch.
    mean_margin:
        Mean top-2 probability margin over every (shot, qubit) head
        decision in the batch — the confidence signal online drift
        detection tracks (a drifting device erodes it long before
        assignments flip en masse).
    """

    levels: np.ndarray
    joint: np.ndarray
    stage_seconds: dict[str, float]
    mean_margin: float = float("nan")

    @property
    def n_shots(self) -> int:
        return self.levels.shape[0]


def _score_channel(
    extractor,
    qubit: int,
    feedline: np.ndarray,
    if_frequency_ghz: float,
    times_ns: np.ndarray,
) -> tuple[np.ndarray, float, float]:
    """Demod + decimate + matched-filter one qubit channel of a batch.

    Delegates to the extractor's own channel helpers so streaming and
    offline scoring cannot drift apart; this wrapper only adds the
    per-substage timing.
    """
    t0 = time.perf_counter()
    traces = extractor.channel_baseband(feedline, if_frequency_ghz, times_ns)
    t1 = time.perf_counter()
    scores = extractor.score_baseband(qubit, traces)
    t2 = time.perf_counter()
    return scores, t1 - t0, t2 - t1


def _score_channel_args(args) -> tuple[np.ndarray, float, float]:
    """Tuple-unpacking shim for ``executor.map`` channel dispatch.

    Module-level on purpose: a lambda closed over the call site is not
    picklable, which crashed every process-pool executor handed to the
    engine. This function round-trips through pickle like any other
    top-level callable.
    """
    return _score_channel(*args)


class BatchDiscriminationEngine:
    """Runs fitted-discriminator stages over raw feedline batches.

    Parameters
    ----------
    discriminator:
        A fitted :class:`MLRDiscriminator` whose kernels/scaler/heads are
        served unchanged.
    chip:
        The device the stream comes from (provides IFs and sample times).
    executor:
        Optional ``concurrent.futures`` executor for channel sharding in
        ``legacy`` mode; ``None`` runs channels inline. The fused mode
        is one BLAS call and never uses it.
    mode:
        ``"fused"`` (default) scores every channel in a single matmul
        over the precomputed fused kernel bank; ``"legacy"`` runs the
        original per-channel demod → decimate → matched-filter chain.

    Per-window state — the fused weight bank, sample timestamps, and
    matmul scratch — is cached on the engine keyed by raw trace length,
    so a warm serving loop recomputes none of it per batch.
    """

    def __init__(
        self,
        discriminator: MLRDiscriminator,
        chip: ChipConfig,
        executor: Executor | None = None,
        mode: str = "fused",
    ) -> None:
        if mode not in ENGINE_MODES:
            raise ConfigurationError(
                f"mode must be one of {ENGINE_MODES}, got {mode!r}"
            )
        if not getattr(discriminator, "_fitted", False):
            raise NotFittedError(
                "BatchDiscriminationEngine requires a fitted discriminator"
            )
        extractor = discriminator.extractor
        if extractor.banks_ is None:
            raise NotFittedError("discriminator's feature extractor is not fitted")
        if len(extractor.banks_) != chip.n_qubits:
            raise DataError(
                f"discriminator calibrated for {len(extractor.banks_)} "
                f"qubits, chip has {chip.n_qubits}"
            )
        self.discriminator = discriminator
        self.chip = chip
        self.executor = executor
        self.mode = mode
        self.n_features = chip.n_qubits * extractor.filters_per_qubit
        # Per-trace-length caches (typically one entry; truncated-window
        # serving adds one per distinct window).
        self._fused_banks: dict[int, FusedKernelBank] = {}
        self._sample_times: dict[int, np.ndarray] = {}
        # Reused per-batch workspaces, grown once to the largest batch.
        self._complex_scratch: np.ndarray | None = None
        self._feature_scratch: np.ndarray | None = None

    def _times(self, trace_len: int) -> np.ndarray:
        """Sample timestamps for a window, computed once per length."""
        times = self._sample_times.get(trace_len)
        if times is None:
            times = self.chip.sample_times(trace_len)
            self._sample_times[trace_len] = times
        return times

    def _fused_bank(self, trace_len: int) -> FusedKernelBank:
        """The fused weight bank for a raw window, built once per length."""
        bank = self._fused_banks.get(trace_len)
        if bank is None:
            bank = self.discriminator.extractor.fused_kernel_bank(
                self.chip, trace_len
            )
            self._fused_banks[trace_len] = bank
        return bank

    def _scratch(self, n_shots: int) -> tuple[np.ndarray, np.ndarray]:
        """(complex, float) per-batch workspaces, reused across batches."""
        if (
            self._complex_scratch is None
            or self._complex_scratch.shape[0] < n_shots
        ):
            self._complex_scratch = np.empty(
                (n_shots, self.n_features), dtype=np.complex128
            )
            self._feature_scratch = np.empty(
                (n_shots, self.n_features), dtype=np.float64
            )
        return (
            self._complex_scratch[:n_shots],
            self._feature_scratch[:n_shots],
        )

    def process(
        self, feedline: np.ndarray, out_features: np.ndarray | None = None
    ) -> BatchResult:
        """Discriminate one micro-batch of raw feedline traces.

        ``out_features`` — optional preallocated ``(n_shots,
        n_features)`` float buffer (a :class:`~repro.pipeline.buffers
        .BufferRing` slot) the fused path writes raw scores into and
        standardizes in place; the engine's own reused scratch serves
        when omitted. Ignored in ``legacy`` mode.
        """
        feedline = np.atleast_2d(np.asarray(feedline))
        disc = self.discriminator

        if self.mode == "fused":
            n = feedline.shape[0]
            bank = self._fused_bank(feedline.shape[1])
            complex_scratch, feature_scratch = self._scratch(n)
            features = (
                out_features if out_features is not None else feature_scratch
            )
            t0 = time.perf_counter()
            x = bank.scores(feedline, out=features, scratch=complex_scratch)
            t1 = time.perf_counter()
            demod_s, mf_s = 0.0, t1 - t0
        else:
            times = self._times(feedline.shape[1])
            extractor = disc.extractor
            args = [
                (
                    extractor,
                    q,
                    feedline,
                    self.chip.qubits[q].if_frequency_ghz,
                    times,
                )
                for q in range(self.chip.n_qubits)
            ]
            if self.executor is None:
                sharded = [_score_channel(*a) for a in args]
            else:
                sharded = list(self.executor.map(_score_channel_args, args))
            # Critical path: the slowest channel bounds the sharded stages.
            demod_s = max(t for _, t, _ in sharded)
            mf_s = max(t for _, _, t in sharded)
            t1 = time.perf_counter()
            x = np.concatenate(  # repro: allow(no-hidden-copy) legacy reference chain, not the fused hot path
                [scores for scores, _, _ in sharded], axis=1
            )

        t2 = time.perf_counter()
        if self.mode == "fused":
            x = disc.scaler.transform_inplace(x)
        else:
            x = disc.scaler.transform(x)
        # The shared helper keeps serving margins computed exactly like
        # the calibration-time reference margin drift scoring compares
        # against (and its argmax matches offline ``predict``).
        levels, mean_margin = disc.head_levels_and_margin(x)
        joint = digits_to_state(levels, self.chip.n_levels)
        discriminate_s = time.perf_counter() - t2

        return BatchResult(
            levels=levels,
            joint=joint,
            stage_seconds={
                "demod": demod_s,
                "matched_filter": mf_s,
                "discriminate": discriminate_s,
            },
            mean_margin=mean_margin,
        )
