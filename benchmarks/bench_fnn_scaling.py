"""FNN data-scaling bench (the Table II deviation, made quantitative).

Asserted shape: the FNN's F5Q improves monotonically with corpus size
while the paper's design is already converged at small corpora — the
sample-efficiency consequence of the 100x parameter gap.
"""

from benchmarks.conftest import run_once
from repro.experiments.fnn_scaling import run_fnn_scaling


def test_fnn_data_scaling(benchmark, profile):
    result = run_once(benchmark, run_fnn_scaling, profile)
    print("\n" + result.format_table())
    fnn = result.fnn_f5q
    ours = result.ours_f5q
    # FNN improves with data (allow small statistical wiggle).
    assert fnn[-1] > fnn[0] - 0.01
    # OURS is converged and dominant across the whole ladder.
    for f, o in zip(fnn, ours):
        assert o > f
    assert max(ours) - min(ours) < 0.08
