"""CLI error paths, seed propagation, and the pipeline subcommand."""

from __future__ import annotations

import json

import pytest

import repro.cli as cli
from repro.exceptions import ConfigurationError


class TestExperimentErrorPaths:
    def test_unknown_experiment_exits_2(self, capsys):
        assert cli.main(["table99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "table99" in err

    def test_unknown_experiment_lists_known_ids(self, capsys):
        cli.main(["nope"])
        assert "table1" in capsys.readouterr().err

    def test_unknown_profile_raises(self):
        with pytest.raises(ConfigurationError, match="unknown profile"):
            cli.main(["sec7b", "--profile", "mega"])

    def test_list_includes_pipeline(self, capsys):
        assert cli.main(["list"]) == 0
        assert "pipeline" in capsys.readouterr().out


class TestSeedPropagation:
    def test_seed_override_reaches_experiment(self, capsys, monkeypatch):
        seen = {}

        def fake_experiment(profile):
            seen["profile"] = profile

            class _Result:
                def format_table(self):
                    return "fake"

            return _Result()

        monkeypatch.setitem(cli.EXPERIMENTS, "sec7b", fake_experiment)
        assert cli.main(["sec7b", "--seed", "424242"]) == 0
        assert seen["profile"].seed == 424242
        assert seen["profile"].name == "quick"

    def test_default_profile_seed_preserved(self, capsys, monkeypatch):
        from repro.config import QUICK

        seen = {}

        def fake_experiment(profile):
            seen["profile"] = profile

            class _Result:
                def format_table(self):
                    return "fake"

            return _Result()

        monkeypatch.setitem(cli.EXPERIMENTS, "sec7b", fake_experiment)
        assert cli.main(["sec7b"]) == 0
        assert seen["profile"].seed == QUICK.seed


@pytest.fixture(scope="module")
def shared_registry(tmp_path_factory):
    """One on-disk calibration registry reused across the CLI tests.

    The first pipeline test pays the single cold fit; later tests run warm.
    """
    return str(tmp_path_factory.mktemp("registry"))


class TestPipelineSubcommand:
    def test_pipeline_streams_and_writes_json(
        self, capsys, tmp_path, shared_registry
    ):
        json_path = tmp_path / "report.json"
        code = cli.main(
            [
                "pipeline",
                "--shots",
                "150",
                "--workers",
                "2",
                "--batch-size",
                "50",
                "--profile",
                "quick",
                "--registry",
                shared_registry,
                "--json",
                str(json_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "streaming readout pipeline" in out
        assert "shots/s" in out
        payload = json.loads(json_path.read_text())
        assert payload["n_shots"] == 150
        for stage in ("demod", "matched_filter", "discriminate", "sink"):
            assert stage in payload["stages"]

    def test_pipeline_warm_run_uses_registry(self, capsys, shared_registry):
        args = ["pipeline", "--shots", "60", "--registry", shared_registry]
        assert cli.main(args) == 0
        capsys.readouterr()
        assert cli.main(args) == 0
        assert "warm (loaded)" in capsys.readouterr().out

    def test_pipeline_rejects_bad_shots(self, tmp_path):
        with pytest.raises(ConfigurationError):
            cli.main(["pipeline", "--shots", "0", "--no-cache"])

    def test_pipeline_unknown_profile_raises(self):
        with pytest.raises(ConfigurationError, match="unknown profile"):
            cli.main(["pipeline", "--profile", "mega"])

    def test_pipeline_help_shows_pipeline_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["pipeline", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--shots" in out
        assert "--registry" in out

    def test_pipeline_dispatches_with_options_first(self, capsys, shared_registry):
        code = cli.main(
            ["--profile", "quick", "pipeline", "--shots", "60",
             "--registry", shared_registry]
        )
        assert code == 0
        assert "streaming readout pipeline" in capsys.readouterr().out
