"""Fig 5(a) bench: FPGA resources, HERQULES vs the paper's design.

Paper: >4x fewer LUTs and >5x fewer flip-flops than HERQULES.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig5a import run_fig5a
from repro.fpga import XCZU7EV


def test_fig5a_resource_utilization(benchmark, profile):
    result = run_once(benchmark, run_fig5a, profile)
    print("\n" + result.format_table())
    assert result.ratio("lut") == pytest.approx(4, rel=0.05)
    assert result.ratio("ff") == pytest.approx(5, rel=0.05)
    assert result.ratio("bram") > 1.0
    assert result.ratio("dsp") > 1.0
    # OURS fits comfortably on the target part.
    assert result.resources["ours"]["lut"] < 0.1 * XCZU7EV.luts
