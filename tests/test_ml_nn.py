"""Tests for the from-scratch neural-network stack."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.ml.nn import Adam, MLPClassifier, SGD, Sequential, train_classifier
from repro.ml.nn.activations import get_activation, softmax
from repro.ml.nn.layers import Dense
from repro.ml.nn.losses import mean_squared_error, one_hot, softmax_cross_entropy


class TestActivations:
    def test_relu_clamps_negatives(self):
        act = get_activation("relu")
        z = np.array([-2.0, 0.0, 3.0])
        np.testing.assert_allclose(act.forward(z), [0.0, 0.0, 3.0])

    def test_unknown_activation_raises(self):
        with pytest.raises(ConfigurationError):
            get_activation("swishish")

    @pytest.mark.parametrize("name", ["relu", "leaky_relu", "tanh", "sigmoid", "identity"])
    def test_derivative_matches_finite_difference(self, name):
        act = get_activation(name)
        z = np.linspace(-2.0, 2.0, 41) + 0.013  # avoid the ReLU kink
        a = act.forward(z)
        eps = 1e-6
        numeric = (act.forward(z + eps) - act.forward(z - eps)) / (2 * eps)
        np.testing.assert_allclose(act.derivative(z, a), numeric, atol=1e-5)

    def test_softmax_rows_sum_to_one(self):
        probs = softmax(np.array([[1.0, 2.0, 3.0], [100.0, 100.0, 100.0]]))
        np.testing.assert_allclose(probs.sum(axis=1), [1.0, 1.0])

    def test_softmax_is_shift_invariant(self):
        logits = np.array([[0.5, -1.0, 2.0]])
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100.0))


class TestLossesAndLayers:
    def test_one_hot_round_trip(self):
        labels = np.array([0, 2, 1])
        encoded = one_hot(labels, 3)
        np.testing.assert_array_equal(np.argmax(encoded, axis=1), labels)

    def test_one_hot_rejects_out_of_range(self):
        with pytest.raises(ShapeError):
            one_hot(np.array([3]), 3)

    def test_cross_entropy_of_perfect_prediction_is_small(self):
        logits = np.array([[20.0, 0.0, 0.0]])
        loss, _ = softmax_cross_entropy(logits, np.array([0]))
        assert loss < 1e-6

    def test_cross_entropy_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 3))
        labels = np.array([0, 1, 2, 1])
        _, grad = softmax_cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(4):
            for j in range(3):
                bumped = logits.copy()
                bumped[i, j] += eps
                up, _ = softmax_cross_entropy(bumped, labels)
                bumped[i, j] -= 2 * eps
                down, _ = softmax_cross_entropy(bumped, labels)
                numeric = (up - down) / (2 * eps)
                assert grad[i, j] == pytest.approx(numeric, abs=1e-6)

    def test_mse_zero_for_equal_inputs(self):
        x = np.ones((2, 2))
        loss, grad = mean_squared_error(x, x)
        assert loss == 0.0
        np.testing.assert_allclose(grad, 0.0)

    def test_dense_backward_gradients_match_finite_difference(self):
        rng = np.random.default_rng(1)
        layer = Dense(4, 3, activation="tanh", rng=rng)
        x = rng.normal(size=(5, 4))
        upstream = rng.normal(size=(5, 3))

        def scalar_loss():
            return float(np.sum(layer.forward(x, training=True) * upstream))

        scalar_loss()
        layer.backward(upstream)
        analytic = layer.grad_weights.copy()
        eps = 1e-6
        for i in range(4):
            for j in range(3):
                layer.weights[i, j] += eps
                up = scalar_loss()
                layer.weights[i, j] -= 2 * eps
                down = scalar_loss()
                layer.weights[i, j] += eps
                assert analytic[i, j] == pytest.approx(
                    (up - down) / (2 * eps), rel=1e-4, abs=1e-6
                )

    def test_dense_rejects_wrong_input_width(self):
        layer = Dense(4, 2)
        with pytest.raises(ShapeError):
            layer.forward(np.zeros((3, 5)))

    def test_sequential_rejects_width_mismatch(self):
        with pytest.raises(ShapeError):
            Sequential([Dense(3, 4), Dense(5, 2)])


class TestOptimizers:
    def test_sgd_moves_against_gradient(self):
        opt = SGD(learning_rate=0.1)
        p = np.array([1.0])
        opt.step([p], [np.array([2.0])])
        assert p[0] == pytest.approx(0.8)

    def test_adam_converges_on_quadratic(self):
        opt = Adam(learning_rate=0.1)
        p = np.array([5.0])
        for _ in range(300):
            opt.step([p], [2.0 * p])
        assert abs(p[0]) < 1e-2

    def test_adam_weight_decay_shrinks_parameters(self):
        opt = Adam(learning_rate=0.1, weight_decay=0.5)
        p = np.array([1.0])
        opt.step([p], [np.array([0.0])])
        assert p[0] < 1.0

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ConfigurationError):
            Adam(learning_rate=-1)
        with pytest.raises(ConfigurationError):
            SGD(momentum=1.5)
        with pytest.raises(ConfigurationError):
            Adam(weight_decay=-0.1)


class TestMLPClassifier:
    def test_parameter_count_matches_formula(self):
        model = MLPClassifier((45, 22, 11, 3))
        expected = 45 * 22 + 22 + 22 * 11 + 11 + 11 * 3 + 3
        assert model.n_parameters == expected

    def test_paper_fnn_parameter_count(self):
        model = MLPClassifier((1000, 500, 250, 243))
        assert model.n_parameters == 686_743  # the paper's "686k" FNN

    def test_predict_before_training_raises(self):
        model = MLPClassifier((4, 3))
        with pytest.raises(NotFittedError):
            model.predict(np.zeros((2, 4)))

    def test_training_learns_blobs(self, rng):
        n = 300
        x = np.vstack(
            [rng.normal(loc, 0.3, size=(n, 2)) for loc in ([-2, 0], [2, 0], [0, 2])]
        )
        y = np.repeat([0, 1, 2], n)
        model = MLPClassifier((2, 16, 3), seed=0)
        history = train_classifier(model, x, y, epochs=60, seed=0)
        assert model.score(x, y) > 0.95
        assert history.n_epochs >= 1

    def test_early_stopping_triggers_on_noise(self, rng):
        x = rng.normal(size=(200, 5))
        y = rng.integers(0, 2, size=200)
        model = MLPClassifier((5, 8, 2), seed=0)
        history = train_classifier(
            model, x, y, epochs=300, patience=5, seed=0
        )
        assert history.stopped_early
        assert history.n_epochs < 300

    def test_save_load_round_trip(self, tmp_path, rng):
        model = MLPClassifier((4, 6, 3), seed=1)
        x = rng.normal(size=(50, 4))
        y = rng.integers(0, 3, size=50)
        train_classifier(model, x, y, epochs=3, seed=1)
        path = tmp_path / "model.npz"
        model.save(path)
        loaded = MLPClassifier.load(path)
        np.testing.assert_array_equal(model.predict(x), loaded.predict(x))

    def test_shape_validation_on_fit(self, rng):
        model = MLPClassifier((4, 3))
        with pytest.raises(ShapeError):
            train_classifier(model, rng.normal(size=(10, 5)), np.zeros(10, int))
        with pytest.raises(ShapeError):
            train_classifier(
                model, rng.normal(size=(10, 4)), np.full(10, 7, dtype=int)
            )

    @settings(max_examples=15, deadline=None)
    @given(
        widths=st.lists(st.integers(min_value=1, max_value=12), min_size=2, max_size=4)
    )
    def test_decision_function_shape_property(self, widths):
        model = MLPClassifier(widths, seed=0)
        x = np.zeros((3, widths[0]))
        assert model.decision_function(x).shape == (3, widths[-1])
