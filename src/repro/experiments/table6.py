"""Table VI — impact of multi-level readout quality on leakage speculation.

Paper: speculation accuracy rises from 0.914 (LDA, 10% readout error) to
0.947 (OURS, 5%); large models (FNN) are accurate but slow, OURS is both
accurate and fast. Here each design's readout error is *measured* on the
synthetic corpus (mean per-qubit infidelity excluding qubit 2, the paper's
convention), then fed into the ERASER+M Monte-Carlo.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.experiments.common import get_readout_bundle, get_trained
from repro.experiments.report import format_rows
from repro.experiments.table5 import _mtv_features
from repro.ml import LinearDiscriminantAnalysis, QuadraticDiscriminantAnalysis
from repro.ml.confusion import confusion_from_labels
from repro.ml.metrics import assignment_error_rate
from repro.qec import EraserConfig, LeakageParams, RotatedSurfaceCode, run_eraser

__all__ = ["Table6Result", "run_table6"]

PAPER_VALUES = {
    "lda": {"error_pct": 10.0, "speed": "Fast", "accuracy": 0.914},
    "qda": {"error_pct": 9.0, "speed": "Fast", "accuracy": 0.921},
    "fnn": {"error_pct": 5.5, "speed": "Slow", "accuracy": 0.943},
    "ours": {"error_pct": 5.0, "speed": "Fast", "accuracy": 0.947},
}

#: Qubit 2 (index 1) is excluded from the error average, as in the paper.
EXCLUDED_QUBITS = (1,)
#: Parameter count above which inference is classed "Slow" (FNN-scale
#: models cannot run inline on the FPGA).
SLOW_PARAMETER_THRESHOLD = 100_000


@dataclass(frozen=True)
class Table6Result(ExperimentResult):
    """Measured readout error and speculation accuracy per design."""

    rows: list[dict]

    def _measured(self) -> dict:
        return {
            r["design"]: {
                "error_pct": r["error_pct"],
                "speed": r["speed"],
                "accuracy": r["speculation_accuracy"],
                "leakage_population": r["leakage_population"],
            }
            for r in self.rows
        }

    def _paper_values(self) -> dict:
        return PAPER_VALUES

    def format_table(self) -> str:
        return format_rows(
            ("Design", "Error(%)", "Speed", "SpecAcc", "Paper SpecAcc"),
            [
                (
                    r["design"].upper(),
                    round(r["error_pct"], 2),
                    r["speed"],
                    r["speculation_accuracy"],
                    PAPER_VALUES[r["design"]]["accuracy"],
                )
                for r in self.rows
            ],
            title="Table VI: multi-level readout quality vs leakage speculation",
        )


def _discriminant_error(bundle, cls, profile: Profile) -> float:
    """Joint readout error of per-qubit LDA/QDA on integrated IQ points."""
    corpus = bundle.corpus
    tr, te = bundle.train_idx, bundle.test_idx
    predictions = np.empty((te.size, corpus.n_qubits), dtype=np.int64)
    for qubit in range(corpus.n_qubits):
        features = _mtv_features(bundle, qubit)
        model = cls().fit(features[tr], corpus.qubit_labels(qubit)[tr])
        predictions[:, qubit] = model.predict(features[te])
    keep = [q for q in range(corpus.n_qubits) if q not in EXCLUDED_QUBITS]
    truth = np.column_stack(
        [corpus.qubit_labels(q)[te] for q in range(corpus.n_qubits)]
    )
    return float(1.0 - np.mean(predictions[:, keep] == truth[:, keep]))


@experiment("table6", tags=("qec", "fidelity"), paper_ref="Table VI")
def run_table6(profile: Profile = QUICK, distance: int = 7) -> Table6Result:
    """Measure per-design readout error, then run ERASER+M with it."""
    bundle = get_readout_bundle(profile)
    code = RotatedSurfaceCode(distance)

    designs: list[tuple[str, float, int]] = []
    designs.append(
        ("lda", _discriminant_error(bundle, LinearDiscriminantAnalysis, profile), 0)
    )
    designs.append(
        ("qda", _discriminant_error(bundle, QuadraticDiscriminantAnalysis, profile), 0)
    )
    confusion_fraction = {}
    for name in ("fnn", "ours"):
        trained = get_trained(profile, name)
        pred = trained.discriminator.predict(bundle.corpus, bundle.test_idx)
        error = assignment_error_rate(
            bundle.test_labels,
            pred,
            bundle.corpus.n_qubits,
            bundle.corpus.n_levels,
            exclude_qubits=EXCLUDED_QUBITS,
        )
        designs.append((name, error, trained.n_parameters))
        # Measured |2>-confusion asymmetry, fed to the QEC simulator.
        from repro.data.basis import state_to_digits

        true_digits = state_to_digits(
            bundle.test_labels, bundle.corpus.n_qubits, bundle.corpus.n_levels
        )
        pred_digits = state_to_digits(
            pred, bundle.corpus.n_qubits, bundle.corpus.n_levels
        )
        confusion = confusion_from_labels(
            true_digits.ravel(), pred_digits.ravel()
        )
        confusion_fraction[name] = confusion.false_two_fraction

    rows = []
    for name, error, n_params in designs:
        params = LeakageParams(
            readout_error=min(0.5, error),
            false_two_fraction=confusion_fraction.get(name, 0.05),
        )
        report = run_eraser(
            code,
            cycles=10,
            shots=profile.qec_shots,
            params=params,
            config=EraserConfig(multi_level=True),
            seed=profile.seed + 60,
        )
        rows.append(
            {
                "design": name,
                "error_pct": 100.0 * error,
                "speed": "Slow" if n_params > SLOW_PARAMETER_THRESHOLD else "Fast",
                "speculation_accuracy": report.accuracy,
                "leakage_population": report.leakage_population,
            }
        )
    return Table6Result(rows=rows)
