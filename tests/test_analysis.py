"""Tests for repro.analysis: lint rules, pragmas, CLI, lock-order graph."""

from __future__ import annotations

import json
import textwrap
import threading
from pathlib import Path

import pytest

from repro.analysis import check_source, lint_paths, rule_names
from repro.analysis.checker import iter_python_files
from repro.analysis.cli import run_lint
from repro.analysis.findings import Finding, pragma_allowances
from repro.analysis.lockgraph import (
    ENV_FLAG,
    LockGraph,
    LockOrderError,
    TracedLock,
    enabled,
    trace_lock,
)
from repro.exceptions import ConfigurationError

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def rules_of(findings: list[Finding]) -> list[str]:
    return [finding.rule for finding in findings]


class TestPragmas:
    def test_parses_rules_and_ignores_reason(self):
        source = (
            "x = 1  # repro: allow(broad-except) recovery path\n"
            "y = 2\n"
            "z = 3  # repro: allow(fit-once, json-finite)\n"
        )
        allowances = pragma_allowances(source)
        assert allowances == {
            1: {"broad-except"},
            3: {"fit-once", "json-finite"},
        }

    def test_empty_pragma_allows_nothing(self):
        assert pragma_allowances("x = 1  # repro: allow()\n") == {1: set()}

    def test_suppresses_only_named_rule_on_its_line(self):
        source = textwrap.dedent(
            """
            try:
                pass
            except Exception:  # repro: allow(broad-except) test fixture
                pass
            try:
                pass
            except Exception:
                pass
            """
        )
        findings = check_source(source, "x.py", rules=["broad-except"])
        assert len(findings) == 1
        assert findings[0].line == 8


class TestFitOnceRule:
    def test_flags_fit_call_outside_calibration_layers(self):
        source = "def serve(model, X, y):\n    model.fit(X, y)\n"
        findings = check_source(
            source, "src/repro/serve/bad.py", rules=["fit-once"]
        )
        assert rules_of(findings) == ["fit-once"]

    def test_flags_get_trained_outside_calibration_layers(self):
        source = "def warm():\n    return get_trained('quick', 'ours')\n"
        findings = check_source(
            source, "src/repro/fleet/bad.py", rules=["fit-once"]
        )
        assert rules_of(findings) == ["fit-once"]

    def test_allows_fit_in_discriminators_and_registry(self):
        source = "def calibrate(model, X, y):\n    model.fit(X, y)\n"
        for path in (
            "src/repro/discriminators/nn.py",
            "src/repro/ml/logistic.py",
            "src/repro/pipeline/registry.py",
        ):
            assert check_source(source, path, rules=["fit-once"]) == []

    def test_pragma_suppresses(self):
        source = "model.fit(X, y)  # repro: allow(fit-once) bench fixture\n"
        assert check_source(
            source, "src/repro/serve/bad.py", rules=["fit-once"]
        ) == []


class TestFrozenSpecRule:
    def test_flags_setattr_outside_post_init(self):
        source = textwrap.dedent(
            """
            def rebind(spec):
                object.__setattr__(spec, "shots", 3)
            """
        )
        findings = check_source(source, "x.py", rules=["frozen-spec"])
        assert rules_of(findings) == ["frozen-spec"]

    def test_allows_setattr_in_post_init(self):
        source = textwrap.dedent(
            """
            class ServeSpec:
                def __post_init__(self):
                    object.__setattr__(self, "shots", 3)
            """
        )
        assert check_source(source, "x.py", rules=["frozen-spec"]) == []

    def test_flags_spec_field_assignment(self):
        source = "serve_spec.shots = 500\n"
        findings = check_source(source, "x.py", rules=["frozen-spec"])
        assert rules_of(findings) == ["frozen-spec"]

    def test_pragma_suppresses(self):
        source = (
            'object.__setattr__(r, "_name", n)'
            "  # repro: allow(frozen-spec) one-time bind\n"
        )
        assert check_source(source, "x.py", rules=["frozen-spec"]) == []


class TestJsonFiniteRule:
    def test_flags_unwrapped_nan_capable_value(self):
        source = textwrap.dedent(
            """
            class Stats:
                def to_dict(self):
                    return {"p99_ms": self.p99_ms}
            """
        )
        findings = check_source(source, "x.py", rules=["json-finite"])
        assert rules_of(findings) == ["json-finite"]

    def test_flags_nan_literal(self):
        source = textwrap.dedent(
            """
            def summary():
                return {"latency": float("nan")}
            """
        )
        findings = check_source(source, "x.py", rules=["json-finite"])
        assert rules_of(findings) == ["json-finite"]

    def test_wrapped_value_passes(self):
        source = textwrap.dedent(
            """
            class Stats:
                def to_dict(self):
                    return {"p99_ms": json_finite(self.p99_ms)}
            """
        )
        assert check_source(source, "x.py", rules=["json-finite"]) == []

    def test_only_payload_functions_are_checked(self):
        source = textwrap.dedent(
            """
            def debug_view(self):
                return {"p99_ms": self.p99_ms}
            """
        )
        assert check_source(source, "x.py", rules=["json-finite"]) == []

    def test_pragma_suppresses(self):
        source = textwrap.dedent(
            """
            def to_dict(self):
                return {
                    "margin": self.margin,  # repro: allow(json-finite) clamped
                }
            """
        )
        assert check_source(source, "x.py", rules=["json-finite"]) == []


class TestNoPickleRule:
    def test_flags_import_and_call(self):
        source = "import pickle\n\npayload = pickle.dumps(model)\n"
        findings = check_source(source, "x.py", rules=["no-pickle-fitted"])
        assert rules_of(findings) == ["no-pickle-fitted", "no-pickle-fitted"]

    def test_flags_from_import(self):
        source = "from pickle import dumps\n"
        findings = check_source(source, "x.py", rules=["no-pickle-fitted"])
        assert rules_of(findings) == ["no-pickle-fitted"]

    def test_pragma_suppresses(self):
        source = "import pickle  # repro: allow(no-pickle-fitted) test aid\n"
        assert check_source(source, "x.py", rules=["no-pickle-fitted"]) == []


class TestBroadExceptRule:
    def test_flags_bare_and_blanket_handlers(self):
        source = textwrap.dedent(
            """
            try:
                work()
            except Exception:
                pass
            try:
                work()
            except:
                pass
            try:
                work()
            except (ValueError, BaseException):
                pass
            """
        )
        findings = check_source(source, "x.py", rules=["broad-except"])
        assert rules_of(findings) == ["broad-except"] * 3

    def test_reraising_handler_passes(self):
        source = textwrap.dedent(
            """
            try:
                work()
            except BaseException:
                cleanup()
                raise
            """
        )
        assert check_source(source, "x.py", rules=["broad-except"]) == []

    def test_narrow_handler_passes(self):
        source = "try:\n    work()\nexcept ValueError:\n    pass\n"
        assert check_source(source, "x.py", rules=["broad-except"]) == []

    def test_pragma_suppresses(self):
        source = textwrap.dedent(
            """
            try:
                work()
            except Exception:  # repro: allow(broad-except) deferred to close()
                pass
            """
        )
        assert check_source(source, "x.py", rules=["broad-except"]) == []


class TestAllConsistencyRule:
    def test_flags_dead_export(self):
        source = '__all__ = ["missing"]\n\nx = 1\n'
        findings = check_source(source, "x.py", rules=["all-consistency"])
        assert rules_of(findings) == ["all-consistency"]
        assert "missing" in findings[0].message

    def test_flags_unexported_public_def(self):
        source = '__all__ = ["f"]\n\n\ndef f():\n    pass\n\n\ndef g():\n    pass\n'
        findings = check_source(source, "x.py", rules=["all-consistency"])
        assert rules_of(findings) == ["all-consistency"]
        assert "'g'" in findings[0].message

    def test_private_defs_and_gated_imports_pass(self):
        source = textwrap.dedent(
            """
            __all__ = ["flocked"]

            try:
                import fcntl as flocked
            except ImportError:
                flocked = None


            def _helper():
                pass
            """
        )
        assert check_source(source, "x.py", rules=["all-consistency"]) == []

    def test_module_without_all_is_unchecked(self):
        assert check_source(
            "def anything():\n    pass\n", "x.py", rules=["all-consistency"]
        ) == []


class TestCheckerDrivers:
    def test_syntax_error_is_a_parse_error_finding(self):
        findings = check_source("def broken(:\n", "x.py")
        assert rules_of(findings) == ["parse-error"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            check_source("x = 1\n", "x.py", rules=["no-such-rule"])

    def test_rule_names_cover_the_contract_set(self):
        assert set(rule_names()) >= {
            "fit-once",
            "frozen-spec",
            "json-finite",
            "no-pickle-fitted",
            "broad-except",
            "all-consistency",
        }

    def test_iter_python_files_rejects_missing_path(self):
        with pytest.raises(ConfigurationError):
            iter_python_files(["definitely/not/here"])

    def test_finding_format_is_compiler_style(self):
        finding = Finding("fit-once", "a.py", 3, 7, "boom")
        assert finding.format() == "a.py:3:7: [fit-once] boom"

    def test_src_tree_is_clean(self):
        # The repo's own source must satisfy its own contracts; any new
        # finding here is either a real bug or needs a reasoned pragma.
        findings = lint_paths([REPO_SRC])
        assert findings == [], "\n".join(f.format() for f in findings)


class TestLintCli:
    def test_self_scan_exits_zero(self, capsys):
        assert run_lint([str(REPO_SRC)]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\n")
        assert run_lint([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "[no-pickle-fitted]" in out
        assert "lint: 1 finding(s) in 1 file(s)" in out

    def test_rule_subset_filters(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\n")
        assert run_lint(["--rules", "broad-except", str(bad)]) == 0
        capsys.readouterr()

    def test_json_record_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\n")
        out_path = tmp_path / "lint.json"
        assert run_lint(["--json", str(out_path), str(bad)]) == 1
        capsys.readouterr()
        record = json.loads(out_path.read_text())
        assert record["n_findings"] == 1
        (finding,) = record["findings"]
        assert finding["rule"] == "no-pickle-fitted"
        assert finding["path"].endswith("bad.py")
        assert {"line", "col", "message"} <= set(finding)
        # Strict JSON round-trip: the payload itself obeys json-finite.
        json.dumps(record, allow_nan=False)

    def test_list_rules(self, capsys):
        assert run_lint(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "fit-once" in out and "all-consistency" in out


class TestLockGraph:
    def test_inversion_detected_with_witnesses(self):
        # Seed the classic A -> B / B -> A inversion on a private graph
        # (the global graph must stay clean for the armed-suite check).
        graph = LockGraph()
        a = TracedLock("A", graph)
        b = TracedLock("B", graph)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        (violation,) = graph.violations()
        assert violation.cycle == ("A", "B")
        assert {(w.source, w.target) for w in violation.witnesses} == {
            ("A", "B"),
            ("B", "A"),
        }
        witness = next(w for w in violation.witnesses if w.source == "A")
        assert witness.held == ("A",)
        assert witness.thread
        assert ":" in witness.site
        formatted = violation.format()
        assert "lock-order cycle: A -> B -> A" in formatted
        assert "witness:" in formatted

    def test_check_raises_with_witness_text(self):
        graph = LockGraph()
        a, b = TracedLock("A", graph), TracedLock("B", graph)
        with a, b:
            pass
        with b, a:
            pass
        with pytest.raises(LockOrderError) as excinfo:
            graph.check()
        assert "A -> B -> A" in str(excinfo.value)

    def test_consistent_order_is_clean(self):
        graph = LockGraph()
        a, b, c = (TracedLock(n, graph) for n in "ABC")
        for _ in range(3):
            with a, b, c:
                pass
        assert graph.violations() == []
        graph.check()

    def test_three_node_cycle_reported_once(self):
        graph = LockGraph()
        a, b, c = (TracedLock(n, graph) for n in "ABC")
        with a, b:
            pass
        with b, c:
            pass
        with c, a:
            pass
        (violation,) = graph.violations()
        assert violation.cycle == ("A", "B", "C")
        assert len(violation.witnesses) == 3

    def test_rlock_reentry_adds_no_self_edge(self):
        graph = LockGraph()
        lock = TracedLock("R", graph, rlock=True)
        with lock:
            with lock:
                pass
        assert graph.edges() == {}
        assert graph.violations() == []

    def test_release_restores_held_stack(self):
        graph = LockGraph()
        a, b = TracedLock("A", graph), TracedLock("B", graph)
        with a:
            with b:
                assert graph.held_by_current_thread() == ("A", "B")
            assert graph.held_by_current_thread() == ("A",)
        assert graph.held_by_current_thread() == ()

    def test_edges_recorded_across_threads(self):
        graph = LockGraph()
        a, b = TracedLock("A", graph), TracedLock("B", graph)

        def worker():
            with b:
                with a:
                    pass

        with a:
            with b:
                pass
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        (violation,) = graph.violations()
        threads = {w.thread for w in violation.witnesses}
        assert len(threads) == 2

    def test_traced_lock_mutual_exclusion(self):
        lock = TracedLock("X", LockGraph())
        assert lock.acquire()
        assert lock.locked()
        assert not lock.acquire(blocking=False)
        lock.release()
        assert not lock.locked()


class TestTraceLockFactory:
    def test_plain_lock_when_disabled(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not enabled()
        lock = trace_lock("plain")
        assert not isinstance(lock, TracedLock)
        with lock:
            pass

    def test_traced_when_armed(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        assert enabled()
        graph = LockGraph()
        lock = trace_lock("armed", graph=graph)
        assert isinstance(lock, TracedLock)

    def test_explicit_graph_always_traces(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        lock = trace_lock("seeded", graph=LockGraph())
        assert isinstance(lock, TracedLock)

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "OFF"])
    def test_flag_off_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FLAG, value)
        assert not enabled()

    def test_flock_notes_respect_flag(self, monkeypatch):
        import repro.analysis.lockgraph as lockgraph

        graph = LockGraph()
        monkeypatch.setattr(lockgraph, "GLOBAL_GRAPH", graph)
        monkeypatch.setenv(ENV_FLAG, "1")
        gate = TracedLock("registry.fit-lock:dev/all/quick.v0", graph)
        with gate:
            lockgraph.note_flock_acquire("/store/dev/all.v1.npz")
            lockgraph.note_flock_release("/store/dev/all.v1.npz")
        edges = graph.edges()
        assert (
            "registry.fit-lock:dev/all/quick.v0",
            "flock:store/dev/all.v1.npz",
        ) in edges
        assert graph.violations() == []

    def test_flock_notes_noop_when_disarmed(self, monkeypatch):
        import repro.analysis.lockgraph as lockgraph

        graph = LockGraph()
        monkeypatch.setattr(lockgraph, "GLOBAL_GRAPH", graph)
        monkeypatch.delenv(ENV_FLAG, raising=False)
        lockgraph.note_flock_acquire("/store/dev/all.npz")
        assert graph.held_by_current_thread() == ()
        assert graph.edges() == {}
