"""Drift-aware serving: injection, online detection, versioned artifacts,
and hot recalibration of long-lived sessions."""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest

from repro.config import Profile
from repro.exceptions import ConfigurationError
from repro.physics.device import default_five_qubit_chip, make_feedline_chip
from repro.physics.drift import DEMO_DRIFT, DriftModel
from repro.pipeline import (
    CalibrationKey,
    CalibrationRegistry,
    DriftingTraceSource,
    DriftMonitor,
    PipelineConfig,
    SimulatorTraceSource,
    run_streaming_pipeline,
)
from repro.serve import (
    BatchingSpec,
    CalibrationSpec,
    ClusterSpec,
    DriftSpec,
    ReadoutService,
    RecalibrationSpec,
    ServeSpec,
    TrafficSpec,
)


def tiny_profile(**overrides) -> Profile:
    """Small but properly trained sizing (QUICK-grade epoch budget)."""
    params = dict(
        name="tiny",
        shots_per_state=40,
        calibration_shots=100,
        nn_epochs=150,
        fnn_epochs=2,
        batch_size=64,
        qec_shots=10,
        qudit_shots=10,
        spectral_max_points=100,
        seed=701,
    )
    params.update(overrides)
    return Profile(**params)


def fast_profile(**overrides) -> Profile:
    """Minimal sizing for mechanics-only tests (accuracy irrelevant)."""
    return tiny_profile(shots_per_state=10, nn_epochs=8, **overrides)


class TestDriftModel:
    def test_null_model_returns_the_same_chip(self):
        chip = default_five_qubit_chip()
        model = DriftModel()
        assert model.is_null
        assert model.chip_at(chip, 10_000) is chip

    def test_zero_clock_returns_the_same_chip(self):
        chip = default_five_qubit_chip()
        assert DEMO_DRIFT.chip_at(chip, 0) is chip

    def test_detuning_and_decay_math(self):
        chip = default_five_qubit_chip()
        model = DriftModel(
            if_detune_ghz_per_kshot=2e-4,
            t1_decay_per_kshot=0.1,
            amplitude_decay_per_kshot=0.05,
        )
        drifted = model.chip_at(chip, 2000)  # 2 kshots
        for before, after in zip(chip.qubits, drifted.qubits):
            assert after.if_frequency_ghz == pytest.approx(
                before.if_frequency_ghz + 4e-4
            )
            assert after.t1_ns == pytest.approx(
                before.t1_ns * np.exp(-0.2)
            )
            assert after.t1_2_ns == pytest.approx(
                before.t1_2_ns * np.exp(-0.2)
            )
            assert after.amplitude == pytest.approx(
                before.amplitude * np.exp(-0.1)
            )

    def test_detuning_clamps_inside_nyquist(self):
        chip = default_five_qubit_chip()
        nyquist = chip.adc.sample_rate_ghz / 2.0
        # An absurd session must degrade, not produce an invalid device.
        drifted = DriftModel(if_detune_ghz_per_kshot=0.1).chip_at(
            chip, 1_000_000
        )
        for qubit in drifted.qubits:
            assert abs(qubit.if_frequency_ghz) < nyquist

    def test_rejects_negative_clock_and_bad_rates(self):
        with pytest.raises(ConfigurationError, match="shots_elapsed"):
            DriftModel().chip_at(default_five_qubit_chip(), -1)
        with pytest.raises(ConfigurationError, match="t1_decay"):
            DriftModel(t1_decay_per_kshot=-0.1)
        with pytest.raises(ConfigurationError, match="amplitude_decay"):
            DriftModel(amplitude_decay_per_kshot=-0.1)
        with pytest.raises(ConfigurationError, match="if_detune"):
            DriftModel(if_detune_ghz_per_kshot="fast")

    def test_dict_round_trip(self):
        assert DriftModel.from_dict(DEMO_DRIFT.to_dict()) == DEMO_DRIFT

    def test_deterministic_snapshots(self):
        chip = default_five_qubit_chip()
        a = DEMO_DRIFT.chip_at(chip, 1234)
        b = DEMO_DRIFT.chip_at(chip, 1234)
        assert a.to_dict() == b.to_dict()


class TestDriftingTraceSource:
    def test_null_drift_matches_simulator_source(self):
        chip = make_feedline_chip(0, n_qubits=2)
        plain = SimulatorTraceSource(chip, 80, chunk_size=40, seed=5)
        drifting = DriftingTraceSource(
            chip, DriftModel(), 80, chunk_size=40, seed=5
        )
        for a, b in zip(plain.chunks(), drifting.chunks()):
            assert np.array_equal(a.feedline, b.feedline)
            assert np.array_equal(a.prepared_levels, b.prepared_levels)

    def test_drift_changes_the_traces(self):
        chip = make_feedline_chip(0, n_qubits=2)
        plain = np.concatenate(
            [c.feedline for c in
             SimulatorTraceSource(chip, 80, chunk_size=40, seed=5).chunks()]
        )
        drifted = np.concatenate(
            [c.feedline for c in
             DriftingTraceSource(
                 chip, DEMO_DRIFT, 80, chunk_size=40, seed=5,
                 shot_offset=5000,
             ).chunks()]
        )
        assert not np.array_equal(plain, drifted)

    def test_shot_offset_continues_the_session_clock(self):
        chip = make_feedline_chip(0, n_qubits=2)

        def stream(offset):
            return np.concatenate([
                c.feedline
                for c in DriftingTraceSource(
                    chip, DEMO_DRIFT, 60, chunk_size=30, seed=5,
                    shot_offset=offset,
                ).chunks()
            ])

        assert not np.array_equal(stream(0), stream(3000))

    def test_rejects_negative_offset(self):
        chip = make_feedline_chip(0, n_qubits=2)
        with pytest.raises(ConfigurationError, match="shot_offset"):
            DriftingTraceSource(chip, DEMO_DRIFT, 10, shot_offset=-1)


class TestDriftMonitor:
    def test_validation(self):
        ref = np.full(9, 1 / 9)
        with pytest.raises(ConfigurationError, match="reference_assignment"):
            DriftMonitor(np.zeros((3, 3)))
        with pytest.raises(ConfigurationError, match="distribution"):
            DriftMonitor(np.zeros(9))
        with pytest.raises(ConfigurationError, match="threshold"):
            DriftMonitor(ref, threshold=0.0)
        with pytest.raises(ConfigurationError, match="alpha"):
            DriftMonitor(ref, alpha=1.5)
        with pytest.raises(ConfigurationError, match="min_shots"):
            DriftMonitor(ref, min_shots=-1)
        with pytest.raises(ConfigurationError, match="power of"):
            DriftMonitor(np.full(5, 0.2))  # 5 is not a power of 3

    def test_matching_traffic_scores_low(self):
        rng = np.random.default_rng(0)
        monitor = DriftMonitor(
            np.full(9, 1 / 9), reference_margin=0.9, threshold=0.25,
            min_shots=0,
        )
        for _ in range(10):
            monitor.observe(rng.integers(0, 9, 200), 0.9)
        assert monitor.drift_score < 0.1
        assert monitor.alarm is False

    def test_distribution_shift_raises_the_score(self):
        monitor = DriftMonitor(
            np.full(9, 1 / 9), threshold=0.25, min_shots=0
        )
        for _ in range(10):
            monitor.observe(np.zeros(200, dtype=np.int64))
        assert monitor.drift_score > 1.0
        assert monitor.alarm is True

    def test_margin_erosion_alone_trips_the_alarm(self):
        rng = np.random.default_rng(0)
        monitor = DriftMonitor(
            np.full(9, 1 / 9), reference_margin=0.8, threshold=0.25,
            min_shots=0,
        )
        for _ in range(10):
            monitor.observe(rng.integers(0, 9, 200), 0.3)
        assert monitor.drift_score >= 0.5
        assert monitor.alarm is True

    def test_min_shots_gates_the_alarm(self):
        monitor = DriftMonitor(
            np.full(9, 1 / 9), threshold=0.25, min_shots=500
        )
        monitor.observe(np.zeros(100, dtype=np.int64))
        assert monitor.drift_score > 0.25
        assert monitor.alarm is False, "not enough evidence yet"
        monitor.observe(np.zeros(400, dtype=np.int64))
        assert monitor.alarm is True

    def test_summary_is_json_able(self):
        monitor = DriftMonitor(np.full(9, 1 / 9), min_shots=0)
        monitor.observe(np.arange(9))
        summary = json.loads(json.dumps(monitor.summary()))
        assert set(summary) >= {
            "drift_score", "assignment_divergence", "margin_erosion",
            "threshold", "n_shots", "alarm",
        }
        assert summary["n_shots"] == 9


class TestCalibrationReferences:
    def test_fit_records_reference_distribution_and_margin(self, tiny_corpus):
        from repro.discriminators.mlr import MLRDiscriminator

        disc = MLRDiscriminator(epochs=4, seed=9)
        disc.fit(tiny_corpus, np.arange(tiny_corpus.n_traces))
        assert disc.reference_assignment_ is not None
        assert disc.reference_assignment_.shape == (
            tiny_corpus.n_levels ** tiny_corpus.n_qubits,
        )
        assert disc.reference_assignment_.sum() == pytest.approx(1.0)
        assert 0.0 <= disc.reference_margin_ <= 1.0

    def test_references_round_trip_through_artifacts(
        self, tiny_corpus, tmp_path
    ):
        from repro.discriminators.base import Discriminator
        from repro.discriminators.mlr import MLRDiscriminator

        disc = MLRDiscriminator(epochs=4, seed=9)
        disc.fit(tiny_corpus, np.arange(tiny_corpus.n_traces))
        path = tmp_path / "artifact.npz"
        disc.save_artifacts(path)
        loaded = Discriminator.load_artifacts(path)
        np.testing.assert_allclose(
            loaded.reference_assignment_, disc.reference_assignment_
        )
        assert loaded.reference_margin_ == pytest.approx(
            disc.reference_margin_
        )

    def test_pre_reference_artifacts_still_load(self, tiny_corpus, tmp_path):
        # Artifacts written before drift detection carry no references;
        # they must load (and serve) with the monitor disabled.
        from repro.discriminators.base import Discriminator
        from repro.discriminators.mlr import MLRDiscriminator

        disc = MLRDiscriminator(epochs=4, seed=9)
        disc.fit(tiny_corpus, np.arange(tiny_corpus.n_traces))
        disc.reference_assignment_ = None
        disc.reference_margin_ = None
        path = tmp_path / "legacy.npz"
        disc.save_artifacts(path)
        loaded = Discriminator.load_artifacts(path)
        assert loaded.reference_assignment_ is None
        assert loaded.reference_margin_ is None


class TestRegistryVersioning:
    def test_version_zero_keeps_the_legacy_path(self):
        key = CalibrationKey("dev", "all", "prof")
        assert key.relative_path.name == "all.npz"
        assert key.with_version(3).relative_path.name == "all.v3.npz"

    def test_version_validation(self):
        with pytest.raises(ConfigurationError, match="version"):
            CalibrationKey("dev", "all", "prof", version=-1)
        with pytest.raises(ConfigurationError, match="version"):
            CalibrationKey("dev", "all", "prof", version=True)
        with pytest.raises(ConfigurationError, match="collides"):
            CalibrationKey("dev", "all.v2", "prof")

    def test_keys_enumerate_versions(self, tmp_path, tiny_corpus):
        from repro.discriminators.mlr import MLRDiscriminator

        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("dev", "all", "tiny")
        fitted, _ = registry.get_or_fit(
            key, lambda: MLRDiscriminator(epochs=4, seed=9), tiny_corpus
        )
        assert registry.latest_version(key) == 0
        first = registry.supersede(key, fitted)
        second = registry.supersede(key, fitted)
        assert (first.version, second.version) == (1, 2)
        assert registry.latest_version(key) == 2
        assert set(registry.keys()) == {key, first, second}
        assert key in registry and first in registry and second in registry

    def test_supersede_never_rewrites_served_versions(
        self, tmp_path, tiny_corpus
    ):
        from repro.discriminators.mlr import MLRDiscriminator

        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("dev", "all", "tiny")
        fitted, _ = registry.get_or_fit(
            key, lambda: MLRDiscriminator(epochs=4, seed=9), tiny_corpus
        )
        before = registry.path_for(key).read_bytes()
        registry.supersede(key, fitted)
        assert registry.path_for(key).read_bytes() == before

    def test_fit_once_holds_per_version(self, tmp_path, tiny_corpus):
        from repro.discriminators.mlr import MLRDiscriminator

        registry = CalibrationRegistry(tmp_path)
        fits = []

        def factory():
            fits.append(1)
            return MLRDiscriminator(epochs=4, seed=9)

        base = CalibrationKey("dev", "all", "tiny")
        for version in (0, 1, 0, 1):
            registry.get_or_fit(
                base.with_version(version), factory, tiny_corpus
            )
        assert len(fits) == 2, "one fit per version, ever"


class TestPipelineDriftDetection:
    def test_stationary_run_reports_low_drift(self, tmp_path, two_qubit_chip):
        report = run_streaming_pipeline(
            fast_profile(),
            n_shots=120,
            batch_size=40,
            chunk_size=60,
            registry_dir=tmp_path,
            chip=two_qubit_chip,
            device="drift-test",
        )
        assert report.drift_score is not None
        assert report.drift_alarm is False
        assert "drift" in report.details
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["drift_alarm"] is False

    def test_detection_can_be_disabled(self, tmp_path, two_qubit_chip):
        report = run_streaming_pipeline(
            fast_profile(),
            n_shots=60,
            chunk_size=60,
            registry_dir=tmp_path,
            chip=two_qubit_chip,
            device="drift-test",
            config=PipelineConfig(batch_size=60, drift_detection=False),
        )
        assert report.drift_score is None
        assert report.drift_alarm is None
        assert "drift" not in report.details

    def test_drifted_traffic_raises_the_score(self, tmp_path):
        chip = make_feedline_chip(0, n_qubits=2)
        kwargs = dict(
            n_shots=400,
            batch_size=100,
            chunk_size=200,
            registry_dir=tmp_path,
            chip=chip,
            device="drift-scored",
        )
        profile = tiny_profile()
        calm = run_streaming_pipeline(profile, **kwargs)
        stormy = run_streaming_pipeline(
            profile,
            drift_model=DriftModel(if_detune_ghz_per_kshot=8e-5),
            drift_shot_offset=2500,
            **kwargs,
        )
        assert stormy.drift_score > calm.drift_score
        assert stormy.accuracy < calm.accuracy

    def test_config_validates_drift_knobs(self):
        with pytest.raises(ConfigurationError) as excinfo:
            PipelineConfig(
                drift_threshold=0.0, drift_ewma_alpha=2.0, drift_min_shots=-1
            )
        message = str(excinfo.value)
        assert "drift_threshold" in message
        assert "drift_ewma_alpha" in message
        assert "drift_min_shots" in message


def _drift_spec(
    recalibrate: bool,
    drifting: bool = True,
    feedlines: int = 1,
    shots: int = 500,
    threshold: float = 0.035,
    cooldown_runs: int = 1,
    **recal_overrides,
) -> ServeSpec:
    return ServeSpec(
        traffic=TrafficSpec(shots=shots, chunk_size=max(1, shots // 2)),
        cluster=ClusterSpec(
            feedlines=feedlines, executor="serial", qubits_per_feedline=2
        ),
        batching=BatchingSpec(batch_size=max(1, shots // 4)),
        calibration=CalibrationSpec(),
        drift=(
            DriftSpec(if_detune_ghz_per_kshot=8e-5)
            if drifting
            else DriftSpec()
        ),
        recalibration=RecalibrationSpec(
            enabled=recalibrate,
            threshold=threshold,
            cooldown_runs=cooldown_runs,
            **recal_overrides,
        ),
    )


class TestDriftSpecSections:
    def test_round_trip_with_drift_sections(self):
        spec = _drift_spec(True)
        assert ServeSpec.from_dict(spec.to_dict()) == spec
        assert ServeSpec.from_file is not None
        payload = json.loads(json.dumps(spec.to_dict()))
        assert payload["drift"]["if_detune_ghz_per_kshot"] == 8e-5
        assert payload["recalibration"]["enabled"] is True

    def test_sections_validate_exhaustively(self):
        with pytest.raises(ConfigurationError) as excinfo:
            ServeSpec.from_dict({
                "drift": {"t1_decay_per_kshot": -1, "bogus": 2},
                "recalibration": {"threshold": 0, "cooldown_runs": -1},
            })
        message = str(excinfo.value)
        for fragment in (
            "drift.t1_decay_per_kshot",
            "drift.bogus",
            "recalibration.threshold",
            "recalibration.cooldown_runs",
        ):
            assert fragment in message, fragment

    def test_null_drift_spec_builds_no_model(self):
        assert DriftSpec().model() is None
        model = DriftSpec(if_detune_ghz_per_kshot=1e-4).model()
        assert isinstance(model, DriftModel)
        assert model.if_detune_ghz_per_kshot == 1e-4

    def test_recal_threshold_reaches_pipeline_config(self):
        spec = _drift_spec(True, threshold=0.123, min_shots=7)
        config = spec.pipeline_config()
        assert config.drift_threshold == 0.123
        assert config.drift_min_shots == 7


class TestDriftServiceEndToEnd:
    """The acceptance scenario: degrade without recal, recover with it."""

    @pytest.fixture(scope="class")
    def scenario(self):
        profile = tiny_profile()
        with ReadoutService(
            _drift_spec(False, drifting=False), profile=profile
        ) as service:
            baseline = service.run().accuracy

        with ReadoutService(_drift_spec(False), profile=profile) as service:
            degraded = [service.run() for _ in range(6)]
            degraded_stats = dataclasses.replace(service.stats)

        with ReadoutService(_drift_spec(True), profile=profile) as service:
            recovered = []
            for _ in range(6):
                recovered.append(service.run())
                if service.stats.runs[-1].recalibrated:
                    break
            final = service.run()
            recovered.append(final)
            recal_stats = service.stats
            versions = service.artifact_versions()
            registry_keys = list(
                CalibrationRegistry(service.registry_dir).keys()
            )
        return {
            "baseline": baseline,
            "degraded": degraded,
            "degraded_stats": degraded_stats,
            "recovered": recovered,
            "recal_stats": recal_stats,
            "versions": versions,
            "registry_keys": registry_keys,
        }

    def test_without_recal_accuracy_degrades(self, scenario):
        accuracies = [r.accuracy for r in scenario["degraded"]]
        assert scenario["baseline"] - accuracies[-1] > 0.05
        assert accuracies[-1] == min(accuracies[0], accuracies[-1])
        assert scenario["degraded_stats"].recalibrations == 0

    def test_drift_score_rises_and_alarms(self, scenario):
        reports = scenario["degraded"]
        assert reports[-1].drift_score > reports[0].drift_score
        assert reports[-1].drift_alarm is True

    def test_alarm_triggers_recal_and_accuracy_recovers(self, scenario):
        stats = scenario["recal_stats"]
        assert stats.recalibrations >= 1
        assert stats.recal_seconds > 0
        assert any(run.recalibrated for run in stats.runs)
        # Zero dropped runs: every attempted run completed and scored.
        assert stats.n_runs == len(scenario["recovered"])
        # The freshly recalibrated final run is back within 1% of the
        # cold-calibrated baseline (the acceptance criterion).
        final = scenario["recovered"][-1].accuracy
        assert scenario["baseline"] - final <= 0.01
        # And it beats the no-recal arm at the same point by a lot.
        assert final > scenario["degraded"][
            len(scenario["recovered"]) - 1
        ].accuracy

    def test_recal_hot_swaps_a_new_artifact_version(self, scenario):
        assert scenario["versions"]["feedline-0"] >= 1
        versions_on_disk = {key.version for key in scenario["registry_keys"]}
        assert 0 in versions_on_disk, "cold artifact keeps serving history"
        assert max(versions_on_disk) >= 1, "superseding version stored"

    def test_run_stats_surface_drift_fields(self, scenario):
        payload = scenario["recal_stats"].to_dict()
        run0 = payload["runs"][0]
        assert {"drift_score", "drift_alarm", "recalibrated"} <= set(run0)
        assert payload["recalibrations"] == scenario[
            "recal_stats"
        ].recalibrations


class TestDriftServiceMechanics:
    def test_recal_respects_cooldown_and_cap(self):
        # A threshold of ~0 alarms every run; cooldown and the cap must
        # still pace the refits.
        spec = _drift_spec(
            True,
            shots=60,
            threshold=1e-6,
            cooldown_runs=2,
            max_recalibrations=1,
            min_shots=0,
        )
        with ReadoutService(spec, profile=fast_profile()) as service:
            for _ in range(5):
                service.run()
            stats = service.stats
        assert stats.recalibrations == 1, "cap respected"
        flags = [run.recalibrated for run in stats.runs]
        assert flags[0] is True, "first alarming run recalibrates"
        assert sum(flags) == 1

    def test_multi_feedline_recal_through_the_pool(self, monkeypatch):
        from repro.discriminators.mlr import MLRDiscriminator

        fits = []
        original_fit = MLRDiscriminator.fit

        def counting_fit(self, corpus, indices):
            fits.append(1)
            return original_fit(self, corpus, indices)

        monkeypatch.setattr(MLRDiscriminator, "fit", counting_fit)
        # The ~0 threshold alarms every run; cap recals at one so the
        # second run isolates pure serving of the new versions.
        spec = _drift_spec(
            True, feedlines=2, shots=60, threshold=1e-6, min_shots=0,
            max_recalibrations=1,
        )
        with ReadoutService(spec, profile=fast_profile()) as service:
            service.run()  # alarms -> recalibrates both feedlines
            assert service.stats.recalibrations == 1
            assert service.artifact_versions() == {
                "feedline-0": 1,
                "feedline-1": 1,
            }
            registry = CalibrationRegistry(service.registry_dir)
            versions = {key.version for key in registry.keys()}
            assert versions == {0, 1}
            fits_after_recal = len(fits)
            report = service.run()  # serves the new versions, no refit
            assert len(fits) == fits_after_recal, (
                "post-recal runs must serve the recalibrated artifacts "
                "without fitting"
            )
        assert fits_after_recal == 4, "2 warm fits + 2 recal fits"
        assert report.n_shots == 120

    def test_recal_shot_budget_shrinks_the_refit_corpus(self, monkeypatch):
        from repro.data import synthetic

        sizes = []
        original = synthetic.generate_corpus

        def recording(chip, shots_per_state, **kwargs):
            sizes.append(shots_per_state)
            return original(chip, shots_per_state=shots_per_state, **kwargs)

        monkeypatch.setattr(synthetic, "generate_corpus", recording)
        monkeypatch.setattr(
            "repro.pipeline.runner.generate_corpus", recording
        )
        spec = _drift_spec(
            True, shots=60, threshold=1e-6, min_shots=0, shot_budget=5
        )
        with ReadoutService(spec, profile=fast_profile()) as service:
            service.run()
            assert service.stats.recalibrations == 1
        assert sizes[0] == 10, "warm-up uses the profile's sizing"
        assert sizes[-1] == 5, "recal uses the spec's shot budget"

    def test_stationary_session_with_recal_enabled_never_refits(self):
        # Needs the properly trained profile: an undertrained model's
        # live behavior genuinely diverges from its training-time
        # reference, which the monitor rightly reports as drift.
        spec = _drift_spec(True, drifting=False, shots=200, threshold=0.1)
        with ReadoutService(spec, profile=tiny_profile()) as service:
            for _ in range(3):
                report = service.run()
            stats = service.stats
        assert stats.recalibrations == 0
        assert report.drift_alarm is False
        assert service.artifact_versions() == {"feedline-0": 0}

    def test_recal_never_serves_a_stale_version_across_sessions(
        self, tmp_path, monkeypatch
    ):
        # Regression: with a persistent registry, session 2's first
        # recalibration used to pick version (in-memory 0) + 1 = 1 —
        # which session 1 already stored — and get_or_fit served
        # session 1's artifact as a warm hit instead of refitting
        # against the device as it has drifted *now*.
        from repro.discriminators.mlr import MLRDiscriminator

        fits = []
        original_fit = MLRDiscriminator.fit

        def counting_fit(self, corpus, indices):
            fits.append(1)
            return original_fit(self, corpus, indices)

        monkeypatch.setattr(MLRDiscriminator, "fit", counting_fit)
        spec = dataclasses.replace(
            _drift_spec(True, shots=60, threshold=1e-6, min_shots=0),
            calibration=CalibrationSpec(
                registry_dir=str(tmp_path / "registry")
            ),
        )
        with ReadoutService(spec, profile=fast_profile()) as service:
            service.run()
            assert service.stats.recalibrations == 1
        assert len(fits) == 2, "session 1: cold fit + recal fit"

        with ReadoutService(spec, profile=fast_profile()) as service:
            service.run()
            assert service.stats.recalibrations == 1
            registry = CalibrationRegistry(service.registry_dir)
            versions = {key.version for key in registry.keys()}
        assert len(fits) == 3, (
            "session 2's recalibration must fit a fresh snapshot, not "
            "serve session 1's stored version as a warm hit"
        )
        assert versions == {0, 1, 2}

    def test_session_shots_clock_accumulates_and_resets(self):
        spec = _drift_spec(False, drifting=True, shots=60)
        service = ReadoutService(spec, profile=fast_profile())
        try:
            service.run()
            service.run(shots=40)
            assert service.session_shots == 100
            service.close()
            service.run()
            assert service.session_shots == 60, "re-warm restarts the clock"
        finally:
            service.close()


class TestServeCliDriftFlags:
    @pytest.fixture()
    def spec_file(self, tmp_path):
        spec = ServeSpec(
            traffic=TrafficSpec(shots=60, chunk_size=30),
            cluster=ClusterSpec(qubits_per_feedline=2),
            batching=BatchingSpec(batch_size=30),
            calibration=CalibrationSpec(
                registry_dir=str(tmp_path / "registry")
            ),
        )
        return str(spec.to_file(tmp_path / "spec.json"))

    def test_drift_demo_flag_enables_injection_and_recal(
        self, capsys, tmp_path, spec_file
    ):
        import repro.cli as cli

        out_path = tmp_path / "session.json"
        code = cli.main([
            "serve", "--spec", spec_file, "--repeat", "2",
            "--drift-demo", "--json", str(out_path),
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["spec"]["drift"] == DEMO_DRIFT.to_dict()
        assert payload["spec"]["recalibration"]["enabled"] is True
        assert all(
            run["drift_score"] is not None
            for run in payload["service"]["runs"]
        )

    def test_individual_drift_flags_override_the_spec(
        self, capsys, tmp_path, spec_file
    ):
        import repro.cli as cli

        out_path = tmp_path / "session.json"
        code = cli.main([
            "serve", "--spec", spec_file,
            "--drift-if-detune", "1e-4",
            "--drift-threshold", "0.5",
            "--json", str(out_path),
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["spec"]["drift"]["if_detune_ghz_per_kshot"] == 1e-4
        assert payload["spec"]["recalibration"]["threshold"] == 0.5
        assert payload["spec"]["recalibration"]["enabled"] is False

    def test_drift_no_recal_keeps_recovery_off(
        self, capsys, tmp_path, spec_file
    ):
        import repro.cli as cli

        out_path = tmp_path / "session.json"
        code = cli.main([
            "serve", "--spec", spec_file, "--drift-demo",
            "--drift-no-recal", "--json", str(out_path),
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["spec"]["recalibration"]["enabled"] is False

    def test_drift_no_recal_overrides_a_spec_that_enables_it(
        self, capsys, tmp_path
    ):
        # Regression: the flag used to merely skip *enabling* — a spec
        # with recalibration already on silently recalibrated anyway.
        import repro.cli as cli

        spec = ServeSpec(
            traffic=TrafficSpec(shots=60, chunk_size=30),
            cluster=ClusterSpec(qubits_per_feedline=2),
            batching=BatchingSpec(batch_size=30),
            calibration=CalibrationSpec(
                registry_dir=str(tmp_path / "registry")
            ),
            recalibration=RecalibrationSpec(enabled=True),
        )
        spec_file = str(spec.to_file(tmp_path / "spec.json"))
        out_path = tmp_path / "session.json"
        code = cli.main([
            "serve", "--spec", spec_file, "--drift-no-recal",
            "--json", str(out_path),
        ])
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["spec"]["recalibration"]["enabled"] is False
        assert payload["service"]["recalibrations"] == 0
