"""Project-contract lint rules for the serving stack.

Each rule machine-checks one invariant the runtime's correctness
arguments lean on (see ROADMAP "Calibration-registry contract"):

- ``fit-once`` — discriminator training happens only in the calibration
  layers; serving code must go through the registry.
- ``frozen-spec`` — frozen spec dataclasses are immutable outside their
  own ``__post_init__``.
- ``json-finite`` — ``to_dict``/``summary`` payloads route NaN-capable
  floats through the :func:`repro._util.json_finite` helper so strict
  JSON never sees a ``NaN``/``Infinity`` literal.
- ``no-pickle-fitted`` — fitted models cross process boundaries only as
  registry artifacts (``save_artifacts``/``load_artifacts``), never via
  pickle.
- ``broad-except`` — bare and blanket exception handlers are accepted
  only with an explicit pragma (or when they re-raise).
- ``all-consistency`` — module ``__all__`` lists match the names the
  module actually binds.
- ``guarded-by`` — attributes a lock-owning class mutates under
  ``with self.<lock>`` are never mutated outside it (a data race).
- ``blocking-under-lock`` — executor ``.map``/``.result``, ``flock``,
  socket ``recv``, and ``sleep`` never sit lexically inside a lock body.
- ``no-hidden-copy`` — the hot-path modules (``repro.dsp``,
  ``repro.pipeline.{stages,buffers,shm}``) perform no allocating array
  ops (``np.concatenate``, fancy indexing, ``.copy()``/``.astype``)
  without a pragma.

False positives are suppressed at the site with
``# repro: allow(<rule>) <reason>`` (see :mod:`repro.analysis.findings`).
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePosixPath

from repro.analysis.checker import Checker, register_rule

__all__ = [
    "FitOnceChecker",
    "FrozenSpecChecker",
    "JsonFiniteChecker",
    "NoPickleFittedChecker",
    "BroadExceptChecker",
    "AllConsistencyChecker",
    "GuardedByChecker",
    "BlockingUnderLockChecker",
    "NoHiddenCopyChecker",
]


def _module_path(path: str) -> str:
    """The path in posix form, for suffix/segment matching."""
    return PurePosixPath(path).as_posix()


class _FunctionStackChecker(Checker):
    """Checker tracking the enclosing (possibly nested) function names."""

    def __init__(self, path, source, tree):
        super().__init__(path, source, tree)
        self._function_stack: list[str] = []

    def _visit_function(self, node):
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


#: Directories/modules where discriminator training is the *job*:
#: the discriminator implementations, the classical-ML primitives they
#: build on, the offline experiment calibrations, and the two pipeline
#: modules that are the sanctioned prefit/recalibration paths.
_FIT_ALLOWED_SEGMENTS = ("repro/ml/", "repro/discriminators/", "repro/experiments/")
_FIT_ALLOWED_SUFFIXES = ("repro/pipeline/registry.py", "repro/pipeline/runner.py")


@register_rule
class FitOnceChecker(_FunctionStackChecker):
    """Training calls are confined to the calibration layers.

    Serving code (``serve/``, ``fleet/``, ``pipeline/cluster.py``, the
    CLI, ...) must obtain fitted models through
    ``CalibrationRegistry.get_or_fit`` / ``fit_or_load_discriminator``
    so the fit-once contract stays enforceable in one place. A ``.fit``
    method call or a ``get_trained`` call anywhere else is a finding.
    """

    rule = "fit-once"
    description = (
        "no Discriminator.fit()/get_trained outside the calibration layers"
    )

    def _allowed_here(self) -> bool:
        path = _module_path(self.path)
        return any(seg in path for seg in _FIT_ALLOWED_SEGMENTS) or any(
            path.endswith(suffix) for suffix in _FIT_ALLOWED_SUFFIXES
        )

    def visit_Call(self, node: ast.Call) -> None:
        if not self._allowed_here():
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "fit":
                self.report(
                    node,
                    "direct .fit() call outside the calibration layers; "
                    "serve fitted models through CalibrationRegistry."
                    "get_or_fit / fit_or_load_discriminator",
                )
            elif isinstance(func, ast.Name) and func.id == "get_trained":
                self.report(
                    node,
                    "get_trained() outside the calibration layers; warm "
                    "serving paths must load registry artifacts instead "
                    "of retraining",
                )
        self.generic_visit(node)


#: Spec-looking receiver names: ``spec.shots = 3``, ``serve_spec.x = y``.
_SPEC_NAME = re.compile(r"^(spec|[a-z0-9_]*_spec)$")


@register_rule
class FrozenSpecChecker(_FunctionStackChecker):
    """No mutation of frozen spec dataclasses outside ``__post_init__``.

    ``object.__setattr__`` is the one sanctioned way to initialize a
    frozen dataclass field, and only from ``__post_init__``; anywhere
    else it is an end-run around immutability. Plain attribute
    assignment onto a spec-named receiver (``spec.shots = n``) is the
    same bug without the ceremony — new values must go through
    ``dataclasses.replace``.
    """

    rule = "frozen-spec"
    description = (
        "no object.__setattr__ outside __post_init__, no spec field "
        "assignment"
    )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
            and "__post_init__" not in self._function_stack
        ):
            self.report(
                node,
                "object.__setattr__ outside __post_init__ defeats frozen-"
                "dataclass immutability; build a new instance with "
                "dataclasses.replace instead",
            )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def _check_target(self, target: ast.expr) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and _SPEC_NAME.match(target.value.id)
        ):
            self.report(
                target,
                f"assignment to {target.value.id}.{target.attr} mutates a "
                "spec; specs are frozen — derive a new one with "
                "dataclasses.replace",
            )


#: Attribute/call names whose values are NaN- or inf-capable floats.
_NAN_CAPABLE = re.compile(
    r"(?:^|_)(?:p50|p95|p99|percentile|nan|inf|margin)(?:_|$)|per_shot",
    re.IGNORECASE,
)

#: Call names accepted as the NaN/inf-safe JSON routing helper.
_SAFE_WRAPPERS = {"json_finite", "_json_finite"}


@register_rule
class JsonFiniteChecker(_FunctionStackChecker):
    """``to_dict``/``summary`` payloads wrap NaN-capable floats.

    Percentiles, per-shot latencies, and margins are NaN by design on
    empty runs; ``json.dumps`` happily renders them as the non-strict
    ``NaN`` literal that downstream strict parsers reject. Any dict
    value inside a ``to_dict``/``summary`` function that references a
    NaN-capable name must route through
    :func:`repro._util.json_finite` (or a ``_json_finite`` shim).
    """

    rule = "json-finite"
    description = (
        "to_dict/summary dict values route NaN-capable floats through "
        "json_finite"
    )

    _PAYLOAD_FUNCTIONS = ("to_dict", "summary")

    def visit_Dict(self, node: ast.Dict) -> None:
        if any(
            name in self._function_stack for name in self._PAYLOAD_FUNCTIONS
        ):
            for value in node.values:
                culprit = self._unwrapped_nan_source(value)
                if culprit is not None:
                    self.report(
                        value,
                        f"dict value references NaN-capable {culprit!r} "
                        "without routing through json_finite — strict "
                        "JSON cannot carry NaN/Infinity",
                    )
        self.generic_visit(node)

    def _unwrapped_nan_source(self, node: ast.expr) -> str | None:
        """The first NaN-capable reference not inside a safe wrapper."""
        if isinstance(node, ast.Call):
            func = node.func
            func_name = (
                func.attr if isinstance(func, ast.Attribute) else
                func.id if isinstance(func, ast.Name) else ""
            )
            if func_name in _SAFE_WRAPPERS:
                return None  # wrapped: everything inside is routed
            if func_name == "float" and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    if arg.value.lstrip("+-").lower() in ("nan", "inf", "infinity"):
                        return f"float({arg.value!r})"
        name = None
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        if name is not None and _NAN_CAPABLE.search(name):
            return name
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                culprit = self._unwrapped_nan_source(child)
                if culprit is not None:
                    return culprit
        return None


@register_rule
class NoPickleFittedChecker(Checker):
    """Fitted models never travel by pickle.

    The process-shard design rebuilds discriminators from calibration
    artifacts (``save_artifacts``/``load_artifacts``); pickling fitted
    state couples workers to in-memory object layout and silently
    bypasses the registry's versioning. Any ``pickle`` import or
    ``pickle.*`` call is a finding.
    """

    rule = "no-pickle-fitted"
    description = (
        "no pickle use; fitted state crosses processes as registry "
        "artifacts"
    )

    _MESSAGE = (
        "pickle is banned in the serving stack: fitted discriminators "
        "cross process boundaries only via save_artifacts/load_artifacts"
    )

    def visit_Import(self, node: ast.Import) -> None:
        if any(alias.name.split(".")[0] == "pickle" for alias in node.names):
            self.report(node, self._MESSAGE)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None and node.module.split(".")[0] == "pickle":
            self.report(node, self._MESSAGE)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "pickle"
        ):
            self.report(node, self._MESSAGE)
        self.generic_visit(node)


@register_rule
class BroadExceptChecker(Checker):
    """Blanket exception handlers need an explicit pragma.

    Bare ``except:``, ``except Exception``, and ``except BaseException``
    swallow programming errors with the failures they meant to contain.
    A handler whose body re-raises (a bare ``raise`` statement) is the
    sanctioned cleanup-then-propagate idiom and passes; everything else
    must carry ``# repro: allow(broad-except) <reason>`` on the
    ``except`` line.
    """

    rule = "broad-except"
    description = "bare/except Exception handlers require a pragma"

    _BROAD = ("Exception", "BaseException")

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._is_broad(node.type) and not self._reraises(node):
            caught = "bare except" if node.type is None else (
                f"except {ast.unparse(node.type)}"
            )
            self.report(
                node,
                f"{caught} without re-raise; narrow the exception or "
                "pragma the site with the reason it must stay broad",
            )
        self.generic_visit(node)

    def _is_broad(self, annotation: ast.expr | None) -> bool:
        if annotation is None:
            return True
        names = (
            annotation.elts
            if isinstance(annotation, ast.Tuple)
            else [annotation]
        )
        return any(
            isinstance(name, ast.Name) and name.id in self._BROAD
            for name in names
        )

    def _reraises(self, handler: ast.ExceptHandler) -> bool:
        for stmt in ast.walk(handler):
            if isinstance(stmt, ast.Raise) and stmt.exc is None:
                return True
        return False


@register_rule
class AllConsistencyChecker(Checker):
    """``__all__`` matches the names the module actually binds.

    Two drifts are findings: an ``__all__`` entry naming nothing the
    module binds at top level (dead export — an importer gets
    ``AttributeError`` from ``import *``), and a public top-level class
    or function missing from an ``__all__`` the module declares (a
    silent non-export). Modules without ``__all__`` are not checked.
    """

    rule = "all-consistency"
    description = "__all__ entries exist; public defs are exported"

    def finish(self) -> None:
        exported = self._declared_all()
        if exported is None:
            return
        all_node, names = exported
        bound = self._bound_names()
        for name in names:
            if name not in bound:
                self.report(
                    all_node,
                    f"__all__ exports {name!r} but the module never binds "
                    "it at top level",
                )
        for node in self.tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if not node.name.startswith("_") and node.name not in names:
                    self.report(
                        node,
                        f"public {type(node).__name__.replace('Def', '').lower()} "
                        f"{node.name!r} is missing from __all__",
                    )

    def _declared_all(self) -> "tuple[ast.AST, list[str]] | None":
        for node in self.tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            if any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in targets
            ):
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple)):
                    names = [
                        elt.value
                        for elt in value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    ]
                    return node, names
        return None

    def _bound_names(self) -> set[str]:
        """Names bound at module top level (one level into If/Try)."""
        bound: set[str] = set()

        def scan(body) -> None:
            for node in body:
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    bound.add(node.name)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        for name in ast.walk(target):
                            if isinstance(name, ast.Name):
                                bound.add(name.id)
                elif isinstance(node, ast.AnnAssign):
                    if isinstance(node.target, ast.Name):
                        bound.add(node.target.id)
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        bound.add(
                            alias.asname or alias.name.split(".")[0]
                        )
                elif isinstance(node, ast.ImportFrom):
                    for alias in node.names:
                        bound.add(alias.asname or alias.name)
                elif isinstance(node, ast.If):
                    scan(node.body)
                    scan(node.orelse)
                elif isinstance(node, ast.Try):
                    scan(node.body)
                    scan(node.orelse)
                    scan(node.finalbody)
                    for handler in node.handlers:
                        scan(handler.body)

        scan(self.tree.body)
        return bound


#: Call names that construct locks: the project's ``trace_lock`` factory
#: plus the stdlib constructors it wraps.
_LOCK_FACTORY_NAMES = frozenset({"trace_lock", "Lock", "RLock"})

#: Receiver names that read as locks when used as ``with`` contexts
#: (``self._lock``, ``gate``, ``_MEMORY_CACHE_GUARD``, ``_fit_lock(...)``).
_LOCKISH_NAME = re.compile(
    r"(?:^|_)(?:lock|gate|guard|mutex)s?$", re.IGNORECASE
)


def _creates_lock(value: ast.expr) -> bool:
    """Whether an assigned value constructs a lock (possibly nested in
    an ``IfExp``, e.g. ``x if debug else trace_lock(...)``)."""
    for sub in ast.walk(value):
        if isinstance(sub, ast.Call):
            func = sub.func
            name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name)
                else ""
            )
            if name in _LOCK_FACTORY_NAMES:
                return True
    return False


def _lockish_context(expr: ast.expr) -> bool:
    """Whether a ``with`` item's context expression reads as a lock."""
    if isinstance(expr, ast.Call):
        return _lockish_context(expr.func)
    if isinstance(expr, ast.Attribute):
        return bool(_LOCKISH_NAME.search(expr.attr))
    if isinstance(expr, ast.Name):
        return bool(_LOCKISH_NAME.search(expr.id))
    return False


@register_rule
class GuardedByChecker(Checker):
    """Attributes guarded by a class's lock are never mutated bare.

    For every class that constructs a lock into a ``self`` attribute
    (``self._lock = trace_lock(...)`` / ``threading.Lock()``), collect
    each instance attribute the class mutates both *inside* a lexical
    ``with self.<lock>:`` body and *outside* one (``__init__`` and the
    other constructors are exempt — publication happens-before any
    reader). An attribute written on both sides is a data race: the
    unguarded writes are the findings. The matching is lexical —
    aliasing the lock into a local first hides it from this rule — so
    holding the idiom ``with self._lock:`` keeps the contract checkable.
    """

    rule = "guarded-by"
    description = (
        "attributes mutated under a class's own lock are never mutated "
        "outside it"
    )

    _CONSTRUCTORS = frozenset({"__init__", "__post_init__", "__new__"})

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._check_class(node)
        self.generic_visit(node)

    def _check_class(self, cls: ast.ClassDef) -> None:
        methods = [
            item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        lock_attrs = {
            target.attr
            for method in methods
            for stmt in ast.walk(method)
            if isinstance(stmt, ast.Assign) and _creates_lock(stmt.value)
            for target in stmt.targets
            if isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        }
        if not lock_attrs:
            return
        guarded: dict[str, list[ast.Attribute]] = {}
        unguarded: dict[str, list[ast.Attribute]] = {}
        for method in methods:
            if method.name in self._CONSTRUCTORS:
                continue
            self._scan(method.body, lock_attrs, guarded, unguarded, False)
        for attr in sorted(set(guarded) & set(unguarded)):
            for site in unguarded[attr]:
                self.report(
                    site,
                    f"self.{attr} is mutated under {cls.name}'s lock "
                    f"elsewhere but written here without it — a data "
                    "race; hold the lock here too (or pragma with the "
                    "happens-before argument)",
                )

    def _scan(
        self,
        body: list[ast.stmt],
        lock_attrs: set[str],
        guarded: dict[str, list[ast.Attribute]],
        unguarded: dict[str, list[ast.Attribute]],
        under_lock: bool,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                locked = under_lock or any(
                    self._is_self_lock(item.context_expr, lock_attrs)
                    for item in stmt.items
                )
                self._scan(stmt.body, lock_attrs, guarded, unguarded, locked)
                continue
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue  # closures run later, outside this lexical region
            targets: list[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, ast.AugAssign):
                targets = [stmt.target]
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets = [stmt.target]
            for target in targets:
                for leaf in self._self_attribute_targets(target):
                    if leaf.attr in lock_attrs:
                        continue
                    sink = guarded if under_lock else unguarded
                    sink.setdefault(leaf.attr, []).append(leaf)
            for field in ("body", "orelse", "finalbody"):
                block = getattr(stmt, field, None)
                if block:
                    self._scan(
                        block, lock_attrs, guarded, unguarded, under_lock
                    )
            for handler in getattr(stmt, "handlers", ()):
                self._scan(
                    handler.body, lock_attrs, guarded, unguarded, under_lock
                )
            for case in getattr(stmt, "cases", ()):
                self._scan(
                    case.body, lock_attrs, guarded, unguarded, under_lock
                )

    def _self_attribute_targets(self, target: ast.expr):
        if isinstance(target, ast.Attribute):
            if (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                yield target
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                yield from self._self_attribute_targets(elt)
        elif isinstance(target, ast.Starred):
            yield from self._self_attribute_targets(target.value)

    @staticmethod
    def _is_self_lock(expr: ast.expr, lock_attrs: set[str]) -> bool:
        return (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
            and expr.attr in lock_attrs
        )


#: Method calls that block on I/O, another task, or the clock.
_BLOCKING_METHOD_NAMES = frozenset(
    {"map", "result", "flock", "recv", "recv_into", "sleep"}
)

#: Bare-name calls that block (``from time import sleep``, ``from fcntl
#: import flock``).
_BLOCKING_BARE_NAMES = frozenset({"sleep", "flock"})


@register_rule
class BlockingUnderLockChecker(Checker):
    """No slow/blocking calls lexically inside a lock body.

    A critical section that dispatches to an executor (``.map`` /
    ``.result``), takes a file lock (``flock``), reads a socket
    (``recv``/``recv_into``), or sleeps holds every other thread out for
    the duration — and, when the blocked operation itself needs a lock,
    is one inversion away from deadlock. The detector is lexical: a
    ``with`` statement whose context reads as a lock (``self._lock``,
    ``gate``, ``_fit_lock(...)``) opens a region; the named blocking
    calls inside it are findings. Closures defined (not called) under
    the lock are exempt.
    """

    rule = "blocking-under-lock"
    description = (
        "no executor .map/.result, flock, socket recv, or sleep inside "
        "a lock body"
    )

    def __init__(self, path, source, tree):
        super().__init__(path, source, tree)
        self._lock_depth = 0

    def _visit_with(self, node):
        lockish = any(
            _lockish_context(item.context_expr) for item in node.items
        )
        if lockish:
            self._lock_depth += 1
        self.generic_visit(node)
        if lockish:
            self._lock_depth -= 1

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def _visit_function(self, node):
        saved, self._lock_depth = self._lock_depth, 0
        self.generic_visit(node)
        self._lock_depth = saved

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function
    visit_Lambda = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        if self._lock_depth and self._is_blocking(node.func):
            self.report(
                node,
                f"blocking call {ast.unparse(node.func)}() lexically "
                "inside a lock body; move the slow operation outside "
                "the critical section",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_blocking(func: ast.expr) -> bool:
        if isinstance(func, ast.Attribute):
            return func.attr in _BLOCKING_METHOD_NAMES
        if isinstance(func, ast.Name):
            return func.id in _BLOCKING_BARE_NAMES
        return False


#: Hot-path modules: every per-batch array allocation here is paid on
#: the serving fast path.
_HOT_PATH_SEGMENTS = ("repro/dsp/",)
_HOT_PATH_SUFFIXES = (
    "repro/pipeline/stages.py",
    "repro/pipeline/buffers.py",
    "repro/pipeline/shm.py",
)

#: Concatenation-family constructors that always allocate.
_COPYING_CONSTRUCTORS = frozenset({"concatenate", "vstack", "hstack"})


@register_rule
class NoHiddenCopyChecker(Checker):
    """No allocating array ops in the zero-copy hot-path modules.

    PR 8's speedup argument is that the warm serving loop performs no
    per-batch allocation: batches assemble into ``BufferRing`` slots and
    scores standardize in place. ``np.concatenate``/``vstack``/
    ``hstack``, ``.copy()``, ``.astype(...)``, and fancy indexing with a
    list literal all silently allocate and copy, so in ``repro.dsp`` and
    ``repro.pipeline.{stages,buffers,shm}`` each such call is a finding.
    Intentional cold-path sites (load-time kernel prep, the legacy
    reference chain) carry a pragma naming why the copy is off the hot
    path.
    """

    rule = "no-hidden-copy"
    description = (
        "no np.concatenate/.copy()/.astype/fancy-index allocation in "
        "hot-path modules"
    )

    def __init__(self, path, source, tree):
        super().__init__(path, source, tree)
        module = _module_path(path)
        self._hot = any(seg in module for seg in _HOT_PATH_SEGMENTS) or any(
            module.endswith(suffix) for suffix in _HOT_PATH_SUFFIXES
        )

    def visit_Call(self, node: ast.Call) -> None:
        if self._hot:
            func = node.func
            name = (
                func.attr if isinstance(func, ast.Attribute)
                else func.id if isinstance(func, ast.Name)
                else ""
            )
            if name in _COPYING_CONSTRUCTORS:
                self.report(
                    node,
                    f"{ast.unparse(func)}() allocates and copies every "
                    "batch; assemble into a BufferRing slot, or pragma a "
                    "cold-path site",
                )
            elif (
                name == "copy"
                and isinstance(func, ast.Attribute)
                and not node.args
                and not node.keywords
            ):
                self.report(
                    node,
                    f"{ast.unparse(func)}() duplicates the array; hot-"
                    "path stages reuse preallocated buffers — pragma if "
                    "this site is cold",
                )
            elif name == "astype" and isinstance(func, ast.Attribute):
                self.report(
                    node,
                    f"{ast.unparse(func)}(...) allocates a converted "
                    "copy; convert once at load time, or pragma a cold "
                    "site",
                )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._hot and self._is_fancy_index(node.slice):
            self.report(
                node,
                "fancy indexing materializes a copy (unlike basic "
                "slicing); gather once off the hot path, or pragma",
            )
        self.generic_visit(node)

    @staticmethod
    def _is_fancy_index(index: ast.expr) -> bool:
        if isinstance(index, ast.List):
            return True
        return isinstance(index, ast.Tuple) and any(
            isinstance(elt, ast.List) for elt in index.elts
        )
