"""Lint findings and the ``# repro: allow(<rule>)`` pragma protocol.

A :class:`Finding` names one contract violation at one source location.
Findings are suppressed per line with an inline pragma::

    except Exception:  # repro: allow(broad-except) corrupt artifact recovery

The pragma names one or more comma-separated rules; anything after the
closing parenthesis is a free-text reason (recorded nowhere, but the
convention is that a pragma without a reason is a review smell). A
pragma on the line a statement *starts* on covers findings reported
against that line only — blanket file-level suppression is deliberately
not offered, so every accepted violation stays visible at its site.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Finding", "pragma_allowances"]

#: Inline suppression pragma: ``# repro: allow(rule-a, rule-b) reason...``
_PRAGMA = re.compile(r"#\s*repro:\s*allow\(\s*([^)]*?)\s*\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        """The ``path:line:col: [rule] message`` compiler-style form."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def pragma_allowances(source: str) -> dict[int, set[str]]:
    """Map 1-based line numbers to the rule names allowed on them.

    Only lines carrying a pragma appear in the result. Malformed rule
    lists (empty parentheses) yield an empty set, which allows nothing —
    a typo'd pragma never silently widens into allow-everything.
    """
    allowances: dict[int, set[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(text)
        if match is None:
            continue
        rules = {
            rule.strip() for rule in match.group(1).split(",") if rule.strip()
        }
        allowances[lineno] = rules
    return allowances
