"""Table V — single-qubit three-level fidelity on the leak-prone qubits.

Paper (qubits 3 and 4): LDA 0.8966/0.9181, QDA 0.914/0.921, NN
0.939/0.926, OURS 0.959/0.930. The progression reflects feature quality:
LDA/QDA act on the integrated IQ point (the classic discriminant-analysis
readout), the NN adds qubit matched-filter scores, and OURS adds the
relaxation/excitation matched filters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.discriminators.features import MatchedFilterFeatureExtractor
from repro.dsp.demod import demodulate
from repro.dsp.filters import boxcar_decimate
from repro.dsp.mtv import mtv_points
from repro.experiments.common import (
    NN_LEARNING_RATE,
    get_readout_bundle,
    get_trained,
)
from repro.experiments.report import format_rows
from repro.ml import LinearDiscriminantAnalysis, QuadraticDiscriminantAnalysis
from repro.ml.dataset import StandardScaler
from repro.ml.nn import Adam, MLPClassifier, train_classifier

__all__ = ["Table5Result", "run_table5"]

#: Paper's qubit 3 and qubit 4 are indices 2 and 3.
LEAK_PRONE_QUBITS = (2, 3)

PAPER_VALUES = {
    2: {"lda": 0.8966, "qda": 0.914, "nn": 0.939, "ours": 0.959},
    3: {"lda": 0.9181, "qda": 0.921, "nn": 0.926, "ours": 0.930},
}


@dataclass(frozen=True)
class Table5Result(ExperimentResult):
    """Per-design single-qubit fidelities for the leak-prone qubits."""

    fidelities: dict  # {qubit: {design: fidelity}}

    def _measured(self) -> dict:
        return {
            f"qubit{q + 1}": dict(values)
            for q, values in sorted(self.fidelities.items())
        }

    def _paper_values(self) -> dict:
        return {f"qubit{q + 1}": dict(v) for q, v in PAPER_VALUES.items()}

    def format_table(self) -> str:
        rows = []
        for qubit, values in sorted(self.fidelities.items()):
            rows.append(
                (
                    f"Qubit {qubit + 1}",
                    values["lda"],
                    values["qda"],
                    values["nn"],
                    values["ours"],
                )
            )
        return format_rows(
            ("Qubit", "LDA", "QDA", "NN", "OURS"),
            rows,
            title="Table V: single-qubit three-level fidelity (leak-prone qubits)",
        )


def _mtv_features(bundle, qubit: int) -> np.ndarray:
    """Integrated IQ point of one qubit for every trace (2 features)."""
    corpus = bundle.corpus
    times = corpus.chip.sample_times(corpus.trace_len)
    baseband = demodulate(
        corpus.feedline, corpus.chip.qubits[qubit].if_frequency_ghz, times
    )
    return mtv_points(boxcar_decimate(baseband, 5))


@experiment("table5", tags=("fidelity",), paper_ref="Table V")
def run_table5(profile: Profile = QUICK) -> Table5Result:
    """Score LDA, QDA, a QMF-fed NN, and OURS per leak-prone qubit."""
    bundle = get_readout_bundle(profile)
    corpus = bundle.corpus
    tr, te = bundle.train_idx, bundle.test_idx

    # QMF-only features for the plain-NN column: each qubit's own three
    # qubit-matched-filter scores, without error filters or neighbor
    # information (the simplest NN discriminator).
    qmf_extractor = MatchedFilterFeatureExtractor(
        include_rmf=False, include_emf=False
    )
    qmf_train_all = qmf_extractor.fit_transform(corpus, tr)
    qmf_test_all = qmf_extractor.transform(corpus, te)
    scaler = StandardScaler()
    qmf_train_all = scaler.fit_transform(qmf_train_all)
    qmf_test_all = scaler.transform(qmf_test_all)

    ours = get_trained(profile, "ours")
    ours_levels = ours.discriminator.predict_qubit_levels(corpus, te)

    fidelities: dict[int, dict[str, float]] = {}
    for qubit in LEAK_PRONE_QUBITS:
        y_train = corpus.qubit_labels(qubit)[tr]
        y_test = corpus.qubit_labels(qubit)[te]

        mtv = _mtv_features(bundle, qubit)
        lda = LinearDiscriminantAnalysis().fit(mtv[tr], y_train)
        qda = QuadraticDiscriminantAnalysis().fit(mtv[tr], y_train)

        own = slice(3 * qubit, 3 * qubit + 3)
        qmf_train = qmf_train_all[:, own]
        qmf_test = qmf_test_all[:, own]
        nn = MLPClassifier(
            (qmf_train.shape[1], 8, 3),
            seed=profile.seed + 40 + qubit,
        )
        train_classifier(
            nn,
            qmf_train,
            y_train,
            epochs=profile.nn_epochs,
            batch_size=profile.batch_size,
            optimizer=Adam(NN_LEARNING_RATE),
            seed=profile.seed + 41 + qubit,
        )

        fidelities[qubit] = {
            "lda": float(np.mean(lda.predict(mtv[te]) == y_test)),
            "qda": float(np.mean(qda.predict(mtv[te]) == y_test)),
            "nn": float(np.mean(nn.predict(qmf_test) == y_test)),
            "ours": float(np.mean(ours_levels[:, qubit] == y_test)),
        }
    return Table5Result(fidelities=fidelities)
