"""ERASER leakage speculation (MICRO'23) and its multi-level extension.

ERASER watches stabilizer measurements: a leaked qubit randomizes its
adjacent stabilizers, so a data qubit whose neighboring syndromes are
persistently active over a short window is speculated to be leaked and
receives an LRC. ERASER+M additionally consumes *multi-level* ancilla
readout: an ancilla read as |2> is direct evidence of leakage on the
ancilla and of transport from its data neighbors, sharpening speculation
exactly as the paper's Table I / Table VI report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import check_random_state
from repro.exceptions import ConfigurationError
from repro.qec.leakage_sim import LeakageParams, LeakageSimulator
from repro.qec.lrc import LRCModel
from repro.qec.surface_code import RotatedSurfaceCode

__all__ = [
    "EraserConfig",
    "SpeculationReport",
    "run_eraser",
    "LevelStreamSpeculator",
]


@dataclass(frozen=True)
class EraserConfig:
    """Policy knobs for ERASER speculation.

    Parameters
    ----------
    window:
        Number of recent cycles of syndrome activity to accumulate.
    activity_threshold:
        Minimum active (flipped-neighborhood) cycles within the window to
        speculate a data qubit leaked.
    multi_level:
        Enable ERASER+M: consume the ancilla multi-level readout stream.
        Stabilizer bits of ancillas read as |2> are excluded from the
        activity signal (they are garbage), flagged ancillas receive a
        targeted LRC immediately, and repeated adjacent-|2> evidence
        (leakage transport) triggers data-qubit speculation directly.
    direct_evidence_cycles:
        Window cycles with adjacent ancilla-|2> readouts required for the
        direct-evidence path of ERASER+M.
    """

    window: int = 3
    activity_threshold: int = 2
    multi_level: bool = False
    direct_evidence_cycles: int = 2

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError("window must be >= 1")
        if self.activity_threshold < 1:
            raise ConfigurationError("activity_threshold must be >= 1")
        if self.direct_evidence_cycles < 1:
            raise ConfigurationError("direct_evidence_cycles must be >= 1")


@dataclass
class SpeculationReport:
    """Aggregated metrics over all shots of an ERASER run.

    Attributes
    ----------
    accuracy:
        Fraction of (data qubit, cycle) speculation calls that matched the
        ground-truth leakage flag.
    leakage_population:
        Mean fraction of leaked data qubits at the end of each shot.
    true_positive_rate, false_positive_rate:
        Speculation detection quality on the per-qubit-per-cycle calls.
    lrc_applications:
        Mean LRCs applied per shot.
    """

    accuracy: float
    leakage_population: float  # mean leaked-data fraction over all cycles
    true_positive_rate: float
    false_positive_rate: float
    lrc_applications: float
    n_shots: int = 0
    cycles: int = 0

    details: dict = field(default_factory=dict)


def _syndrome_activity(
    code: RotatedSurfaceCode,
    syndrome: np.ndarray,
    prev: np.ndarray,
    exclude: np.ndarray | None = None,
) -> np.ndarray:
    """Per-data-qubit activity bit: did >= 2 adjacent stabilizers flip?

    ``exclude`` marks stabilizers whose outcomes should be ignored —
    ERASER+M discards the bits of ancillas it has just read as leaked.
    """
    flips = (syndrome != prev).astype(np.int8)
    if exclude is not None:
        flips = flips.copy()
        flips[exclude] = 0
    activity = np.zeros(code.n_data, dtype=bool)
    for q in range(code.n_data):
        stabs = code.stabilizers_of_data(q)
        if sum(int(flips[s]) for s in stabs) >= 2:
            activity[q] = True
    return activity


class LevelStreamSpeculator:
    """ERASER+M's direct-evidence path over a *stream* of level readouts.

    The streaming readout runtime delivers per-shot multi-level labels; this
    consumer applies the same windowed policy ERASER+M uses on ancilla
    readouts (see :func:`run_eraser`): a qubit read as |2> accumulates
    direct leakage evidence, and ``direct_evidence_cycles`` hits inside a
    ``window``-cycle history trigger a speculation (an LRC request), which
    clears the qubit's accumulated evidence exactly as an applied LRC does.

    Unlike :func:`run_eraser`, which owns its own leakage simulator, this
    class is driven externally — it is the QEC-side endpoint of the
    ``repro.pipeline`` result sink.
    """

    def __init__(self, n_qubits: int, config: EraserConfig | None = None) -> None:
        if n_qubits < 1:
            raise ConfigurationError("n_qubits must be >= 1")
        self.config = config or EraserConfig(multi_level=True)
        self.n_qubits = n_qubits
        # Circular evidence window with running per-qubit sums: the sink
        # consumer path is latency-instrumented, so the per-shot update
        # must not reallocate the window.
        self._history = np.zeros((self.config.window, n_qubits), dtype=np.int64)
        self._sums = np.zeros(n_qubits, dtype=np.int64)
        self._pos = 0
        self.shots_seen = 0
        self.flags_per_qubit = np.zeros(n_qubits, dtype=np.int64)
        self.leaked_per_qubit = np.zeros(n_qubits, dtype=np.int64)

    @property
    def total_flags(self) -> int:
        """LRC requests issued so far."""
        return int(self.flags_per_qubit.sum())

    def update(self, levels: np.ndarray) -> np.ndarray:
        """Consume a batch of per-shot levels; returns speculation flags.

        Parameters
        ----------
        levels:
            Integer array (n_shots, n_qubits); each row is one readout
            cycle's multi-level labels.

        Returns
        -------
        Boolean array (n_shots, n_qubits): True where a leakage speculation
        (LRC request) fired on that cycle.
        """
        levels = np.asarray(levels)
        if levels.ndim != 2 or levels.shape[1] != self.n_qubits:
            raise ConfigurationError(
                f"levels must be (n_shots, {self.n_qubits}), got {levels.shape}"
            )
        flags = np.zeros(levels.shape, dtype=bool)
        window = self.config.window
        for i, row in enumerate(levels):
            evidence = (row == 2).astype(np.int64)
            self.leaked_per_qubit += evidence
            self._sums += evidence - self._history[self._pos]
            self._history[self._pos] = evidence
            self._pos = (self._pos + 1) % window
            fired = self._sums >= self.config.direct_evidence_cycles
            flags[i] = fired
            if fired.any():
                # The requested LRC resets the evidence, as in run_eraser.
                self._history[:, fired] = 0
                self._sums[fired] = 0
        self.shots_seen += levels.shape[0]
        self.flags_per_qubit += flags.sum(axis=0)
        return flags

    def summary(self) -> dict:
        """Aggregate counters for the pipeline report."""
        shots = max(self.shots_seen, 1)
        return {
            "shots_seen": self.shots_seen,
            "lrc_requests": self.total_flags,
            "lrc_rate": self.total_flags / shots,
            "leaked_readout_rate": float(self.leaked_per_qubit.sum())
            / (shots * self.n_qubits),
            "flags_per_qubit": [int(f) for f in self.flags_per_qubit],
        }


def run_eraser(
    code: RotatedSurfaceCode,
    cycles: int = 10,
    shots: int = 200,
    params: LeakageParams | None = None,
    config: EraserConfig | None = None,
    lrc: LRCModel | None = None,
    seed: int | np.random.Generator | None = None,
) -> SpeculationReport:
    """Run ERASER (or ERASER+M) speculation over repeated QEC cycles.

    Per cycle, each data qubit's recent syndrome activity (plus, for
    ERASER+M, adjacent-ancilla |2> readouts) is scored against the policy
    threshold; speculated qubits receive LRCs. Calls are scored against
    the simulator's ground truth to produce the paper's speculation
    accuracy, and the end-of-shot leakage population is averaged.
    """
    if cycles < 1 or shots < 1:
        raise ConfigurationError("cycles and shots must be >= 1")
    params = params or LeakageParams()
    config = config or EraserConfig()
    lrc = lrc or LRCModel()
    rng = check_random_state(seed)

    correct_calls = 0
    total_calls = 0
    true_positives = 0
    positives_truth = 0
    false_positives = 0
    negatives_truth = 0
    total_lrcs = 0
    population_sum = 0.0
    population_samples = 0

    neighbor_map = [code.stabilizers_of_data(q) for q in range(code.n_data)]

    for _ in range(shots):
        sim = LeakageSimulator(code, params, seed=rng)
        activity_history = np.zeros((config.window, code.n_data))
        evidence_history = np.zeros((config.window, code.n_data))
        prev_syndrome = np.zeros(code.n_ancilla, dtype=np.int8)
        for cycle in range(cycles):
            record = sim.run_cycle()
            if config.multi_level:
                leaked_ancillas = record.ancilla_level_readout == 2
                # The |2> readout flags these stabilizer bits as garbage;
                # exclude them from the data-qubit activity signal.
                activity = _syndrome_activity(
                    code, record.syndrome, prev_syndrome, exclude=leaked_ancillas
                ).astype(np.float64)
            else:
                leaked_ancillas = None
                activity = _syndrome_activity(
                    code, record.syndrome, prev_syndrome
                ).astype(np.float64)
            prev_syndrome = record.syndrome
            activity_history = np.roll(activity_history, -1, axis=0)
            activity_history[-1] = activity
            score = activity_history.sum(axis=0)

            if config.multi_level:
                direct = np.array(
                    [
                        any(leaked_ancillas[s] for s in neighbor_map[q])
                        for q in range(code.n_data)
                    ],
                    dtype=np.float64,
                )
                evidence_history = np.roll(evidence_history, -1, axis=0)
                evidence_history[-1] = direct
                evidence = evidence_history.sum(axis=0)
                # Syndrome path on the cleaned activity signal, plus a
                # direct path when transport evidence repeats.
                base = score >= config.activity_threshold
                strong_direct = evidence >= config.direct_evidence_cycles
                speculated = base | strong_direct
                # Targeted LRC on every ancilla read as leaked: the direct
                # benefit of multi-level readout.
                flagged = np.flatnonzero(leaked_ancillas)
                if flagged.size:
                    sim.ancilla_leaked = lrc.apply(
                        sim.ancilla_leaked, flagged, rng
                    )
                    total_lrcs += flagged.size
            else:
                speculated = score >= config.activity_threshold

            truth = record.data_leaked_truth
            correct_calls += int(np.sum(speculated == truth))
            total_calls += code.n_data
            true_positives += int(np.sum(speculated & truth))
            positives_truth += int(np.sum(truth))
            false_positives += int(np.sum(speculated & ~truth))
            negatives_truth += int(np.sum(~truth))

            targets = np.flatnonzero(speculated)
            if targets.size:
                sim.data_leaked = lrc.apply(sim.data_leaked, targets, rng)
                total_lrcs += targets.size
                # An applied LRC clears the accumulated evidence.
                activity_history[:, targets] = 0.0
                evidence_history[:, targets] = 0.0
            population_sum += sim.leakage_population
            population_samples += 1

    return SpeculationReport(
        accuracy=correct_calls / total_calls,
        leakage_population=population_sum / population_samples,
        true_positive_rate=(
            true_positives / positives_truth if positives_truth else 0.0
        ),
        false_positive_rate=(
            false_positives / negatives_truth if negatives_truth else 0.0
        ),
        lrc_applications=total_lrcs / shots,
        n_shots=shots,
        cycles=cycles,
    )
