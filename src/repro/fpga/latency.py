"""Pipeline latency model for the dense-NN datapath.

A fully parallel (reuse factor 1) dense network evaluates one layer per
clock, plus an input-registration stage and an output argmax stage:

    cycles = n_dense_layers * reuse_factor + 2

which reproduces the paper's published operating point — the 3-layer
design runs in 5 cycles (5 ns at 1 GHz, Sec VII.D). Larger reuse factors
serialize each layer's MACs over ``reuse_factor`` clocks, the standard
hls4ml area/latency trade.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigurationError

__all__ = [
    "pipeline_latency_cycles",
    "pipeline_latency_ns",
    "readout_decision_latency_ns",
]

_OVERHEAD_CYCLES = 2


def pipeline_latency_cycles(
    layer_sizes: Sequence[int], reuse_factor: int = 1
) -> int:
    """Clock cycles from input-valid to class-valid."""
    sizes = [int(s) for s in layer_sizes]
    if len(sizes) < 2:
        raise ConfigurationError("layer_sizes needs input and output widths")
    if reuse_factor < 1:
        raise ConfigurationError(f"reuse_factor must be >= 1, got {reuse_factor}")
    n_dense = len(sizes) - 1
    return n_dense * reuse_factor + _OVERHEAD_CYCLES


def pipeline_latency_ns(
    layer_sizes: Sequence[int],
    clock_ghz: float = 1.0,
    reuse_factor: int = 1,
) -> float:
    """Latency in nanoseconds at a given clock."""
    if clock_ghz <= 0:
        raise ConfigurationError(f"clock_ghz must be positive, got {clock_ghz}")
    return pipeline_latency_cycles(layer_sizes, reuse_factor) / clock_ghz


def readout_decision_latency_ns(
    integration_ns: float,
    layer_sizes: Sequence[int],
    clock_ghz: float = 1.0,
    reuse_factor: int = 1,
    filter_flush_cycles: int = 3,
) -> float:
    """Total time from probe-tone start to state decision.

    Matched filters stream alongside the ADC, so they add only a small
    pipeline flush after the last sample; the NN latency follows.
    """
    if integration_ns <= 0:
        raise ConfigurationError("integration_ns must be positive")
    if filter_flush_cycles < 0:
        raise ConfigurationError("filter_flush_cycles must be >= 0")
    nn_ns = pipeline_latency_ns(layer_sizes, clock_ghz, reuse_factor)
    return integration_ns + filter_flush_cycles / clock_ghz + nn_ns
