"""Programmatic execution: run one experiment or a concurrent suite.

:func:`run` executes a single registered experiment; :func:`run_suite`
resolves a mix of names/tags, executes the selected experiments on a
thread pool (they share the experiment layer's corpus and trained-model
caches, which serialize duplicate fits per key), and reports per-
experiment wall time. Results are deterministic for a fixed profile and
seed regardless of ``workers`` — every runner derives its randomness
from the profile, never from execution order.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.api.registry import ExperimentSpec, discover, experiments
from repro.api.results import ExperimentResult
from repro.config import Profile, get_profile
from repro.exceptions import ConfigurationError

__all__ = ["run", "run_suite", "SuiteEntry", "SuiteResult"]


def _resolve_profile(
    profile: str | Profile, seed: int | None = None
) -> Profile:
    resolved = (
        get_profile(profile) if isinstance(profile, str) else profile
    )
    if seed is not None:
        resolved = resolved.with_seed(seed)
    return resolved


def run(
    name: str,
    profile: str | Profile = "quick",
    *,
    seed: int | None = None,
    **kwargs,
) -> ExperimentResult:
    """Run one registered experiment by name.

    Parameters
    ----------
    name:
        Experiment name from :data:`repro.api.experiments`.
    profile:
        Profile name (``quick``/``full``/``paper``) or a
        :class:`Profile` instance.
    seed:
        Optional override of the profile's base seed.
    kwargs:
        Forwarded to the runner (e.g. ``distance=5`` for table1).
    """
    discover()
    if name not in experiments:
        known = ", ".join(experiments.names())
        raise ConfigurationError(
            f"unknown experiment {name!r}; expected one of: {known}"
        )
    return experiments[name].run(_resolve_profile(profile, seed), **kwargs)


@dataclass(frozen=True)
class SuiteEntry:
    """One experiment's outcome inside a suite run."""

    name: str
    seconds: float
    result: ExperimentResult


@dataclass(frozen=True)
class SuiteResult:
    """Results and wall times of one :func:`run_suite` call."""

    profile: str
    seed: int
    workers: int
    total_seconds: float
    entries: tuple[SuiteEntry, ...]

    @property
    def results(self) -> dict[str, ExperimentResult]:
        """Name -> result for every executed experiment."""
        return {e.name: e.result for e in self.entries}

    def to_dict(self, include_timings: bool = True) -> dict:
        """JSON-safe record of the whole suite.

        ``include_timings=False`` drops wall times, leaving a payload
        that is bit-for-bit reproducible at a fixed profile and seed.
        """
        payload: dict = {
            "profile": self.profile,
            "seed": self.seed,
            "results": {e.name: e.result.to_dict() for e in self.entries},
        }
        if include_timings:
            payload["workers"] = self.workers
            payload["total_seconds"] = self.total_seconds
            payload["seconds"] = {e.name: e.seconds for e in self.entries}
        return payload

    def format_table(self) -> str:
        """Per-experiment wall-time summary."""
        from repro.experiments.report import format_rows

        rows = [
            (e.name, f"{e.seconds:.2f}", len(e.result.deviations()))
            for e in self.entries
        ]
        table = format_rows(
            ("Experiment", "Seconds", "PaperValuesCompared"),
            rows,
            title=(
                f"suite: {len(self.entries)} experiments, profile "
                f"{self.profile} (seed {self.seed}), "
                f"{self.workers} worker(s)"
            ),
        )
        return f"{table}\ntotal wall time: {self.total_seconds:.2f} s"


def run_suite(
    names_or_tags: str | Iterable[str] | None = None,
    profile: str | Profile = "quick",
    *,
    tags: Iterable[str] | None = None,
    seed: int | None = None,
    workers: int = 1,
    on_result: Callable[[SuiteEntry], None] | None = None,
    **kwargs,
) -> SuiteResult:
    """Run a selection of experiments, optionally concurrently.

    Parameters
    ----------
    names_or_tags:
        Experiment names, tags, or ``"all"`` (any mix). ``None`` with no
        ``tags`` selects everything.
    profile, seed:
        Sizing profile (name or instance) and optional seed override,
        shared by every selected experiment.
    tags:
        Additional tag selectors, merged with ``names_or_tags`` (the
        keyword form used by ``run_suite(tags=["fidelity"])``).
    workers:
        Thread-pool width; independent experiments execute concurrently
        and share the corpus/trained-model caches.
    on_result:
        Called with each :class:`SuiteEntry` as it completes (so long
        suites can stream progress). With ``workers > 1`` the callback
        runs on worker threads, in completion order.
    kwargs:
        Forwarded to every runner (rarely useful for mixed suites).
    """
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    discover()
    selectors: list[str] = []
    if names_or_tags is not None:
        if isinstance(names_or_tags, str):
            selectors.append(names_or_tags)
        else:
            selectors.extend(names_or_tags)
    if tags is not None:
        selectors.extend(tags)
    if not selectors:
        selectors = ["all"]
    specs = experiments.select(selectors)
    resolved = _resolve_profile(profile, seed)

    def _run_one(spec: ExperimentSpec) -> SuiteEntry:
        start = time.perf_counter()
        result = spec.run(resolved, **kwargs)
        entry = SuiteEntry(
            name=spec.name,
            seconds=time.perf_counter() - start,
            result=result,
        )
        if on_result is not None:
            on_result(entry)
        return entry

    wall_start = time.perf_counter()
    if workers == 1 or len(specs) <= 1:
        entries = [_run_one(spec) for spec in specs]
    else:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            entries = list(pool.map(_run_one, specs))
    return SuiteResult(
        profile=resolved.name,
        seed=resolved.seed,
        workers=workers,
        total_seconds=time.perf_counter() - wall_start,
        entries=tuple(entries),
    )
