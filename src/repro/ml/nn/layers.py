"""Dense (fully connected) layer with explicit forward/backward passes."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.ml.nn.activations import get_activation
from repro.ml.nn.initializers import get_initializer

__all__ = ["Dense"]


class Dense:
    """A fully connected layer: ``a = act(x @ W + b)``.

    Parameters
    ----------
    n_in, n_out:
        Input and output widths.
    activation:
        Name of a registered activation (``relu``, ``tanh``, ``sigmoid``,
        ``identity``, ...). The network's final layer normally uses
        ``identity`` and defers softmax to the loss.
    initializer:
        Name of a registered weight initializer.
    rng:
        Generator used to draw the initial weights.
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        activation: str = "relu",
        initializer: str = "he_normal",
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_in <= 0 or n_out <= 0:
            raise ShapeError(f"layer dims must be positive, got ({n_in}, {n_out})")
        rng = rng if rng is not None else np.random.default_rng()
        self.n_in = int(n_in)
        self.n_out = int(n_out)
        self.activation = get_activation(activation)
        self.weights = get_initializer(initializer)(self.n_in, self.n_out, rng)
        self.bias = np.zeros(self.n_out)
        # Caches populated by forward(), consumed by backward().
        self._x: np.ndarray | None = None
        self._z: np.ndarray | None = None
        self._a: np.ndarray | None = None
        # Gradients populated by backward().
        self.grad_weights = np.zeros_like(self.weights)
        self.grad_bias = np.zeros_like(self.bias)

    @property
    def n_parameters(self) -> int:
        """Number of trainable scalars (weights + biases)."""
        return self.weights.size + self.bias.size

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Apply the layer to a batch ``x`` of shape (n_samples, n_in)."""
        if x.ndim != 2 or x.shape[1] != self.n_in:
            raise ShapeError(
                f"expected input of shape (*, {self.n_in}), got {x.shape}"
            )
        z = x @ self.weights + self.bias
        a = self.activation.forward(z)
        if training:
            self._x, self._z, self._a = x, z, a
        return a

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Back-propagate ``dL/da`` and return ``dL/dx``.

        Stores ``dL/dW`` and ``dL/db`` on the layer (averaged over the batch
        is *not* applied here; the loss is expected to already carry the 1/N
        factor).
        """
        if self._x is None or self._z is None or self._a is None:
            raise ShapeError("backward() called before forward(training=True)")
        dz = grad_out * self.activation.derivative(self._z, self._a)
        self.grad_weights = self._x.T @ dz
        self.grad_bias = dz.sum(axis=0)
        return dz @ self.weights.T

    def parameters(self) -> list[np.ndarray]:
        """Trainable arrays, in a stable order matched by :meth:`gradients`."""
        return [self.weights, self.bias]

    def gradients(self) -> list[np.ndarray]:
        """Gradient arrays aligned with :meth:`parameters`."""
        return [self.grad_weights, self.grad_bias]
