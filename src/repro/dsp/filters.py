"""Decimation and smoothing filters for demodulated traces."""

from __future__ import annotations

import numpy as np
from scipy import signal as sp_signal

from repro.exceptions import ConfigurationError, ShapeError

__all__ = ["boxcar_decimate", "moving_average", "fir_lowpass"]


def boxcar_decimate(traces: np.ndarray, factor: int) -> np.ndarray:
    """Average consecutive groups of ``factor`` samples.

    The workhorse decimator of readout DSP: cheap on an FPGA (an
    accumulator per channel) and near-optimal when the baseband bandwidth
    is far below the decimated rate. Trailing samples that do not fill a
    whole group are dropped, matching streaming-hardware behavior.
    """
    if factor < 1:
        raise ConfigurationError(f"factor must be >= 1, got {factor}")
    traces = np.asarray(traces)
    if traces.ndim not in (1, 2):
        raise ShapeError(f"traces must be 1-D or 2-D, got {traces.shape}")
    if factor == 1:
        return traces.copy()  # repro: allow(no-hidden-copy) caller-owned output, matches decimated branches
    length = traces.shape[-1]
    n_bins = length // factor
    if n_bins == 0:
        raise ShapeError(
            f"trace length {length} shorter than decimation factor {factor}"
        )
    trimmed = traces[..., : n_bins * factor]
    shape = trimmed.shape[:-1] + (n_bins, factor)
    return trimmed.reshape(shape).mean(axis=-1)


def moving_average(traces: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average along the time axis (same length out)."""
    if window < 1:
        raise ConfigurationError(f"window must be >= 1, got {window}")
    traces = np.asarray(traces)
    if window == 1:
        return traces.copy()  # repro: allow(no-hidden-copy) caller-owned output, matches convolved branches
    kernel = np.ones(window) / window
    if traces.ndim == 1:
        return np.convolve(traces, kernel, mode="same")
    if traces.ndim == 2:
        return np.apply_along_axis(
            lambda row: np.convolve(row, kernel, mode="same"), 1, traces
        )
    raise ShapeError(f"traces must be 1-D or 2-D, got {traces.shape}")


def fir_lowpass(
    traces: np.ndarray,
    cutoff_ghz: float,
    sample_rate_ghz: float,
    n_taps: int = 31,
) -> np.ndarray:
    """Linear-phase FIR low-pass along the time axis.

    Used where a sharper anti-alias response than the boxcar is needed
    (e.g. when neighboring readout tones sit close in frequency).
    """
    if n_taps < 3 or n_taps % 2 == 0:
        raise ConfigurationError(
            f"n_taps must be an odd integer >= 3, got {n_taps}"
        )
    nyquist = sample_rate_ghz / 2.0
    if not 0 < cutoff_ghz < nyquist:
        raise ConfigurationError(
            f"cutoff must be in (0, {nyquist}) GHz, got {cutoff_ghz}"
        )
    taps = sp_signal.firwin(n_taps, cutoff_ghz / nyquist)
    traces = np.asarray(traces)
    if traces.ndim == 1:
        return sp_signal.lfilter(taps, 1.0, traces)
    if traces.ndim == 2:
        return sp_signal.lfilter(taps, 1.0, traces, axis=1)
    raise ShapeError(f"traces must be 1-D or 2-D, got {traces.shape}")
