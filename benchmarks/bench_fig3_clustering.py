"""Fig 3 bench: MTV clouds, spectral leakage detection, and error traces.

Asserted shape: the clustering finds the naturally leaked shots (high
recall) with strong enrichment over the base rate, state mean traces are
distinct, and excitation-error traces are mined for the leak-prone qubit.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig3 import run_fig3


def test_fig3_leakage_clustering(benchmark, profile):
    result = run_once(benchmark, run_fig3, profile)
    print("\n" + result.format_table())
    assert result.detection_recall > 0.7
    base_rate = max(
        1e-9, result.cluster_sizes[2] and sum(result.cluster_sizes)
    )
    base_rate = result.cluster_sizes[2] / sum(result.cluster_sizes)
    # The flagged cluster is small and enriched in true leakage.
    assert base_rate < 0.15
    assert result.detection_precision > 0.1
    # Panel (c): the three state templates are mutually distinct.
    traces = result.state_mean_traces
    for a in range(3):
        for b in range(a + 1, 3):
            assert np.max(np.abs(traces[a] - traces[b])) > 0.05
    # Panel (d): the 1->2 excitation set exists on the leak-prone qubit.
    assert result.excitation_mean_traces[(1, 2)] is not None
