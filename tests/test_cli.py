"""CLI error paths, seed propagation, and the pipeline subcommand."""

from __future__ import annotations

import json

import pytest

import repro.cli as cli
from repro.api.registry import ExperimentSpec, discover, experiments
from repro.exceptions import ConfigurationError


def _fake_spec(name, seen):
    """A registry spec whose runner just records the profile it was given."""

    def fake_experiment(profile):
        seen["profile"] = profile

        class _Result:
            def format_table(self):
                return "fake"

        return _Result()

    return ExperimentSpec(name=name, runner=fake_experiment)


class TestExperimentErrorPaths:
    def test_unknown_experiment_exits_2(self, capsys):
        assert cli.main(["table99"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err
        assert "table99" in err

    def test_unknown_experiment_lists_known_ids(self, capsys):
        cli.main(["nope"])
        assert "table1" in capsys.readouterr().err

    def test_unknown_profile_raises(self):
        with pytest.raises(ConfigurationError, match="unknown profile"):
            cli.main(["sec7b", "--profile", "mega"])

    def test_list_includes_pipeline(self, capsys):
        assert cli.main(["list"]) == 0
        assert "pipeline" in capsys.readouterr().out


class TestSeedPropagation:
    def test_seed_override_reaches_experiment(self, capsys, monkeypatch):
        discover()
        seen = {}
        monkeypatch.setitem(experiments._specs, "sec7b", _fake_spec("sec7b", seen))
        assert cli.main(["sec7b", "--seed", "424242"]) == 0
        assert seen["profile"].seed == 424242
        assert seen["profile"].name == "quick"

    def test_default_profile_seed_preserved(self, capsys, monkeypatch):
        from repro.config import QUICK

        discover()
        seen = {}
        monkeypatch.setitem(experiments._specs, "sec7b", _fake_spec("sec7b", seen))
        assert cli.main(["sec7b"]) == 0
        assert seen["profile"].seed == QUICK.seed

    def test_run_subcommand_seed_override(self, capsys, monkeypatch):
        discover()
        seen = {}
        monkeypatch.setitem(experiments._specs, "sec7b", _fake_spec("sec7b", seen))
        assert cli.main(["run", "sec7b", "--seed", "7", "--workers", "2"]) == 0
        assert seen["profile"].seed == 7


class TestRunSubcommand:
    def test_run_single_experiment_json_schema(self, capsys, tmp_path):
        json_path = tmp_path / "sec7b.json"
        assert cli.main(["run", "sec7b", "--json", str(json_path)]) == 0
        payload = json.loads(json_path.read_text())
        assert set(payload) >= {"name", "profile", "measured", "paper", "deviations"}
        assert payload["name"] == "sec7b"
        assert payload["profile"] == "quick"
        assert "reduction" in payload["deviations"]

    def test_run_several_writes_suite_json(self, capsys, tmp_path):
        json_path = tmp_path / "suite.json"
        code = cli.main(
            ["run", "sec7b", "sec7d", "--json", str(json_path), "--workers", "2"]
        )
        assert code == 0
        payload = json.loads(json_path.read_text())
        assert set(payload["results"]) == {"sec7b", "sec7d"}
        assert "seconds" in payload

    def test_run_by_tag_selects_tagged_experiments(self, capsys, tmp_path):
        json_path = tmp_path / "fpga.json"
        assert cli.main(["run", "fpga", "--json", str(json_path)]) == 0
        payload = json.loads(json_path.read_text())
        assert set(payload["results"]) == {"fig1d", "fig5a", "sec7d", "headline"}

    def test_run_unknown_selector_exits_2(self, capsys):
        assert cli.main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_help_exits_0(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["run", "--help"])
        assert excinfo.value.code == 0
        assert "--workers" in capsys.readouterr().out


class TestListSubcommand:
    def test_list_tags_shows_tags_and_refs(self, capsys):
        assert cli.main(["list", "--tags"]) == 0
        out = capsys.readouterr().out
        assert "[qec,timing]" in out
        assert "Table I" in out
        assert "tags:" in out


@pytest.fixture(scope="module")
def shared_registry(tmp_path_factory):
    """One on-disk calibration registry reused across the CLI tests.

    The first pipeline test pays the single cold fit; later tests run warm.
    """
    return str(tmp_path_factory.mktemp("registry"))


class TestPipelineSubcommand:
    def test_pipeline_streams_and_writes_json(
        self, capsys, tmp_path, shared_registry
    ):
        json_path = tmp_path / "report.json"
        code = cli.main(
            [
                "pipeline",
                "--shots",
                "150",
                "--workers",
                "2",
                "--batch-size",
                "50",
                "--profile",
                "quick",
                "--registry",
                shared_registry,
                "--json",
                str(json_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "streaming readout pipeline" in out
        assert "shots/s" in out
        payload = json.loads(json_path.read_text())
        assert payload["n_shots"] == 150
        for stage in ("demod", "matched_filter", "discriminate", "sink"):
            assert stage in payload["stages"]

    def test_pipeline_warm_run_uses_registry(self, capsys, shared_registry):
        args = ["pipeline", "--shots", "60", "--registry", shared_registry]
        assert cli.main(args) == 0
        capsys.readouterr()
        assert cli.main(args) == 0
        assert "warm (loaded)" in capsys.readouterr().out

    def test_pipeline_rejects_bad_shots(self, tmp_path):
        with pytest.raises(ConfigurationError):
            cli.main(["pipeline", "--shots", "0", "--no-cache"])

    def test_pipeline_unknown_profile_raises(self):
        with pytest.raises(ConfigurationError, match="unknown profile"):
            cli.main(["pipeline", "--profile", "mega"])

    def test_pipeline_help_shows_pipeline_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["pipeline", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--shots" in out
        assert "--registry" in out
        assert "--feedlines" in out
        assert "--executor" in out
        assert "--adaptive-batching" in out

    def test_pipeline_multi_feedline_streams_and_writes_json(
        self, capsys, tmp_path
    ):
        json_path = tmp_path / "cluster.json"
        code = cli.main(
            [
                "pipeline",
                "--feedlines", "2",
                "--executor", "serial",
                "--qubits-per-feedline", "2",
                "--shots", "60",
                "--batch-size", "30",
                "--chunk-size", "30",
                "--adaptive-batching",
                "--no-cache",
                "--json", str(json_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "multi-feedline pipeline" in out
        assert "global throughput" in out
        payload = json.loads(json_path.read_text())
        assert payload["n_feedlines"] == 2
        assert payload["n_shots"] == 120
        assert payload["executor"] == "serial"
        assert set(payload["budget_verdicts"]) == set(payload["feedlines"])
        for feedline in payload["feedlines"].values():
            for stage in ("demod", "matched_filter", "discriminate", "sink"):
                assert stage in feedline["stages"]
            assert feedline["details"]["adaptive_batching"] is True

    def test_pipeline_rejects_unknown_executor(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["pipeline", "--feedlines", "2", "--executor", "gpu"])

    def test_pipeline_dispatches_with_options_first(self, capsys, shared_registry):
        code = cli.main(
            ["--profile", "quick", "pipeline", "--shots", "60",
             "--registry", shared_registry]
        )
        assert code == 0
        assert "streaming readout pipeline" in capsys.readouterr().out

    def test_pipeline_prune_size_bound_keeps_artifacts(
        self, capsys, shared_registry
    ):
        # A generous size bound evicts nothing.
        code = cli.main(
            ["pipeline", "--prune", "--registry", shared_registry,
             "--max-bytes", str(10**9)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "removed 0 artifact(s)" in out

    def test_pipeline_prune_without_bounds_clears_registry(
        self, capsys, shared_registry
    ):
        code = cli.main(["pipeline", "--prune", "--registry", shared_registry])
        assert code == 0
        out = capsys.readouterr().out
        assert "removed 1 artifact(s)" in out
        assert "remaining: 0 artifact(s), 0 bytes" in out


class TestRecordReplaySubcommands:
    @pytest.fixture(scope="class")
    def recorded_cli(self, tmp_path_factory):
        """One `repro record` run shared by the round-trip tests."""
        root = tmp_path_factory.mktemp("cli-record")
        corpus = root / "corpus"
        json_path = root / "record.json"
        code = cli.main(
            ["record", "--out", str(corpus), "--shots", "120",
             "--chunk-size", "60", "--qubits-per-feedline", "2",
             "--json", str(json_path)]
        )
        assert code == 0
        return corpus, json.loads(json_path.read_text())

    def test_record_writes_corpus_and_json_schema(
        self, recorded_cli, capsys
    ):
        corpus, payload = recorded_cli
        assert set(payload) == {"corpus", "report"}
        assert payload["corpus"]["format_version"] == 1
        assert payload["corpus"]["n_shots"] == 120
        assert payload["corpus"]["labeled"] is True
        assert payload["report"]["n_shots"] == 120
        assert (corpus / "manifest.json").is_file()

    def test_replay_reproduces_recorded_counts(
        self, recorded_cli, tmp_path, capsys
    ):
        corpus, recorded_payload = recorded_cli
        json_path = tmp_path / "replay.json"
        code = cli.main(
            ["replay", "--corpus", str(corpus),
             "--qubits-per-feedline", "2", "--json", str(json_path)]
        )
        assert code == 0
        assert "[replay]" in capsys.readouterr().out
        payload = json.loads(json_path.read_text())
        assert set(payload) == {"corpus", "report"}
        assert (
            payload["corpus"]["chip_sha"]
            == recorded_payload["corpus"]["chip_sha"]
        )
        assert (
            payload["report"]["assignment_counts"]
            == recorded_payload["report"]["assignment_counts"]
        )

    def test_replay_broadcasts_over_feedlines(self, recorded_cli, capsys):
        corpus, recorded_payload = recorded_cli
        code = cli.main(
            ["replay", "--corpus", str(corpus), "--feedlines", "2",
             "--executor", "serial", "--qubits-per-feedline", "2"]
        )
        assert code == 0
        assert "[replay]" in capsys.readouterr().out

    def test_record_prints_corpus_location(self, recorded_cli, capsys):
        corpus, _ = recorded_cli
        # The fixture already ran; a fresh run must refuse to overwrite.
        with pytest.raises(ConfigurationError):
            cli.main(
                ["record", "--out", str(corpus), "--shots", "60",
                 "--qubits-per-feedline", "2"]
            )

    def test_replay_missing_corpus_names_manifest(self, tmp_path):
        with pytest.raises(ConfigurationError, match="manifest.json"):
            cli.main(["replay", "--corpus", str(tmp_path / "nowhere")])

    def test_record_help_exits_0(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["record", "--help"])
        assert excinfo.value.code == 0
        assert "--out" in capsys.readouterr().out

    def test_replay_help_exits_0(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["replay", "--help"])
        assert excinfo.value.code == 0
        assert "--corpus" in capsys.readouterr().out

    def test_record_listed_in_repro_list(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "repro record" in out
        assert "repro replay" in out
