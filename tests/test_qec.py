"""Tests for the surface code, leakage dynamics, ERASER, and cycle time."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.qec import (
    EraserConfig,
    LeakageParams,
    LeakageSimulator,
    LRCModel,
    RotatedSurfaceCode,
    SurfaceCodeTiming,
    cycle_time_ns,
    cycle_time_reduction,
    run_eraser,
)


class TestSurfaceCode:
    @pytest.mark.parametrize("d", [3, 5, 7])
    def test_counts(self, d):
        code = RotatedSurfaceCode(d)
        assert code.n_data == d * d
        assert code.n_ancilla == d * d - 1

    @pytest.mark.parametrize("d", [3, 5])
    def test_stabilizer_weights(self, d):
        code = RotatedSurfaceCode(d)
        weights = [s.weight for s in code.stabilizers]
        assert set(weights) <= {2, 4}
        assert weights.count(2) == 2 * (d - 1)

    @pytest.mark.parametrize("d", [3, 5])
    def test_x_z_balance(self, d):
        code = RotatedSurfaceCode(d)
        assert len(code.x_stabilizers) == (d * d - 1) // 2
        assert len(code.z_stabilizers) == (d * d - 1) // 2

    @pytest.mark.parametrize("d", [3, 5])
    def test_css_commutation(self, d):
        """X and Z stabilizers must overlap on an even number of qubits."""
        code = RotatedSurfaceCode(d)
        for x_stab in code.x_stabilizers:
            for z_stab in code.z_stabilizers:
                assert code.overlap(x_stab, z_stab) % 2 == 0

    def test_every_data_qubit_has_stabilizers(self):
        code = RotatedSurfaceCode(5)
        for q in range(code.n_data):
            neighbors = code.stabilizers_of_data(q)
            assert 2 <= len(neighbors) <= 4

    def test_even_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            RotatedSurfaceCode(4)


class TestLRC:
    def test_deleaks_with_success_prob(self, rng):
        lrc = LRCModel(success_prob=1.0, induce_prob=0.0)
        leaked = np.array([True, True, False])
        out = lrc.apply(leaked, np.array([0, 1, 2]), rng)
        assert not out.any()

    def test_induces_leakage_on_clean_targets(self, rng):
        lrc = LRCModel(success_prob=1.0, induce_prob=1.0)
        leaked = np.zeros(3, dtype=bool)
        out = lrc.apply(leaked, np.array([1]), rng)
        assert out[1] and not out[0]

    def test_no_targets_is_noop(self, rng):
        lrc = LRCModel()
        leaked = np.array([True])
        out = lrc.apply(leaked, np.array([], dtype=int), rng)
        np.testing.assert_array_equal(out, leaked)

    def test_statistical_success_rate(self, rng):
        lrc = LRCModel(success_prob=0.7, induce_prob=0.0)
        leaked = np.ones(5000, dtype=bool)
        out = lrc.apply(leaked, np.arange(5000), rng)
        assert np.mean(~out) == pytest.approx(0.7, abs=0.03)


class TestLeakageSimulator:
    def test_leakage_accumulates_without_mitigation(self):
        code = RotatedSurfaceCode(5)
        sim = LeakageSimulator(code, LeakageParams(p_seep=0.0), seed=0)
        populations = []
        for _ in range(20):
            sim.run_cycle()
            populations.append(sim.leakage_population)
        assert populations[-1] > 0

    def test_leaked_data_qubit_randomizes_syndrome(self):
        code = RotatedSurfaceCode(5)
        params = LeakageParams(
            p_leak_gate=0.0, p_leak_measurement=0.0, p_transport=0.0,
            p_pauli=0.0, readout_error=0.0, p_seep=0.0,
        )
        sim = LeakageSimulator(code, params, seed=1)
        target = 12
        sim.inject_data_leakage(target)
        flips = np.zeros(code.n_ancilla)
        for _ in range(200):
            record = sim.run_cycle()
            flips += record.syndrome
        neighbors = code.stabilizers_of_data(target)
        for stab in range(code.n_ancilla):
            rate = flips[stab] / 200
            if stab in neighbors:
                assert rate == pytest.approx(0.5, abs=0.12)
            else:
                assert rate == 0.0

    def test_ancilla_level_readout_reports_leakage(self):
        code = RotatedSurfaceCode(3)
        params = LeakageParams(
            p_leak_gate=0.0, p_leak_measurement=1.0, readout_error=0.0
        )
        sim = LeakageSimulator(code, params, seed=2)
        record = sim.run_cycle()
        assert np.all(record.ancilla_level_readout == 2)

    def test_seepage_removes_leakage(self):
        code = RotatedSurfaceCode(3)
        params = LeakageParams(
            p_leak_gate=0.0, p_leak_measurement=0.0, p_transport=0.0,
            p_seep=1.0,
        )
        sim = LeakageSimulator(code, params, seed=3)
        sim.inject_data_leakage(0)
        sim.run_cycle()
        assert sim.leakage_population == 0.0

    def test_reset_clears_state(self):
        code = RotatedSurfaceCode(3)
        sim = LeakageSimulator(code, seed=4)
        sim.inject_data_leakage(0)
        sim.reset()
        assert sim.leakage_population == 0.0


class TestEraser:
    @pytest.fixture(scope="class")
    def code(self):
        return RotatedSurfaceCode(5)

    def test_reports_are_well_formed(self, code):
        report = run_eraser(code, cycles=5, shots=30, seed=0)
        assert 0.0 <= report.accuracy <= 1.0
        assert report.leakage_population >= 0.0
        assert report.n_shots == 30

    def test_multi_level_beats_two_level(self, code):
        base = run_eraser(
            code, cycles=10, shots=120,
            config=EraserConfig(multi_level=False), seed=1,
        )
        multi = run_eraser(
            code, cycles=10, shots=120,
            config=EraserConfig(multi_level=True), seed=1,
        )
        assert multi.accuracy >= base.accuracy
        assert multi.leakage_population < base.leakage_population

    def test_accuracy_degrades_with_readout_error(self, code):
        good = run_eraser(
            code, cycles=10, shots=100,
            params=LeakageParams(readout_error=0.05),
            config=EraserConfig(multi_level=True), seed=2,
        )
        bad = run_eraser(
            code, cycles=10, shots=100,
            params=LeakageParams(readout_error=0.20),
            config=EraserConfig(multi_level=True), seed=2,
        )
        assert good.accuracy > bad.accuracy

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            EraserConfig(window=0)
        with pytest.raises(ConfigurationError):
            run_eraser(RotatedSurfaceCode(3), cycles=0)


class TestCycleTime:
    def test_paper_reduction(self):
        assert cycle_time_reduction(1000.0, 800.0) == pytest.approx(0.17, abs=0.005)

    def test_cycle_composition(self):
        timing = SurfaceCodeTiming()
        assert cycle_time_ns(1000.0, timing) == pytest.approx(
            timing.gate_time_ns + 1000.0
        )

    def test_zero_reduction_for_equal_readouts(self):
        assert cycle_time_reduction(1000.0, 1000.0) == 0.0

    def test_longer_readout_rejected(self):
        with pytest.raises(ConfigurationError):
            cycle_time_reduction(800.0, 1000.0)

    @settings(max_examples=20, deadline=None)
    @given(readout=st.floats(min_value=100.0, max_value=5000.0))
    def test_reduction_bounded_property(self, readout):
        shorter = readout * 0.8
        r = cycle_time_reduction(readout, shorter)
        assert 0.0 < r < 0.2
