"""Qudit algorithms: the qutrit-assisted Toffoli (paper Sec I motivation).

Multi-level readout unlocks qudit algorithms; the flagship example the
paper cites is the Toffoli decomposition that borrows |2> to cut the
two-qudit gate count from six CNOTs to three gates. This example verifies
the truth table, shows the intermediate leaked state (why three-level
readout is needed mid-circuit), and compares against the qubit-only cost.

Run with::

    python examples/qutrit_toffoli.py
"""

from __future__ import annotations

from repro.qudit import DensityMatrix, controlled_shift, qutrit_toffoli_circuit
from repro.qudit.gates import x12
from repro.qudit.toffoli import toffoli_truth_table, two_qutrit_gate_count


def main() -> None:
    circuit = qutrit_toffoli_circuit()
    print(f"qutrit Toffoli: {two_qutrit_gate_count(circuit)} two-qutrit gates "
          f"(textbook qubit-only decomposition needs 6 CNOTs)\n")

    print("truth table (A, B, target) -> (A, B, target'):")
    for inputs, outputs in sorted(toffoli_truth_table().items()):
        marker = "  <- flip" if inputs[2] != outputs[2] else ""
        print(f"  {inputs} -> {outputs}{marker}")

    # The trick: mid-circuit, control B hides the (1,1) pattern in |2>.
    state = DensityMatrix.from_levels([1, 1, 0])
    state.apply_unitary(controlled_shift(1, x12()), (0, 1))
    print(f"\nmid-circuit leakage population of control B: "
          f"{state.leakage_population(1):.1f}")
    print("-> any mid-circuit measurement here requires three-level readout,")
    print("   which is exactly the capability the paper's discriminator adds.")


if __name__ == "__main__":
    main()
