"""ADC model: sampling grid and quantization of the two quadratures."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["ADCConfig"]


@dataclass(frozen=True)
class ADCConfig:
    """A pair of matched ADCs digitizing I and Q.

    Parameters
    ----------
    sample_rate_ghz:
        Samples per nanosecond (0.5 = 500 MSamples/s, the paper's rate).
    n_bits:
        Resolution per quadrature.
    full_scale:
        Input range is ``[-full_scale, +full_scale]`` per quadrature;
        inputs beyond it clip, as on real hardware.
    """

    sample_rate_ghz: float = 0.5
    n_bits: int = 12
    full_scale: float = 40.0

    def __post_init__(self) -> None:
        if self.sample_rate_ghz <= 0:
            raise ConfigurationError("sample_rate_ghz must be positive")
        if not 2 <= self.n_bits <= 24:
            raise ConfigurationError(f"n_bits must be in [2, 24], got {self.n_bits}")
        if self.full_scale <= 0:
            raise ConfigurationError("full_scale must be positive")

    @property
    def lsb(self) -> float:
        """Quantization step per quadrature."""
        return 2.0 * self.full_scale / (2**self.n_bits)

    def digitize(self, signal: np.ndarray) -> np.ndarray:
        """Quantize a complex signal: each quadrature is clipped to the
        full-scale range and rounded to the nearest code."""
        signal = np.asarray(signal)
        if not np.iscomplexobj(signal):
            raise ConfigurationError("digitize expects a complex IQ signal")
        max_code = 2 ** (self.n_bits - 1) - 1
        min_code = -(2 ** (self.n_bits - 1))

        def quantize(x: np.ndarray) -> np.ndarray:
            codes = np.rint(x / self.lsb)
            np.clip(codes, min_code, max_code, out=codes)
            return codes * self.lsb

        return quantize(signal.real) + 1j * quantize(signal.imag)

    def to_dict(self) -> dict:
        """Plain-value dictionary for serialization."""
        return {
            "sample_rate_ghz": self.sample_rate_ghz,
            "n_bits": self.n_bits,
            "full_scale": self.full_scale,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ADCConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)
