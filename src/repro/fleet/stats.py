"""Fleet-level observability: per-tenant SLO scoring and aggregates.

:class:`FleetStats` is the fleet sibling of
:class:`~repro.serve.service.ServiceStats`: every dispatched run folds
into a :class:`TenantRunRecord` (serving rate, queue wait, per-shot
latency), and each record is scored against the tenant's SLO — the
per-shot serving latency measured against
``p99_budget_multiplier x`` the run's FPGA decision budget, reusing the
:class:`~repro.fpga.latency.CycleBudgetCheck` verdict machinery of
:func:`~repro.fpga.latency.check_cycle_budget`. Aggregates surface what
fleet operations needs at a glance: aggregate shots/s over the drain
wall, per-tenant p50/p99 per-shot latency vs SLO, SLO-violation
fractions, queue waits, admission rejections, and recalibration storms
(hot refits per tenant). ``to_dict`` is the ``repro fleet --json``
payload; ``format_table`` the human form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro._util import json_finite
from repro.fpga.latency import CycleBudgetCheck

__all__ = ["TenantRunRecord", "TenantStats", "FleetStats"]


def _report_budget_ns(report) -> float | None:
    """The run's FPGA decision budget (strictest feedline), if scored."""
    budget = getattr(report, "budget", None)
    if budget is not None:
        return float(budget.budget_ns)
    verdicts = getattr(report, "budget_verdicts", None)
    if callable(verdicts):
        values = [v["budget_ns"] for v in verdicts().values()]
        if values:
            return float(min(values))
    return None


def _percentile(values: list[float], q: float) -> float:
    """NaN-safe percentile (NaN on empty, like LatencyStats)."""
    if not values:
        return float("nan")
    import numpy as np

    return float(np.percentile(np.asarray(values, dtype=float), q))


@dataclass(frozen=True)
class TenantRunRecord:
    """Digest of one dispatched tenant run, SLO-scored."""

    tenant: str
    index: int
    n_shots: int
    wall_seconds: float
    shots_per_second: float
    queue_wait_seconds: float
    per_shot_ns: float
    slo_ns: float | None
    slo_violation: bool | None
    accuracy: float | None
    drift_score: float | None
    drift_alarm: bool | None
    recalibrated: bool

    def to_dict(self) -> dict:
        return {
            "tenant": self.tenant,
            "index": self.index,
            "n_shots": self.n_shots,
            "wall_seconds": self.wall_seconds,
            "shots_per_second": self.shots_per_second,
            "queue_wait_seconds": self.queue_wait_seconds,
            "per_shot_ns": json_finite(self.per_shot_ns),
            "slo_ns": self.slo_ns,
            "slo_violation": self.slo_violation,
            "accuracy": self.accuracy,
            "drift_score": self.drift_score,
            "drift_alarm": self.drift_alarm,
            "recalibrated": self.recalibrated,
        }


@dataclass
class TenantStats:
    """Cumulative per-tenant telemetry inside one fleet session."""

    name: str
    admitted: bool = True
    rejection_reason: str | None = None
    priority: int = 1
    min_share: float = 0.0
    max_share: float = 1.0
    p99_budget_multiplier: float = 1.0
    slo_ns: float | None = None
    workers_leased: int = 0
    recalibrations: int = 0
    runs: list[TenantRunRecord] = field(default_factory=list)

    @property
    def n_runs(self) -> int:
        return len(self.runs)

    @property
    def total_shots(self) -> int:
        return sum(run.n_shots for run in self.runs)

    @property
    def serving_seconds(self) -> float:
        """Wall time this tenant's runs spent actually serving."""
        return sum(run.wall_seconds for run in self.runs)

    @property
    def shots_per_second(self) -> float:
        """Serving rate over the tenant's own run walls (0.0 before any)."""
        seconds = self.serving_seconds
        return self.total_shots / seconds if seconds > 0 else 0.0

    @property
    def p50_per_shot_ns(self) -> float:
        return _percentile([run.per_shot_ns for run in self.runs], 50)

    @property
    def p99_per_shot_ns(self) -> float:
        return _percentile([run.per_shot_ns for run in self.runs], 99)

    @property
    def p50_queue_wait_seconds(self) -> float:
        return _percentile([run.queue_wait_seconds for run in self.runs], 50)

    @property
    def max_queue_wait_seconds(self) -> float:
        waits = [run.queue_wait_seconds for run in self.runs]
        return max(waits) if waits else 0.0

    @property
    def slo_violations(self) -> int:
        return sum(1 for run in self.runs if run.slo_violation)

    @property
    def slo_violation_fraction(self) -> float:
        """Fraction of scored runs that blew the SLO (0.0 before any)."""
        scored = [run for run in self.runs if run.slo_violation is not None]
        if not scored:
            return 0.0
        return sum(1 for run in scored if run.slo_violation) / len(scored)

    def to_dict(self) -> dict:
        return {
            "admitted": self.admitted,
            "rejection_reason": self.rejection_reason,
            "priority": self.priority,
            "min_share": self.min_share,
            "max_share": self.max_share,
            "p99_budget_multiplier": self.p99_budget_multiplier,  # repro: allow(json-finite) spec-validated finite multiplier
            "slo_ns": self.slo_ns,
            "workers_leased": self.workers_leased,
            "recalibrations": self.recalibrations,
            "n_runs": self.n_runs,
            "total_shots": self.total_shots,
            "serving_seconds": self.serving_seconds,
            "shots_per_second": self.shots_per_second,
            "p50_per_shot_ns": json_finite(self.p50_per_shot_ns),
            "p99_per_shot_ns": json_finite(self.p99_per_shot_ns),
            "p50_queue_wait_seconds": json_finite(
                self.p50_queue_wait_seconds
            ),
            "max_queue_wait_seconds": self.max_queue_wait_seconds,
            "slo_violations": self.slo_violations,
            "slo_violation_fraction": self.slo_violation_fraction,
            "runs": [run.to_dict() for run in self.runs],
        }


@dataclass
class FleetStats:
    """Cumulative telemetry of one fleet session.

    ``tenants`` holds every tenant the fleet saw — admitted ones with
    their run records, rejected ones with the admission reason — so the
    rejection history is part of the same report as the serving stats.
    """

    pool_executor: str = ""
    pool_workers: int = 0
    warm_seconds: float = 0.0
    cold_fits: int = 0
    drain_wall_seconds: float = 0.0
    submitted: int = 0
    dispatched: int = 0
    tenants: dict[str, TenantStats] = field(default_factory=dict)

    # -- recording -----------------------------------------------------

    def _tenant(self, name: str) -> TenantStats:
        # Stats are cumulative across warm cycles (close() then warm()
        # re-admits), so re-admission updates the existing record in
        # place instead of discarding its run history.
        stats = self.tenants.get(name)
        if stats is None:
            stats = TenantStats(name=name)
            self.tenants[name] = stats
        return stats

    def admit(self, name: str, slo, workers_leased: int) -> TenantStats:
        """Register an admitted tenant with its SLO contract."""
        stats = self._tenant(name)
        stats.admitted = True
        stats.rejection_reason = None
        stats.priority = slo.priority
        stats.min_share = slo.min_share
        stats.max_share = slo.max_share
        stats.p99_budget_multiplier = slo.p99_budget_multiplier
        stats.workers_leased = workers_leased
        return stats

    def reject(self, name: str, reason: str, slo=None) -> TenantStats:
        """Register an admission rejection and its reason."""
        stats = self._tenant(name)
        stats.admitted = False
        stats.rejection_reason = reason
        stats.workers_leased = 0
        if slo is not None:
            stats.priority = slo.priority
            stats.min_share = slo.min_share
            stats.max_share = slo.max_share
            stats.p99_budget_multiplier = slo.p99_budget_multiplier
        return stats

    def record_run(
        self,
        name: str,
        report,
        wall_seconds: float,
        queue_wait_seconds: float,
        recalibrated: bool = False,
    ) -> TenantRunRecord:
        """Fold one dispatched run into the tenant's stats, SLO-scored."""
        tenant = self.tenants[name]
        n_shots = int(report.n_shots)
        per_shot_ns = (
            wall_seconds / n_shots * 1e9 if n_shots > 0 else float("nan")
        )
        base_budget = _report_budget_ns(report)
        slo_ns: float | None = None
        violation: bool | None = None
        if base_budget is not None:
            # The SLO threshold is the FPGA decision budget scaled by
            # the tenant's tolerated slack; CycleBudgetCheck renders the
            # same verdict shape check_cycle_budget gives the pipeline.
            check = CycleBudgetCheck(
                budget_ns=base_budget * tenant.p99_budget_multiplier,
                measured_ns=per_shot_ns,
            )
            slo_ns = check.budget_ns
            violation = not check.within_budget
            if tenant.slo_ns is None:
                tenant.slo_ns = slo_ns
        record = TenantRunRecord(
            tenant=name,
            index=len(tenant.runs),
            n_shots=n_shots,
            wall_seconds=wall_seconds,
            shots_per_second=(
                n_shots / wall_seconds if wall_seconds > 0 else 0.0
            ),
            queue_wait_seconds=queue_wait_seconds,
            per_shot_ns=per_shot_ns,
            slo_ns=slo_ns,
            slo_violation=violation,
            accuracy=getattr(report, "accuracy", None),
            drift_score=getattr(report, "drift_score", None),
            drift_alarm=getattr(report, "drift_alarm", None),
            recalibrated=recalibrated,
        )
        tenant.runs.append(record)
        if recalibrated:
            tenant.recalibrations += 1
        return record

    # -- aggregates ----------------------------------------------------

    @property
    def admitted(self) -> tuple[str, ...]:
        return tuple(
            name for name, t in self.tenants.items() if t.admitted
        )

    @property
    def rejected(self) -> tuple[str, ...]:
        return tuple(
            name for name, t in self.tenants.items() if not t.admitted
        )

    @property
    def admission_rejections(self) -> list[dict]:
        return [
            {"tenant": name, "reason": self.tenants[name].rejection_reason}
            for name in self.rejected
        ]

    @property
    def completed_runs(self) -> int:
        return sum(t.n_runs for t in self.tenants.values())

    @property
    def total_shots(self) -> int:
        return sum(t.total_shots for t in self.tenants.values())

    @property
    def shots_per_second(self) -> float:
        """Aggregate fleet throughput over the drain wall (0.0 before)."""
        wall = self.drain_wall_seconds
        return self.total_shots / wall if wall > 0 else 0.0

    @property
    def tenant_serving_shots_per_second(self) -> float:
        """Summed per-tenant serving rates (each over its own run walls).

        Under time-sliced scheduling this is the figure comparable to
        the sum of solo single-tenant sessions — each tenant's runs own
        the substrate while dispatched, so queue wait does not dilute
        the per-tenant serving rate the way the drain wall does.
        """
        return sum(
            t.shots_per_second for t in self.tenants.values() if t.admitted
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (``repro fleet --json``)."""
        return {
            "pool_executor": self.pool_executor,
            "pool_workers": self.pool_workers,
            "warm_seconds": self.warm_seconds,
            "cold_fits": self.cold_fits,
            "drain_wall_seconds": self.drain_wall_seconds,
            "submitted": self.submitted,
            "dispatched": self.dispatched,
            "completed_runs": self.completed_runs,
            "total_shots": self.total_shots,
            "shots_per_second": self.shots_per_second,
            "tenant_serving_shots_per_second": (
                self.tenant_serving_shots_per_second
            ),
            "admitted": list(self.admitted),
            "admission_rejections": self.admission_rejections,
            "tenants": {
                name: stats.to_dict()
                for name, stats in self.tenants.items()
            },
        }

    def format_table(self) -> str:
        """Aligned text report in the house experiment style."""
        from repro.experiments.report import format_rows

        rows = []
        for name, t in self.tenants.items():
            if not t.admitted:
                continue
            p99_us = t.p99_per_shot_ns / 1e3
            rows.append(
                [
                    name,
                    t.n_runs,
                    t.total_shots,
                    f"{t.shots_per_second:.0f}",
                    "-" if t.n_runs == 0 else f"{p99_us:.0f}",
                    f"{t.slo_violation_fraction * 100:.0f}%",
                    f"{t.max_queue_wait_seconds * 1e3:.0f}",
                    t.priority,
                    t.recalibrations,
                ]
            )
        table = format_rows(
            [
                "tenant",
                "runs",
                "shots",
                "shots/s",
                "p99 us/shot",
                "slo viol",
                "max q-wait ms",
                "prio",
                "recals",
            ],
            rows,
            title=(
                f"readout fleet ({len(self.admitted)} tenants, "
                f"{self.pool_executor} pool, {self.pool_workers} workers)"
            ),
        )
        lines = [
            table,
            "",
            f"fleet throughput     {self.shots_per_second:.0f} shots/s "
            f"aggregate ({self.total_shots} shots in "
            f"{self.drain_wall_seconds:.2f} s drain wall)",
            f"tenant serving sum   "
            f"{self.tenant_serving_shots_per_second:.0f} shots/s "
            "(per-tenant serving rates)",
            f"warm-up              {self.warm_seconds:.2f} s "
            f"({self.cold_fits} cold fit(s))",
        ]
        for rejection in self.admission_rejections:
            lines.append(
                f"rejected             {rejection['tenant']}: "
                f"{rejection['reason']}"
            )
        return "\n".join(lines)
