"""Streaming-pipeline bench: shots/sec and per-stage p50/p99 latency.

Calibrates once into a temporary registry, then streams simulated traffic
through the batched demod -> matched-filter -> discriminator -> ERASER
runtime, cold and warm. Shape asserted: the warm run serves calibration
from the registry without refitting, every stage reports latency, and the
measured per-shot compute latency is scored against the FPGA decision
budget.

Runs standalone too (that is how the perf trajectory is recorded)::

    PYTHONPATH=src:. python benchmarks/bench_pipeline_throughput.py \
        --shots 2000 --workers 4 --json BENCH_pipeline.json
"""

from __future__ import annotations

import argparse
import json
import tempfile

from benchmarks.conftest import record_bench_result, run_once
from repro.config import get_profile
from repro.pipeline import run_streaming_pipeline


def _stream_cold_and_warm(profile, n_shots=2000, workers=2, batch_size=64):
    """Cold (fit + stream) then warm (load + stream) runs, one registry."""
    with tempfile.TemporaryDirectory() as registry_dir:
        cold = run_streaming_pipeline(
            profile,
            n_shots=n_shots,
            workers=workers,
            batch_size=batch_size,
            registry_dir=registry_dir,
        )
        warm = run_streaming_pipeline(
            profile,
            n_shots=n_shots,
            workers=workers,
            batch_size=batch_size,
            registry_dir=registry_dir,
        )
    return cold, warm


def test_pipeline_throughput(benchmark, profile):
    cold, warm = run_once(benchmark, _stream_cold_and_warm, profile)
    print("\n" + warm.format_table())

    assert cold.calibration_cached is False
    assert warm.calibration_cached is True
    assert warm.n_shots == 2000
    assert warm.shots_per_second > 0
    for stage in ("demod", "matched_filter", "discriminate", "sink"):
        summary = warm.stage_summaries[stage]
        assert summary["p99_ms"] >= summary["p50_ms"] >= 0.0
    # A software runtime cannot beat the 5-cycle FPGA datapath.
    assert warm.budget is not None and warm.budget.slowdown > 1.0
    # Warm and cold runs stream the same traffic through the same model.
    assert warm.accuracy == cold.accuracy

    record_bench_result(
        "pipeline_throughput",
        {"cold": cold.to_dict(), "warm": warm.to_dict()},
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shots", type=int, default=2000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--batch-size", type=int, default=64)
    parser.add_argument("--profile", default="quick")
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write cold/warm reports as JSON (e.g. BENCH_pipeline.json)",
    )
    args = parser.parse_args(argv)

    profile = get_profile(args.profile)
    cold, warm = _stream_cold_and_warm(
        profile,
        n_shots=args.shots,
        workers=args.workers,
        batch_size=args.batch_size,
    )
    print(cold.format_table())
    print()
    print(warm.format_table())
    if args.json is not None:
        payload = {
            "pipeline_throughput": {
                "cold": cold.to_dict(),
                "warm": warm.to_dict(),
            }
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"\nreport written to {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
