"""Online drift detection for streaming discrimination.

A warm serving session never refits — which is only safe while the
device still looks like it did at calibration time. :class:`DriftMonitor`
watches two cheap, label-free signals on every discriminated micro-batch
and turns them into one scalar ``drift_score``:

- **Assignment-distribution shift** — an exponentially weighted moving
  histogram of the joint-state assignments, scored against the
  calibration-time reference distribution stored in the artifact with a
  smoothed symmetric KL divergence over the **per-qubit marginals**. A
  detuned resonator or decayed T1 skews which levels the heads emit
  long before anyone inspects accuracy (which live traffic has no
  labels for anyway). Marginals, not the joint histogram: the joint
  space grows as ``3^n`` and a finite-sample histogram over hundreds of
  mostly-empty states carries an O((K-1)/2n) sampling-noise divergence
  that would swamp any real signal — per-qubit level distributions keep
  the estimator dense at every qubit count, and a drifting channel
  moves its own marginal first anyway.
- **Score-margin erosion** — the EWMA of the heads' mean top-2
  probability margin relative to the calibration-time margin. Confidence
  collapses first: a drifting channel pushes shots toward the decision
  boundary even while the argmax still lands right.

The monitor is per-feedline state owned by one pipeline run (the
feedline is the unit of calibration, so it is also the unit of drift),
costs one ``bincount`` per batch, and never touches the discrimination
path — detection can never change an assignment.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["DriftMonitor"]

#: Laplace smoothing mass added to both distributions before the KL so
#: states the reference never produced cannot blow the divergence up to
#: infinity on a single stray assignment.
_SMOOTHING = 1e-4


class DriftMonitor:
    """Scores streamed assignments against calibration-time references.

    Parameters
    ----------
    reference_assignment:
        Joint-state assignment distribution the discriminator produced
        on its own calibration corpus (sums to 1, size
        ``n_levels ** n_qubits``).
    reference_margin:
        Mean top-2 probability margin at calibration time; ``None``
        disables the margin signal (old artifacts).
    threshold:
        ``drift_score`` at or above which :attr:`alarm` trips.
    alpha:
        EWMA weight of the newest batch, in (0, 1].
    min_shots:
        Shots the monitor must see before it is willing to alarm —
        guards against a single unlucky micro-batch tripping
        recalibration.
    n_levels:
        Levels per qubit (3 throughout the paper); with the reference
        size it fixes the qubit count the marginals are taken over.
    """

    def __init__(
        self,
        reference_assignment: np.ndarray,
        reference_margin: float | None = None,
        threshold: float = 0.1,
        alpha: float = 0.25,
        min_shots: int = 50,
        n_levels: int = 3,
    ) -> None:
        reference = np.asarray(reference_assignment, dtype=np.float64)
        if reference.ndim != 1 or reference.size < 2:
            raise ConfigurationError(
                "reference_assignment must be a 1-D distribution over "
                f"joint states, got shape {reference.shape}"
            )
        total = reference.sum()
        if not np.isfinite(total) or total <= 0 or reference.min() < 0:
            raise ConfigurationError(
                "reference_assignment must be a non-negative distribution"
            )
        if n_levels < 2:
            raise ConfigurationError(
                f"n_levels must be >= 2, got {n_levels}"
            )
        n_qubits = round(math.log(reference.size, n_levels))
        if n_levels**n_qubits != reference.size:
            raise ConfigurationError(
                f"reference size {reference.size} is not a power of "
                f"n_levels={n_levels}"
            )
        if threshold <= 0:
            raise ConfigurationError(
                f"threshold must be positive, got {threshold}"
            )
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if min_shots < 0:
            raise ConfigurationError(
                f"min_shots must be >= 0, got {min_shots}"
            )
        self.reference = reference / total
        self.n_levels = int(n_levels)
        self.n_qubits = int(n_qubits)
        self.reference_margin = (
            None if reference_margin is None else float(reference_margin)
        )
        self.threshold = float(threshold)
        self.alpha = float(alpha)
        self.min_shots = int(min_shots)
        self._ewma_dist: np.ndarray | None = None
        self._ewma_margin: float | None = None
        self._n_shots = 0
        self._n_batches = 0

    @property
    def n_shots(self) -> int:
        """Shots observed so far."""
        return self._n_shots

    def observe(self, joint: np.ndarray, mean_margin: float | None = None) -> None:
        """Fold one discriminated micro-batch into the monitor state."""
        joint = np.asarray(joint)
        if joint.size == 0:
            return
        counts = np.bincount(
            joint.ravel(), minlength=self.reference.size
        ).astype(np.float64)
        if counts.size != self.reference.size:
            raise ConfigurationError(
                f"joint labels exceed the reference's {self.reference.size} "
                "states"
            )
        batch_dist = counts / counts.sum()
        if self._ewma_dist is None:
            self._ewma_dist = batch_dist
        else:
            self._ewma_dist = (
                self.alpha * batch_dist + (1.0 - self.alpha) * self._ewma_dist
            )
        if mean_margin is not None and np.isfinite(mean_margin):
            if self._ewma_margin is None:
                self._ewma_margin = float(mean_margin)
            else:
                self._ewma_margin = (
                    self.alpha * float(mean_margin)
                    + (1.0 - self.alpha) * self._ewma_margin
                )
        self._n_shots += int(joint.shape[0])
        self._n_batches += 1

    def _marginals(self, joint_dist: np.ndarray) -> np.ndarray:
        """Per-qubit level distributions, (n_qubits, n_levels).

        Joint labels follow the :func:`repro.data.basis.digits_to_state`
        convention (qubit 0 is the most-significant digit).
        """
        grid = joint_dist.reshape((self.n_levels,) * self.n_qubits)
        return np.stack([
            grid.sum(axis=tuple(a for a in range(self.n_qubits) if a != q))
            for q in range(self.n_qubits)
        ])

    def _divergence(self) -> float:
        """Smoothed symmetric KL vs the reference, worst qubit marginal.

        Marginals keep the estimator dense (``n_levels`` bins per qubit
        instead of ``n_levels**n_qubits`` joint states), so the
        finite-sample divergence floor stays negligible at any qubit
        count; the max over qubits keeps one drifting channel visible
        on a wide device.
        """
        if self._ewma_dist is None:
            return 0.0
        worst = 0.0
        for p, q in zip(
            self._marginals(self._ewma_dist), self._marginals(self.reference)
        ):
            p = p + _SMOOTHING
            q = q + _SMOOTHING
            p = p / p.sum()
            q = q / q.sum()
            forward = float(np.sum(p * np.log(p / q)))
            backward = float(np.sum(q * np.log(q / p)))
            worst = max(worst, 0.5 * (forward + backward))
        return worst

    def _margin_erosion(self) -> float:
        """Fractional loss of head confidence vs calibration time."""
        if (
            self._ewma_margin is None
            or self.reference_margin is None
            or self.reference_margin <= 0
        ):
            return 0.0
        return max(0.0, 1.0 - self._ewma_margin / self.reference_margin)

    @property
    def drift_score(self) -> float:
        """Scalar drift evidence: the stronger of the two signals.

        Zero on a stationary device, growing with detuning/decay; both
        components are dimensionless, so one threshold covers both
        failure modes.
        """
        return max(self._divergence(), self._margin_erosion())

    @property
    def alarm(self) -> bool:
        """Whether the score crossed the threshold with enough evidence."""
        return (
            self._n_shots >= self.min_shots
            and self.drift_score >= self.threshold
        )

    def summary(self) -> dict:
        """JSON-able digest for reports."""
        return {
            "drift_score": self.drift_score,
            "assignment_divergence": self._divergence(),
            "margin_erosion": self._margin_erosion(),  # repro: allow(json-finite) clamped to [0, 1] by construction
            "threshold": self.threshold,
            "n_shots": self._n_shots,
            "n_batches": self._n_batches,
            "alarm": self.alarm,
        }
