"""Multi-level superconducting qubit readout — DAC 2025 reproduction.

This package reproduces "Efficient and Scalable Architectures for Multi-level
Superconducting Qubit Readout" (Mude, Maurya, Lienhard, Tannu; DAC 2025).

Layout
------
``repro.physics``
    Dispersive-readout simulator: state-dependent resonator dynamics,
    relaxation/excitation jumps, multiplexing, crosstalk, ADC.
``repro.data``
    Basis-state bookkeeping and synthetic readout corpora.
``repro.dsp``
    Demodulation, filtering, mean-trace values, matched filters.
``repro.ml``
    From-scratch numpy ML: feedforward networks, LDA/QDA, k-means,
    spectral clustering, fidelity metrics.
``repro.discriminators``
    The paper's discriminator (matched filters + modular per-qubit NN) and
    the FNN / HERQULES baselines, plus calibration-free leakage detection.
``repro.fpga``
    Analytic FPGA resource / latency / power models.
``repro.qudit``
    Qutrit density-matrix simulator used for the CNOT-leakage study.
``repro.qec``
    Surface-code leakage dynamics, ERASER/ERASER+M speculation, and the
    QEC cycle-time model.
``repro.pipeline``
    Streaming readout runtime: trace sources, micro-batched and
    channel-sharded demod/matched-filter/NN stages, a calibration
    registry serving fitted artifacts by (device, qubit, profile),
    backpressure-aware sinks into QEC speculation, and per-stage
    latency/throughput instrumentation against the FPGA cycle budget.
``repro.experiments``
    One runner per paper table/figure, with quick/full/paper profiles.
"""

from repro.config import FULL, PAPER, QUICK, Profile, get_profile
from repro.version import __version__

__all__ = [
    "__version__",
    "Profile",
    "QUICK",
    "FULL",
    "PAPER",
    "get_profile",
]
