"""Hidden-Markov-model discriminator (related-work baseline).

The paper cites HMM-based leakage detection (Varbanov et al., npj QI 2020)
among prior discriminators. This module implements a per-qubit,
three-hidden-state HMM over decimated baseband samples:

- hidden states are the qubit levels {0, 1, 2};
- transition probabilities per time bin come from the physical rates
  (relaxation down the ladder, measurement-induced excitation up);
- emissions are complex Gaussians around each level's time-dependent mean
  trace (estimated from training data), with a pooled noise variance.

Classification runs the forward algorithm per candidate *initial* level
and picks the maximum-evidence one — naturally accounting for mid-readout
jumps (a relaxed trace still scores high for initial level 1). This is a
strong physics-informed baseline that needs no gradient training.
"""

from __future__ import annotations

import numpy as np

from repro._util import check_random_state
from repro.data.basis import digits_to_state
from repro.data.dataset import ReadoutCorpus
from repro.discriminators.base import Discriminator
from repro.discriminators.registry import register
from repro.dsp.demod import demodulate
from repro.dsp.filters import boxcar_decimate
from repro.exceptions import ConfigurationError, DataError
from repro.physics.jumps import TransitionRates

__all__ = ["HMMDiscriminator"]


@register(
    "hmm",
    description="per-qubit forward-algorithm HMM over baseband samples",
)
class HMMDiscriminator(Discriminator):
    """Per-qubit forward-algorithm state discrimination.

    Parameters
    ----------
    decimation:
        Boxcar decimation before the HMM (each bin is one HMM step).
    rate_scale:
        Multiplier on the chip's physical transition rates when building
        the per-bin transition matrix; 1.0 trusts the device parameters.
    """

    name = "hmm"

    @classmethod
    def from_profile(cls, profile) -> "HMMDiscriminator":
        return cls(seed=profile.seed + 13)

    def __init__(
        self,
        decimation: int = 5,
        rate_scale: float = 1.0,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if decimation < 1:
            raise ConfigurationError("decimation must be >= 1")
        if rate_scale <= 0:
            raise ConfigurationError("rate_scale must be positive")
        self.decimation = decimation
        self.rate_scale = rate_scale
        self._rng = check_random_state(seed)
        self.means_: list[np.ndarray] | None = None  # per qubit (3, n_bins)
        self.variances_: list[float] | None = None
        self.transitions_: list[np.ndarray] | None = None

    @property
    def n_parameters(self) -> int:
        """HMMs have no trained NN weights; report the template storage."""
        if self.means_ is None:
            raise ConfigurationError("call fit() first")
        return int(sum(m.size * 2 for m in self.means_))

    def _baseband(self, corpus: ReadoutCorpus, qubit: int) -> np.ndarray:
        times = corpus.chip.sample_times(corpus.trace_len)
        base = demodulate(
            corpus.feedline, corpus.chip.qubits[qubit].if_frequency_ghz, times
        )
        return boxcar_decimate(base, self.decimation)

    def fit(self, corpus: ReadoutCorpus, indices: np.ndarray) -> "HMMDiscriminator":
        idx = self._resolve_indices(corpus, indices)
        subset = corpus.subset(idx)
        bin_dt = corpus.chip.dt_ns * self.decimation
        means, variances, transitions = [], [], []
        for q in range(corpus.n_qubits):
            traces = self._baseband(subset, q)
            levels = subset.qubit_labels(q)
            level_means = []
            residual = 0.0
            count = 0
            for s in range(3):
                members = traces[levels == s]
                if members.shape[0] < 2:
                    raise DataError(f"need >= 2 traces of level {s} on qubit {q}")
                mu = members.mean(axis=0)
                level_means.append(mu)
                residual += float(np.sum(np.abs(members - mu) ** 2))
                count += members.size
            means.append(np.vstack(level_means))
            variances.append(max(residual / count, 1e-12))

            rates = TransitionRates.from_qubit(corpus.chip.qubits[q])
            generator = rates.matrix * self.rate_scale
            per_bin = generator * bin_dt
            trans = per_bin.copy()
            np.fill_diagonal(trans, 0.0)
            np.fill_diagonal(trans, 1.0 - trans.sum(axis=1))
            transitions.append(np.clip(trans, 0.0, 1.0))
        self.means_ = means
        self.variances_ = variances
        self.transitions_ = transitions
        self._fitted = True
        return self

    def _log_evidence(self, traces: np.ndarray, qubit: int) -> np.ndarray:
        """Forward-algorithm log evidence per candidate initial level.

        Returns (n_shots, 3): log p(trace | initial level s).
        """
        mu = self.means_[qubit]  # (3, n_bins)
        var = self.variances_[qubit]
        trans = self.transitions_[qubit]
        n_shots, n_bins = traces.shape
        # Emission log-likelihoods for every (shot, bin, hidden level).
        diff = traces[:, :, None] - mu.T[None, :, :]
        log_emit = -np.abs(diff) ** 2 / var - np.log(np.pi * var)

        log_trans = np.log(np.maximum(trans, 1e-300))
        evidence = np.empty((n_shots, 3))
        for start in range(3):
            log_alpha = np.full((n_shots, 3), -np.inf)
            log_alpha[:, start] = log_emit[:, 0, start]
            for t in range(1, n_bins):
                # logsumexp over previous hidden state.
                stacked = log_alpha[:, :, None] + log_trans[None, :, :]
                peak = stacked.max(axis=1)
                log_alpha = (
                    peak
                    + np.log(
                        np.sum(np.exp(stacked - peak[:, None, :]), axis=1)
                    )
                    + log_emit[:, t, :]
                )
            peak = log_alpha.max(axis=1)
            evidence[:, start] = peak + np.log(
                np.sum(np.exp(log_alpha - peak[:, None]), axis=1)
            )
        return evidence

    def predict_qubit_levels(
        self, corpus: ReadoutCorpus, indices: np.ndarray | None = None
    ) -> np.ndarray:
        self._require_fitted()
        idx = self._resolve_indices(corpus, indices)
        subset = corpus.subset(idx)
        out = np.empty((idx.size, corpus.n_qubits), dtype=np.int64)
        for q in range(corpus.n_qubits):
            traces = self._baseband(subset, q)
            out[:, q] = np.argmax(self._log_evidence(traces, q), axis=1)
        return out

    def predict(
        self, corpus: ReadoutCorpus, indices: np.ndarray | None = None
    ) -> np.ndarray:
        levels = self.predict_qubit_levels(corpus, indices)
        return digits_to_state(levels, corpus.n_levels)
