"""Power model calibrated to the paper's Synopsys DC result.

The paper reports 1.561 mW total for its design at a 1 GHz clock with a
5-cycle latency (45 nm TSMC standard cells). We model

    P = n_mac * E_mac * rate_inference + P_static

with one inference per readout window (1 us -> 1 MHz). E_mac = 0.2 pJ and
P_static = 0.26 mW reproduce the published operating point exactly for the
paper's 6,505-parameter design:

    6505 * 0.2 pJ * 1 MHz + 0.26 mW = 1.301 + 0.26 = 1.561 mW.
"""

from __future__ import annotations

from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.fpga.resources import network_shape_stats

__all__ = [
    "estimate_power_mw",
    "estimate_design_power_mw",
    "ENERGY_PER_MAC_PJ",
    "STATIC_POWER_MW",
]

ENERGY_PER_MAC_PJ = 0.2
STATIC_POWER_MW = 0.26


def estimate_design_power_mw(
    n_params: int,
    inference_rate_mhz: float = 1.0,
    energy_per_mac_pj: float = ENERGY_PER_MAC_PJ,
    static_power_mw: float = STATIC_POWER_MW,
) -> float:
    """Power of a complete design with ``n_params`` MACs per inference.

    The paper's design (6,505 parameters across the five per-qubit
    networks) evaluates to exactly the published 1.561 mW at one
    inference per microsecond.
    """
    if n_params <= 0:
        raise ConfigurationError(f"n_params must be positive, got {n_params}")
    if inference_rate_mhz <= 0:
        raise ConfigurationError("inference_rate_mhz must be positive")
    dynamic_mw = n_params * energy_per_mac_pj * inference_rate_mhz / 1000.0
    return dynamic_mw + static_power_mw


def estimate_power_mw(
    layer_sizes: Sequence[int],
    inference_rate_mhz: float = 1.0,
    n_replicas: int = 1,
    energy_per_mac_pj: float = ENERGY_PER_MAC_PJ,
    static_power_mw: float = STATIC_POWER_MW,
) -> float:
    """Total power in milliwatts for ``n_replicas`` copies of a network.

    Parameters
    ----------
    layer_sizes:
        Dense network widths including input and output.
    inference_rate_mhz:
        Inferences per microsecond; one per readout window by default
        (1 us readout -> 1.0 MHz).
    n_replicas:
        Parallel copies sharing nothing but the clock (static power scales
        with replicas too).
    """
    if inference_rate_mhz <= 0:
        raise ConfigurationError("inference_rate_mhz must be positive")
    if n_replicas < 1:
        raise ConfigurationError(f"n_replicas must be >= 1, got {n_replicas}")
    if energy_per_mac_pj <= 0 or static_power_mw < 0:
        raise ConfigurationError("energy and static power must be positive")
    params, _ = network_shape_stats(layer_sizes)
    # pJ * MHz = uW; /1000 -> mW.
    dynamic_mw = params * energy_per_mac_pj * inference_rate_mhz / 1000.0
    return n_replicas * (dynamic_mw + static_power_mw)
