"""The lint framework: :class:`Checker` base, rule registry, drivers.

A rule is a subclass of :class:`Checker` (an ``ast.NodeVisitor``)
registered with :func:`register_rule`. The drivers —
:func:`check_source` for one in-memory module, :func:`lint_paths` for
files and directory trees — parse each module once, run every selected
rule over the shared AST, and filter the collected findings through the
per-line ``# repro: allow(<rule>)`` pragmas of
:mod:`repro.analysis.findings`.

Rules that need cross-statement context (the module's ``__all__``, the
enclosing function name) gather it in ``visit_*`` methods and may also
override :meth:`Checker.finish` for whole-module checks that only make
sense once the full tree has been walked.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.findings import Finding, pragma_allowances
from repro.exceptions import ConfigurationError

__all__ = [
    "Checker",
    "register_rule",
    "rule_names",
    "get_rules",
    "check_source",
    "iter_python_files",
    "lint_paths",
]

#: Registered rule name -> checker class, in registration order.
_RULES: dict[str, type["Checker"]] = {}


def register_rule(cls: type["Checker"]) -> type["Checker"]:
    """Class decorator adding a :class:`Checker` to the rule registry."""
    if not cls.rule or cls.rule == Checker.rule:
        raise ConfigurationError(
            f"{cls.__name__} must define a non-default 'rule' name"
        )
    if cls.rule in _RULES:
        raise ConfigurationError(f"duplicate lint rule {cls.rule!r}")
    _RULES[cls.rule] = cls
    return cls


def rule_names() -> tuple[str, ...]:
    """Registered rule names, in registration order."""
    _ensure_rules_loaded()
    return tuple(_RULES)


def get_rules(names: "Sequence[str] | None" = None) -> list[type["Checker"]]:
    """Resolve rule names to checker classes (all rules when ``None``)."""
    _ensure_rules_loaded()
    if names is None:
        return list(_RULES.values())
    resolved = []
    for name in names:
        if name not in _RULES:
            known = ", ".join(_RULES)
            raise ConfigurationError(
                f"unknown lint rule {name!r}; registered rules: {known}"
            )
        resolved.append(_RULES[name])
    return resolved


def _ensure_rules_loaded() -> None:
    # The project rules live in their own module; importing it populates
    # the registry exactly once (idempotent thanks to sys.modules).
    from repro.analysis import rules  # noqa: F401


class Checker(ast.NodeVisitor):
    """Base class for one lint rule over one module's AST.

    Subclasses set ``rule`` (the registry/pragma name) and
    ``description`` (one line, shown by ``repro lint --rules help``
    style listings), implement ``visit_*`` methods, and call
    :meth:`report` for each violation.
    """

    rule: str = "abstract"
    description: str = ""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.findings: list[Finding] = []

    def run(self) -> list[Finding]:
        """Walk the tree, then finish; returns the collected findings."""
        self.visit(self.tree)
        self.finish()
        return self.findings

    def finish(self) -> None:
        """Whole-module checks run after the tree walk (default: none)."""

    def report(self, node: ast.AST, message: str) -> None:
        """Record one violation at ``node``'s location."""
        self.findings.append(
            Finding(
                rule=self.rule,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )


def check_source(
    source: str,
    path: str = "<string>",
    rules: "Sequence[str] | None" = None,
) -> list[Finding]:
    """Lint one module's source text; returns pragma-filtered findings.

    A module that does not parse yields a single ``parse-error`` finding
    rather than aborting the whole lint run — a broken file is itself a
    finding, not a crash.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule="parse-error",
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                message=f"module does not parse: {exc.msg}",
            )
        ]
    allowances = pragma_allowances(source)
    findings: list[Finding] = []
    for checker_cls in get_rules(rules):
        for finding in checker_cls(path, source, tree).run():
            if finding.rule in allowances.get(finding.line, ()):
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Expand files and directory trees to a sorted ``.py`` file list."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.suffix == ".py" and path.is_file():
            files.add(path)
        elif not path.exists():
            raise ConfigurationError(f"lint path does not exist: {path}")
    return sorted(files)


def lint_paths(
    paths: Iterable[str | Path],
    rules: "Sequence[str] | None" = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` with the selected rules."""
    get_rules(rules)  # validate rule names before any file IO
    findings: list[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        findings.extend(check_source(source, str(file_path), rules))
    return findings
