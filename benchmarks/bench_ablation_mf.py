"""Ablation bench: matched-filter variance normalization.

DESIGN.md calls out the paper's kernel formula (variance *difference*
denominator), which is singular when the classes are equally noisy; the
library defaults to the standard variance-*sum*. This bench compares the
three normalizations end to end on the paper's design.
"""

import numpy as np

from repro.discriminators import MLRDiscriminator
from repro.experiments.common import NN_LEARNING_RATE, get_readout_bundle
from repro.ml.metrics import geometric_mean_fidelity, per_qubit_fidelity


def _fidelity(profile, variance_mode):
    bundle = get_readout_bundle(profile)
    disc = MLRDiscriminator(
        variance_mode=variance_mode,
        epochs=profile.nn_epochs,
        learning_rate=NN_LEARNING_RATE,
        seed=profile.seed + 90,
    )
    disc.fit(bundle.corpus, bundle.train_idx)
    pred = disc.predict(bundle.corpus, bundle.test_idx)
    fid = per_qubit_fidelity(
        bundle.test_labels, pred, bundle.corpus.n_qubits, bundle.corpus.n_levels
    )
    return geometric_mean_fidelity(fid)


def test_ablation_variance_mode(benchmark, profile):
    def run():
        return {
            mode: _fidelity(profile, mode)
            for mode in ("sum", "difference", "unit")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nMF variance-mode ablation (F5Q):")
    for mode, f5q in results.items():
        print(f"  {mode:10s}: {f5q:.4f}")
    # The ablation's finding: the paper's variance-difference formula is
    # fragile (its denominator is near-singular for state-independent
    # amplifier noise), while the guarded variance-sum default and the
    # unnormalized kernel are both solid.
    assert results["sum"] > 0.85
    assert results["unit"] > 0.85
    assert results["sum"] > results["difference"]
