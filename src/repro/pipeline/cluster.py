"""Multi-feedline sharded serving: one discrimination chain per feedline.

The paper's architecture scales by frequency-multiplexing a handful of
qubits onto each feedline and *replicating* the discrimination datapath
per feedline (Chen et al. and Jerger et al. treat the feedline as the
unit of parallelism for exactly this reason). This module is the software
counterpart: :class:`MultiFeedlineRunner` partitions a list of
:class:`~repro.physics.device.ChipConfig` readout groups across shard
workers, each feedline running the full source → micro-batcher →
:class:`~repro.pipeline.stages.BatchDiscriminationEngine` → sink chain
with its own :class:`~repro.pipeline.registry.CalibrationKey`, and merges
the per-feedline :class:`~repro.pipeline.metrics.PipelineReport` digests
into one :class:`ClusterReport` (global shots/sec, worst-feedline p99,
per-feedline FPGA budget verdicts).

Shard execution is pluggable through :class:`ShardExecutor`:

- ``serial`` — feedlines run one after another on the calling thread
  (deterministic reference, and the profile/debug path).
- ``thread`` — a ``ThreadPoolExecutor`` shard per feedline; numpy's BLAS
  kernels release the GIL, so real work overlaps.
- ``process`` — a ``ProcessPoolExecutor`` shard per feedline for the
  python-bound parts of the chain. Workers never receive pickled fitted
  models: each task carries only the chip parameters and registry
  coordinates, and the worker *rebuilds* its discriminator from
  :class:`~repro.pipeline.registry.CalibrationRegistry` artifacts (or
  fits and stores them on a cold start).

Every feedline's traffic seed is derived deterministically from the
profile seed and the feedline index, so the same cluster run yields
bit-identical assignment counts under any executor and any partitioning.
Heterogeneous clusters dispatch heaviest feedlines first (greedy
longest-first by qubit count x trace length) so a pool never idles while
its longest shard runs last; the aggregate report still lists feedlines
in declared order.
"""

from __future__ import annotations

import os
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro._util import json_finite
from repro.analysis.lockgraph import trace_lock
from repro.config import Profile
from repro.data.dataset import ReadoutCorpus
from repro.exceptions import ConfigurationError
from repro.physics.device import ChipConfig, multi_feedline_chips
from repro.physics.drift import DriftModel
from repro.pipeline.metrics import PipelineReport
from repro.pipeline.runner import (
    DEFAULT_DESIGN,
    PipelineConfig,
    run_streaming_pipeline,
)
from repro.pipeline.shm import (
    SharedMemoryTraceSource,
    SharedTraceBlock,
    SharedTraceDescriptor,
)

__all__ = [
    "EXECUTOR_NAMES",
    "FeedlineSpec",
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "SharedShardPool",
    "ShardPoolLease",
    "available_cpus",
    "get_shard_executor",
    "validate_executor",
    "ClusterReport",
    "MultiFeedlineRunner",
    "run_multi_feedline_pipeline",
]


@dataclass(frozen=True)
class FeedlineSpec:
    """One feedline of the cluster: a readout group and its registry name.

    Parameters
    ----------
    name:
        Unique feedline name; appears in the aggregate report.
    chip:
        The readout group streamed and discriminated on this feedline.
    device:
        Registry device name for the feedline's calibration artifacts;
        defaults to ``name``. Two feedlines sharing ``device`` *and* chip
        parameters share one calibration artifact (fit-once enforced by
        the registry's per-key lock).
    """

    name: str
    chip: ChipConfig
    device: str | None = None

    @property
    def registry_device(self) -> str:
        return self.device if self.device is not None else self.name


@dataclass(frozen=True)
class _FeedlineTask:
    """Picklable work order for one feedline shard.

    Carries parameters only — never fitted models — so the same payload
    drives in-process and cross-process executors identically.
    """

    name: str
    chip: ChipConfig
    device: str
    profile: Profile
    n_shots: int
    seed: int
    chunk_size: int
    config: PipelineConfig
    registry_dir: str | None
    design: str
    version: int = 0
    drift_model: DriftModel | None = None
    drift_shot_offset: int = 0
    calibration_shot_offset: int = 0
    # Shared-memory replay hand-off: when set, the worker attaches to
    # the parent's published trace segment by name and streams zero-copy
    # views instead of simulating traffic. Kilobytes of descriptor in
    # the task payload replace megabytes of pickled trace arrays.
    replay: SharedTraceDescriptor | None = None


@dataclass(frozen=True)
class _PrefitTask:
    """Picklable calibration-only work order for one feedline.

    The streaming-free sibling of :class:`_FeedlineTask`: resolves the
    feedline's calibration through the shared registry (fitting and
    storing on a cold key) without serving any traffic. Hot
    recalibration reuses it with a bumped ``version`` and the drifted
    device snapshot as ``calibration_chip`` (the key identity stays the
    declared chip's).
    """

    name: str
    chip: ChipConfig
    device: str
    profile: Profile
    registry_dir: str
    design: str
    version: int = 0
    calibration_chip: ChipConfig | None = None


def _prefit_feedline(task: _PrefitTask) -> tuple[str, bool]:
    """Fit or load one feedline's calibration (module-level: pool safe).

    Returns ``(name, cached)`` — whether the artifact was already warm.
    Same-key feedlines stay fit-once through the registry's in-process
    and cross-process fit locks.
    """
    from repro.pipeline.registry import CalibrationRegistry
    from repro.pipeline.runner import fit_or_load_discriminator

    _, cached = fit_or_load_discriminator(
        task.profile,
        CalibrationRegistry(task.registry_dir),
        chip=task.chip,
        device=task.device,
        design=task.design,
        version=task.version,
        calibration_chip=task.calibration_chip,
    )
    return task.name, cached


def _placement_weight(task) -> int:
    """Relative cost of one feedline task: qubit count x trace length.

    Every stage of the chain (demod, matched filter, per-qubit heads)
    scales with the number of multiplexed channels and the samples per
    trace — and so does calibration (corpus size, kernel estimation) —
    so this product tracks task wall time without running it.
    """
    return task.chip.n_qubits * task.chip.trace_len


def _placement_order(tasks: Sequence) -> list:
    """Greedy longest-first dispatch order for heterogeneous feedlines.

    Pool executors hand tasks to workers in submission order; submitting
    the heaviest feedlines first keeps a heavy shard from landing last
    on an otherwise-drained pool and stretching the cluster wall time.
    Ties keep spec order (stable sort), so homogeneous clusters dispatch
    exactly as before.
    """
    return sorted(tasks, key=_placement_weight, reverse=True)


def _run_feedline(task: _FeedlineTask) -> tuple[str, PipelineReport]:
    """Run one feedline chain end to end (module-level: process-pool safe).

    The discriminator is resolved through the calibration registry by
    key — a process worker rebuilds it from stored artifacts rather than
    unpickling a fitted object, and a cold worker fits and stores it.
    A replay task attaches to the parent's shared-memory trace segment
    instead of simulating traffic (the mapping is dropped on the way
    out; the parent owns the unlink).
    """
    source = None
    if task.replay is not None:
        source = SharedMemoryTraceSource(
            task.replay, task.chip, chunk_size=task.chunk_size
        )
    try:
        report = run_streaming_pipeline(
            task.profile,
            n_shots=task.n_shots,
            chunk_size=task.chunk_size,
            registry_dir=task.registry_dir,
            chip=task.chip,
            device=task.device,
            seed=task.seed,
            design=task.design,
            config=task.config,
            version=task.version,
            drift_model=task.drift_model,
            drift_shot_offset=task.drift_shot_offset,
            calibration_shot_offset=task.calibration_shot_offset,
            source=source,
        )
    finally:
        if source is not None:
            source.close()
    report.details["feedline"] = task.name
    return task.name, report


class ShardExecutor(ABC):
    """Executes feedline tasks; backends differ in where shards run."""

    #: Registry name of the backend (``serial``/``thread``/``process``).
    name: str = "abstract"

    @abstractmethod
    def map(
        self,
        fn: Callable[[_FeedlineTask], tuple[str, PipelineReport]],
        tasks: Sequence[_FeedlineTask],
    ) -> list[tuple[str, PipelineReport]]:
        """Run ``fn`` over every task, returning results in task order."""

    def close(self) -> None:
        """Release backend resources. Idempotent."""


class SerialShardExecutor(ShardExecutor):
    """Runs every feedline inline on the calling thread."""

    name = "serial"

    def __init__(self, workers: int = 1) -> None:
        del workers  # one caller thread, by definition

    def map(self, fn, tasks):
        return [fn(task) for task in tasks]


def _warmup(index: int) -> int:
    """Pool warm-up task (module-level: process-pool picklable).

    The tiny matmul initializes per-process BLAS state in freshly
    spawned workers; the short sleep keeps every warm-up task in flight
    at once, so no single worker can drain the queue and the pool really
    does spawn all its workers up front (``concurrent.futures`` pools
    otherwise reuse an idle worker instead of growing).
    """
    import time as _time

    import numpy as np

    x = np.full((8, 8), float(index + 1))
    _time.sleep(0.02)
    return int((x @ x).shape[0])


class _PoolShardExecutor(ShardExecutor):
    """Shared plumbing for the ``concurrent.futures`` backends."""

    _pool_cls: type

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self._pool = self._pool_cls(max_workers=self.workers)
        # ``concurrent.futures`` pools spawn workers lazily on first
        # submit; serving pools are long-lived, so pre-spawn here and
        # keep cold-start (fork/thread creation) out of the measured
        # dispatch path.
        list(self._pool.map(_warmup, range(self.workers)))

    def map(self, fn, tasks):
        return list(self._pool.map(fn, tasks))

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class ThreadShardExecutor(_PoolShardExecutor):
    """One thread per shard; BLAS-heavy stages overlap despite the GIL."""

    name = "thread"
    _pool_cls = ThreadPoolExecutor


class ProcessShardExecutor(_PoolShardExecutor):
    """One OS process per shard; scales the python-bound stage glue.

    Workers rebuild discriminators from calibration-registry artifacts
    (see :func:`_run_feedline`) — fitted models are never pickled across
    the process boundary.
    """

    name = "process"
    _pool_cls = ProcessPoolExecutor


_EXECUTORS: dict[str, type[ShardExecutor]] = {
    cls.name: cls
    for cls in (SerialShardExecutor, ThreadShardExecutor, ProcessShardExecutor)
}


class ShardPoolLease(ShardExecutor):
    """One tenant's bounded claim on a :class:`SharedShardPool`.

    A lease is itself a :class:`ShardExecutor`, so it can be handed to a
    :class:`MultiFeedlineRunner` as its ``pool``: ``map`` dispatches
    through the shared substrate but never occupies more than the leased
    worker count at once (tasks beyond the grant run in successive
    windows). ``close`` releases the claim — the underlying pool stays
    up for the other tenants.
    """

    def __init__(self, pool: "SharedShardPool", tenant: str, workers: int):
        self._pool = pool
        self.tenant = tenant
        self.workers = int(workers)
        self.name = pool.executor
        self._released = False

    def map(self, fn, tasks):
        if self._released:
            raise ConfigurationError(
                f"lease for tenant {self.tenant!r} was already released"
            )
        return self._pool._map_bounded(fn, list(tasks), self.workers)

    def close(self) -> None:
        """Release the leased workers back to the pool. Idempotent."""
        if not self._released:
            self._released = True
            self._pool._release(self)


class SharedShardPool:
    """One shard-executor substrate leased out to many tenants.

    The fleet serving layer replaces N private per-service pools with a
    single backend executor plus lease accounting: each tenant's
    :meth:`lease` is admission-checked against the pool's capacity and
    returns a :class:`ShardPoolLease` that windows the tenant's dispatch
    to its granted worker count. A lease whose demand exceeds the pool's
    worker count can never be scheduled and is rejected outright;
    aggregate demand may oversubscribe the pool up to
    ``workers * oversubscription`` — those tenants time-share the
    substrate under the fleet scheduler rather than spawning threads or
    processes of their own.
    """

    def __init__(
        self,
        executor: str = "thread",
        workers: int | None = None,
        *,
        oversubscription: float = 2.0,
    ) -> None:
        validate_executor(executor)
        if workers is None:
            workers = available_cpus()
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if oversubscription < 1.0:
            raise ConfigurationError(
                f"oversubscription must be >= 1.0, got {oversubscription}"
            )
        self.executor = executor
        self.workers = int(workers)
        self.oversubscription = float(oversubscription)
        self._shard_executor = get_shard_executor(executor, self.workers)
        self._leases: dict[int, ShardPoolLease] = {}
        self._lock = trace_lock("cluster.shared-pool")
        self._closed = False

    @property
    def capacity(self) -> int:
        """Aggregate leasable workers (demand cap across all tenants)."""
        return int(self.workers * self.oversubscription)

    @property
    def leased_workers(self) -> int:
        """Workers currently claimed across outstanding leases."""
        with self._lock:
            return sum(lease.workers for lease in self._leases.values())

    @property
    def n_leases(self) -> int:
        with self._lock:
            return len(self._leases)

    def lease(self, tenant: str, workers: int = 1) -> ShardPoolLease:
        """Claim ``workers`` shard workers for ``tenant`` (admission gate).

        Raises :class:`ConfigurationError` when the demand could never be
        scheduled (more workers than the pool has) or when granting it
        would push aggregate leased demand past the pool's
        oversubscription capacity.
        """
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        with self._lock:
            if self._closed:
                raise ConfigurationError("shard pool is closed")
            if workers > self.workers:
                raise ConfigurationError(
                    f"tenant {tenant!r} demands {workers} workers but the "
                    f"pool has {self.workers}: the lease could never be "
                    "scheduled"
                )
            outstanding = sum(l.workers for l in self._leases.values())
            if outstanding + workers > self.capacity:
                raise ConfigurationError(
                    f"tenant {tenant!r} demands {workers} workers but "
                    f"{outstanding} of the pool's {self.capacity} leasable "
                    f"workers ({self.workers} x {self.oversubscription:g} "
                    "oversubscription) are already claimed"
                )
            lease = ShardPoolLease(self, tenant, workers)
            self._leases[id(lease)] = lease
            return lease

    def _release(self, lease: ShardPoolLease) -> None:
        with self._lock:
            self._leases.pop(id(lease), None)

    def _map_bounded(self, fn, tasks, limit: int):
        """Run tasks through the shared executor, ``limit`` at a time.

        The underlying ``concurrent.futures`` pools interleave submits
        from concurrent callers fairly enough; windowing merely stops a
        single tenant from parking its whole task list in the queue
        ahead of everyone else's.
        """
        if self._closed:
            raise ConfigurationError("shard pool is closed")
        results = []
        for start in range(0, len(tasks), max(1, limit)):
            results.extend(
                self._shard_executor.map(fn, tasks[start : start + limit])
            )
        return results

    def close(self) -> None:
        """Shut the backend executor down. Idempotent; leases die with it."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._leases.clear()
        self._shard_executor.close()

    def __enter__(self) -> "SharedShardPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

#: Valid ``executor=`` names, in documentation order.
EXECUTOR_NAMES = tuple(_EXECUTORS)


def validate_executor(name: str) -> str:
    """Check a shard-executor name; returns it for chaining."""
    if name not in _EXECUTORS:
        known = ", ".join(EXECUTOR_NAMES)
        raise ConfigurationError(
            f"unknown shard executor {name!r}; expected one of: {known}"
        )
    return name


def available_cpus() -> int:
    """Usable CPU count (honors cgroup/affinity pinning where exposed)."""
    try:
        return max(len(os.sched_getaffinity(0)), 1)
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def get_shard_executor(name: str, workers: int = 1) -> ShardExecutor:
    """Build a shard executor backend by name."""
    return _EXECUTORS[validate_executor(name)](workers)


@dataclass
class ClusterReport:
    """Aggregate digest of one multi-feedline run.

    Attributes
    ----------
    executor, workers:
        Shard backend name and its worker count.
    n_shots:
        Total shots streamed across all feedlines.
    wall_seconds:
        Cluster wall time (slowest shard path, including dispatch).
    shots_per_second:
        Global throughput: total shots over cluster wall time.
    feedline_reports:
        Per-feedline :class:`PipelineReport`, in feedline order.
    placement:
        Feedline name -> dispatch slot actually used (0 = submitted
        first). Records the greedy longest-first order so scheduling
        decisions are auditable from the report alone.
    """

    executor: str
    workers: int
    n_shots: int
    wall_seconds: float
    shots_per_second: float
    feedline_reports: dict[str, PipelineReport] = field(default_factory=dict)
    placement: dict[str, int] = field(default_factory=dict)

    @property
    def n_feedlines(self) -> int:
        return len(self.feedline_reports)

    def worst_p99_ms(self) -> dict[str, float]:
        """Per stage, the worst (max) p99 batch latency over feedlines."""
        worst: dict[str, float] = {}
        for report in self.feedline_reports.values():
            for stage, summary in report.stage_summaries.items():
                if summary["p99_ms"] is None:  # empty stage: no data
                    continue
                p99 = float(summary["p99_ms"])
                if p99 > worst.get(stage, float("-inf")):
                    worst[stage] = p99
        return worst

    def budget_verdicts(self) -> dict[str, dict]:
        """Per feedline, the FPGA decision-budget verdict."""
        return {
            name: report.budget.to_dict()
            for name, report in self.feedline_reports.items()
            if report.budget is not None
        }

    @property
    def accuracy(self) -> float | None:
        """Shot-weighted mean accuracy over feedlines that report one."""
        weighted = 0.0
        shots = 0
        for report in self.feedline_reports.values():
            if report.accuracy is not None:
                weighted += report.accuracy * report.n_shots
                shots += report.n_shots
        return weighted / shots if shots else None

    @property
    def drift_score(self) -> float | None:
        """Worst (max) per-feedline drift score; None when unmonitored.

        The feedline is the unit of calibration, so one drifting
        feedline is enough to demand attention — averaging would let a
        healthy majority mask it.
        """
        scores = [
            report.drift_score
            for report in self.feedline_reports.values()
            if report.drift_score is not None
        ]
        return max(scores) if scores else None

    @property
    def drift_alarm(self) -> bool | None:
        """Whether any monitored feedline tripped its drift alarm."""
        flags = [
            report.drift_alarm
            for report in self.feedline_reports.values()
            if report.drift_alarm is not None
        ]
        return any(flags) if flags else None

    def to_dict(self) -> dict:
        """JSON-serializable form (``--json`` / bench output)."""
        return {
            "executor": self.executor,
            "workers": self.workers,
            "n_feedlines": self.n_feedlines,
            "n_shots": self.n_shots,
            "wall_seconds": self.wall_seconds,
            "shots_per_second": self.shots_per_second,
            "accuracy": self.accuracy,
            "drift_score": self.drift_score,
            "drift_alarm": self.drift_alarm,
            "worst_p99_ms": json_finite(self.worst_p99_ms()),
            "budget_verdicts": self.budget_verdicts(),
            "placement": dict(self.placement),
            "feedlines": {
                name: report.to_dict()
                for name, report in self.feedline_reports.items()
            },
        }

    def format_table(self) -> str:
        """Aligned text report in the house experiment style."""
        from repro.experiments.report import format_rows

        rows = []
        for name, report in self.feedline_reports.items():
            worst_stage_p99 = max(
                (
                    s["p99_ms"]
                    for s in report.stage_summaries.values()
                    if s["p99_ms"] is not None
                ),
                default=float("nan"),
            )
            rows.append(
                [
                    name,
                    report.n_shots,
                    f"{report.shots_per_second:.0f}",
                    "-" if report.accuracy is None else f"{report.accuracy:.4f}",
                    f"{worst_stage_p99:.2f}",
                    (
                        "-"
                        if report.budget is None
                        else f"{report.budget.slowdown:.0f}x"
                    ),
                ]
            )
        table = format_rows(
            ["feedline", "shots", "shots/s", "accuracy", "p99 ms", "vs fpga"],
            rows,
            title=(
                f"multi-feedline pipeline ({self.n_feedlines} feedlines, "
                f"{self.executor} executor, {self.workers} workers)"
            ),
        )
        lines = [
            table,
            "",
            f"global throughput    {self.shots_per_second:.0f} shots/s "
            f"({self.n_shots} shots in {self.wall_seconds:.2f} s wall)",
        ]
        if self.accuracy is not None:
            lines.append(f"joint-state accuracy {self.accuracy:.4f} (weighted)")
        worst = self.worst_p99_ms()
        if worst:
            stage, p99 = max(worst.items(), key=lambda kv: kv[1])
            lines.append(f"worst stage p99      {p99:.2f} ms ({stage})")
        return "\n".join(lines)


class MultiFeedlineRunner:
    """Streams several feedlines concurrently, one chain per shard.

    Parameters
    ----------
    feedlines:
        Feedline specs, or bare :class:`ChipConfig` readout groups
        (auto-named ``feedline-<i>``).
    profile:
        Sizing profile shared by every feedline's calibration.
    executor:
        Shard backend: ``serial``, ``thread``, or ``process``.
    workers:
        Shard workers; defaults to one per feedline, capped at the CPU
        count (oversubscribing cores costs throughput on every backend
        — forked shards timesharing one core additionally thrash the
        cache across address spaces).
    config:
        Per-feedline runtime config (batching, channel workers,
        backpressure, adaptive batching).
    chunk_size:
        Shots per source chunk inside each feedline.
    registry_dir:
        Shared calibration-registry root. ``None`` makes every shard fit
        its own calibration from scratch (no artifacts stored) — fine
        for ``serial``/``thread``, wasteful but correct for ``process``.
    design:
        Registered discriminator design served on every feedline.
    pool:
        Injected shard executor (typically a :class:`ShardPoolLease` on
        a fleet's :class:`SharedShardPool`). When given, the runner
        dispatches through it instead of spawning a private pool, and
        :meth:`close` does *not* shut it down — the lease owner does.
        ``executor``/``workers`` then describe the injected pool for
        reporting.
    """

    def __init__(
        self,
        feedlines: Sequence[FeedlineSpec | ChipConfig],
        profile: Profile,
        *,
        executor: str = "thread",
        workers: int | None = None,
        config: PipelineConfig | None = None,
        chunk_size: int = 256,
        registry_dir: str | Path | None = None,
        design: str = DEFAULT_DESIGN,
        pool: ShardExecutor | None = None,
    ) -> None:
        specs = [
            spec
            if isinstance(spec, FeedlineSpec)
            else FeedlineSpec(name=f"feedline-{i}", chip=spec)
            for i, spec in enumerate(feedlines)
        ]
        if not specs:
            raise ConfigurationError("cluster needs at least one feedline")
        names = [spec.name for spec in specs]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"feedline names must be unique, got {names}"
            )
        validate_executor(executor)
        if workers is not None and workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        self.feedlines = tuple(specs)
        self.profile = profile
        self._pool_override = pool
        if pool is not None:
            executor = getattr(pool, "name", executor)
        self.executor = executor
        if workers is None:
            if pool is not None:
                workers = getattr(pool, "workers", None) or min(
                    len(specs), available_cpus()
                )
            else:
                workers = min(len(specs), available_cpus())
        self.workers = int(workers)
        self.config = config or PipelineConfig()
        self.chunk_size = int(chunk_size)
        self.registry_dir = (
            str(registry_dir) if registry_dir is not None else None
        )
        self.design = design
        self._shard_executor: ShardExecutor | None = None
        # Calibration-artifact version served per feedline name. Hot
        # recalibration bumps these atomically (plain dict assignment
        # under the GIL) so the next run() serves the new artifacts
        # without touching the pool or the session.
        self._versions: dict[str, int] = {
            spec.name: 0 for spec in self.feedlines
        }
        # Session clock (shots) each feedline's served version was
        # calibrated at: 0 for cold calibration, the recalibration
        # instant thereafter. Serving uses it to demodulate with the
        # device snapshot the kernels were actually estimated on.
        self._calibrated_at: dict[str, int] = {
            spec.name: 0 for spec in self.feedlines
        }

    def _get_executor(self) -> ShardExecutor:
        """The runner's long-lived shard pool (created on first use).

        Serving pools persist across streams: repeated :meth:`run` calls
        reuse warm workers instead of re-spawning them. Release with
        :meth:`close` (or use the runner as a context manager).
        """
        if self._pool_override is not None:
            return self._pool_override
        if self._shard_executor is None:
            self._shard_executor = get_shard_executor(
                self.executor, self.workers
            )
        return self._shard_executor

    def prewarm(self) -> "MultiFeedlineRunner":
        """Spawn the shard pool now instead of on the first :meth:`run`.

        Long-lived serving sessions (:class:`repro.serve.ReadoutService`)
        call this during warm-up so the first measured run pays no pool
        cold-start.
        """
        self._get_executor()
        return self

    def prefit(self) -> int:
        """Resolve every feedline's calibration through the shard pool.

        Dispatches calibration-only tasks (no streaming) over the
        runner's executor, so cold fits for distinct feedlines run as
        concurrently as serving does — thread shards fit on parallel
        threads, process shards fit in the workers that later serve
        them, with artifacts handed off through the shared registry.
        Heaviest feedlines fit first (same greedy longest-first order as
        serving); same-key feedlines stay fit-once via the registry's
        fit locks. Returns the number of cold fits performed.
        """
        if self.registry_dir is None:
            raise ConfigurationError(
                "prefit() needs a registry_dir: stored artifacts are the "
                "hand-off between calibration and serving shards"
            )
        tasks = [
            _PrefitTask(
                name=spec.name,
                chip=spec.chip,
                device=spec.registry_device,
                profile=self.profile,
                registry_dir=self.registry_dir,
                design=self.design,
            )
            for spec in self.feedlines
        ]
        results = self._get_executor().map(
            _prefit_feedline, _placement_order(tasks)
        )
        return sum(0 if cached else 1 for _, cached in results)

    def artifact_versions(self) -> dict[str, int]:
        """Calibration-artifact version currently served per feedline."""
        return dict(self._versions)

    def recalibrate(
        self,
        drift_model: DriftModel,
        shots_elapsed: int,
        profile: Profile | None = None,
    ) -> int:
        """Refit every feedline against the drifted device, hot.

        Dispatches calibration tasks through the shard pool — exactly
        like :meth:`prefit`, so recalibration runs as concurrently as
        serving — at each feedline's *next* artifact version, with the
        calibration corpus simulated from the device ``drift_model``
        predicts after ``shots_elapsed`` session shots. The currently
        served versions stay on disk and keep serving until every fit
        lands; only then are the served versions swapped, so a run
        dispatched mid-recalibration never sees a half-updated cluster.

        Parameters
        ----------
        drift_model:
            The session's drift injection; its ``chip_at`` snapshot is
            the best available stand-in for "the device now".
        shots_elapsed:
            Session shots already served (the drift clock).
        profile:
            Optional sizing override for the recalibration fits (e.g. a
            reduced shot budget); defaults to the serving profile. The
            profile *name and seed* must match the serving profile's —
            they are baked into the artifact key.

        Returns the number of cold fits performed.
        """
        if self.registry_dir is None:
            raise ConfigurationError(
                "recalibrate() needs a registry_dir: versioned artifacts "
                "are the hand-off between recalibration and serving shards"
            )
        from repro.pipeline.registry import CalibrationRegistry
        from repro.pipeline.runner import calibration_key

        fit_profile = profile if profile is not None else self.profile
        # The next version must exceed both the version *we* serve and
        # anything already stored — a persistent registry may hold
        # versions from earlier sessions, and serving one of those as a
        # warm hit would be exactly the stale calibration this refit is
        # supposed to replace.
        registry = CalibrationRegistry(self.registry_dir)
        next_versions = {}
        for spec in self.feedlines:
            stored = registry.latest_version(
                calibration_key(
                    fit_profile,
                    chip=spec.chip,
                    device=spec.registry_device,
                    design=self.design,
                )
            )
            next_versions[spec.name] = (
                max(
                    self._versions.get(spec.name, 0),
                    -1 if stored is None else stored,
                )
                + 1
            )
        tasks = [
            _PrefitTask(
                name=spec.name,
                chip=spec.chip,
                device=spec.registry_device,
                profile=fit_profile,
                registry_dir=self.registry_dir,
                design=self.design,
                version=next_versions[spec.name],
                calibration_chip=drift_model.chip_at(
                    spec.chip, shots_elapsed
                ),
            )
            for spec in self.feedlines
        ]
        results = self._get_executor().map(
            _prefit_feedline, _placement_order(tasks)
        )
        # Swap only after every feedline's new artifact is on disk.
        self._versions = next_versions
        self._calibrated_at = {
            spec.name: int(shots_elapsed) for spec in self.feedlines
        }
        return sum(0 if cached else 1 for _, cached in results)

    def close(self) -> None:
        """Shut down the shard pool. Idempotent; :meth:`run` revives it.

        An injected ``pool`` is never closed here — its owner (the fleet
        holding the lease) controls the shared substrate's lifetime.
        """
        if self._shard_executor is not None:
            self._shard_executor.close()
            self._shard_executor = None

    def __enter__(self) -> "MultiFeedlineRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _tasks(
        self,
        n_shots: int,
        seed: int | None,
        drift_model: DriftModel | None = None,
        drift_shot_offset: int = 0,
    ) -> list[_FeedlineTask]:
        base_seed = self.profile.seed + 1 if seed is None else int(seed)
        return [
            _FeedlineTask(
                name=spec.name,
                chip=spec.chip,
                device=spec.registry_device,
                profile=self.profile,
                n_shots=int(n_shots),
                # Distinct deterministic traffic per feedline: executors
                # and partitionings all see identical streams.
                seed=base_seed + index,
                chunk_size=self.chunk_size,
                config=self.config,
                registry_dir=self.registry_dir,
                design=self.design,
                version=self._versions.get(spec.name, 0),
                drift_model=drift_model,
                drift_shot_offset=drift_shot_offset,
                calibration_shot_offset=self._calibrated_at.get(spec.name, 0),
            )
            for index, spec in enumerate(self.feedlines)
        ]

    def run(
        self,
        n_shots: int,
        seed: int | None = None,
        drift_model: DriftModel | None = None,
        drift_shot_offset: int = 0,
    ) -> ClusterReport:
        """Stream ``n_shots`` per feedline; returns the aggregate report.

        Parameters
        ----------
        n_shots:
            Shots of simulated traffic streamed on *each* feedline.
        seed:
            Base traffic seed (default ``profile.seed + 1``); feedline
            ``i`` streams with ``seed + i``.
        drift_model, drift_shot_offset:
            Optional device-drift injection: every feedline streams
            from the time-varying device the model predicts, with the
            session clock starting at ``drift_shot_offset`` shots.
        """
        if n_shots < 1:
            raise ConfigurationError(f"n_shots must be >= 1, got {n_shots}")
        tasks = self._tasks(
            n_shots, seed, drift_model=drift_model,
            drift_shot_offset=drift_shot_offset,
        )
        shard_executor = self._get_executor()
        ordered = _placement_order(tasks)
        try:
            # The timed window covers dispatch and shard execution only:
            # pool spawn (pre-warmed at construction) and teardown are
            # serving-lifetime costs, not per-stream throughput.
            # Heterogeneous feedlines dispatch heaviest-first (greedy
            # longest-first); per-feedline seeds were fixed above, so the
            # dispatch order cannot change any result.
            wall_start = time.perf_counter()
            results = shard_executor.map(_run_feedline, ordered)
            wall = time.perf_counter() - wall_start
        except BaseException:
            # A failed dispatch may leave the pool wedged; rebuild it on
            # the next run rather than reusing a broken executor.
            self.close()
            raise

        # Reports keep declared feedline order regardless of placement.
        by_name = dict(results)
        reports = {task.name: by_name[task.name] for task in tasks}
        total_shots = sum(r.n_shots for r in reports.values())
        return ClusterReport(
            executor=self.executor,
            workers=self.workers,
            n_shots=total_shots,
            wall_seconds=wall,
            # Never Infinity (unserializable as strict JSON): a
            # sub-resolution wall reports 0.0, "not measurable".
            shots_per_second=total_shots / wall if wall > 0 else 0.0,
            feedline_reports=reports,
            placement={task.name: slot for slot, task in enumerate(ordered)},
        )

    def run_replay(
        self,
        corpora: (
            dict[str, ReadoutCorpus]
            | Sequence[ReadoutCorpus]
            | ReadoutCorpus
        ),
    ) -> ClusterReport:
        """Replay pre-built corpora over shared memory; aggregate report.

        Each feedline's traces are published once as a shared-memory
        :class:`~repro.pipeline.shm.SharedTraceBlock`; shard workers —
        in-process or forked — attach by descriptor and stream zero-copy
        views, so dispatch ships kilobytes of coordinates instead of
        pickling the trace arrays. This is also the honest serving
        benchmark: the traffic already exists, so the measured window
        contains discrimination only, not simulator time.

        Parameters
        ----------
        corpora:
            One :class:`~repro.data.dataset.ReadoutCorpus` per feedline,
            as a name-keyed dict or a sequence in declared feedline
            order — or a *single* corpus (a ``ReadoutCorpus`` or a
            loaded :class:`~repro.backends.corpus.RecordedCorpus`),
            broadcast to every feedline. Every corpus must match its
            feedline's chip geometry and carry labels (the shared block
            ships traces and ground truth together).

        Segments are unlinked before returning, success or not.
        """
        if hasattr(corpora, "feedline") and hasattr(corpora, "n_traces"):
            # A single corpus object: every feedline replays the same
            # recorded traffic (the record -> replay serving path).
            corpora = {spec.name: corpora for spec in self.feedlines}
        if not isinstance(corpora, dict):
            if len(corpora) != len(self.feedlines):
                raise ConfigurationError(
                    f"{len(corpora)} corpora for {len(self.feedlines)} "
                    "feedlines"
                )
            corpora = {
                spec.name: corpus
                for spec, corpus in zip(self.feedlines, corpora)
            }
        missing = [
            spec.name for spec in self.feedlines if spec.name not in corpora
        ]
        if missing:
            raise ConfigurationError(
                f"run_replay is missing corpora for feedlines: {missing}"
            )
        blocks: dict[str, SharedTraceBlock] = {}
        try:
            for spec in self.feedlines:
                corpus = corpora[spec.name]
                if corpus.chip.n_qubits != spec.chip.n_qubits:
                    raise ConfigurationError(
                        f"corpus for feedline {spec.name!r} has "
                        f"{corpus.chip.n_qubits} qubits, spec chip has "
                        f"{spec.chip.n_qubits}"
                    )
                if getattr(corpus, "prepared_levels", None) is None:
                    raise ConfigurationError(
                        f"corpus for feedline {spec.name!r} carries no "
                        "prepared-level labels; shared-memory replay "
                        "needs a labeled corpus"
                    )
                # The label names the owning feedline in sanitizer
                # lifetime-audit witnesses (REPRO_SANITIZE runs).
                blocks[spec.name] = SharedTraceBlock.from_corpus(
                    corpus, label=spec.name
                )
            tasks = [
                _FeedlineTask(
                    name=spec.name,
                    chip=spec.chip,
                    device=spec.registry_device,
                    profile=self.profile,
                    n_shots=corpora[spec.name].n_traces,
                    seed=self.profile.seed + 1 + index,
                    chunk_size=self.chunk_size,
                    config=self.config,
                    registry_dir=self.registry_dir,
                    design=self.design,
                    version=self._versions.get(spec.name, 0),
                    calibration_shot_offset=self._calibrated_at.get(
                        spec.name, 0
                    ),
                    replay=blocks[spec.name].descriptor,
                )
                for index, spec in enumerate(self.feedlines)
            ]
            shard_executor = self._get_executor()
            ordered = _placement_order(tasks)
            try:
                wall_start = time.perf_counter()
                results = shard_executor.map(_run_feedline, ordered)
                wall = time.perf_counter() - wall_start
            except BaseException:
                # Same policy as run(): a failed dispatch may leave the
                # pool wedged; rebuild it next time.
                self.close()
                raise
        finally:
            for block in blocks.values():
                block.unlink()

        by_name = dict(results)
        reports = {task.name: by_name[task.name] for task in tasks}
        total_shots = sum(r.n_shots for r in reports.values())
        return ClusterReport(
            executor=self.executor,
            workers=self.workers,
            n_shots=total_shots,
            wall_seconds=wall,
            shots_per_second=total_shots / wall if wall > 0 else 0.0,
            feedline_reports=reports,
            placement={task.name: slot for slot, task in enumerate(ordered)},
        )


def run_multi_feedline_pipeline(
    profile: Profile,
    n_shots: int,
    feedlines: int | Sequence[FeedlineSpec | ChipConfig] = 2,
    *,
    executor: str = "thread",
    workers: int | None = None,
    config: PipelineConfig | None = None,
    chunk_size: int = 256,
    registry_dir: str | Path | None = None,
    design: str = DEFAULT_DESIGN,
    seed: int | None = None,
    qubits_per_feedline: int = 5,
) -> ClusterReport:
    """Turnkey multi-feedline run: build the cluster, stream, aggregate.

    ``feedlines`` may be a count — readout groups then come from
    :func:`repro.physics.device.multi_feedline_chips` with
    ``qubits_per_feedline`` qubits each — or an explicit sequence of
    specs/chips. ``n_shots`` is per feedline. See
    :class:`MultiFeedlineRunner` for the remaining knobs.
    """
    if isinstance(feedlines, int):
        feedlines = multi_feedline_chips(
            feedlines, n_qubits=qubits_per_feedline
        )
    with MultiFeedlineRunner(
        feedlines,
        profile,
        executor=executor,
        workers=workers,
        config=config,
        chunk_size=chunk_size,
        registry_dir=registry_dir,
        design=design,
    ) as runner:
        return runner.run(n_shots, seed=seed)
