"""One runner per paper table/figure.

Each ``run_*`` function takes a :class:`repro.config.Profile`, performs the
experiment at that scale, and returns an :class:`repro.api.ExperimentResult`
carrying both the measured values and the paper's published values, so
benches and the CLI can print (and JSON-diff) paper-vs-measured side by
side.

The runners register themselves in :data:`repro.api.experiments` via the
``@experiment`` decorator; importing this package triggers
:func:`repro.api.discover`, so the registry is complete afterwards and the
module namespace (``run_table1``, ...) is derived from it rather than
hand-maintained.
"""

from repro.api.registry import discover as _discover
from repro.api.registry import experiments
from repro.experiments.common import ReadoutBundle, get_readout_bundle, get_trained

_discover()

# Re-export every registered runner (run_table1, run_fig5b, ...) under its
# function name, so ``from repro.experiments import run_table1`` keeps
# working without a hand-maintained import block.
globals().update(
    {spec.runner.__name__: spec.runner for spec in experiments.values()}
)

__all__ = [
    "ReadoutBundle",
    "get_readout_bundle",
    "get_trained",
    "experiments",
    *sorted(spec.runner.__name__ for spec in experiments.values()),
]
