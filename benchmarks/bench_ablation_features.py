"""Ablation bench: error-matched-filter contribution (QMF / +RMF / +EMF).

The paper attributes its Table V gains to the relaxation/excitation
matched filters; this ablation measures F5Q with each feature family
toggled.
"""

from repro.discriminators import MLRDiscriminator
from repro.experiments.common import NN_LEARNING_RATE, get_readout_bundle
from repro.ml.metrics import geometric_mean_fidelity, per_qubit_fidelity


def _fidelity(profile, include_rmf, include_emf):
    bundle = get_readout_bundle(profile)
    disc = MLRDiscriminator(
        include_rmf=include_rmf,
        include_emf=include_emf,
        epochs=profile.nn_epochs,
        learning_rate=NN_LEARNING_RATE,
        seed=profile.seed + 91,
    )
    disc.fit(bundle.corpus, bundle.train_idx)
    pred = disc.predict(bundle.corpus, bundle.test_idx)
    fid = per_qubit_fidelity(
        bundle.test_labels, pred, bundle.corpus.n_qubits, bundle.corpus.n_levels
    )
    return geometric_mean_fidelity(fid)


def test_ablation_feature_families(benchmark, profile):
    def run():
        return {
            "qmf only": _fidelity(profile, False, False),
            "qmf+rmf": _fidelity(profile, True, False),
            "qmf+rmf+emf": _fidelity(profile, True, True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nfeature-family ablation (F5Q):")
    for name, f5q in results.items():
        print(f"  {name:12s}: {f5q:.4f}")
    # The full design must not lose to its ablations by a real margin.
    assert results["qmf+rmf+emf"] > results["qmf only"] - 0.01
