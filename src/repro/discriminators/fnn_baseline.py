"""FNN baseline (Lienhard et al., PRApplied 2022), widened to three levels.

The network consumes every raw ADC sample without demodulation: 500 I and
500 Q samples give the 1000-neuron input layer; hidden layers of 500 and
250 feed an output layer of ``3**n`` joint states (243 for five qubits,
~687k parameters — the paper's quoted size).
"""

from __future__ import annotations

import numpy as np

from repro._util import check_random_state, child_rng
from repro.data.basis import n_basis_states
from repro.data.dataset import ReadoutCorpus
from repro.discriminators.base import Discriminator
from repro.discriminators.registry import register
from repro.exceptions import ConfigurationError
from repro.ml.dataset import StandardScaler
from repro.ml.nn import Adam, MLPClassifier, train_classifier

__all__ = ["FNNBaseline"]


@register(
    "fnn",
    description="raw-IQ feedforward network widened to 3^n states",
)
class FNNBaseline(Discriminator):
    """Joint-state classifier over raw IQ samples.

    Parameters
    ----------
    hidden_sizes:
        Hidden layer widths; the paper's architecture is (500, 250).
    epochs, batch_size, learning_rate:
        Training budget (Adam with early stopping on a 15% validation
        split).
    seed:
        Controls weight init, shuffling, and the validation split.
    """

    name = "fnn"

    @classmethod
    def from_profile(cls, profile) -> "FNNBaseline":
        return cls(
            epochs=profile.fnn_epochs,
            batch_size=profile.batch_size,
            seed=profile.seed + 12,
        )

    def __init__(
        self,
        hidden_sizes: tuple[int, ...] = (500, 250),
        epochs: int = 20,
        batch_size: int = 128,
        learning_rate: float = 1e-3,
        weight_decay: float = 1e-3,
        patience: int = 20,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if not hidden_sizes:
            raise ConfigurationError("hidden_sizes must not be empty")
        self.hidden_sizes = tuple(int(h) for h in hidden_sizes)
        self.epochs = epochs
        self.batch_size = batch_size
        self.learning_rate = learning_rate
        self.weight_decay = weight_decay
        self.patience = patience
        self._rng = check_random_state(seed)
        self.model: MLPClassifier | None = None
        self.scaler: StandardScaler | None = None

    @property
    def n_parameters(self) -> int:
        if self.model is None:
            raise ConfigurationError(
                "architecture unknown before fit(); call fit() first"
            )
        return self.model.n_parameters

    def fit(self, corpus: ReadoutCorpus, indices: np.ndarray) -> "FNNBaseline":
        subset = corpus.subset(self._resolve_indices(corpus, indices))
        features = subset.iq_features()
        self.scaler = StandardScaler()
        x = self.scaler.fit_transform(features)
        n_out = n_basis_states(corpus.n_qubits, corpus.n_levels)
        self.model = MLPClassifier(
            (x.shape[1], *self.hidden_sizes, n_out),
            seed=child_rng(self._rng, 0),
        )
        train_classifier(
            self.model,
            x,
            subset.labels,
            epochs=self.epochs,
            batch_size=self.batch_size,
            optimizer=Adam(self.learning_rate, weight_decay=self.weight_decay),
            patience=self.patience,
            seed=child_rng(self._rng, 1),
        )
        self._fitted = True
        return self

    def predict(
        self, corpus: ReadoutCorpus, indices: np.ndarray | None = None
    ) -> np.ndarray:
        self._require_fitted()
        idx = self._resolve_indices(corpus, indices)
        features = corpus.subset(idx).iq_features()
        return self.model.predict(self.scaler.transform(features))

    def _artifact_meta(self) -> dict:
        return {
            "hidden_sizes": list(self.hidden_sizes),
            "layer_sizes": list(self.model.layer_sizes),
        }

    def _artifact_arrays(self) -> dict[str, np.ndarray]:
        arrays: dict[str, np.ndarray] = {}
        self._pack_scaler(arrays, self.scaler)
        self._pack_mlp(arrays, self.model, "model")
        return arrays

    @classmethod
    def _from_artifacts(
        cls, meta: dict, arrays: dict[str, np.ndarray]
    ) -> "FNNBaseline":
        disc = cls(hidden_sizes=tuple(meta["hidden_sizes"]))
        disc.scaler = cls._unpack_scaler(arrays)
        disc.model = cls._unpack_mlp(meta["layer_sizes"], arrays, "model")
        disc._fitted = True
        return disc
