"""Versioned on-disk trace corpora: the record/replay storage format.

A recorded corpus is a directory::

    corpus/
      manifest.json            # strict JSON, format-versioned
      chunk-00000.feedline.npy # complex64 (n_shots, trace_len)
      chunk-00000.levels.npy   # int8 (n_shots, n_qubits), labeled only
      chunk-00001.feedline.npy
      ...

The manifest pins everything replay needs to be *bit-deterministic and
safe*: the format version, the full chip config plus its SHA-1 (the same
digest the calibration registry keys on, so a replayed corpus can never
silently feed a discriminator calibrated for another chip), the
recording seed and source description (backend name, drift section), and
a SHA-256 per chunk file. :func:`load_corpus` verifies all of it and
raises a precise :class:`~repro.exceptions.ConfigurationError` naming
the offending file on any mismatch.

Replayed arrays are read-only (``flags.writeable = False``): a corpus is
shared evidence, and no downstream stage may silently corrupt it.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterator, Sequence

import numpy as np

from repro.exceptions import ConfigurationError
from repro.physics.device import ChipConfig
from repro.pipeline.source import ShotChunk

__all__ = [
    "CORPUS_FORMAT",
    "CORPUS_FORMAT_VERSION",
    "MANIFEST_NAME",
    "chip_sha",
    "CorpusWriter",
    "RecordedCorpus",
    "load_corpus",
]

#: Manifest ``format`` tag — a corpus directory self-identifies.
CORPUS_FORMAT = "repro-trace-corpus"

#: Current manifest schema version; bumped on layout changes.
CORPUS_FORMAT_VERSION = 1

#: Manifest file name inside a corpus directory.
MANIFEST_NAME = "manifest.json"

_FEEDLINE_DTYPE = "complex64"
_LEVELS_DTYPE = "int8"


def chip_sha(chip: ChipConfig) -> str:
    """Full SHA-1 of the chip config (sorted-key JSON of ``to_dict``).

    The same payload the calibration registry's device slug truncates —
    a corpus and an artifact recorded for the same chip agree on it.
    """
    payload = json.dumps(chip.to_dict(), sort_keys=True).encode()
    return hashlib.sha1(payload).hexdigest()


def _sha256_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for block in iter(lambda: fh.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


class CorpusWriter:
    """Appends shot chunks to a corpus directory, manifest-last.

    The target directory must not already hold a corpus (fresh or empty
    directories only — recording never silently overwrites evidence).
    Chunk files land as they are appended; the manifest is (re)written
    by :meth:`close` and after every :meth:`checkpoint`, so a crashed
    recording leaves either a loadable prefix or no manifest at all —
    never a manifest describing missing data.
    """

    def __init__(
        self,
        path: str | Path,
        chip: ChipConfig,
        *,
        seed: int | None = None,
        source: dict | None = None,
    ) -> None:
        path = Path(path)
        if path.exists():
            if not path.is_dir():
                raise ConfigurationError(
                    f"corpus path {path} exists and is not a directory"
                )
            if any(path.iterdir()):
                raise ConfigurationError(
                    f"corpus directory {path} is not empty; refusing to "
                    "overwrite an existing recording"
                )
        path.mkdir(parents=True, exist_ok=True)
        self.path = path
        self.chip = chip
        self.seed = seed
        self.source = dict(source) if source else {}
        self._entries: list[dict] = []
        self._n_shots = 0
        self._labeled: bool | None = None
        self._closed = False

    @property
    def n_shots(self) -> int:
        return self._n_shots

    @property
    def n_chunks(self) -> int:
        return len(self._entries)

    def append(self, chunk: ShotChunk) -> None:
        """Write one chunk's arrays and register them in the manifest."""
        if self._closed:
            raise ConfigurationError(
                f"corpus writer for {self.path} is closed"
            )
        labeled = chunk.prepared_levels is not None
        if self._labeled is None:
            self._labeled = labeled
        elif labeled != self._labeled:
            raise ConfigurationError(
                "corpus chunks must be uniformly labeled or unlabeled; "
                f"chunk {len(self._entries)} breaks the stream"
            )
        index = len(self._entries)
        feedline = np.ascontiguousarray(
            chunk.feedline, dtype=np.dtype(_FEEDLINE_DTYPE)
        )
        entry = {"index": index, "n_shots": int(chunk.n_shots)}
        feed_name = f"chunk-{index:05d}.feedline.npy"
        np.save(self.path / feed_name, feedline)
        entry["feedline"] = {
            "file": feed_name,
            "sha256": _sha256_file(self.path / feed_name),
        }
        if labeled:
            levels = np.ascontiguousarray(
                chunk.prepared_levels, dtype=np.dtype(_LEVELS_DTYPE)
            )
            levels_name = f"chunk-{index:05d}.levels.npy"
            np.save(self.path / levels_name, levels)
            entry["levels"] = {
                "file": levels_name,
                "sha256": _sha256_file(self.path / levels_name),
            }
        self._entries.append(entry)
        self._n_shots += int(chunk.n_shots)

    def manifest(self) -> dict:
        """The manifest for everything appended so far."""
        return {
            "format": CORPUS_FORMAT,
            "format_version": CORPUS_FORMAT_VERSION,
            "chip": self.chip.to_dict(),
            "chip_sha": chip_sha(self.chip),
            "seed": self.seed,
            "source": self.source,
            "labeled": bool(self._labeled),
            "n_shots": self._n_shots,
            "trace_len": self.chip.trace_len,
            "n_qubits": self.chip.n_qubits,
            "feedline_dtype": _FEEDLINE_DTYPE,
            "levels_dtype": _LEVELS_DTYPE,
            "chunks": self._entries,
        }

    def checkpoint(self) -> None:
        """Atomically (re)write the manifest for the chunks on disk."""
        tmp = self.path / (MANIFEST_NAME + ".tmp")
        tmp.write_text(json.dumps(self.manifest(), indent=2) + "\n")
        tmp.replace(self.path / MANIFEST_NAME)

    def close(self) -> Path:
        """Finalize the manifest; returns the corpus path. Idempotent."""
        if not self._closed:
            self.checkpoint()
            self._closed = True
        return self.path


class RecordedCorpus:
    """A loaded, integrity-checked corpus, ready for replay.

    All trace data lives in two read-only contiguous arrays
    (:attr:`feedline`, :attr:`prepared_levels`) — the shapes
    :class:`~repro.pipeline.shm.SharedTraceBlock.from_corpus` publishes
    for process-shard replay — and :meth:`chunks` yields the *original*
    chunk boundaries as zero-copy views into them, so in-process replay
    is bit-identical to the recorded stream.
    """

    def __init__(
        self,
        path: Path,
        manifest: dict,
        chip: ChipConfig,
        feedline: np.ndarray,
        prepared_levels: np.ndarray | None,
        chunk_shots: Sequence[int],
    ) -> None:
        self.path = path
        self.manifest = manifest
        self.chip = chip
        feedline.flags.writeable = False
        self.feedline = feedline
        if prepared_levels is not None:
            prepared_levels.flags.writeable = False
        self.prepared_levels = prepared_levels
        self.chunk_shots = tuple(int(n) for n in chunk_shots)

    @property
    def n_shots(self) -> int:
        return self.feedline.shape[0]

    #: Alias matching :class:`~repro.data.dataset.ReadoutCorpus`, so a
    #: recorded corpus drops into every replay API a ReadoutCorpus fits.
    @property
    def n_traces(self) -> int:
        return self.n_shots

    @property
    def trace_len(self) -> int:
        return self.feedline.shape[1]

    @property
    def labeled(self) -> bool:
        return self.prepared_levels is not None

    @property
    def chip_sha(self) -> str:
        return self.manifest["chip_sha"]

    @property
    def seed(self) -> int | None:
        return self.manifest.get("seed")

    def summary(self) -> dict:
        """JSON-able digest (CLI/report payloads)."""
        return {
            "path": str(self.path),
            "format_version": self.manifest["format_version"],
            "chip_sha": self.chip_sha,
            "seed": self.seed,
            "labeled": self.labeled,
            "n_shots": self.n_shots,
            "n_chunks": len(self.chunk_shots),
            "trace_len": self.trace_len,
            "n_qubits": self.chip.n_qubits,
        }

    def chunks(self) -> Iterator[ShotChunk]:
        """Replay the recorded chunk stream as read-only views."""
        start = 0
        for chunk_id, size in enumerate(self.chunk_shots):
            stop = start + size
            levels = (
                None
                if self.prepared_levels is None
                else self.prepared_levels[start:stop]
            )
            yield ShotChunk(
                feedline=self.feedline[start:stop],
                prepared_levels=levels,
                chunk_id=chunk_id,
            )
            start = stop

    def require_chip(self, chip: ChipConfig) -> None:
        """Demand the serving chip be *exactly* the recorded one."""
        serving = chip_sha(chip)
        if serving != self.chip_sha:
            raise ConfigurationError(
                f"corpus {self.path / MANIFEST_NAME} was recorded for chip "
                f"{self.chip_sha[:12]}, the serving chip is {serving[:12]}; "
                "replaying traces onto a different device is refused"
            )

    def require_geometry(self, chip: ChipConfig) -> None:
        """Demand shape compatibility (cluster replay onto sibling chips)."""
        problems = []
        if chip.n_qubits != self.chip.n_qubits:
            problems.append(
                f"{self.chip.n_qubits} recorded qubits vs {chip.n_qubits}"
            )
        if chip.trace_len != self.trace_len:
            problems.append(
                f"trace_len {self.trace_len} recorded vs {chip.trace_len}"
            )
        if chip.n_levels != self.chip.n_levels:
            problems.append(
                f"{self.chip.n_levels} recorded levels vs {chip.n_levels}"
            )
        if problems:
            raise ConfigurationError(
                f"corpus {self.path / MANIFEST_NAME} does not fit the "
                "serving chip: " + "; ".join(problems)
            )


def _manifest_error(path: Path, detail: str) -> ConfigurationError:
    return ConfigurationError(f"corpus manifest {path}: {detail}")


def _load_manifest(manifest_path: Path) -> dict:
    if not manifest_path.is_file():
        raise ConfigurationError(
            f"corpus manifest not found: {manifest_path}"
        )
    try:
        manifest = json.loads(manifest_path.read_text())
    except json.JSONDecodeError as exc:
        raise _manifest_error(
            manifest_path, f"not valid JSON ({exc})"
        ) from exc
    if not isinstance(manifest, dict):
        raise _manifest_error(
            manifest_path, f"must be a JSON object, got {type(manifest).__name__}"
        )
    if manifest.get("format") != CORPUS_FORMAT:
        raise _manifest_error(
            manifest_path,
            f"format must be {CORPUS_FORMAT!r}, got "
            f"{manifest.get('format')!r}",
        )
    if manifest.get("format_version") != CORPUS_FORMAT_VERSION:
        raise _manifest_error(
            manifest_path,
            f"format_version {manifest.get('format_version')!r} is not "
            f"supported (expected {CORPUS_FORMAT_VERSION})",
        )
    required = (
        "chip", "chip_sha", "labeled", "n_shots", "trace_len", "n_qubits",
        "feedline_dtype", "levels_dtype", "chunks",
    )
    missing = [key for key in required if key not in manifest]
    if missing:
        raise _manifest_error(
            manifest_path, f"missing required keys: {', '.join(missing)}"
        )
    if not isinstance(manifest["chunks"], list) or not manifest["chunks"]:
        raise _manifest_error(
            manifest_path, "chunks must be a non-empty list"
        )
    return manifest


def _load_chunk_array(
    path: Path,
    spec: dict,
    manifest_path: Path,
    *,
    dtype: str,
    shape: tuple[int, int],
    verify: bool,
) -> np.ndarray:
    """One chunk file: checksum first, then load and shape-check."""
    file_path = path / spec["file"]
    if not file_path.is_file():
        raise ConfigurationError(
            f"corpus chunk file missing: {file_path} (named by "
            f"{manifest_path})"
        )
    if verify:
        actual = _sha256_file(file_path)
        if actual != spec["sha256"]:
            raise ConfigurationError(
                f"corpus chunk {file_path} fails its checksum: manifest "
                f"records sha256 {spec['sha256'][:12]}…, file hashes to "
                f"{actual[:12]}…"
            )
    array = np.load(file_path)
    if array.dtype != np.dtype(dtype) or array.shape != shape:
        raise ConfigurationError(
            f"corpus chunk {file_path} is {array.dtype}{array.shape}, "
            f"manifest declares {dtype}{shape}"
        )
    return array


def load_corpus(path: str | Path, *, verify: bool = True) -> RecordedCorpus:
    """Load and integrity-check a corpus directory.

    Every chunk file is checksummed against the manifest (disable with
    ``verify=False`` for trusted benchmarking reloads) and shape-checked
    against the declared geometry; the chip config is rebuilt and its
    SHA revalidated. Any violation raises a
    :class:`~repro.exceptions.ConfigurationError` naming the offending
    file.
    """
    path = Path(path)
    manifest_path = path / MANIFEST_NAME
    manifest = _load_manifest(manifest_path)
    try:
        chip = ChipConfig.from_dict(manifest["chip"])
    except (KeyError, TypeError, ValueError) as exc:
        raise _manifest_error(
            manifest_path, f"chip section does not parse ({exc})"
        ) from exc
    if chip_sha(chip) != manifest["chip_sha"]:
        raise _manifest_error(
            manifest_path,
            f"chip_sha {manifest['chip_sha'][:12]}… does not match the "
            "manifest's own chip section — the manifest was altered",
        )
    labeled = bool(manifest["labeled"])
    trace_len = int(manifest["trace_len"])
    n_qubits = int(manifest["n_qubits"])
    feedline_parts: list[np.ndarray] = []
    levels_parts: list[np.ndarray] = []
    chunk_shots: list[int] = []
    for spec in manifest["chunks"]:
        size = int(spec["n_shots"])
        feedline_parts.append(
            _load_chunk_array(
                path, spec["feedline"], manifest_path,
                dtype=manifest["feedline_dtype"],
                shape=(size, trace_len),
                verify=verify,
            )
        )
        if labeled:
            if "levels" not in spec:
                raise _manifest_error(
                    manifest_path,
                    f"chunk {spec.get('index')} is missing its levels "
                    "entry in a labeled corpus",
                )
            levels_parts.append(
                _load_chunk_array(
                    path, spec["levels"], manifest_path,
                    dtype=manifest["levels_dtype"],
                    shape=(size, n_qubits),
                    verify=verify,
                )
            )
        chunk_shots.append(size)
    feedline = np.concatenate(feedline_parts, axis=0)
    if feedline.shape[0] != int(manifest["n_shots"]):
        raise _manifest_error(
            manifest_path,
            f"chunks hold {feedline.shape[0]} shots, n_shots declares "
            f"{manifest['n_shots']}",
        )
    prepared_levels = (
        np.concatenate(levels_parts, axis=0) if labeled else None
    )
    return RecordedCorpus(
        path=path,
        manifest=manifest,
        chip=chip,
        feedline=feedline,
        prepared_levels=prepared_levels,
        chunk_shots=chunk_shots,
    )
