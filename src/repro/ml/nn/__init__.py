"""Minimal feedforward neural-network stack (numpy only).

The stack provides exactly what the paper's discriminators need: dense
layers, ReLU hidden activations, a softmax cross-entropy head, Adam, and a
minibatch training loop with early stopping on a validation split.
"""

from repro.ml.nn.network import MLPClassifier, Sequential
from repro.ml.nn.layers import Dense
from repro.ml.nn.optimizers import SGD, Adam, Optimizer
from repro.ml.nn.training import TrainingHistory, train_classifier

__all__ = [
    "Dense",
    "Sequential",
    "MLPClassifier",
    "Optimizer",
    "SGD",
    "Adam",
    "TrainingHistory",
    "train_classifier",
]
