"""End-to-end readout simulation: preparation to digitized feedline traces."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_random_state
from repro.exceptions import ConfigurationError, ShapeError
from repro.physics.device import ChipConfig
from repro.physics.jumps import TransitionRates, sample_level_matrix
from repro.physics.multiplex import combine_feedline
from repro.physics.noise import complex_white_noise
from repro.physics.trajectories import baseband_response

__all__ = ["SimulationResult", "ReadoutSimulator"]


@dataclass(frozen=True)
class SimulationResult:
    """Output of a batch simulation.

    Attributes
    ----------
    feedline:
        Digitized multiplexed IQ signal, complex64 (n_shots, trace_len).
        Its real/imag parts are what the two ADCs record.
    prepared_levels:
        The *intended* per-qubit levels (n_shots, n_qubits) — the labels a
        calibration run would assign.
    initial_levels:
        Levels actually occupied at t=0 after preparation errors (natural
        leakage, thermal population).
    final_levels:
        Levels at the end of the window, after mid-readout jumps.
    """

    feedline: np.ndarray
    prepared_levels: np.ndarray
    initial_levels: np.ndarray
    final_levels: np.ndarray

    @property
    def n_shots(self) -> int:
        return self.feedline.shape[0]


class ReadoutSimulator:
    """Simulates multiplexed dispersive readout for one chip.

    Parameters
    ----------
    chip:
        Device description.
    seed:
        RNG seed or generator; all stochastic stages (preparation errors,
        jumps, noise) draw from it.
    """

    def __init__(
        self, chip: ChipConfig, seed: int | np.random.Generator | None = None
    ) -> None:
        self.chip = chip
        self._rng = check_random_state(seed)
        self._rates = [TransitionRates.from_qubit(q) for q in chip.qubits]

    def _apply_preparation_errors(self, prepared: np.ndarray) -> np.ndarray:
        """Sample actual initial levels given intended levels."""
        initial = prepared.copy()
        for q, qubit in enumerate(self.chip.qubits):
            col = prepared[:, q]
            u = self._rng.random(col.shape[0])
            thermal = (col == 0) & (u < qubit.prep_thermal_prob)
            leak = (col == 1) & (u < qubit.prep_leak_prob)
            initial[thermal, q] = 1
            initial[leak, q] = 2
        return initial

    def simulate(
        self,
        prepared_levels: np.ndarray,
        trace_len: int | None = None,
        include_preparation_errors: bool = True,
    ) -> SimulationResult:
        """Simulate one readout window for a batch of prepared states.

        Parameters
        ----------
        prepared_levels:
            Integer array (n_shots, n_qubits): intended level per qubit.
        trace_len:
            Override the chip's readout window length (used by the
            readout-duration sweep of Fig 5b).
        include_preparation_errors:
            When False, qubits start exactly in their prepared level
            (useful for controlled unit tests).
        """
        prepared = np.asarray(prepared_levels, dtype=np.int64)
        if prepared.ndim != 2 or prepared.shape[1] != self.chip.n_qubits:
            raise ShapeError(
                f"prepared_levels must be (n_shots, {self.chip.n_qubits}), "
                f"got {prepared.shape}"
            )
        if prepared.min() < 0 or prepared.max() >= self.chip.n_levels:
            raise ConfigurationError(
                f"levels must lie in [0, {self.chip.n_levels})"
            )
        trace_len = self.chip.trace_len if trace_len is None else int(trace_len)
        if trace_len < 2:
            raise ConfigurationError(f"trace_len must be >= 2, got {trace_len}")

        if include_preparation_errors:
            initial = self._apply_preparation_errors(prepared)
        else:
            initial = prepared.copy()

        n_shots = prepared.shape[0]
        dt = self.chip.dt_ns
        times = self.chip.sample_times(trace_len)

        basebands = np.empty(
            (self.chip.n_qubits, n_shots, trace_len), dtype=np.complex128
        )
        final = np.empty_like(initial)
        for q, qubit in enumerate(self.chip.qubits):
            levels = sample_level_matrix(
                initial[:, q], self._rates[q], trace_len, dt, self._rng
            )
            final[:, q] = levels[:, -1]
            basebands[q] = baseband_response(qubit, levels, dt)

        feedline = combine_feedline(self.chip, basebands, times)
        feedline += complex_white_noise(
            feedline.shape, self.chip.noise_std, self._rng
        )
        feedline = self.chip.adc.digitize(feedline)
        return SimulationResult(
            feedline=feedline.astype(np.complex64),
            prepared_levels=prepared,
            initial_levels=initial,
            final_levels=final,
        )

    def simulate_joint_states(
        self,
        joint_states: np.ndarray,
        shots_per_state: int,
        n_levels: int | None = None,
        trace_len: int | None = None,
    ) -> tuple[SimulationResult, np.ndarray]:
        """Simulate ``shots_per_state`` shots for each joint basis state.

        Returns the batch result and the per-shot joint state labels.
        """
        from repro.data.basis import state_to_digits

        if shots_per_state < 1:
            raise ConfigurationError("shots_per_state must be >= 1")
        n_levels = self.chip.n_levels if n_levels is None else n_levels
        states = np.asarray(joint_states, dtype=np.int64)
        labels = np.repeat(states, shots_per_state)
        digits = state_to_digits(labels, self.chip.n_qubits, n_levels)
        result = self.simulate(digits, trace_len=trace_len)
        return result, labels
