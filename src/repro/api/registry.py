"""Experiment registry: every paper table/figure, addressable by name.

The registry replaces the hand-maintained ``EXPERIMENTS`` dict: each
runner module declares itself with the :func:`experiment` decorator and
:func:`discover` imports every ``repro.experiments.*`` module so the
registry is complete after one call. Specs carry tags (``fidelity``,
``qec``, ``fpga``, ``scaling``, ...) and the paper reference, so callers
can select subsets by name, tag, or ``"all"`` through
:meth:`ExperimentRegistry.select`.
"""

from __future__ import annotations

import functools
import importlib
import pkgutil
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping

from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.exceptions import ConfigurationError

__all__ = ["ExperimentSpec", "ExperimentRegistry", "experiment", "experiments", "discover"]

#: Experiment modules that exist for support, not registration.
_NON_EXPERIMENT_MODULES = frozenset({"common", "report"})


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment.

    Parameters
    ----------
    name:
        Registry name (``"table1"``, ``"fig5b"``, ...).
    runner:
        Callable ``runner(profile, **kwargs) -> ExperimentResult``.
    tags:
        Selection tags (``fidelity``, ``qec``, ``fpga``, ``scaling``, ...).
    paper_ref:
        Where in the paper the reproduced values live (``"Table I"``).
    description:
        One-line summary (defaults to the runner's docstring headline).
    module:
        Dotted module path of the runner, for diagnostics.
    """

    name: str
    runner: Callable[..., ExperimentResult]
    tags: tuple[str, ...] = ()
    paper_ref: str = ""
    description: str = ""
    module: str = field(default="", compare=False)

    def run(self, profile: Profile = QUICK, **kwargs) -> ExperimentResult:
        """Execute the experiment at the given profile."""
        return self.runner(profile, **kwargs)


class ExperimentRegistry(Mapping):
    """Name -> :class:`ExperimentSpec` mapping with tag selection."""

    def __init__(self) -> None:
        self._specs: dict[str, ExperimentSpec] = {}

    # Mapping protocol ---------------------------------------------------

    def __getitem__(self, name: str) -> ExperimentSpec:
        return self._specs[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._specs)

    def __len__(self) -> int:
        return len(self._specs)

    # Registration -------------------------------------------------------

    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        """Add a spec; duplicate names are a configuration error."""
        existing = self._specs.get(spec.name)
        if existing is not None and existing.runner is not spec.runner:
            raise ConfigurationError(
                f"experiment {spec.name!r} already registered by "
                f"{existing.module or 'another module'}"
            )
        self._specs[spec.name] = spec
        return spec

    # Selection ----------------------------------------------------------

    def names(self) -> tuple[str, ...]:
        """Registered names in registration (paper) order."""
        return tuple(self._specs)

    def tags(self) -> tuple[str, ...]:
        """All tags in use, sorted."""
        return tuple(sorted({t for s in self._specs.values() for t in s.tags}))

    def by_tag(self, tag: str) -> tuple[ExperimentSpec, ...]:
        """Specs carrying ``tag``, in registration order."""
        return tuple(s for s in self._specs.values() if tag in s.tags)

    def select(
        self, selectors: str | Iterable[str]
    ) -> tuple[ExperimentSpec, ...]:
        """Resolve names/tags/``"all"`` to specs, deduplicated, in order.

        Each selector may be an experiment name, a tag, or the literal
        ``"all"``. Unknown selectors raise :class:`ConfigurationError`
        listing what is available.
        """
        if isinstance(selectors, str):
            selectors = [selectors]
        chosen: dict[str, ExperimentSpec] = {}
        for selector in selectors:
            if selector == "all":
                chosen.update(self._specs)
                continue
            if selector in self._specs:
                chosen[selector] = self._specs[selector]
                continue
            tagged = self.by_tag(selector)
            if tagged:
                chosen.update({s.name: s for s in tagged})
                continue
            known = ", ".join(self.names())
            known_tags = ", ".join(self.tags())
            raise ConfigurationError(
                f"unknown experiment {selector!r}; expected one of: {known} "
                f"(or a tag: {known_tags}, or 'all')"
            )
        # dicts preserve insertion order; re-sort to registration order so
        # selection order never changes execution order.
        order = {name: i for i, name in enumerate(self._specs)}
        return tuple(
            sorted(chosen.values(), key=lambda s: order[s.name])
        )


#: The process-wide experiment registry (populated by :func:`discover`).
experiments = ExperimentRegistry()


def experiment(
    name: str, *, tags: Iterable[str] = (), paper_ref: str = ""
) -> Callable:
    """Decorator registering a runner under ``name``.

    The wrapped runner behaves exactly like the original, with one
    addition: the returned :class:`ExperimentResult` is bound to the
    experiment name and profile so ``to_dict()`` is self-describing.
    """

    def _decorate(fn: Callable[..., ExperimentResult]) -> Callable:
        @functools.wraps(fn)
        def runner(profile: Profile = QUICK, *args, **kwargs):
            result = fn(profile, *args, **kwargs)
            if isinstance(result, ExperimentResult):
                result._bind(name, profile)
            return result

        description = (fn.__doc__ or "").strip().splitlines()
        experiments.register(
            ExperimentSpec(
                name=name,
                runner=runner,
                tags=tuple(tags),
                paper_ref=paper_ref,
                description=description[0] if description else "",
                module=fn.__module__,
            )
        )
        return runner

    return _decorate


def discover() -> ExperimentRegistry:
    """Import every ``repro.experiments.*`` module and return the registry.

    Importing a runner module executes its :func:`experiment` decorators;
    repeated calls are no-ops thanks to the module cache, so any entry
    point (CLI, ``repro.api``, the experiments package itself) can call
    this defensively.
    """
    package = importlib.import_module("repro.experiments")
    for info in pkgutil.iter_modules(package.__path__):
        if info.name.startswith("_") or info.name in _NON_EXPERIMENT_MODULES:
            continue
        importlib.import_module(f"repro.experiments.{info.name}")
    return experiments
