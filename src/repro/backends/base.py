"""The instrument-backend contract: where shot traffic comes from.

Every trace the runtime serves used to originate in the in-process
simulator — :class:`~repro.pipeline.source.SimulatorTraceSource`
constructed inline wherever traffic was needed. :class:`InstrumentBackend`
decouples that: a backend is a *session-scoped* traffic endpoint
(``open()``/``close()``/context manager) that answers repeated
:meth:`~InstrumentBackend.acquire` calls with streams of
:class:`~repro.pipeline.source.ShotChunk` batches, the same unit the
pipeline already consumes. The serving layer never needs to know whether
the chunks were simulated in-process, replayed from a recorded corpus, or
framed in over a socket from an external digitizer process.

The existing :class:`~repro.pipeline.source.TraceSource` stays the
pipeline-facing streaming unit; :meth:`InstrumentBackend.trace_source`
adapts one acquisition into that shape so ``ReadoutPipeline.run`` is
untouched.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from repro.analysis.sanitizers import enabled as _sanitize_enabled
from repro.exceptions import ConfigurationError
from repro.physics.device import ChipConfig
from repro.pipeline.source import ShotChunk, TraceSource

__all__ = ["InstrumentBackend", "AcquisitionTraceSource"]


class InstrumentBackend(ABC):
    """A session-scoped source of readout shot traffic.

    Lifecycle: :meth:`open` (idempotent; also the context-manager entry)
    acquires whatever the backend needs — a socket connection, a mapped
    corpus, a recording directory — and :meth:`close` (idempotent)
    releases it. Between the two, every :meth:`acquire` call streams one
    run's worth of :class:`~repro.pipeline.source.ShotChunk` batches.

    Subclasses set :attr:`name` (the registry identifier) and
    :attr:`chip` (the device the traffic is for; may be resolved at
    :meth:`open` for backends that learn it from the remote side).
    """

    #: Registry identifier of the backend kind.
    name: str = "abstract"

    #: Device the streamed traffic belongs to.
    chip: ChipConfig | None = None

    def open(self) -> "InstrumentBackend":
        """Acquire backend resources. Idempotent; returns ``self``."""
        return self

    def close(self) -> None:
        """Release backend resources. Idempotent."""

    def __enter__(self) -> "InstrumentBackend":
        return self.open()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @abstractmethod
    def acquire(
        self, shots: int, seed: int | None = None
    ) -> Iterator[ShotChunk]:
        """Stream one run of traffic as chunk batches, in chunk_id order.

        ``shots`` is the *requested* shot count; backends bound to a
        fixed stream (a recorded corpus, a remote frame sequence) may
        deliver their own count instead — :meth:`resolve_shots` tells
        the caller what to expect. ``seed`` selects the traffic stream
        where the backend generates traffic; replay-style backends
        ignore it (their stream is already fixed).
        """

    def resolve_shots(self, shots: int) -> int:
        """Shots an ``acquire(shots)`` call will actually deliver."""
        if shots < 1:
            raise ConfigurationError(f"shots must be >= 1, got {shots}")
        return int(shots)

    def describe(self) -> dict:
        """Capability description (JSON-able; extended by subclasses)."""
        chip = self.chip
        info: dict = {"backend": self.name}
        if chip is not None:
            info["n_qubits"] = chip.n_qubits
            info["n_levels"] = chip.n_levels
            info["trace_len"] = chip.trace_len
        return info

    def trace_source(
        self, shots: int, seed: int | None = None
    ) -> "AcquisitionTraceSource":
        """One acquisition, shaped as the pipeline's ``TraceSource``."""
        return AcquisitionTraceSource(self, shots, seed=seed)


class AcquisitionTraceSource(TraceSource):
    """Adapts one backend acquisition to the ``TraceSource`` protocol.

    The pipeline pulls :meth:`chunks` exactly once per run; the adapter
    delegates to :meth:`InstrumentBackend.acquire` so the backend owns
    chunking, determinism, and resource lifetime. The backend stays
    open across runs — closing it is the owning session's job, not the
    source's.
    """

    def __init__(
        self,
        backend: InstrumentBackend,
        shots: int,
        seed: int | None = None,
    ) -> None:
        self.backend = backend
        self.chip = backend.chip
        self.seed = seed
        self._n_shots = backend.resolve_shots(shots)
        self._requested = int(shots)

    @property
    def n_shots(self) -> int:
        return self._n_shots

    def chunks(self) -> Iterator[ShotChunk]:
        stream = self.backend.acquire(self._requested, seed=self.seed)
        if not _sanitize_enabled():
            return stream
        return self._read_only(stream)

    @staticmethod
    def _read_only(stream: Iterator[ShotChunk]) -> Iterator[ShotChunk]:
        """Sanitizer-armed runs: backend traffic crosses the seam frozen.

        Chunks are acquisition records, not scratch space — a stage that
        mutates one corrupts replay determinism (and, for shared-memory
        replay, every sibling shard). Re-wrapping each array as a
        read-only view turns such a write into an immediate
        ``ValueError`` at the writing line.
        """
        for chunk in stream:
            feedline = chunk.feedline.view()
            feedline.flags.writeable = False
            levels = chunk.prepared_levels
            if levels is not None:
                levels = levels.view()
                levels.flags.writeable = False
            yield ShotChunk(
                feedline=feedline,
                prepared_levels=levels,
                chunk_id=chunk.chunk_id,
            )
