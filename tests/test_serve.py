"""repro.serve: spec round-trips, exhaustive validation, warm sessions,
the `repro serve` CLI, and cross-process fit deduplication."""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from pathlib import Path

import pytest

import repro.cli as cli
from repro.config import QUICK, Profile
from repro.discriminators.mlr import MLRDiscriminator
from repro.exceptions import ConfigurationError
from repro.pipeline import (
    CalibrationKey,
    CalibrationRegistry,
    ClusterReport,
    PipelineReport,
)
from repro.serve import (
    BatchingSpec,
    CalibrationSpec,
    ClusterSpec,
    ReadoutService,
    ServeSpec,
    ServiceStats,
    TrafficSpec,
    serve_once,
)
from repro.serve.service import _report_calibration_cached


def tiny_profile(**overrides) -> Profile:
    """A fast sizing profile for serving tests (not a named CLI profile)."""
    params = dict(
        name="tiny",
        shots_per_state=10,
        calibration_shots=100,
        nn_epochs=8,
        fnn_epochs=2,
        batch_size=64,
        qec_shots=10,
        qudit_shots=10,
        spectral_max_points=100,
        seed=701,
    )
    params.update(overrides)
    return Profile(**params)


def tiny_spec(**calibration) -> ServeSpec:
    """A light two-qubit single-feedline spec for fast service tests."""
    return ServeSpec(
        traffic=TrafficSpec(shots=40, chunk_size=20),
        cluster=ClusterSpec(qubits_per_feedline=2),
        batching=BatchingSpec(batch_size=20),
        calibration=CalibrationSpec(**calibration),
    )


class TestServeSpecRoundTrip:
    def test_default_spec_dict_round_trip(self):
        spec = ServeSpec()
        assert ServeSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_is_json_serializable(self):
        payload = json.dumps(ServeSpec().to_dict())
        assert ServeSpec.from_dict(json.loads(payload)) == ServeSpec()

    def test_non_default_spec_round_trips_every_field(self):
        spec = ServeSpec(
            traffic=TrafficSpec(shots=7, chunk_size=3, seed=42),
            cluster=ClusterSpec(
                feedlines=3,
                executor="process",
                workers=2,
                channel_workers=4,
                qubits_per_feedline=2,
            ),
            batching=BatchingSpec(
                batch_size=9,
                max_pending=2,
                adaptive=True,
                max_batch_size=99,
                target_batch_ms=1.5,
            ),
            calibration=CalibrationSpec(
                profile="full",
                design="herqules",
                registry_dir="/tmp/reg",
                seed=13,
            ),
        )
        assert ServeSpec.from_dict(spec.to_dict()) == spec

    def test_file_round_trip(self, tmp_path):
        spec = ServeSpec(traffic=TrafficSpec(shots=11))
        path = spec.to_file(tmp_path / "spec.json")
        assert ServeSpec.from_file(path) == spec

    def test_backend_fields_round_trip(self):
        spec = ServeSpec(
            traffic=TrafficSpec(
                shots=7,
                chunk_size=3,
                backend="replay",
                corpus_path="/tmp/corpus",
            )
        )
        clone = ServeSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.traffic.backend == "replay"
        assert clone.traffic.corpus_path == "/tmp/corpus"

    def test_missing_sections_take_defaults(self):
        spec = ServeSpec.from_dict({"traffic": {"shots": 5}})
        assert spec.traffic.shots == 5
        assert spec.cluster == ClusterSpec()
        assert spec.batching == BatchingSpec()

    def test_with_traffic_returns_modified_copy(self):
        spec = ServeSpec()
        bumped = spec.with_traffic(shots=123)
        assert bumped.traffic.shots == 123
        assert spec.traffic.shots == 2000
        assert bumped.cluster == spec.cluster


class TestServeSpecValidation:
    def test_from_dict_reports_every_problem_at_once(self):
        bad = {
            "traffic": {"shots": 0, "chunk_size": -2, "bogus": 1},
            "cluster": {"feedlines": 0, "executor": "gpu"},
            "batching": {"batch_size": 0, "adaptive": "yes"},
            "calibration": {"design": ""},
            "networking": {},
        }
        with pytest.raises(ConfigurationError) as excinfo:
            ServeSpec.from_dict(bad)
        message = str(excinfo.value)
        for fragment in (
            "traffic.shots",
            "traffic.chunk_size",
            "traffic.bogus",
            "cluster.feedlines",
            "cluster.executor",
            "batching.batch_size",
            "batching.adaptive",
            "calibration.design",
            "networking: unknown section",
        ):
            assert fragment in message, fragment

    def test_direct_section_construction_reports_all_its_fields(self):
        with pytest.raises(ConfigurationError) as excinfo:
            TrafficSpec(shots=0, chunk_size=0)
        assert "shots" in str(excinfo.value)
        assert "chunk_size" in str(excinfo.value)

    def test_type_errors_are_flagged_not_crashed(self):
        with pytest.raises(ConfigurationError, match="traffic.shots"):
            ServeSpec.from_dict({"traffic": {"shots": "many"}})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ConfigurationError, match="shots"):
            TrafficSpec(shots=True)

    @pytest.mark.parametrize("seed", [-1, -42, -(2**31)])
    @pytest.mark.parametrize(
        "section", [TrafficSpec, CalibrationSpec], ids=["traffic", "calib"]
    )
    def test_negative_seed_rejected(self, section, seed):
        with pytest.raises(ConfigurationError, match="seed must be >= 0"):
            section(seed=seed)

    @pytest.mark.parametrize("seed", [0, 1, 2**31])
    def test_non_negative_seed_accepted(self, seed):
        assert TrafficSpec(seed=seed).seed == seed

    def test_unknown_backend_rejected(self):
        with pytest.raises(
            ConfigurationError, match="backend must be one of"
        ):
            TrafficSpec(backend="warp-core")

    @pytest.mark.parametrize(
        "kwargs,match",
        [
            ({"backend": "replay"}, "corpus_path"),
            (
                {"backend": "simulator", "corpus_path": "/c"},
                "corpus_path",
            ),
            ({"backend": "socket"}, "socket_path"),
            (
                {"backend": "dummy", "socket_path": "/s"},
                "socket_path",
            ),
            (
                {
                    "backend": "replay",
                    "corpus_path": "/c",
                    "record_path": "/r",
                },
                "record_path",
            ),
        ],
    )
    def test_backend_cross_field_validation(self, kwargs, match):
        with pytest.raises(ConfigurationError, match=match):
            TrafficSpec(**kwargs)

    def test_backend_problems_reported_alongside_field_problems(self):
        bad = {"traffic": {"shots": 0, "backend": "replay"}}
        with pytest.raises(ConfigurationError) as excinfo:
            ServeSpec.from_dict(bad)
        message = str(excinfo.value)
        assert "traffic.shots" in message
        assert "corpus_path" in message

    def test_drift_requires_simulator_backend(self):
        from repro.serve import DriftSpec

        with pytest.raises(ConfigurationError, match="drift"):
            ServeSpec(
                traffic=TrafficSpec(backend="dummy"),
                drift=DriftSpec(t1_decay_per_kshot=0.1),
            )

    @pytest.mark.parametrize(
        "traffic_kwargs,match",
        [
            ({"backend": "dummy"}, "backend"),
            ({"backend": "socket", "socket_path": "/s"}, "backend"),
            ({"record_path": "/r"}, "record_path"),
        ],
    )
    def test_multi_feedline_backend_restrictions(
        self, traffic_kwargs, match
    ):
        with pytest.raises(ConfigurationError, match=match):
            ServeSpec(
                traffic=TrafficSpec(**traffic_kwargs),
                cluster=ClusterSpec(feedlines=2, qubits_per_feedline=2),
            )

    def test_multi_feedline_replay_is_allowed(self):
        spec = ServeSpec(
            traffic=TrafficSpec(backend="replay", corpus_path="/c"),
            cluster=ClusterSpec(feedlines=2, qubits_per_feedline=2),
        )
        assert spec.traffic.backend == "replay"

    def test_adaptive_cross_field_bound(self):
        with pytest.raises(ConfigurationError, match="max_batch_size"):
            BatchingSpec(adaptive=True, batch_size=64, max_batch_size=8)
        # Inert without adaptive batching (matches PipelineConfig).
        BatchingSpec(adaptive=False, batch_size=64, max_batch_size=8)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="executor"):
            ClusterSpec(executor="gpu")

    def test_sections_must_be_spec_instances(self):
        with pytest.raises(ConfigurationError, match="traffic"):
            ServeSpec(traffic={"shots": 5})

    def test_from_file_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            ServeSpec.from_file(path)

    def test_from_file_rejects_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            ServeSpec.from_file(tmp_path / "nope.json")


class TestServeSpecDerivation:
    def test_resolved_profile_by_name_with_seed(self):
        spec = ServeSpec(
            calibration=CalibrationSpec(profile="quick", seed=999)
        )
        profile = spec.resolved_profile()
        assert profile.name == "quick"
        assert profile.seed == 999
        assert profile.shots_per_state == QUICK.shots_per_state

    def test_resolved_profile_override_instance_wins(self):
        spec = ServeSpec(calibration=CalibrationSpec(profile="quick"))
        override = tiny_profile()
        assert spec.resolved_profile(override) is override

    def test_resolved_profile_unknown_name_raises(self):
        spec = ServeSpec(calibration=CalibrationSpec(profile="mega"))
        with pytest.raises(ConfigurationError, match="unknown profile"):
            spec.resolved_profile()

    def test_pipeline_config_mapping(self):
        spec = ServeSpec(
            cluster=ClusterSpec(channel_workers=3),
            batching=BatchingSpec(
                batch_size=32,
                max_pending=4,
                adaptive=True,
                max_batch_size=128,
                target_batch_ms=2.0,
            ),
        )
        config = spec.pipeline_config()
        assert config.batch_size == 32
        assert config.workers == 3
        assert config.max_pending == 4
        assert config.adaptive_batching is True
        assert config.max_batch_size == 128
        assert config.target_batch_ms == 2.0


class TestReadoutServiceWarmReuse:
    """The fit-once contract, extended to whole serving sessions."""

    def test_second_run_never_refits_single_feedline(
        self, tmp_path, monkeypatch
    ):
        fits: list[int] = []
        original_fit = MLRDiscriminator.fit

        def counting_fit(self, corpus, indices):
            fits.append(1)
            return original_fit(self, corpus, indices)

        monkeypatch.setattr(MLRDiscriminator, "fit", counting_fit)
        spec = tiny_spec(registry_dir=str(tmp_path / "registry"))
        with ReadoutService(spec, profile=tiny_profile()) as service:
            first = service.run()
            assert len(fits) == 1, "warm-up performs the one cold fit"
            second = service.run()
        assert len(fits) == 1, "a warmed service must never refit"
        assert first.calibration_cached is False
        assert second.calibration_cached is True
        # Default traffic seed: both runs replay identical traffic.
        assert first.assignment_counts == second.assignment_counts

    def test_multi_feedline_session_fits_once_per_feedline(
        self, tmp_path, monkeypatch
    ):
        fits: list[int] = []
        original_fit = MLRDiscriminator.fit

        def counting_fit(self, corpus, indices):
            fits.append(1)
            return original_fit(self, corpus, indices)

        monkeypatch.setattr(MLRDiscriminator, "fit", counting_fit)
        spec = ServeSpec(
            traffic=TrafficSpec(shots=30, chunk_size=15),
            cluster=ClusterSpec(
                feedlines=2, executor="serial", qubits_per_feedline=2
            ),
            batching=BatchingSpec(batch_size=15),
            calibration=CalibrationSpec(
                registry_dir=str(tmp_path / "registry")
            ),
        )
        with ReadoutService(spec, profile=tiny_profile()) as service:
            first = service.run()
            second = service.run()
            assert service.stats.cold_fits == 2
        assert len(fits) == 2, "one fit per feedline, all during warm-up"
        assert isinstance(first, ClusterReport)
        # Cycle-cost semantics, identical to the single-feedline path:
        # the cycle's first run carries its cold fits, later runs are
        # warm — in the session stats and in the reports themselves.
        assert [
            run.calibration_cached for run in service.stats.runs
        ] == [False, True]
        assert not any(
            r.calibration_cached for r in first.feedline_reports.values()
        )
        assert all(
            r.calibration_cached for r in second.feedline_reports.values()
        )

    def test_sessions_share_a_warm_registry(self, tmp_path, monkeypatch):
        fits: list[int] = []
        original_fit = MLRDiscriminator.fit

        def counting_fit(self, corpus, indices):
            fits.append(1)
            return original_fit(self, corpus, indices)

        monkeypatch.setattr(MLRDiscriminator, "fit", counting_fit)
        spec = tiny_spec(registry_dir=str(tmp_path / "registry"))
        serve_once(spec, profile=tiny_profile())
        assert len(fits) == 1
        with ReadoutService(spec, profile=tiny_profile()) as service:
            report = service.run()
        assert len(fits) == 1, "second session loads the stored artifact"
        assert service.stats.cold_fits == 0
        assert report.calibration_cached is True

    def test_session_private_registry_created_and_cleaned(self):
        spec = ServeSpec(
            traffic=TrafficSpec(shots=20, chunk_size=10),
            cluster=ClusterSpec(
                feedlines=2, executor="serial", qubits_per_feedline=2
            ),
            batching=BatchingSpec(batch_size=10),
        )
        service = ReadoutService(spec, profile=tiny_profile())
        service.warm()
        private_root = service.registry_dir
        assert private_root is not None and Path(private_root).is_dir()
        service.run()
        service.close()
        assert not Path(private_root).exists()
        assert service.registry_dir is None

    def test_failed_warm_releases_pool_and_temp_registry(self, monkeypatch):
        from repro.exceptions import DataError
        from repro.pipeline.cluster import MultiFeedlineRunner

        seen = {}
        def failing_prefit(runner_self):
            seen["registry"] = runner_self.registry_dir
            raise DataError("corpus generation exploded")

        monkeypatch.setattr(MultiFeedlineRunner, "prefit", failing_prefit)
        spec = ServeSpec(
            cluster=ClusterSpec(
                feedlines=2, executor="thread", qubits_per_feedline=2
            )
        )
        service = ReadoutService(spec, profile=tiny_profile())
        with pytest.raises(DataError):
            service.warm()
        # The spawned pool and the session-private registry are released.
        assert service._runner is None
        assert service.registry_dir is None
        assert not Path(seen["registry"]).exists()

    def test_run_auto_warms_and_close_allows_rewarm(self, tmp_path):
        spec = tiny_spec(registry_dir=str(tmp_path / "registry"))
        service = ReadoutService(spec, profile=tiny_profile())
        report = service.run()  # implicit warm()
        assert report.n_shots == 40
        service.close()
        rewarmed = service.run(shots=20)
        assert rewarmed.n_shots == 20
        service.close()

    def test_rewarmed_session_reports_cold_first_run_again(self):
        # close() drops the warm state; with no registry the next cycle
        # refits, and that cycle's first run must report cold — lifetime
        # run counts from earlier cycles must not mask it.
        spec = tiny_spec()
        service = ReadoutService(spec, profile=tiny_profile())
        assert service.run().calibration_cached is False
        service.close()
        assert service.run().calibration_cached is False
        assert service.run().calibration_cached is True
        service.close()
        assert service.stats.cold_fits == 2, "cumulative across cycles"

    def test_rewarm_accumulates_warm_seconds(self, tmp_path):
        spec = tiny_spec(registry_dir=str(tmp_path / "registry"))
        service = ReadoutService(spec, profile=tiny_profile())
        service.warm()
        first_cycle = service.stats.warm_seconds
        service.close()
        service.warm()
        assert service.stats.warm_seconds > first_cycle
        service.close()

    def test_run_rejects_bad_shots(self, tmp_path):
        spec = tiny_spec(registry_dir=str(tmp_path / "registry"))
        with ReadoutService(spec, profile=tiny_profile()) as service:
            with pytest.raises(ConfigurationError, match="shots"):
                service.run(shots=0)

    def test_rejects_non_mlr_design(self):
        spec = tiny_spec(design="fnn")
        with pytest.raises(ConfigurationError, match="MLR family"):
            ReadoutService(spec, profile=tiny_profile()).warm()

    def test_rejects_non_spec(self):
        with pytest.raises(ConfigurationError, match="ServeSpec"):
            ReadoutService({"traffic": {}})


def _fake_report(n_shots, wall, accuracy=None, cached=None):
    return PipelineReport(
        n_shots=n_shots,
        n_batches=1,
        wall_seconds=wall,
        shots_per_second=n_shots / wall,
        stage_summaries={},
        accuracy=accuracy,
        calibration_cached=cached,
    )


class TestServiceStats:
    def test_cumulative_math(self):
        stats = ServiceStats()
        stats.record(_fake_report(100, 0.5, accuracy=0.9, cached=False), 2.0)
        stats.record(_fake_report(300, 0.5, accuracy=0.8, cached=True), 3.0)
        assert stats.n_runs == 2
        assert stats.total_shots == 400
        assert stats.total_run_seconds == pytest.approx(5.0)
        assert stats.shots_per_second == pytest.approx(400 / 5.0)
        assert [run.index for run in stats.runs] == [0, 1]
        assert stats.runs[0].shots_per_second == pytest.approx(50.0)
        assert stats.runs[1].calibration_cached is True

    def test_empty_stats_are_zero_not_nan(self):
        stats = ServiceStats()
        assert stats.n_runs == 0
        assert stats.total_shots == 0
        assert stats.shots_per_second == 0.0

    def test_zero_wall_run_never_serializes_inf(self):
        # Regression: a tiny fully-cached run can complete inside one
        # perf_counter tick. Rates must degrade to 0.0, never to
        # Infinity (which is not strict JSON) or ZeroDivisionError.
        stats = ServiceStats()
        run = stats.record(_fake_report(100, 1.0), 0.0)
        assert run.shots_per_second == 0.0
        payload = json.dumps(stats.to_dict(), allow_nan=False)
        assert "Infinity" not in payload

    def test_zero_wall_pipeline_run_is_inf_free(
        self, monkeypatch, tmp_path
    ):
        # Freeze the clock so the streamed run really measures a
        # zero-second wall: its throughput must report 0.0, not inf.
        import time as time_module

        monkeypatch.setattr(time_module, "perf_counter", lambda: 5.0)
        spec = tiny_spec(registry_dir=str(tmp_path / "registry"))
        with ReadoutService(spec, profile=tiny_profile()) as service:
            report = service.run()
        assert report.wall_seconds == 0.0
        assert report.shots_per_second == 0.0
        payload = json.dumps(report.to_dict(), allow_nan=False)
        assert "Infinity" not in payload
        json.dumps(service.stats.to_dict(), allow_nan=False)

    def test_to_dict_schema(self):
        stats = ServiceStats(warm_seconds=1.5, cold_fits=2)
        stats.record(_fake_report(10, 0.1), 0.2)
        payload = json.loads(json.dumps(stats.to_dict()))
        assert payload["warm_seconds"] == 1.5
        assert payload["cold_fits"] == 2
        assert payload["n_runs"] == 1
        assert payload["total_shots"] == 10
        assert payload["runs"][0]["index"] == 0

    def test_format_table_mentions_warmup_and_cumulative(self):
        stats = ServiceStats(warm_seconds=0.5, cold_fits=1)
        stats.record(_fake_report(10, 0.1, cached=True), 0.2)
        text = stats.format_table()
        assert "readout service" in text
        assert "warm-up" in text
        assert "cumulative" in text

    def test_cluster_cached_aggregation(self):
        def cluster(flags):
            return ClusterReport(
                executor="serial",
                workers=1,
                n_shots=10,
                wall_seconds=1.0,
                shots_per_second=10.0,
                feedline_reports={
                    f"f{i}": _fake_report(5, 0.1, cached=flag)
                    for i, flag in enumerate(flags)
                },
            )

        assert _report_calibration_cached(cluster([True, True])) is True
        assert _report_calibration_cached(cluster([True, False])) is False
        assert _report_calibration_cached(cluster([None, None])) is None


class TestServeCli:
    @pytest.fixture()
    def spec_file(self, tmp_path):
        spec = ServeSpec(
            traffic=TrafficSpec(shots=60, chunk_size=30),
            cluster=ClusterSpec(qubits_per_feedline=2),
            batching=BatchingSpec(batch_size=30),
            calibration=CalibrationSpec(
                profile="quick", registry_dir=str(tmp_path / "registry")
            ),
        )
        return str(spec.to_file(tmp_path / "spec.json"))

    def test_serve_runs_and_writes_session_json(
        self, capsys, tmp_path, spec_file
    ):
        out_path = tmp_path / "session.json"
        code = cli.main(
            ["serve", "--spec", spec_file, "--repeat", "2",
             "--json", str(out_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "[serve] warmed in" in out
        assert "readout service (2 runs)" in out
        payload = json.loads(out_path.read_text())
        assert set(payload) == {"spec", "service", "runs"}
        assert payload["spec"] == ServeSpec.from_file(spec_file).to_dict()
        assert payload["service"]["n_runs"] == 2
        assert payload["service"]["total_shots"] == 120
        assert payload["service"]["shots_per_second"] > 0
        assert len(payload["runs"]) == 2
        assert payload["runs"][1]["calibration_cached"] is True
        # Fresh registry: cold fit attributed to run 0, warm thereafter.
        assert [
            r["calibration_cached"] for r in payload["service"]["runs"]
        ] == [False, True]
        # Same spec'd traffic served twice: identical discrimination.
        assert (
            payload["runs"][0]["assignment_counts"]
            == payload["runs"][1]["assignment_counts"]
        )

    def test_serve_shots_override(self, capsys, tmp_path, spec_file):
        out_path = tmp_path / "session.json"
        code = cli.main(
            ["serve", "--spec", spec_file, "--shots", "40",
             "--json", str(out_path)]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["service"]["total_shots"] == 40

    def test_serve_requires_spec_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["serve"])
        assert excinfo.value.code == 2

    def test_serve_rejects_bad_repeat(self, spec_file):
        with pytest.raises(ConfigurationError, match="repeat"):
            cli.main(["serve", "--spec", spec_file, "--repeat", "0"])

    def test_serve_reports_every_spec_problem(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "traffic": {"shots": 0},
            "cluster": {"executor": "gpu"},
        }))
        with pytest.raises(ConfigurationError) as excinfo:
            cli.main(["serve", "--spec", str(path)])
        message = str(excinfo.value)
        assert "traffic.shots" in message
        assert "cluster.executor" in message

    def test_legacy_positional_form_forwards_seed(
        self, capsys, tmp_path, spec_file
    ):
        # `repro --seed N serve ...` must reach serve's traffic seed,
        # exactly like the explicit `repro serve --seed N` form.
        paths = {name: tmp_path / f"{name}.json" for name in "abc"}
        assert cli.main(
            ["--seed", "12345", "serve", "--spec", spec_file,
             "--json", str(paths["a"])]
        ) == 0
        assert cli.main(
            ["serve", "--spec", spec_file, "--seed", "12345",
             "--json", str(paths["b"])]
        ) == 0
        assert cli.main(
            ["serve", "--spec", spec_file, "--json", str(paths["c"])]
        ) == 0
        counts = {
            name: json.loads(path.read_text())["runs"][0]["assignment_counts"]
            for name, path in paths.items()
        }
        assert counts["a"] == counts["b"], "legacy form must forward --seed"
        assert counts["a"] != counts["c"], "seed must change the traffic"

    def test_serve_help_exits_0(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["serve", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--spec" in out
        assert "--repeat" in out

    def test_list_mentions_serve(self, capsys):
        assert cli.main(["list"]) == 0
        assert "serve" in capsys.readouterr().out


def _has_fork() -> bool:
    try:
        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX
        return False
    return True


class TestCrossProcessFitLock:
    def test_lock_survives_sidecar_unlink_by_prune(self, tmp_path):
        # A lock held on an unlinked sidecar must not block a fresh
        # locker (it locks a new inode), and acquisition on the fresh
        # file still reports locked.
        from repro.pipeline.registry import _artifact_file_lock

        artifact = tmp_path / "dev" / "prof" / "all.npz"
        with _artifact_file_lock(artifact) as locked:
            assert locked is True
            # prune/invalidate racing the fit: sidecar disappears.
            artifact.with_name("all.npz.lock").unlink()
            with _artifact_file_lock(artifact) as relocked:
                assert relocked is True  # fresh inode, no deadlock

    def test_lock_sidecar_is_not_enumerated_as_a_key(
        self, tmp_path, tiny_corpus
    ):
        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("chip-lock", "all", "tiny")
        registry.get_or_fit(
            key, lambda: MLRDiscriminator(epochs=4, seed=9), tiny_corpus
        )
        assert list(registry.keys()) == [key]
        lock_path = registry.path_for(key).with_name("all.npz.lock")
        assert lock_path.is_file(), "cold fit must leave its lock sidecar"

    def test_corrupt_artifact_recovery_keeps_lock_sidecar(
        self, tmp_path, tiny_corpus
    ):
        # The corrupt-refit path runs while the fitter may hold the
        # sidecar; it must drop only the artifact, never the lock.
        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("chip-corrupt", "all", "tiny")
        registry.get_or_fit(
            key, lambda: MLRDiscriminator(epochs=4, seed=9), tiny_corpus
        )
        registry.path_for(key).write_bytes(b"garbage")
        _, cached = registry.get_or_fit(
            key, lambda: MLRDiscriminator(epochs=4, seed=9), tiny_corpus
        )
        assert cached is False, "corrupt artifact must trigger a refit"
        lock_path = registry.path_for(key).with_name("all.npz.lock")
        assert lock_path.is_file()

    def test_prune_clears_lock_sidecars_and_dirs(self, tmp_path, tiny_corpus):
        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("chip-prune", "all", "tiny")
        registry.get_or_fit(
            key, lambda: MLRDiscriminator(epochs=4, seed=9), tiny_corpus
        )
        report = registry.prune(max_bytes=0)
        assert report.removed == (key,)
        assert list(registry.keys()) == []
        assert list(Path(tmp_path).rglob("*")) == []

    def test_prune_keeps_sidecar_held_by_a_fit(self, tmp_path, tiny_corpus):
        # Regression: prune used to unlink a sidecar a cold fitter was
        # holding, letting the next cold caller lock a *fresh* inode
        # and fit the same key concurrently. A held sidecar must
        # survive prune/invalidate; an unheld one must still go.
        from repro.pipeline.registry import _artifact_file_lock

        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("chip-held", "all", "tiny")
        registry.get_or_fit(
            key, lambda: MLRDiscriminator(epochs=4, seed=9), tiny_corpus
        )
        lock_path = registry.path_for(key).with_name("all.npz.lock")
        with _artifact_file_lock(registry.path_for(key)) as locked:
            assert locked is True
            report = registry.prune(max_bytes=0)
            assert report.removed == (key,)
            assert not registry.path_for(key).exists(), "artifact pruned"
            assert lock_path.is_file(), "held sidecar must survive prune"
            registry.invalidate(key)
            assert lock_path.is_file(), "held sidecar survives invalidate"
        # Released: the next prune really cleans up.
        registry.prune(max_bytes=0)
        assert not lock_path.exists()
        assert list(Path(tmp_path).rglob("*")) == []

    @pytest.mark.skipif(not _has_fork(), reason="needs fork start method")
    def test_prune_keeps_sidecar_held_by_another_process(
        self, tmp_path, tiny_corpus
    ):
        # Fork variant of the race: the holder is a different process,
        # so the non-blocking probe lock (not same-process state) is
        # what must detect it.
        from repro.pipeline.registry import _artifact_file_lock

        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("chip-forked", "all", "tiny")
        registry.get_or_fit(
            key, lambda: MLRDiscriminator(epochs=4, seed=9), tiny_corpus
        )
        lock_path = registry.path_for(key).with_name("all.npz.lock")
        holding = tmp_path / "holding"
        release = tmp_path / "release"

        def holder() -> None:
            with _artifact_file_lock(registry.path_for(key)):
                holding.touch()
                deadline = time.monotonic() + 20.0
                while not release.exists():
                    if time.monotonic() > deadline:  # pragma: no cover
                        raise RuntimeError("release barrier timed out")
                    time.sleep(0.005)

        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=holder)
        child.start()
        try:
            deadline = time.monotonic() + 20.0
            while not holding.exists():
                if time.monotonic() > deadline:  # pragma: no cover
                    raise RuntimeError("holding barrier timed out")
                time.sleep(0.005)
            registry.prune(max_bytes=0)
            assert lock_path.is_file(), (
                "sidecar held by another process must survive prune"
            )
        finally:
            release.touch()
            child.join(timeout=60)
            if child.is_alive():  # pragma: no cover - hang guard
                child.kill()
        assert child.exitcode == 0
        registry.prune(max_bytes=0)
        assert not lock_path.exists()

    def test_prune_covers_superseded_artifact_versions(
        self, tmp_path, tiny_corpus
    ):
        # Versioned artifacts (hot recalibration) enumerate, prune, and
        # clean their sidecars exactly like version 0.
        registry = CalibrationRegistry(tmp_path)
        key = CalibrationKey("chip-versions", "all", "tiny")
        fitted, _ = registry.get_or_fit(
            key, lambda: MLRDiscriminator(epochs=4, seed=9), tiny_corpus
        )
        new_key = registry.supersede(key, fitted)
        assert new_key.version == 1
        assert registry.path_for(new_key).name == "all.v1.npz"
        assert set(registry.keys()) == {key, new_key}
        report = registry.prune(max_bytes=0)
        assert set(report.removed) == {key, new_key}
        assert list(Path(tmp_path).rglob("*")) == []

    @pytest.mark.skipif(not _has_fork(), reason="needs fork start method")
    def test_two_processes_fit_once(self, tmp_path, tiny_corpus):
        """Cold fits for one key dedupe across OS processes.

        Both children reach ``get_or_fit`` cold at the same time (a
        ready-file barrier lines them up); the advisory file lock must
        let exactly one fit while the other blocks, re-checks, and loads
        the stored artifact.
        """
        root = tmp_path / "registry"
        fits_log = tmp_path / "fits.log"
        key = CalibrationKey("chip-x", "all", "tiny")

        def worker(index: int) -> None:
            ready = tmp_path / f"ready-{index}"
            ready.touch()
            deadline = time.monotonic() + 20.0
            while not all(
                (tmp_path / f"ready-{i}").exists() for i in range(2)
            ):
                if time.monotonic() > deadline:  # pragma: no cover
                    raise RuntimeError("barrier timed out")
                time.sleep(0.005)

            def factory():
                disc = MLRDiscriminator(epochs=4, seed=9)
                original = disc.fit

                def counting_fit(corpus, indices):
                    # O_APPEND: one atomic line per actual fit.
                    with open(fits_log, "a") as fh:
                        fh.write(f"{os.getpid()}\n")
                    time.sleep(0.3)  # widen the cross-process race window
                    return original(corpus, indices)

                disc.fit = counting_fit
                return disc

            CalibrationRegistry(root).get_or_fit(key, factory, tiny_corpus)

        ctx = multiprocessing.get_context("fork")
        children = [
            ctx.Process(target=worker, args=(index,)) for index in range(2)
        ]
        for child in children:
            child.start()
        for child in children:
            child.join(timeout=120)
        try:
            assert all(child.exitcode == 0 for child in children)
        finally:
            for child in children:
                if child.is_alive():  # pragma: no cover - hang guard
                    child.kill()
        assert key in CalibrationRegistry(root)
        fit_lines = fits_log.read_text().splitlines()
        assert len(fit_lines) == 1, (
            "process shards sharing a cold key must fit exactly once, "
            f"got fits from pids: {fit_lines}"
        )
