"""FPGA device catalog."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["FPGADevice", "XCZU7EV"]


@dataclass(frozen=True)
class FPGADevice:
    """Resource capacities of an FPGA part.

    Attributes are the usual Xilinx headline counts: 6-input LUTs,
    flip-flops, 36 Kb block RAMs, and DSP48 slices.
    """

    name: str
    luts: int
    ffs: int
    brams: int
    dsps: int

    def __post_init__(self) -> None:
        for attr in ("luts", "ffs", "brams", "dsps"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(f"{attr} must be positive")


#: The paper's target device: Xilinx Zynq UltraScale+ MPSoC
#: xczu7ev-ffvc1156-2-i.
XCZU7EV = FPGADevice(name="xczu7ev", luts=230_400, ffs=460_800, brams=312, dsps=1_728)
