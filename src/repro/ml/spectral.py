"""Spectral clustering on a normalized graph Laplacian.

The paper detects naturally occurring leakage by spectral-clustering the
mean-trace-value (MTV) points of two-level calibration shots into three
clusters (Sec V.A / Fig 3b). This module implements the standard
Ng-Jordan-Weiss pipeline: an affinity graph, the symmetric normalized
Laplacian, its bottom eigenvectors, row normalization, and k-means on the
embedding.

Spectral clustering is O(m^2) in memory, so :meth:`SpectralClustering.fit`
subsamples to ``max_points`` and assigns the remaining points to the nearest
cluster centroid in feature space — the same practical shortcut a control
stack would use on millions of shots.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import eigh

from repro._util import as_2d_float, check_random_state
from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.ml.kmeans import KMeans

__all__ = ["SpectralClustering", "rbf_affinity", "knn_affinity"]


def rbf_affinity(x: np.ndarray, gamma: float | None = None) -> np.ndarray:
    """Dense RBF affinity ``exp(-gamma * ||xi - xj||^2)``.

    When ``gamma`` is None it defaults to ``1 / (2 * median_sq_dist)``, a
    robust bandwidth for clouds with very different populations (the leaked
    cluster can be 100x smaller than the computational ones).
    """
    x = as_2d_float(x)
    sq_norms = np.sum(x * x, axis=1)
    d2 = sq_norms[:, None] - 2.0 * x @ x.T + sq_norms[None, :]
    np.maximum(d2, 0.0, out=d2)
    if gamma is None:
        off_diag = d2[~np.eye(d2.shape[0], dtype=bool)]
        med = float(np.median(off_diag)) if off_diag.size else 1.0
        gamma = 1.0 / (2.0 * max(med, 1e-12))
    if gamma <= 0:
        raise ConfigurationError(f"gamma must be > 0, got {gamma}")
    return np.exp(-gamma * d2)


def knn_affinity(x: np.ndarray, n_neighbors: int = 10) -> np.ndarray:
    """Symmetrized k-nearest-neighbor connectivity affinity (0/1 entries)."""
    x = as_2d_float(x)
    n = x.shape[0]
    if not 1 <= n_neighbors < n:
        raise ConfigurationError(
            f"n_neighbors must be in [1, {n - 1}], got {n_neighbors}"
        )
    sq_norms = np.sum(x * x, axis=1)
    d2 = sq_norms[:, None] - 2.0 * x @ x.T + sq_norms[None, :]
    np.fill_diagonal(d2, np.inf)
    idx = np.argpartition(d2, n_neighbors, axis=1)[:, :n_neighbors]
    affinity = np.zeros((n, n))
    rows = np.repeat(np.arange(n), n_neighbors)
    affinity[rows, idx.ravel()] = 1.0
    return np.maximum(affinity, affinity.T)


class SpectralClustering:
    """Normalized-cut spectral clustering with nearest-centroid extension.

    Parameters
    ----------
    n_clusters:
        Number of clusters (3 for the paper's 0/1/leaked split).
    affinity:
        ``"rbf"`` (default) or ``"knn"``.
    gamma:
        RBF bandwidth; ``None`` selects the median heuristic.
    n_neighbors:
        Neighbor count for the knn affinity.
    max_points:
        Subsample cap before building the O(m^2) affinity.
    seed:
        RNG seed or generator (controls subsampling and k-means).
    """

    def __init__(
        self,
        n_clusters: int = 3,
        affinity: str = "rbf",
        gamma: float | None = None,
        n_neighbors: int = 10,
        max_points: int = 2000,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if n_clusters < 2:
            raise ConfigurationError(f"n_clusters must be >= 2, got {n_clusters}")
        if affinity not in ("rbf", "knn"):
            raise ConfigurationError(
                f"affinity must be 'rbf' or 'knn', got {affinity!r}"
            )
        if max_points < n_clusters:
            raise ConfigurationError("max_points must be >= n_clusters")
        self.n_clusters = n_clusters
        self.affinity = affinity
        self.gamma = gamma
        self.n_neighbors = n_neighbors
        self.max_points = max_points
        self.seed = seed
        self.labels_: np.ndarray | None = None
        self.embedding_: np.ndarray | None = None
        self.cluster_centers_: np.ndarray | None = None

    def _build_affinity(self, x: np.ndarray) -> np.ndarray:
        if self.affinity == "rbf":
            return rbf_affinity(x, self.gamma)
        return knn_affinity(x, self.n_neighbors)

    def _embed(self, affinity: np.ndarray) -> np.ndarray:
        degree = affinity.sum(axis=1)
        inv_sqrt = 1.0 / np.sqrt(np.maximum(degree, 1e-12))
        # Symmetric normalized Laplacian: L = I - D^-1/2 W D^-1/2.
        normalized = affinity * inv_sqrt[:, None] * inv_sqrt[None, :]
        laplacian = np.eye(affinity.shape[0]) - normalized
        k = self.n_clusters
        _, vecs = eigh(laplacian, subset_by_index=[0, k - 1])
        norms = np.linalg.norm(vecs, axis=1, keepdims=True)
        return vecs / np.maximum(norms, 1e-12)

    def fit_predict(self, x: np.ndarray) -> np.ndarray:
        """Cluster the rows of ``x`` and return integer labels."""
        x = as_2d_float(x)
        n = x.shape[0]
        if n < self.n_clusters:
            raise DataError(f"need at least {self.n_clusters} points, got {n}")
        rng = check_random_state(self.seed)

        if n > self.max_points:
            subset = rng.choice(n, size=self.max_points, replace=False)
        else:
            subset = np.arange(n)
        affinity = self._build_affinity(x[subset])
        embedding = self._embed(affinity)
        km = KMeans(self.n_clusters, n_init=10, seed=rng).fit(embedding)
        sub_labels = km.labels_

        # Centroids in *feature* space, used to extend labels to all points.
        centers = np.vstack(
            [
                x[subset][sub_labels == j].mean(axis=0)
                if np.any(sub_labels == j)
                else x[subset[rng.integers(subset.size)]]
                for j in range(self.n_clusters)
            ]
        )
        d2 = (
            np.sum(x * x, axis=1)[:, None]
            - 2.0 * x @ centers.T
            + np.sum(centers * centers, axis=1)[None, :]
        )
        labels = np.argmin(d2, axis=1)
        # Keep the exact spectral assignment on the subsample.
        labels[subset] = sub_labels
        self.labels_ = labels
        self.embedding_ = embedding
        self.cluster_centers_ = centers
        return labels

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Assign new points to the nearest fitted feature-space centroid."""
        if self.cluster_centers_ is None:
            raise NotFittedError("SpectralClustering is not fitted")
        x = as_2d_float(x)
        centers = self.cluster_centers_
        d2 = (
            np.sum(x * x, axis=1)[:, None]
            - 2.0 * x @ centers.T
            + np.sum(centers * centers, axis=1)[None, :]
        )
        return np.argmin(d2, axis=1)
