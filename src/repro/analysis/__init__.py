"""Contract-aware static analysis and lock-order detection.

Two complementary correctness tools for the serving stack:

- The AST lint framework (:mod:`repro.analysis.checker`,
  :mod:`repro.analysis.rules`) machine-checks the project contracts —
  fit-once calibration, frozen spec immutability, strict-JSON
  finiteness, artifact-only process hand-off, exception hygiene, and
  ``__all__`` consistency — with per-line
  ``# repro: allow(<rule>)`` pragmas for accepted violations. Run it as
  ``repro lint [--rules ...] [--json] [paths]``.
- The runtime lock-order detector (:mod:`repro.analysis.lockgraph`)
  instruments the stack's locks (armed by the ``REPRO_LOCK_DEBUG``
  environment flag) to record the per-thread lock-acquisition graph,
  flag cycles and acquire-while-holding inversions — the flock
  calibration sidecar included — and dump witness traces.
- The runtime memory sanitizers (:mod:`repro.analysis.sanitizers`,
  armed by ``REPRO_SANITIZE``): BufferRing use-after-recycle detection
  with generation-tagged handles and poison-filled recycled slots,
  read-only sealing of assembled batch views, and a shared-memory
  segment lifetime auditor (leaks, double-unlink, attach-after-unlink),
  all reporting witnessed violations through the same ``Finding`` shape
  the lint side prints.
"""

from repro.analysis.checker import (
    Checker,
    check_source,
    get_rules,
    lint_paths,
    register_rule,
    rule_names,
)
from repro.analysis.findings import Finding, pragma_allowances
from repro.analysis.lockgraph import (
    GLOBAL_GRAPH,
    LockGraph,
    LockOrderError,
    LockOrderViolation,
    TracedLock,
    trace_lock,
)
from repro.analysis.sanitizers import (
    ReportLog,
    SanitizerReport,
    session_reports,
)

__all__ = [
    "Checker",
    "Finding",
    "check_source",
    "get_rules",
    "lint_paths",
    "pragma_allowances",
    "register_rule",
    "rule_names",
    "GLOBAL_GRAPH",
    "LockGraph",
    "LockOrderError",
    "LockOrderViolation",
    "TracedLock",
    "trace_lock",
    "ReportLog",
    "SanitizerReport",
    "session_reports",
]
