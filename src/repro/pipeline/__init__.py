"""Streaming readout runtime: online, batched, instrumented discrimination.

The experiment runners in :mod:`repro.experiments` are offline — one
corpus, one table. This package is the *serving* counterpart the paper's
online-decoding premise implies:

- :mod:`repro.pipeline.source` — :class:`TraceSource` streams shots in
  bounded chunks from the simulator or a saved corpus.
- :mod:`repro.pipeline.batching` — :class:`MicroBatcher` re-chunks the
  stream into fixed-size dispatch batches.
- :mod:`repro.pipeline.stages` — vectorized demod → matched-filter →
  per-qubit-NN stages, channel-sharded across ``concurrent.futures``
  workers.
- :mod:`repro.pipeline.registry` — :class:`CalibrationRegistry` persists
  fitted artifacts (kernels, scalers, NN weights) by
  (device, qubit, profile) so warm runs skip retraining.
- :mod:`repro.pipeline.sink` — backpressure-aware sinks; the default
  feeds ERASER+M leakage speculation in :mod:`repro.qec.eraser`.
- :mod:`repro.pipeline.metrics` — per-stage p50/p99 latency, throughput,
  and the measured-vs-FPGA cycle-budget check.
- :mod:`repro.pipeline.runner` — :class:`ReadoutPipeline` and the
  turnkey :func:`run_streaming_pipeline` used by ``repro pipeline``.
- :mod:`repro.pipeline.cluster` — multi-feedline sharding:
  :class:`MultiFeedlineRunner` replicates the chain per feedline across
  pluggable :class:`ShardExecutor` backends (serial/thread/process) and
  merges the per-feedline reports into one :class:`ClusterReport`.
"""

from repro.pipeline.batching import (
    MIN_PER_SHOT_SECONDS,
    AdaptiveBatcher,
    MicroBatcher,
)
from repro.pipeline.buffers import BufferRing
from repro.pipeline.cluster import (
    EXECUTOR_NAMES,
    ClusterReport,
    FeedlineSpec,
    MultiFeedlineRunner,
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutor,
    ThreadShardExecutor,
    get_shard_executor,
    run_multi_feedline_pipeline,
)
from repro.pipeline.drift import DriftMonitor
from repro.pipeline.metrics import LatencyStats, PipelineReport, StageTimings
from repro.pipeline.registry import CalibrationKey, CalibrationRegistry, PruneReport
from repro.pipeline.runner import (
    ADAPTIVE_BUDGET_SLACK,
    PipelineConfig,
    ReadoutPipeline,
    calibration_key,
    fit_or_load_discriminator,
    run_streaming_pipeline,
    validate_streamable_design,
)
from repro.pipeline.shm import (
    SharedMemoryTraceSource,
    SharedTraceBlock,
    SharedTraceDescriptor,
)
from repro.pipeline.sink import (
    CollectingSink,
    EraserSpeculationSink,
    QueueingSink,
    ResultSink,
)
from repro.pipeline.source import (
    CorpusTraceSource,
    DriftingTraceSource,
    ShotChunk,
    SimulatorTraceSource,
    TraceSource,
)
from repro.pipeline.stages import (
    ENGINE_MODES,
    BatchDiscriminationEngine,
    BatchResult,
)

__all__ = [
    "ShotChunk",
    "TraceSource",
    "SimulatorTraceSource",
    "DriftingTraceSource",
    "CorpusTraceSource",
    "SharedTraceDescriptor",
    "SharedTraceBlock",
    "SharedMemoryTraceSource",
    "MicroBatcher",
    "AdaptiveBatcher",
    "BufferRing",
    "MIN_PER_SHOT_SECONDS",
    "ENGINE_MODES",
    "ADAPTIVE_BUDGET_SLACK",
    "DriftMonitor",
    "EXECUTOR_NAMES",
    "FeedlineSpec",
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "get_shard_executor",
    "ClusterReport",
    "MultiFeedlineRunner",
    "run_multi_feedline_pipeline",
    "BatchDiscriminationEngine",
    "BatchResult",
    "CalibrationKey",
    "CalibrationRegistry",
    "PruneReport",
    "ResultSink",
    "CollectingSink",
    "QueueingSink",
    "EraserSpeculationSink",
    "LatencyStats",
    "StageTimings",
    "PipelineReport",
    "PipelineConfig",
    "ReadoutPipeline",
    "calibration_key",
    "fit_or_load_discriminator",
    "run_streaming_pipeline",
    "validate_streamable_design",
]
