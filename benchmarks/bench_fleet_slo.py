"""Fleet SLO bench: tenants x load over one shared shard substrate.

Three arms over identical seeded tenant traffic (two-feedline,
two-qubit tenants, one shared one-worker thread pool):

- **sweep** — 1..N tenants at a fixed per-tenant load: the
  SLO-violation curve. Tenants alternate between a *relaxed* SLO
  (``1e6 x`` the FPGA decision budget — software serving meets it) and
  a *strict* one (``1e3 x`` — software serving is ~1e4x off the FPGA
  budget, so the fraction pins at 1), with aggregate and summed
  per-tenant serving rates at every point.
- **retention** — the multiplexing overhead question: two tenants on
  the shared pool vs the same two specs served solo. The comparable
  figure on a time-sliced substrate is the *summed per-tenant serving
  rate* (each tenant's shots over its own run walls — queue wait
  excluded; the median per-run rate, so host-load noise on single
  walls cannot decide the verdict), asserted to retain >= 80% of the
  summed solo per-tenant rates.
- **oversubscription** — three tenants (priorities 4/2/1, the
  low-priority one floored at ``min_share=0.1``) each queue equal
  load, drained under a dispatch budget: the fair-share stride
  throttles low (runs left queued) but never starves it (>= 1
  completed run, queue wait bounded by the drain wall).

The recorded payload (``pipeline_fleet_slo`` in ``BENCH_pipeline
.json``) carries all three: the violation curve, the retention ratio,
and the oversubscribed completion counts per tenant.

Runs standalone too::

    PYTHONPATH=src:. python benchmarks/bench_fleet_slo.py \
        [--quick] --json BENCH_pipeline.json
"""

from __future__ import annotations

import argparse
import json

from benchmarks.conftest import record_bench_result, run_once
from repro.config import Profile
from repro.fleet import (
    FleetPoolSpec,
    FleetSLOSpec,
    FleetSpec,
    ReadoutFleet,
    TenantSpec,
)
from repro.serve import (
    BatchingSpec,
    ClusterSpec,
    ReadoutService,
    ServeSpec,
    TrafficSpec,
)

#: Relaxed SLO: 1e6 x the FPGA decision budget (~hundreds of ns) is
#: hundreds of ms per shot — comfortably met by software serving.
RELAXED_MULTIPLIER = 1.0e6

#: Strict SLO: 1e3 x the budget is ~hundreds of us per shot; software
#: serving runs ~1e4 x over the FPGA budget, so this is always blown.
#: The pair brackets the violation curve from both sides.
STRICT_MULTIPLIER = 1.0e3


def _bench_profile() -> Profile:
    """A small sizing: SLO scoring is about latency, not accuracy."""
    return Profile(
        name="fleetbench",
        shots_per_state=20,
        calibration_shots=100,
        nn_epochs=8,
        fnn_epochs=2,
        batch_size=64,
        qec_shots=10,
        qudit_shots=10,
        spectral_max_points=100,
        seed=701,
    )


def _tenant_serve(shots: int) -> ServeSpec:
    """Two feedlines through one explicit shard worker.

    ``workers=1`` pins the solo runner and the fleet lease to the same
    parallelism on any host, so the retention ratio compares substrates
    and not CPU counts.
    """
    return ServeSpec(
        traffic=TrafficSpec(shots=shots, chunk_size=50),
        cluster=ClusterSpec(feedlines=2, workers=1, qubits_per_feedline=2),
        batching=BatchingSpec(batch_size=50),
    )


def _fleet_spec(
    names: list[str],
    shots: int,
    *,
    priorities: dict[str, int] | None = None,
    min_shares: dict[str, float] | None = None,
    multipliers: dict[str, float] | None = None,
) -> FleetSpec:
    priorities = priorities or {}
    min_shares = min_shares or {}
    multipliers = multipliers or {}
    return FleetSpec(
        pool=FleetPoolSpec(
            executor="thread",
            workers=1,
            oversubscription=float(max(2, len(names))),
        ),
        tenants={
            name: TenantSpec(
                serve=_tenant_serve(shots),
                slo=FleetSLOSpec(
                    p99_budget_multiplier=multipliers.get(
                        name, RELAXED_MULTIPLIER
                    ),
                    min_share=min_shares.get(name, 0.0),
                    priority=priorities.get(name, 1),
                ),
            )
            for name in names
        },
    )


def _tenant_digest(stats) -> dict:
    return {
        "priority": stats.priority,
        "p99_budget_multiplier": stats.p99_budget_multiplier,
        "n_runs": stats.n_runs,
        "total_shots": stats.total_shots,
        "shots_per_second": stats.shots_per_second,
        "p99_per_shot_ns": stats.p99_per_shot_ns,
        "slo_ns": stats.slo_ns,
        "slo_violation_fraction": stats.slo_violation_fraction,
        "max_queue_wait_seconds": stats.max_queue_wait_seconds,
    }


def _sweep_point(
    n_tenants: int, runs_per_tenant: int, shots: int, profile: Profile
) -> dict:
    """One point of the violation curve: n tenants at a fixed load."""
    names = [f"tenant-{i}" for i in range(n_tenants)]
    multipliers = {
        # Even tenants relaxed, odd tenants strict: every point of the
        # curve carries both SLO regimes.
        name: (STRICT_MULTIPLIER if i % 2 else RELAXED_MULTIPLIER)
        for i, name in enumerate(names)
    }
    spec = _fleet_spec(names, shots, multipliers=multipliers)
    with ReadoutFleet(spec, profile=profile) as fleet:
        for _ in range(runs_per_tenant):
            for name in fleet.tenants:
                fleet.submit(name)
        fleet.drain()
        stats = fleet.stats
        return {
            "n_tenants": n_tenants,
            "runs_per_tenant": runs_per_tenant,
            "shots_per_run": shots,
            "completed_runs": stats.completed_runs,
            "submitted": stats.submitted,
            "warm_seconds": stats.warm_seconds,
            "drain_wall_seconds": stats.drain_wall_seconds,
            "fleet_shots_per_second": stats.shots_per_second,
            "tenant_serving_shots_per_second": (
                stats.tenant_serving_shots_per_second
            ),
            "tenants": {
                name: _tenant_digest(t)
                for name, t in stats.tenants.items()
            },
        }


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _retention_arm(shots: int, n_runs: int, profile: Profile) -> dict:
    """Two tenants shared vs the same two specs served solo.

    Per-tenant rates are the *median* per-run serving rate: on a busy
    host single-run walls swing 20%+ either way, and the median keeps
    one unlucky (or lucky) run from deciding the retention verdict.
    The cumulative rates ride along in the payload for reference.
    """
    solo_rates: dict[str, float] = {}
    solo_cumulative: dict[str, float] = {}
    for name in ("tenant-0", "tenant-1"):
        with ReadoutService(_tenant_serve(shots), profile=profile) as solo:
            for _ in range(n_runs):
                solo.run()
            solo_rates[name] = _median(
                [run.shots_per_second for run in solo.stats.runs]
            )
            solo_cumulative[name] = solo.stats.shots_per_second
    spec = _fleet_spec(["tenant-0", "tenant-1"], shots)
    with ReadoutFleet(spec, profile=profile) as fleet:
        for _ in range(n_runs):
            for name in fleet.tenants:
                fleet.submit(name)
        fleet.drain()
        stats = fleet.stats
        fleet_rates = {
            name: _median(
                [run.shots_per_second for run in stats.tenants[name].runs]
            )
            for name in fleet.tenants
        }
        solo_sum = sum(solo_rates.values())
        fleet_sum = sum(fleet_rates.values())
        return {
            "shots_per_run": shots,
            "runs_per_tenant": n_runs,
            "solo_shots_per_second": solo_rates,
            "solo_cumulative_shots_per_second": solo_cumulative,
            "solo_sum_shots_per_second": solo_sum,
            "fleet_shots_per_second": fleet_rates,
            "fleet_sum_shots_per_second": fleet_sum,
            "fleet_tenant_serving_shots_per_second": (
                stats.tenant_serving_shots_per_second
            ),
            "fleet_aggregate_shots_per_second": stats.shots_per_second,
            "retention": fleet_sum / solo_sum if solo_sum > 0 else 0.0,
            "tenants": {
                name: _tenant_digest(t)
                for name, t in stats.tenants.items()
            },
        }


def _oversubscription_arm(
    shots: int, submit_per_tenant: int, max_runs: int, profile: Profile
) -> dict:
    """Priorities 4/2/1 under a drain budget: throttled, never starved."""
    spec = _fleet_spec(
        ["high", "mid", "low"],
        shots,
        priorities={"high": 4, "mid": 2, "low": 1},
        # The floor serves 'low' before any stride catches up, however
        # heavy 'high' weighs — the starvation-freedom guarantee.
        min_shares={"low": 0.1},
    )
    with ReadoutFleet(spec, profile=profile) as fleet:
        for _ in range(submit_per_tenant):
            for name in fleet.tenants:
                fleet.submit(name)
        fleet.drain(max_runs=max_runs)
        stats = fleet.stats
        return {
            "shots_per_run": shots,
            "submitted_per_tenant": submit_per_tenant,
            "max_runs": max_runs,
            "drain_wall_seconds": stats.drain_wall_seconds,
            "left_queued": fleet.pending(),
            "completed": {
                name: stats.tenants[name].n_runs
                for name in ("high", "mid", "low")
            },
            "tenants": {
                name: _tenant_digest(t)
                for name, t in stats.tenants.items()
            },
        }


def _fleet_slo_scenario(
    shots: int = 200,
    runs_per_tenant: int = 2,
    tenant_counts: tuple[int, ...] = (1, 2, 3),
    retention_runs: int = 3,
    oversub_submit: int = 5,
    oversub_max_runs: int = 9,
) -> dict:
    profile = _bench_profile()
    return {
        "shots_per_run": shots,
        "pool": {"executor": "thread", "workers": 1},
        "sweep": [
            _sweep_point(n, runs_per_tenant, shots, profile)
            for n in tenant_counts
        ],
        "retention": _retention_arm(shots, retention_runs, profile),
        "oversubscription": _oversubscription_arm(
            shots, oversub_submit, oversub_max_runs, profile
        ),
    }


def _check_scenario(result: dict) -> None:
    """The acceptance shape shared by pytest and the standalone run."""
    for point in result["sweep"]:
        # Unbudgeted drains serve everything that was queued.
        assert point["completed_runs"] == point["submitted"], point
        for name, tenant in point["tenants"].items():
            fraction = tenant["slo_violation_fraction"]
            assert 0.0 <= fraction <= 1.0, (name, tenant)
            if tenant["p99_budget_multiplier"] >= RELAXED_MULTIPLIER:
                assert fraction == 0.0, (name, tenant)
    # Sharing the substrate keeps >= 80% of the summed solo serving
    # rates (the tentpole's retention criterion).
    retention = result["retention"]
    assert retention["retention"] >= 0.8, retention
    # Oversubscribed under a budget: low is throttled (work remains
    # queued, priority order holds) but never starved.
    over = result["oversubscription"]
    completed = over["completed"]
    assert completed["high"] >= completed["mid"] >= completed["low"], over
    assert completed["low"] >= 1, over
    assert over["left_queued"] > 0, over
    # Queue wait is bounded by the drain itself, not unbounded backlog.
    for name, tenant in over["tenants"].items():
        assert (
            tenant["max_queue_wait_seconds"]
            <= over["drain_wall_seconds"] + 1.0
        ), (name, tenant)


def test_pipeline_fleet_slo(benchmark):
    result = run_once(
        benchmark,
        lambda: _fleet_slo_scenario(
            shots=150,
            runs_per_tenant=1,
            tenant_counts=(1, 2),
            retention_runs=3,
            oversub_submit=3,
            oversub_max_runs=5,
        ),
    )
    _check_scenario(result)
    record_bench_result("pipeline_fleet_slo", result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shots", type=int, default=200)
    parser.add_argument("--runs", type=int, default=2)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller session (CI smoke): 2 sweep points, 1 run each",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="merge the scenario payload into PATH (e.g. BENCH_pipeline.json)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        result = _fleet_slo_scenario(
            shots=150,
            runs_per_tenant=1,
            tenant_counts=(1, 2),
            retention_runs=3,
            oversub_submit=3,
            oversub_max_runs=5,
        )
    else:
        result = _fleet_slo_scenario(
            shots=args.shots, runs_per_tenant=args.runs
        )
    _check_scenario(result)

    print("pipeline_fleet_slo")
    for point in result["sweep"]:
        fractions = ", ".join(
            f"{name}={tenant['slo_violation_fraction']:.2f}"
            for name, tenant in point["tenants"].items()
        )
        print(
            f"  sweep n={point['n_tenants']}  "
            f"{point['fleet_shots_per_second']:.0f} shots/s aggregate, "
            f"{point['tenant_serving_shots_per_second']:.0f} serving sum  "
            f"(slo viol: {fractions})"
        )
    retention = result["retention"]
    print(
        f"  retention              {retention['retention']:.2f} "
        f"({retention['fleet_sum_shots_per_second']:.0f} fleet "
        f"vs {retention['solo_sum_shots_per_second']:.0f} solo shots/s)"
    )
    over = result["oversubscription"]
    completed = ", ".join(
        f"{name}={n}" for name, n in over["completed"].items()
    )
    print(
        f"  oversubscription       {completed} "
        f"({over['left_queued']} left queued)"
    )
    if args.json:
        try:
            with open(args.json) as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            payload = {}
        payload["pipeline_fleet_slo"] = result
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"results merged into {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
