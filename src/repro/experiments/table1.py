"""Table I — impact of multi-level readout on leakage speculation.

Paper: ERASER 0.957 accuracy / 4.19e-3 leakage population; ERASER+M 0.971
/ 2.97e-3 (distance-7 surface code, 10 QEC cycles).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.experiments.report import format_rows
from repro.qec import EraserConfig, RotatedSurfaceCode, run_eraser

__all__ = ["Table1Result", "run_table1"]

PAPER_VALUES = {
    "ERASER": {"accuracy": 0.957, "leakage_population": 4.19e-3},
    "ERASER+M": {"accuracy": 0.971, "leakage_population": 2.97e-3},
}


@dataclass(frozen=True)
class Table1Result(ExperimentResult):
    """Measured speculation metrics for ERASER and ERASER+M."""

    rows: list[dict]

    def _measured(self) -> dict:
        return {r["design"]: {k: v for k, v in r.items() if k != "design"}
                for r in self.rows}

    def _paper_values(self) -> dict:
        return PAPER_VALUES

    def format_table(self) -> str:
        table = format_rows(
            ("Design", "Accuracy", "LeakagePop", "Paper Acc", "Paper LP"),
            [
                (
                    r["design"],
                    r["accuracy"],
                    f"{r['leakage_population']:.2e}",
                    PAPER_VALUES[r["design"]]["accuracy"],
                    f"{PAPER_VALUES[r['design']]['leakage_population']:.2e}",
                )
                for r in self.rows
            ],
            title="Table I: impact of readout on leakage speculation (d=7, 10 cycles)",
        )
        return table


@experiment("table1", tags=("qec",), paper_ref="Table I")
def run_table1(profile: Profile = QUICK, distance: int = 7) -> Table1Result:
    """Run ERASER and ERASER+M at the profile's Monte-Carlo budget."""
    code = RotatedSurfaceCode(distance)
    rows = []
    for name, multi_level in (("ERASER", False), ("ERASER+M", True)):
        report = run_eraser(
            code,
            cycles=10,
            shots=profile.qec_shots,
            config=EraserConfig(multi_level=multi_level),
            seed=profile.seed + (31 if multi_level else 30),
        )
        rows.append(
            {
                "design": name,
                "accuracy": report.accuracy,
                "leakage_population": report.leakage_population,
                "true_positive_rate": report.true_positive_rate,
                "false_positive_rate": report.false_positive_rate,
            }
        )
    return Table1Result(rows=rows)
