"""Runtime lock-order detection for the serving stack.

The calibration→serve hand-off holds several locks with nesting — the
registry's per-key fit locks, its memory-cache guard, the flock
``.npz.lock`` sidecar, the shared shard pool's lease lock, the fleet
scheduler's queue lock, and the fleet-wide recalibration gate. A
consistent global acquisition order is what makes that deadlock-free,
and this module machine-checks it at runtime:

- :func:`trace_lock` is the factory the lock-using modules call instead
  of ``threading.Lock()``/``RLock()``. With the ``REPRO_LOCK_DEBUG``
  environment flag unset it returns a plain lock (zero overhead); set,
  it returns a :class:`TracedLock` that reports every acquire/release to
  the process-wide :data:`GLOBAL_GRAPH`.
- :class:`LockGraph` records, per thread, which locks were *held* when
  each lock was acquired — the lock-acquisition graph. An edge
  ``A -> B`` means "B was acquired while holding A" and carries a
  witness (thread, held chain, call site).
- :meth:`LockGraph.violations` finds cycles in that graph — including
  the two-node ``A -> B`` / ``B -> A`` acquire-while-holding inversion —
  and returns them with the witness trace of every edge on the cycle.
  A cycle is a *potential* deadlock: two threads interleaving those
  acquisition orders can block forever even if this run did not.

The advisory flock sidecar around cold calibration fits participates as
a graph node too (:func:`note_flock_acquire`/:func:`note_flock_release`
are called by :mod:`repro.pipeline.registry`), so an inversion between
an in-process lock and the cross-process file lock is just as visible.

Arming the tier-1 suite::

    REPRO_LOCK_DEBUG=1 python -m pytest -x -q

(the pytest hook in ``tests/conftest.py`` fails the session when the
global graph ends up cyclic). Tests that *seed* inversions build a
private :class:`LockGraph` so the global one stays clean.
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "ENV_FLAG",
    "enabled",
    "LockEdge",
    "LockOrderViolation",
    "LockOrderError",
    "LockGraph",
    "TracedLock",
    "trace_lock",
    "note_flock_acquire",
    "note_flock_release",
    "GLOBAL_GRAPH",
]

#: Environment flag arming the detector (any value but ''/'0'/'false').
ENV_FLAG = "REPRO_LOCK_DEBUG"


def enabled() -> bool:
    """Whether the lock-order detector is armed for this process."""
    return os.environ.get(ENV_FLAG, "").strip().lower() not in (
        "", "0", "false", "off",
    )


def _call_site() -> str:
    """``file.py:line`` of the nearest caller outside this module."""
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename == __file__:
        frame = frame.f_back
    if frame is None:  # pragma: no cover - the stack always has a caller
        return "<unknown>"
    return f"{Path(frame.f_code.co_filename).name}:{frame.f_lineno}"


@dataclass(frozen=True)
class LockEdge:
    """Witness that ``target`` was acquired while ``source`` was held."""

    source: str
    target: str
    thread: str
    held: tuple[str, ...]
    site: str

    def format(self) -> str:
        chain = " -> ".join(self.held)
        return (
            f"{self.source} -> {self.target}  [thread {self.thread} at "
            f"{self.site}, holding: {chain}]"
        )


@dataclass(frozen=True)
class LockOrderViolation:
    """One cycle in the acquisition graph, with per-edge witnesses."""

    cycle: tuple[str, ...]
    witnesses: tuple[LockEdge, ...]

    def format(self) -> str:
        arrows = " -> ".join(self.cycle + (self.cycle[0],))
        lines = [f"lock-order cycle: {arrows}"]
        for edge in self.witnesses:
            lines.append(f"  witness: {edge.format()}")
        return "\n".join(lines)


class LockOrderError(RuntimeError):
    """Raised by :meth:`LockGraph.check` when the graph is cyclic."""

    def __init__(self, violations: "list[LockOrderViolation]") -> None:
        self.violations = tuple(violations)
        super().__init__(
            "\n".join(violation.format() for violation in violations)
        )


class LockGraph:
    """Per-thread held-lock tracking plus the global acquisition graph."""

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._edges: dict[tuple[str, str], LockEdge] = {}
        self._local = threading.local()

    # -- recording -----------------------------------------------------

    def _held(self) -> list[str]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = []
        return held

    def note_acquire(self, name: str, site: str | None = None) -> None:
        """Record that the current thread acquired ``name``."""
        held = self._held()
        if name not in held and held:
            # First witness per (source, target) edge wins — the graph
            # cares about the order's existence, not its frequency.
            edge_site = site if site is not None else _call_site()
            thread = threading.current_thread().name
            chain = tuple(held)
            with self._guard:
                for source in held:
                    self._edges.setdefault(
                        (source, name),
                        LockEdge(
                            source=source,
                            target=name,
                            thread=thread,
                            held=chain,
                            site=edge_site,
                        ),
                    )
        # RLock re-entries still push, so releases balance symmetrically
        # (a re-entry adds no edge: name is already in the held list).
        held.append(name)

    def note_release(self, name: str) -> None:
        """Record that the current thread released ``name``."""
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index] == name:
                del held[index]
                return

    def held_by_current_thread(self) -> tuple[str, ...]:
        return tuple(self._held())

    # -- analysis ------------------------------------------------------

    def edges(self) -> dict[tuple[str, str], LockEdge]:
        with self._guard:
            return dict(self._edges)

    def clear(self) -> None:
        with self._guard:
            self._edges.clear()

    def violations(self) -> list[LockOrderViolation]:
        """Every distinct cycle in the acquisition graph, with witnesses.

        A two-node cycle is the classic ``A -> B`` / ``B -> A``
        inversion; longer cycles are transitive deadlock potential.
        Cycles are canonicalized (rotated to their lexicographically
        smallest node) so each is reported once.
        """
        edges = self.edges()
        adjacency: dict[str, list[str]] = {}
        for source, target in edges:
            adjacency.setdefault(source, []).append(target)

        seen: set[tuple[str, ...]] = set()
        violations: list[LockOrderViolation] = []
        for start, target in sorted(edges):
            # The edge closes a cycle iff target reaches start.
            path = self._find_path(adjacency, target, start)
            if path is None:
                continue
            # path is [target, ..., start]; prepend start and drop its
            # duplicate at the end to walk the cycle once.
            cycle = tuple([start] + path[:-1])
            canonical = self._canonicalize(cycle)
            if canonical in seen:
                continue
            seen.add(canonical)
            witnesses = tuple(
                edges[pair]
                for pair in zip(canonical, canonical[1:] + canonical[:1])
                if pair in edges
            )
            violations.append(
                LockOrderViolation(cycle=canonical, witnesses=witnesses)
            )
        return violations

    def check(self) -> None:
        """Raise :class:`LockOrderError` if the graph holds any cycle."""
        violations = self.violations()
        if violations:
            raise LockOrderError(violations)

    @staticmethod
    def _find_path(
        adjacency: dict[str, list[str]], start: str, goal: str
    ) -> "list[str] | None":
        """Shortest node path from ``start`` to ``goal`` (BFS), or None."""
        if start == goal:
            return [start]
        queue = [[start]]
        visited = {start}
        while queue:
            path = queue.pop(0)
            for neighbor in adjacency.get(path[-1], ()):
                if neighbor == goal:
                    return path + [neighbor]
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append(path + [neighbor])
        return None

    @staticmethod
    def _canonicalize(cycle: tuple[str, ...]) -> tuple[str, ...]:
        """Rotate the cycle so it starts at its smallest node."""
        pivot = cycle.index(min(cycle))
        return cycle[pivot:] + cycle[:pivot]


#: The process-wide graph every armed :func:`trace_lock` reports into.
GLOBAL_GRAPH = LockGraph()


class TracedLock:
    """A named lock reporting acquire/release order to a lock graph.

    Wraps a real ``threading.Lock`` (or ``RLock``), so blocking and
    mutual exclusion are exactly the stdlib's; the wrapper only adds
    graph bookkeeping after a *successful* acquire.
    """

    def __init__(
        self,
        name: str,
        graph: LockGraph | None = None,
        *,
        rlock: bool = False,
    ) -> None:
        self.name = name
        self._graph = GLOBAL_GRAPH if graph is None else graph
        self._lock = threading.RLock() if rlock else threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._graph.note_acquire(self.name)
        return acquired

    def release(self) -> None:
        self._lock.release()
        self._graph.note_release(self.name)

    def locked(self) -> bool:
        locked = getattr(self._lock, "locked", None)
        return bool(locked()) if callable(locked) else False

    def __enter__(self) -> "TracedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TracedLock({self.name!r})"


def trace_lock(name: str, *, rlock: bool = False, graph: LockGraph | None = None):
    """A lock for ``name``: plain when the detector is off, traced when on.

    This is the patch point the lock-using modules call instead of
    ``threading.Lock()``. An explicit ``graph`` always yields a
    :class:`TracedLock` (how tests seed private graphs); otherwise the
    ``REPRO_LOCK_DEBUG`` flag decides at creation time, so arming a run
    means setting the flag before the process imports the serving stack.
    """
    if graph is None and not enabled():
        return threading.RLock() if rlock else threading.Lock()
    return TracedLock(name, graph, rlock=rlock)


def _flock_node(path) -> str:
    """Stable graph-node name for one artifact's flock sidecar."""
    parts = Path(path).parts[-3:]
    return "flock:" + "/".join(parts)


def note_flock_acquire(path) -> None:
    """Record taking the flock sidecar for ``path`` (armed runs only)."""
    if enabled():
        GLOBAL_GRAPH.note_acquire(_flock_node(path))


def note_flock_release(path) -> None:
    """Record dropping the flock sidecar for ``path`` (armed runs only)."""
    if enabled():
        GLOBAL_GRAPH.note_release(_flock_node(path))
