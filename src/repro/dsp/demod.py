"""Digital down-conversion of the multiplexed feedline.

Each qubit's tone is brought to baseband by multiplying the feedline with
``exp(-i 2 pi f_q t)`` — the two-FMA-per-sample operation the paper notes
is cheap enough for inline FPGA implementation. Neighboring tones remain
as fast-rotating terms; boxcar decimation (see filters.py) suppresses them.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ShapeError
from repro.physics.device import ChipConfig

__all__ = ["demod_tone", "demodulate", "demodulate_all_qubits"]

TWO_PI = 2.0 * math.pi


def demod_tone(if_frequency_ghz: float, times_ns: np.ndarray) -> np.ndarray:
    """The down-conversion tone ``exp(-i 2 pi f t)`` for one qubit.

    Exposed separately from :func:`demodulate` so serving paths can
    compute the tone once per (frequency, window) and fold it into
    precomputed kernels (see
    :func:`repro.dsp.matched_filter.fuse_demod_decimation`) instead of
    re-evaluating the complex exponential on every batch.
    """
    times_ns = np.asarray(times_ns)
    return np.exp(-1j * TWO_PI * if_frequency_ghz * times_ns)


def demodulate(
    feedline: np.ndarray, if_frequency_ghz: float, times_ns: np.ndarray
) -> np.ndarray:
    """Shift one qubit's tone to baseband.

    Parameters
    ----------
    feedline:
        Complex traces (n_shots, trace_len) or a single trace (trace_len,).
    if_frequency_ghz:
        The qubit's intermediate frequency.
    times_ns:
        Sample timestamps matching the trace length.
    """
    feedline = np.asarray(feedline)
    times_ns = np.asarray(times_ns)
    if feedline.shape[-1] != times_ns.shape[0]:
        raise ShapeError(
            f"trace length {feedline.shape[-1]} != {times_ns.shape[0]} timestamps"
        )
    return feedline * demod_tone(if_frequency_ghz, times_ns)


def demodulate_all_qubits(
    feedline: np.ndarray, chip: ChipConfig, trace_len: int | None = None
) -> np.ndarray:
    """Demodulate every qubit of a chip; returns (n_qubits, n_shots, T)."""
    feedline = np.atleast_2d(np.asarray(feedline))
    times = chip.sample_times(
        feedline.shape[-1] if trace_len is None else trace_len
    )
    out = np.empty(
        (chip.n_qubits,) + feedline.shape, dtype=np.complex128
    )
    for q, qubit in enumerate(chip.qubits):
        out[q] = demodulate(feedline, qubit.if_frequency_ghz, times)
    return out
