"""The streaming readout runtime: source → stages → sink, instrumented.

:class:`ReadoutPipeline` wires a :class:`~repro.pipeline.source
.TraceSource` through the micro-batcher and the channel-sharded
discrimination engine into a result sink, timing every stage and scoring
the measured per-shot compute latency against the FPGA decision budget.
:func:`run_streaming_pipeline` is the turnkey entry point the CLI and the
throughput benchmark use: it resolves calibration through a
:class:`~repro.pipeline.registry.CalibrationRegistry` (fit once, then
serve from disk) and streams freshly simulated traffic end to end.
"""

from __future__ import annotations

import hashlib
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.config import Profile
from repro.data.synthetic import generate_corpus
from repro.discriminators import registry as discriminators
from repro.discriminators.mlr import MLRDiscriminator
from repro.exceptions import ConfigurationError
from repro.fpga.latency import check_cycle_budget, decision_budget_ns
from repro.physics.device import ChipConfig, default_five_qubit_chip
from repro.physics.drift import DriftModel
from repro.pipeline.batching import AdaptiveBatcher, MicroBatcher
from repro.pipeline.buffers import make_buffer_ring
from repro.pipeline.drift import DriftMonitor
from repro.pipeline.metrics import PipelineReport, StageTimings
from repro.pipeline.registry import CalibrationKey, CalibrationRegistry
from repro.pipeline.sink import EraserSpeculationSink, QueueingSink, ResultSink
from repro.pipeline.source import TraceSource
from repro.pipeline.stages import ENGINE_MODES, BatchDiscriminationEngine

__all__ = [
    "ADAPTIVE_BUDGET_SLACK",
    "PipelineConfig",
    "ReadoutPipeline",
    "calibration_key",
    "fit_or_load_discriminator",
    "run_streaming_pipeline",
    "validate_streamable_design",
]

#: Device slug of :func:`default_five_qubit_chip` in the registry tree.
DEFAULT_DEVICE = "five-qubit-default"

#: Registered design the pipeline serves by default (the paper's).
DEFAULT_DESIGN = "ours"


#: Software slack multiplier applied to the FPGA per-shot decision budget
#: when deriving the adaptive batcher's default batch-latency target: the
#: hardware decides in nanoseconds, a software batch may take that many
#: shots' worth of budget (~8 ns * 5e5 = 4 ms per batch for the paper's
#: 3-layer head).
ADAPTIVE_BUDGET_SLACK = 5.0e5


@dataclass(frozen=True)
class PipelineConfig:
    """Runtime knobs for the streaming pipeline.

    Parameters
    ----------
    batch_size:
        Shots per dispatched micro-batch (the initial size when adaptive
        batching is on).
    workers:
        Channel-shard workers; 1 runs the shards inline.
    max_pending:
        Sink queue capacity in batches before backpressure blocks
        dispatch.
    adaptive_batching:
        Resize micro-batches from the observed per-shot compute-latency
        EWMA (see :class:`~repro.pipeline.batching.AdaptiveBatcher`)
        instead of keeping ``batch_size`` fixed.
    max_batch_size:
        Upper bound on the adapted batch size (adaptive mode only; the
        fixed-size path ignores it).
    target_batch_ms:
        Per-batch compute-latency target for adaptive mode. ``None``
        derives it from the serving head's FPGA decision budget times
        :data:`ADAPTIVE_BUDGET_SLACK`.
    drift_detection:
        Monitor streamed assignments and score margins against the
        calibration-time references carried in the served artifact (see
        :class:`~repro.pipeline.drift.DriftMonitor`), surfacing
        ``drift_score``/``drift_alarm`` in the report. Inert when the
        artifact predates reference support.
    drift_threshold:
        Drift score at which the report's ``drift_alarm`` trips.
    drift_ewma_alpha:
        EWMA weight of the newest batch in the drift monitor.
    drift_min_shots:
        Shots the monitor must see before it may alarm.
    engine:
        Discrimination engine mode: ``"fused"`` (default) scores every
        channel with one matmul over precomputed fused kernels, writing
        into reused ring buffers; ``"legacy"`` runs the per-channel
        demod → decimate → matched-filter reference chain (the mode
        ``workers`` shards across threads).

    Source chunking is the :class:`TraceSource`'s own knob, not runtime
    configuration — see ``chunk_size`` on the source constructors.
    """

    batch_size: int = 64
    workers: int = 1
    max_pending: int = 8
    adaptive_batching: bool = False
    max_batch_size: int = 1024
    target_batch_ms: float | None = None
    drift_detection: bool = True
    drift_threshold: float = 0.1
    drift_ewma_alpha: float = 0.25
    drift_min_shots: int = 50
    engine: str = "fused"

    def __post_init__(self) -> None:
        # Collect every violation before raising, so a config with
        # several bad knobs reports them all in one pass instead of
        # failing one field at a time.
        problems: list[str] = []
        for field_name in ("batch_size", "workers", "max_pending",
                           "max_batch_size"):
            value = getattr(self, field_name)
            if value < 1:
                problems.append(f"{field_name} must be >= 1, got {value}")
        if self.adaptive_batching and self.max_batch_size < self.batch_size:
            problems.append(
                "max_batch_size must be >= batch_size when adaptive "
                f"batching is on, got {self.max_batch_size} < "
                f"{self.batch_size}"
            )
        if self.target_batch_ms is not None and self.target_batch_ms <= 0:
            problems.append(
                f"target_batch_ms must be positive, got {self.target_batch_ms}"
            )
        if self.drift_threshold <= 0:
            problems.append(
                f"drift_threshold must be positive, got {self.drift_threshold}"
            )
        if not 0.0 < self.drift_ewma_alpha <= 1.0:
            problems.append(
                "drift_ewma_alpha must be in (0, 1], got "
                f"{self.drift_ewma_alpha}"
            )
        if self.drift_min_shots < 0:
            problems.append(
                f"drift_min_shots must be >= 0, got {self.drift_min_shots}"
            )
        if self.engine not in ENGINE_MODES:
            problems.append(
                f"engine must be one of {ENGINE_MODES}, got {self.engine!r}"
            )
        if problems:
            raise ConfigurationError(
                "invalid PipelineConfig: " + "; ".join(problems)
            )


class ReadoutPipeline:
    """Streams micro-batches through the discrimination stages.

    Parameters
    ----------
    discriminator:
        Fitted :class:`MLRDiscriminator` to serve.
    chip:
        Device the stream comes from.
    config:
        Runtime configuration.
    sink:
        Optional result consumer. Every :meth:`run` closes the sink it
        used (that is where the report's sink summary comes from), so a
        caller-provided sink makes the pipeline single-run. When omitted,
        each run builds its own backpressured ERASER+M speculation sink —
        the paper's downstream QEC consumer — and the pipeline is
        reusable across runs.
    """

    def __init__(
        self,
        discriminator: MLRDiscriminator,
        chip: ChipConfig,
        config: PipelineConfig | None = None,
        sink: ResultSink | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.chip = chip
        self.discriminator = discriminator
        self._sink_override = sink

    def _make_sink(self) -> ResultSink:
        if self._sink_override is not None:
            return self._sink_override
        return QueueingSink(
            EraserSpeculationSink(self.chip.n_qubits),
            max_pending=self.config.max_pending,
        )

    def _make_batcher(self) -> MicroBatcher:
        """Fixed-size batcher, or the latency-adaptive one when enabled."""
        config = self.config
        if not config.adaptive_batching:
            return MicroBatcher(config.batch_size)
        if config.target_batch_ms is not None:
            target_s = config.target_batch_ms * 1e-3
        else:
            head = self.discriminator.models[0]
            target_s = (
                decision_budget_ns(head.layer_sizes) * 1e-9
                * ADAPTIVE_BUDGET_SLACK
            )
        return AdaptiveBatcher(
            config.batch_size,
            target_seconds=target_s,
            max_size=config.max_batch_size,
        )

    def _make_drift_monitor(self) -> DriftMonitor | None:
        """Per-run drift monitor, when enabled and the artifact can."""
        if not self.config.drift_detection:
            return None
        reference = getattr(self.discriminator, "reference_assignment_", None)
        if reference is None:
            return None  # pre-reference artifact: nothing to score against
        return DriftMonitor(
            reference,
            reference_margin=getattr(
                self.discriminator, "reference_margin_", None
            ),
            threshold=self.config.drift_threshold,
            alpha=self.config.drift_ewma_alpha,
            min_shots=self.config.drift_min_shots,
            n_levels=self.chip.n_levels,
        )

    def run(self, source: TraceSource) -> PipelineReport:
        """Drain the source through the stages; returns the run report."""
        timings = StageTimings()
        batcher = self._make_batcher()
        monitor = self._make_drift_monitor()
        executor = None
        sink = None

        n_shots = 0
        n_batches = 0
        n_correct = 0
        n_labeled = 0
        min_dispatched: int | None = None
        max_dispatched: int | None = None
        assignment_counts = np.zeros(
            self.chip.n_levels**self.chip.n_qubits, dtype=np.int64
        )
        wall_start = time.perf_counter()
        try:
            # The fused engine is one BLAS call per batch; channel-shard
            # threads only help the legacy per-channel chain.
            if self.config.workers > 1 and self.config.engine == "legacy":
                executor = ThreadPoolExecutor(max_workers=self.config.workers)
            engine = BatchDiscriminationEngine(
                self.discriminator,
                self.chip,
                executor=executor,
                mode=self.config.engine,
            )
            ring = None
            if self.config.engine == "fused":
                # make_buffer_ring arms the use-after-recycle sanitizer
                # when REPRO_SANITIZE is set; plain ring otherwise.
                ring = make_buffer_ring(
                    batcher.max_emit_size, engine.n_features
                )
            # Built only after the engine checks out, so a construction
            # error cannot leak the default sink's consumer thread.
            sink = self._make_sink()
            for batch in batcher.rebatch(source.chunks(), ring=ring):
                result = engine.process(
                    batch.feedline,
                    out_features=(
                        None
                        if ring is None
                        else ring.paired_features(batch.feedline)
                    ),
                )
                compute_s = 0.0
                for stage, seconds in result.stage_seconds.items():
                    timings.record(stage, seconds, batch.n_shots)
                    compute_s += seconds
                if isinstance(batcher, AdaptiveBatcher):
                    if min_dispatched is None:
                        min_dispatched = max_dispatched = batch.n_shots
                    else:
                        min_dispatched = min(min_dispatched, batch.n_shots)
                        max_dispatched = max(max_dispatched, batch.n_shots)
                    batcher.observe(compute_s, batch.n_shots)

                t0 = time.perf_counter()
                sink.consume(result.levels, result.joint, batch.chunk_id)
                timings.record("sink", time.perf_counter() - t0, batch.n_shots)

                assignment_counts += np.bincount(
                    result.joint, minlength=assignment_counts.size
                )
                if monitor is not None:
                    monitor.observe(result.joint, result.mean_margin)
                truth = batch.joint_labels(self.chip.n_levels)
                if truth is not None:
                    n_correct += int(np.sum(result.joint == truth))
                    n_labeled += batch.n_shots
                n_shots += batch.n_shots
                n_batches += 1
        except BaseException:
            # The stage error is the primary failure; still release the
            # sink's consumer thread, suppressing any deferred sink error.
            if sink is not None:
                try:
                    sink.close()
                except Exception:  # repro: allow(broad-except) stage error outranks deferred sink error
                    pass
            raise
        finally:
            if executor is not None:
                executor.shutdown(wait=True)
        sink_summary = sink.close()
        wall = time.perf_counter() - wall_start

        head = self.discriminator.models[0]
        budget = check_cycle_budget(
            measured_ns_per_shot=timings.compute_per_shot_us() * 1e3,
            layer_sizes=head.layer_sizes,
        )
        details = {
            "batch_size": self.config.batch_size,
            "workers": self.config.workers,
            "adaptive_batching": self.config.adaptive_batching,
            "engine": self.config.engine,
        }
        if isinstance(batcher, AdaptiveBatcher):
            # Sizes actually streamed (includes the initial batch and the
            # end-of-stream flush), not the controller's chosen sizes —
            # the honest range for anyone tuning latency off the report.
            details["adaptive"] = {
                "target_batch_ms": batcher.target_seconds * 1e3,
                "final_batch_size": batcher.batch_size,
                "min_batch_size": (
                    batcher.batch_size
                    if min_dispatched is None
                    else min_dispatched
                ),
                "max_batch_size": (
                    batcher.batch_size
                    if max_dispatched is None
                    else max_dispatched
                ),
            }
        if monitor is not None:
            details["drift"] = monitor.summary()
        return PipelineReport(
            n_shots=n_shots,
            n_batches=n_batches,
            wall_seconds=wall,
            # A sub-resolution wall (tiny fully-cached run) must never
            # serialize as Infinity; 0.0 reads as "not measurable".
            shots_per_second=n_shots / wall if wall > 0 else 0.0,
            stage_summaries={
                stats.name: stats.summary() for stats in timings.ordered()
            },
            budget=budget,
            sink_summary=sink_summary,
            accuracy=(n_correct / n_labeled) if n_labeled else None,
            assignment_counts=assignment_counts.tolist(),
            details=details,
            drift_score=None if monitor is None else monitor.drift_score,
            drift_alarm=None if monitor is None else monitor.alarm,
        )


def _device_slug(device: str, chip: ChipConfig) -> str:
    """Registry device slug: the given name plus a chip-config digest.

    Hashing the full chip parameters into the key means a changed device
    (different IFs, noise, crosstalk) can never silently serve kernels
    calibrated for another chip.
    """
    payload = json.dumps(chip.to_dict(), sort_keys=True).encode()
    return f"{device}-{hashlib.sha1(payload).hexdigest()[:8]}"


def _profile_slug(profile: Profile, design: str = DEFAULT_DESIGN) -> str:
    """Registry profile slug: name plus seed, so ``--seed`` overrides
    calibrate freshly instead of hitting the base-seed artifact.

    Non-default designs are baked into the slug too — otherwise a warm
    registry would silently serve whichever design was stored first.
    The default design keeps the original ``<name>-s<seed>`` form so
    existing caches stay warm.
    """
    slug = f"{profile.name}-s{profile.seed}"
    return slug if design == DEFAULT_DESIGN else f"{design}.{slug}"


def validate_streamable_design(design: str) -> str:
    """Check a design can be served by the streaming engine; returns it.

    The engine reuses the MLR kernels/scaler/heads directly, so only
    designs resolving to :class:`MLRDiscriminator` (or a subclass)
    stream. Shared by every serving front
    (:func:`run_streaming_pipeline`, :class:`repro.serve.ReadoutService`).
    """
    if not issubclass(discriminators.get(design).cls, MLRDiscriminator):
        raise ConfigurationError(
            f"design {design!r} cannot stream: the pipeline's "
            "discrimination engine serves the MLR family only"
        )
    return design


def calibration_key(
    profile: Profile,
    chip: ChipConfig | None = None,
    device: str = DEFAULT_DEVICE,
    design: str = DEFAULT_DESIGN,
    version: int = 0,
) -> CalibrationKey:
    """The registry key :func:`fit_or_load_discriminator` resolves through.

    Exposed so recalibration can ask the registry about *stored*
    versions of a logical artifact (``CalibrationRegistry
    .latest_version``) before choosing the next one.
    """
    chip = chip if chip is not None else default_five_qubit_chip()
    return CalibrationKey(
        device=_device_slug(device, chip),
        qubit="all",
        profile=_profile_slug(profile, design),
        version=version,
    )


def fit_or_load_discriminator(
    profile: Profile,
    registry: CalibrationRegistry | None,
    chip: ChipConfig | None = None,
    device: str = DEFAULT_DEVICE,
    design: str = DEFAULT_DESIGN,
    version: int = 0,
    calibration_chip: ChipConfig | None = None,
) -> tuple[MLRDiscriminator, bool]:
    """Resolve the pipeline's discriminator through the registry.

    With a registry, a stored (device+chip-hash, all, profile+seed,
    version) artifact is served without retraining; otherwise the named
    design (default: the paper's, via the discriminator plugin registry)
    is fitted on a freshly generated calibration corpus (and stored when
    a registry is given).

    Parameters
    ----------
    version:
        Artifact recalibration version. The key identity (device slug,
        profile slug) stays anchored to the *declared* chip so versions
        of one logical artifact live side by side.
    calibration_chip:
        Device snapshot the calibration corpus is simulated from when
        the fit is cold; defaults to ``chip``. Hot recalibration passes
        the drifted device here while ``chip`` keeps naming the key.

    Returns
    -------
    (discriminator, cached):
        The fitted model and whether it was served from the registry.
    """
    chip = chip if chip is not None else default_five_qubit_chip()
    fit_chip = calibration_chip if calibration_chip is not None else chip

    def corpus_factory():
        return generate_corpus(
            fit_chip, shots_per_state=profile.shots_per_state, seed=profile.seed
        )

    def discriminator_factory():
        return discriminators.build(design, profile)

    if registry is None:
        corpus = corpus_factory()
        discriminator = discriminator_factory()
        discriminator.fit(corpus, np.arange(corpus.n_traces))
        return discriminator, False

    key = calibration_key(
        profile, chip=chip, device=device, design=design, version=version
    )
    return registry.get_or_fit(key, discriminator_factory, corpus_factory)


def run_streaming_pipeline(
    profile: Profile,
    n_shots: int,
    workers: int = 1,
    batch_size: int = 64,
    chunk_size: int = 256,
    registry_dir: str | Path | None = None,
    chip: ChipConfig | None = None,
    device: str = DEFAULT_DEVICE,
    seed: int | None = None,
    sink: ResultSink | None = None,
    max_pending: int = 8,
    design: str = DEFAULT_DESIGN,
    config: PipelineConfig | None = None,
    adaptive_batching: bool = False,
    max_batch_size: int = 1024,
    target_batch_ms: float | None = None,
    drift_model: DriftModel | None = None,
    drift_shot_offset: int = 0,
    version: int = 0,
    calibration_shot_offset: int = 0,
    source: TraceSource | None = None,
    engine: str = "fused",
) -> PipelineReport:
    """Calibrate (or load calibration), then stream ``n_shots`` end to end.

    Parameters
    ----------
    profile:
        Sizing profile for calibration (corpus size, training budget).
    n_shots:
        Shots of simulated live traffic to stream.
    workers:
        Channel-shard workers for the demod/matched-filter stages.
    batch_size, chunk_size, max_pending:
        See :class:`PipelineConfig`.
    registry_dir:
        Calibration-registry root; ``None`` disables artifact caching.
    chip, device:
        Device to stream from and its registry slug.
    seed:
        Traffic seed; defaults to ``profile.seed + 1`` (distinct from the
        calibration corpus stream).
    sink:
        Override the default backpressured ERASER+M sink.
    design:
        Registered discriminator design to serve. The streaming engine
        reuses the MLR kernels/scaler/heads directly, so the design must
        resolve to an :class:`MLRDiscriminator` (or subclass).
    config:
        A ready-made :class:`PipelineConfig`; when given it wins over the
        individual runtime knobs (``workers``, ``batch_size``,
        ``max_pending``, ``adaptive_batching``, ...).
    adaptive_batching, max_batch_size, target_batch_ms:
        Adaptive micro-batching knobs, see :class:`PipelineConfig`.
    drift_model, drift_shot_offset:
        When a non-null :class:`~repro.physics.drift.DriftModel` is
        given, traffic streams from the time-varying device it predicts,
        with the session clock starting at ``drift_shot_offset`` shots
        (see :class:`~repro.pipeline.source.DriftingTraceSource`).
        Calibration still targets the declared (undrifted) ``chip``.
    version:
        Calibration-artifact version to serve (hot-recalibrated
        sessions bump this; 0 is the cold-calibration artifact).
    calibration_shot_offset:
        Session clock (in shots) at which the served artifact version
        was calibrated. The engine demodulates with the device snapshot
        the kernels were estimated at — after a hot recalibration that
        is the drifted device, not the declared one.
    source:
        Replay an existing :class:`TraceSource` (e.g. a
        :class:`~repro.pipeline.shm.SharedMemoryTraceSource` attached to
        a parent's segment) instead of simulating fresh traffic.
        ``n_shots``/``chunk_size``/``seed`` describe simulated traffic
        only and are ignored; mutually exclusive with ``drift_model``
        (a pre-built stream cannot also be drift-simulated).
    engine:
        Engine mode when ``config`` is not given; see
        :class:`PipelineConfig`.
    """
    if n_shots < 1:
        raise ConfigurationError(f"n_shots must be >= 1, got {n_shots}")
    if source is not None and drift_model is not None and not drift_model.is_null:
        raise ConfigurationError(
            "source and drift_model are mutually exclusive: a replayed "
            "stream's traces are already fixed"
        )
    validate_streamable_design(design)
    chip = chip if chip is not None else default_five_qubit_chip()
    registry = (
        CalibrationRegistry(registry_dir) if registry_dir is not None else None
    )
    discriminator, cached = fit_or_load_discriminator(
        profile, registry, chip=chip, device=device, design=design,
        version=version,
    )
    if config is None:
        config = PipelineConfig(
            batch_size=batch_size,
            workers=workers,
            max_pending=max_pending,
            adaptive_batching=adaptive_batching,
            max_batch_size=max_batch_size,
            target_batch_ms=target_batch_ms,
            engine=engine,
        )
    traffic_seed = profile.seed + 1 if seed is None else seed
    serve_chip = chip
    if source is not None:
        pass  # replayed stream: the caller owns chunking and lifetime
    else:
        # Simulated traffic resolves through the instrument-backend
        # seam (lazy import: repro.backends sits above the pipeline).
        # SimulatorBackend wraps the exact same trace sources, so the
        # streams are bit-identical to the former inline construction.
        from repro.backends.simulator import SimulatorBackend

        backend = SimulatorBackend(
            chip,
            chunk_size=chunk_size,
            drift=drift_model,
            shot_offset=drift_shot_offset,
        )
        source = backend.trace_source(n_shots, seed=traffic_seed)
        if drift_model is not None and not drift_model.is_null:
            # The engine's demod tones must match the device snapshot
            # the served kernels were calibrated at (the drifted device
            # for a recalibrated artifact, the declared one for v0).
            serve_chip = drift_model.chip_at(chip, calibration_shot_offset)
    pipeline = ReadoutPipeline(discriminator, serve_chip, config, sink=sink)
    report = pipeline.run(source)
    report.calibration_cached = cached
    return report
