"""Sequential network container and the MLP classifier facade."""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

import numpy as np

from repro._util import as_1d_int, as_2d_float, check_random_state
from repro.exceptions import ConfigurationError, NotFittedError, ShapeError
from repro.ml.nn.activations import softmax
from repro.ml.nn.layers import Dense

__all__ = ["Sequential", "MLPClassifier"]


class Sequential:
    """A stack of :class:`Dense` layers evaluated in order."""

    def __init__(self, layers: Sequence[Dense]) -> None:
        layers = list(layers)
        if not layers:
            raise ConfigurationError("Sequential requires at least one layer")
        for prev, nxt in zip(layers, layers[1:]):
            if prev.n_out != nxt.n_in:
                raise ShapeError(
                    f"layer width mismatch: {prev.n_out} -> {nxt.n_in}"
                )
        self.layers = layers

    @property
    def n_in(self) -> int:
        return self.layers[0].n_in

    @property
    def n_out(self) -> int:
        return self.layers[-1].n_out

    @property
    def n_parameters(self) -> int:
        """Total trainable scalar count across all layers."""
        return sum(layer.n_parameters for layer in self.layers)

    def forward(self, x: np.ndarray, training: bool = False) -> np.ndarray:
        """Evaluate the network on a batch (n_samples, n_in)."""
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Back-propagate from the output gradient; returns input gradient."""
        grad = grad_out
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def parameters(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.parameters()]

    def gradients(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.gradients()]

    def get_weights(self) -> list[np.ndarray]:
        """Copies of all parameter arrays (for checkpointing)."""
        return [p.copy() for p in self.parameters()]

    def set_weights(self, weights: Sequence[np.ndarray]) -> None:
        """Load parameter arrays previously returned by :meth:`get_weights`."""
        params = self.parameters()
        if len(weights) != len(params):
            raise ShapeError(
                f"expected {len(params)} arrays, got {len(weights)}"
            )
        for p, w in zip(params, weights):
            if p.shape != w.shape:
                raise ShapeError(f"shape mismatch: {p.shape} vs {w.shape}")
            p[...] = w


class MLPClassifier:
    """Multi-layer perceptron classifier with a softmax head.

    This is the model family used by all three discriminators in the paper:
    the large FNN baseline, the HERQULES head, and the paper's lightweight
    per-qubit networks differ only in their layer widths.

    Parameters
    ----------
    layer_sizes:
        Widths including input and output, e.g. ``(45, 22, 11, 3)``.
    hidden_activation:
        Activation for all hidden layers; the output layer is linear and the
        softmax lives in the loss.
    seed:
        Seed (or generator) for weight initialization.
    """

    def __init__(
        self,
        layer_sizes: Sequence[int],
        hidden_activation: str = "relu",
        seed: int | np.random.Generator | None = None,
    ) -> None:
        sizes = [int(s) for s in layer_sizes]
        if len(sizes) < 2:
            raise ConfigurationError(
                f"layer_sizes needs input and output widths, got {sizes}"
            )
        if any(s <= 0 for s in sizes):
            raise ConfigurationError(f"layer widths must be positive: {sizes}")
        rng = check_random_state(seed)
        layers = []
        for i, (n_in, n_out) in enumerate(zip(sizes, sizes[1:])):
            last = i == len(sizes) - 2
            layers.append(
                Dense(
                    n_in,
                    n_out,
                    activation="identity" if last else hidden_activation,
                    initializer="glorot_uniform" if last else "he_normal",
                    rng=rng,
                )
            )
        self.layer_sizes = tuple(sizes)
        self.network = Sequential(layers)
        self._fitted = False

    @property
    def n_classes(self) -> int:
        return self.layer_sizes[-1]

    @property
    def n_parameters(self) -> int:
        """Trainable scalar count — the paper's "model size" metric."""
        return self.network.n_parameters

    def mark_fitted(self) -> None:
        """Flag the model as trained (called by the training loop)."""
        self._fitted = True

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(
                "MLPClassifier used before training; call train_classifier first"
            )

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Raw logits for a batch; available even before training."""
        return self.network.forward(as_2d_float(x), training=False)

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities (softmax over logits)."""
        self._require_fitted()
        return softmax(self.decision_function(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class labels."""
        self._require_fitted()
        return np.argmax(self.decision_function(x), axis=1)

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(x, y)``."""
        y = as_1d_int(y)
        return float(np.mean(self.predict(x) == y))

    def save(self, path: str | Path) -> None:
        """Serialize architecture + weights to an ``.npz`` file."""
        arrays = {f"param_{i}": p for i, p in enumerate(self.network.parameters())}
        np.savez(
            path,
            layer_sizes=np.asarray(self.layer_sizes, dtype=np.int64),
            fitted=np.asarray([int(self._fitted)]),
            **arrays,
        )

    @classmethod
    def load(cls, path: str | Path) -> "MLPClassifier":
        """Load a model previously written by :meth:`save`."""
        with np.load(path) as data:
            sizes = [int(s) for s in data["layer_sizes"]]
            model = cls(sizes)
            params = [
                data[f"param_{i}"] for i in range(len(model.network.parameters()))
            ]
            model.network.set_weights(params)
            if int(data["fitted"][0]):
                model.mark_fitted()
        return model
