"""State discriminators: the paper's design and both baselines.

- :class:`MLRDiscriminator` — the paper's contribution (Sec V): per-qubit
  banks of qubit/relaxation/excitation matched filters feeding small
  modular per-qubit neural networks.
- :class:`FNNBaseline` — Lienhard et al.'s feedforward network over raw
  ADC samples, with the output layer widened to 3^n states.
- :class:`HerqulesDiscriminator` — HERQULES (ISCA'23) extended to three
  levels: qubit + relaxation matched filters and a joint 3^n-way head.
- :mod:`repro.discriminators.calibration` — calibration-free leakage
  cluster detection (Sec V.A).
"""

from repro.discriminators import registry
from repro.discriminators.base import Discriminator
from repro.discriminators.calibration import (
    LeakageDetectionResult,
    detect_leakage_clusters,
)
from repro.discriminators.error_traces import tag_error_traces
from repro.discriminators.features import MatchedFilterFeatureExtractor
from repro.discriminators.fnn_baseline import FNNBaseline
from repro.discriminators.hmm import HMMDiscriminator
from repro.discriminators.herqules import HerqulesDiscriminator
from repro.discriminators.mlr import MLRDiscriminator

__all__ = [
    "Discriminator",
    "registry",
    "MatchedFilterFeatureExtractor",
    "tag_error_traces",
    "FNNBaseline",
    "HMMDiscriminator",
    "HerqulesDiscriminator",
    "MLRDiscriminator",
    "detect_leakage_clusters",
    "LeakageDetectionResult",
]
