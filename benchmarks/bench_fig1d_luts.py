"""Fig 1(d) bench: LUT utilization of the three designs on the xczu7ev.

Paper: FNN ~420% (does not fit), HERQULES ~28%, OURS ~7%.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.fig1d import run_fig1d


def test_fig1d_lut_utilization(benchmark, profile):
    result = run_once(benchmark, run_fig1d, profile)
    print("\n" + result.format_table())
    assert result.utilization["fnn"] == pytest.approx(4.20, abs=0.05)
    assert result.utilization["herqules"] == pytest.approx(0.28, abs=0.01)
    assert result.utilization["ours"] == pytest.approx(0.07, abs=0.005)
    assert result.fnn_over_ours == pytest.approx(60, rel=0.05)
