"""Qutrit (d-level) density-matrix simulation.

Built for the paper's Sec III.A study: the effect of leaked control qubits
on CNOT gates, run on IBM hardware in the paper and reproduced here on a
first-principles simulator with an explicit leakage-faulty CNOT channel.
"""

from repro.qudit.channels import (
    amplitude_damping_kraus,
    apply_kraus,
    dephasing_kraus,
    depolarizing_kraus,
    leaky_cnot_kraus,
)
from repro.qudit.circuit import QuditCircuit
from repro.qudit.density import DensityMatrix
from repro.qudit.gates import (
    cnot_embedded,
    cz_embedded,
    hadamard_embedded,
    x01,
    x12,
    x_embedded,
)
from repro.qudit.states import basis_ket, basis_rho, joint_ket
from repro.qudit.toffoli import (
    controlled_shift,
    qutrit_toffoli_circuit,
    toffoli_truth_table,
)

__all__ = [
    "DensityMatrix",
    "QuditCircuit",
    "basis_ket",
    "basis_rho",
    "joint_ket",
    "x01",
    "x12",
    "x_embedded",
    "hadamard_embedded",
    "cnot_embedded",
    "cz_embedded",
    "amplitude_damping_kraus",
    "dephasing_kraus",
    "depolarizing_kraus",
    "leaky_cnot_kraus",
    "apply_kraus",
    "controlled_shift",
    "qutrit_toffoli_circuit",
    "toffoli_truth_table",
]
