"""FPGA resource estimation for dense-network datapaths.

The paper synthesizes its networks with hls4ml + Vivado HLS and reports
utilization on the xczu7ev (Fig 1d, Fig 5a). We replace synthesis with an
analytic model whose LUT and FF coefficients are **calibrated to the
paper's three published design points**:

=============  ==========  ===============  ============
design         parameters  LUT utilization  published in
=============  ==========  ===============  ============
FNN            686,743     ~420%            Fig 1(d)
HERQULES        38,583     ~28%             Fig 1(d)
OURS             6,505     ~7%              Fig 1(d)
=============  ==========  ===============  ============

LUTs follow ``a * params + b * neurons + c`` (per-MAC logic, per-neuron
activation/control logic, fixed pipeline overhead), solved exactly through
the three points; FFs follow a two-coefficient law pinned to the paper's
"5x fewer FFs than HERQULES" ratio. BRAM counts weight storage in 36 Kb
blocks; DSPs assume a fixed fraction of MACs map to DSP48 slices (the rest
become LUT fabric, as hls4ml does for narrow weights). Widths other than
the 8-bit calibration width scale the logic linearly.

The point of the model is *relative* cost: ratios between architectures
reproduce the published ratios, and the ablation benches can query
hypothetical architectures on the same scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ConfigurationError
from repro.fpga.devices import FPGADevice
from repro.fpga.fixed_point import FixedPointFormat

__all__ = [
    "ResourceEstimate",
    "estimate_network_resources",
    "network_shape_stats",
]

# LUT law coefficients, solved through the three published design points.
_LUT_PER_PARAM = 1.3783
_LUT_PER_NEURON = 17.2
_LUT_BASE = 4066.0
# FF law: per-param and per-neuron coefficients pinned to the published
# 5x HERQULES/OURS flip-flop ratio.
_FF_PER_PARAM = 0.80
_FF_PER_NEURON = 10.16
# Fraction of MACs mapped onto DSP48 slices (narrow weights mostly land
# in fabric).
_DSP_FRACTION = 0.01
# Calibration word width: the published utilizations correspond to 8-bit
# weights; other widths scale the MAC logic linearly.
_CALIBRATION_BITS = 8
_BRAM_KBITS = 36.0


@dataclass(frozen=True)
class ResourceEstimate:
    """Estimated LUT/FF/BRAM/DSP usage of one design."""

    luts: float
    ffs: float
    brams: float
    dsps: float

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            self.luts + other.luts,
            self.ffs + other.ffs,
            self.brams + other.brams,
            self.dsps + other.dsps,
        )

    def scaled(self, factor: float) -> "ResourceEstimate":
        """Estimate for ``factor`` parallel replicas of this design."""
        if factor < 0:
            raise ConfigurationError("factor must be >= 0")
        return ResourceEstimate(
            self.luts * factor,
            self.ffs * factor,
            self.brams * factor,
            self.dsps * factor,
        )

    def utilization(self, device: FPGADevice) -> dict[str, float]:
        """Fractional utilization per resource class (1.0 = 100%)."""
        return {
            "lut": self.luts / device.luts,
            "ff": self.ffs / device.ffs,
            "bram": self.brams / device.brams,
            "dsp": self.dsps / device.dsps,
        }

    def fits(self, device: FPGADevice) -> bool:
        """True when every resource class fits on ``device``."""
        return all(frac <= 1.0 for frac in self.utilization(device).values())


def network_shape_stats(layer_sizes: Sequence[int]) -> tuple[int, int]:
    """(parameter count, non-input neuron count) of a dense network."""
    sizes = [int(s) for s in layer_sizes]
    if len(sizes) < 2 or any(s <= 0 for s in sizes):
        raise ConfigurationError(
            f"layer_sizes needs >= 2 positive entries, got {sizes}"
        )
    params = sum(a * b + b for a, b in zip(sizes, sizes[1:]))
    neurons = sum(sizes[1:])
    return params, neurons


def estimate_network_resources(
    layer_sizes: Sequence[int],
    precision: FixedPointFormat | None = None,
    n_replicas: int = 1,
) -> ResourceEstimate:
    """Estimate the FPGA cost of ``n_replicas`` copies of a dense network.

    Parameters
    ----------
    layer_sizes:
        Widths including input and output (e.g. ``(45, 22, 11, 3)``).
    precision:
        Datapath fixed-point format; default 8-bit (the calibration width).
    n_replicas:
        Parallel copies (the paper's design instantiates one network per
        qubit).
    """
    if n_replicas < 1:
        raise ConfigurationError(f"n_replicas must be >= 1, got {n_replicas}")
    precision = precision or FixedPointFormat(_CALIBRATION_BITS, 3)
    params, neurons = network_shape_stats(layer_sizes)
    width_scale = precision.total_bits / _CALIBRATION_BITS

    # Per-replica datapath logic scales with replicas; the fixed pipeline/
    # control overhead (_LUT_BASE) is shared across the replicated design
    # (one AXI/control shell drives all per-qubit networks).
    per_replica_luts = (
        _LUT_PER_PARAM * params * width_scale
        + _LUT_PER_NEURON * neurons * width_scale
    )
    luts = per_replica_luts * n_replicas + _LUT_BASE
    ffs = (
        (_FF_PER_PARAM * params + _FF_PER_NEURON * neurons)
        * width_scale
        * n_replicas
    )
    brams = n_replicas * math.ceil(
        params * precision.total_bits / (_BRAM_KBITS * 1024.0)
    )
    dsps = n_replicas * math.ceil(params * _DSP_FRACTION)
    return ResourceEstimate(luts, ffs, brams, dsps)
