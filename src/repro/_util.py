"""Small shared helpers: RNG handling and array validation."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import ShapeError

__all__ = [
    "check_random_state",
    "as_2d_float",
    "as_1d_int",
    "child_rng",
    "json_finite",
]


def json_finite(value):
    """Make ``value`` strict-JSON safe: non-finite floats become ``None``.

    Strict JSON has no NaN/Infinity, and several report paths compute
    percentiles or rates over possibly-empty windows. This recursively
    maps ``nan``/``±inf`` floats to ``None`` (dicts, lists and tuples are
    walked; everything else passes through), so every ``to_dict`` output
    survives ``json.dumps(..., allow_nan=False)``.
    """
    if isinstance(value, float):
        return value if np.isfinite(value) else None
    if isinstance(value, np.floating):
        return float(value) if np.isfinite(value) else None
    if isinstance(value, dict):
        return {key: json_finite(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_finite(item) for item in value]
    return value


def check_random_state(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts an existing generator (returned unchanged), an integer seed, or
    ``None`` for OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def child_rng(rng: np.random.Generator, *tags: int) -> np.random.Generator:
    """Derive an independent child generator from ``rng`` and integer tags.

    Used to give each sub-experiment its own stream so the order in which
    experiments run does not perturb each other's draws.
    """
    seeds = rng.integers(0, 2**63 - 1, size=max(1, len(tags)), dtype=np.int64)
    material = [int(s) for s in seeds] + [int(t) for t in tags]
    return np.random.default_rng(np.random.SeedSequence(material))


def as_2d_float(x: np.ndarray | Sequence, name: str = "X") -> np.ndarray:
    """Validate and return ``x`` as a 2-D float64 array (n_samples, n_features)."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim == 1:
        arr = arr[:, None]
    if arr.ndim != 2:
        raise ShapeError(f"{name} must be 2-D, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ShapeError(f"{name} must contain at least one sample")
    return arr


def as_1d_int(y: np.ndarray | Sequence, name: str = "y") -> np.ndarray:
    """Validate and return ``y`` as a 1-D int64 label array."""
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ShapeError(f"{name} must be 1-D, got shape {arr.shape}")
    if arr.shape[0] == 0:
        raise ShapeError(f"{name} must contain at least one label")
    if not np.issubdtype(arr.dtype, np.integer):
        rounded = np.rint(arr)
        if not np.allclose(arr, rounded):
            raise ShapeError(f"{name} must hold integer labels")
        arr = rounded
    return arr.astype(np.int64)
