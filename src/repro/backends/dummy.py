"""Dummy instrument backend: deterministic seeded random I/Q traffic.

The harness-test workhorse (qibolab's ``DummyInstrument`` idiom): traffic
that exercises the full serving datapath — chunking, batching, scoring
plumbing — without paying for physics. Traces are seeded Gaussian
complex64 I/Q noise; with ``labeled=True`` each shot also carries a
uniformly random ground-truth prepared level per qubit, so accuracy
bookkeeping stays well-defined (though chance-level, by construction).
Two acquisitions with the same seed are bit-identical.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro._util import check_random_state
from repro.backends.base import InstrumentBackend
from repro.exceptions import ConfigurationError
from repro.physics.device import ChipConfig
from repro.pipeline.source import ShotChunk

__all__ = ["DummyBackend"]


class DummyBackend(InstrumentBackend):
    """Emits seeded random I/Q traces shaped like the chip's feedline.

    Parameters
    ----------
    chip:
        Device whose geometry (trace length, qubit count, level count)
        the random traffic mimics.
    chunk_size:
        Shots per yielded chunk.
    labeled:
        Attach uniformly random ground-truth prepared levels; ``False``
        streams unlabeled traffic (the live-hardware shape).
    amplitude:
        Standard deviation of each I/Q quadrature.
    """

    name = "dummy"

    def __init__(
        self,
        chip: ChipConfig,
        chunk_size: int = 256,
        labeled: bool = True,
        amplitude: float = 1.0,
    ) -> None:
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if not amplitude > 0:
            raise ConfigurationError(
                f"amplitude must be positive, got {amplitude}"
            )
        self.chip = chip
        self.chunk_size = int(chunk_size)
        self.labeled = bool(labeled)
        self.amplitude = float(amplitude)

    def acquire(
        self, shots: int, seed: int | None = None
    ) -> Iterator[ShotChunk]:
        shots = self.resolve_shots(shots)
        rng = check_random_state(seed)
        chip = self.chip
        chunk_id = 0
        remaining = shots
        while remaining > 0:
            size = min(self.chunk_size, remaining)
            quadratures = rng.standard_normal((2, size, chip.trace_len))
            feedline = (
                self.amplitude * (quadratures[0] + 1j * quadratures[1])
            ).astype(np.complex64)
            levels = None
            if self.labeled:
                levels = rng.integers(
                    0, chip.n_levels, size=(size, chip.n_qubits)
                ).astype(np.int8)
            yield ShotChunk(
                feedline=feedline,
                prepared_levels=levels,
                chunk_id=chunk_id,
            )
            chunk_id += 1
            remaining -= size

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "labeled": self.labeled,
                "deterministic": True,
                "chunk_size": self.chunk_size,
                "amplitude": self.amplitude,
            }
        )
        return info
