"""Multi-tenant fleet serving over one shared shard-pool substrate.

:class:`ReadoutFleet` runs many :class:`~repro.serve.ReadoutService`
sessions — one per tenant, each with its own chips, traffic, and drift
response — over *one* :class:`~repro.pipeline.cluster.SharedShardPool`
and one shared calibration-registry root:

- **Admission**: at :meth:`warm`, each tenant leases its shard workers
  from the pool. A tenant demanding more workers than the pool has, or
  pushing aggregate leases past the pool's oversubscription capacity
  (or the spec's ``max_tenants``), is *rejected* — recorded in
  :class:`~repro.fleet.stats.FleetStats` with the reason, while the
  rest of the fleet warms normally.
- **Isolation**: every tenant's registry devices are namespaced with
  its name (``<tenant>.<device>``), so tenants sharing the registry
  root keep disjoint calibration keys — one tenant's versioned hot
  recalibration can never alter what another serves. Traffic seeds
  derive only from each tenant's own profile and feedline indices, so
  a tenant's assignment counts are bit-identical alone or in the fleet.
- **Scheduling**: :meth:`submit` queues run requests;
  :meth:`drain` dispatches them through a
  :class:`~repro.fleet.scheduler.FairShareScheduler` (weighted by SLO
  priority, bounded by min/max share, starvation-free), gated by free
  pool capacity, at most one in-flight run per tenant. Recalibrations
  triggered by any tenant's drift alarm serialize on a fleet-wide gate
  so one tenant's drift storm cannot monopolize the pool.

::

    from repro.fleet import FleetSpec, ReadoutFleet

    with ReadoutFleet.open("fleet.json") as fleet:        # warms + admits
        for tenant in fleet.tenants:
            for _ in range(4):
                fleet.submit(tenant)
        fleet.drain()
    print(fleet.stats.format_table())
"""

from __future__ import annotations

import dataclasses
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from pathlib import Path
from typing import TYPE_CHECKING

from repro.analysis.lockgraph import trace_lock
from repro.config import Profile
from repro.exceptions import ConfigurationError
from repro.fleet.scheduler import FairShareScheduler, RunRequest, TenantShare
from repro.fleet.spec import FleetSpec
from repro.fleet.stats import FleetStats, TenantRunRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.cluster import SharedShardPool, ShardPoolLease
    from repro.serve.service import ReadoutService

__all__ = ["ReadoutFleet"]


class ReadoutFleet:
    """Many warm tenant sessions multiplexed over one shard substrate.

    Parameters
    ----------
    spec:
        The declarative fleet configuration.
    profile:
        Optional ready :class:`~repro.config.Profile` that wins over
        every tenant's ``calibration.profile`` (ad-hoc sizings; each
        tenant's spec seed override still applies).

    Lifecycle: :meth:`warm` (idempotent; implicit on ``submit``/
    ``drain`` and on ``__enter__``) builds the shared pool and registry,
    admits tenants, and warms each admitted session through its lease;
    :meth:`submit` queues run requests; :meth:`drain` serves them under
    fair sharing; :meth:`close` tears every session down and releases
    the pool. Reusable after ``close`` — the next warm re-admits.
    """

    def __init__(self, spec: FleetSpec, *, profile: Profile | None = None):
        if not isinstance(spec, FleetSpec):
            raise ConfigurationError(
                f"spec must be a FleetSpec, got {type(spec).__name__}"
            )
        self.spec = spec
        self.stats = FleetStats()
        self._profile_override = profile
        self._warmed = False
        self._pool: "SharedShardPool | None" = None
        self._tmp_registry: tempfile.TemporaryDirectory | None = None
        self._services: "dict[str, ReadoutService]" = {}
        self._leases: "dict[str, ShardPoolLease]" = {}
        self._demand: dict[str, int] = {}
        self._scheduler: FairShareScheduler | None = None
        # One fleet-wide gate: tenant recalibrations serialize on it so
        # a drift storm refits one tenant at a time through the pool.
        self._recal_gate = trace_lock("fleet.recal-gate")

    @classmethod
    def open(
        cls,
        spec: "FleetSpec | str | Path",
        *,
        profile: Profile | None = None,
        warm: bool = True,
    ) -> "ReadoutFleet":
        """Build a fleet from a spec object or JSON spec file path."""
        if isinstance(spec, (str, Path)):
            spec = FleetSpec.from_file(spec)
        fleet = cls(spec, profile=profile)
        if warm:
            fleet.warm()
        return fleet

    @property
    def registry_dir(self) -> str | None:
        """The shared calibration-registry root (set once warmed)."""
        if self._tmp_registry is not None:
            return self._tmp_registry.name
        return self.spec.pool.registry_dir

    @property
    def tenants(self) -> tuple[str, ...]:
        """Admitted tenant names, in admission order."""
        return tuple(self._services)

    def service(self, tenant: str) -> "ReadoutService":
        """The admitted tenant's warm serving session."""
        if tenant not in self._services:
            raise ConfigurationError(
                f"tenant {tenant!r} is not admitted "
                f"(admitted: {', '.join(self._services) or 'none'})"
            )
        return self._services[tenant]

    def _tenant_demand(self, name: str) -> int:
        """Shard workers the tenant's lease claims.

        Explicit ``cluster.workers`` is a hard requirement (rejected if
        the pool can never grant it); an unset one adapts to the pool —
        one worker per feedline, capped at the pool's worker count,
        exactly as a private runner would cap at the CPU count.
        """
        tenant = self.spec.tenants[name]
        workers = tenant.serve.cluster.workers
        if workers is not None:
            return int(workers)
        assert self._pool is not None
        return min(tenant.serve.cluster.feedlines, self._pool.workers)

    def warm(self) -> "ReadoutFleet":
        """Build the substrate, admit tenants, warm sessions. Idempotent."""
        if self._warmed:
            return self
        wall_start = time.perf_counter()
        try:
            self._warm_state()
        except BaseException:
            # A failed fleet warm-up must not leak the pool, partially
            # warmed sessions, or the fleet-private registry.
            self.close()
            raise
        self.stats.warm_seconds += time.perf_counter() - wall_start
        self._warmed = True
        return self

    def _warm_state(self) -> None:
        from repro.pipeline.cluster import SharedShardPool
        from repro.serve.service import ReadoutService

        pool_spec = self.spec.pool
        if pool_spec.registry_dir is None:
            # One fleet-private registry root: artifacts are the
            # hand-off between calibration and serving shards, and the
            # shared root (namespaced per tenant) is what lets the fleet
            # prove isolation instead of assuming it.
            self._tmp_registry = tempfile.TemporaryDirectory(
                prefix="repro-fleet-"
            )
        self._pool = SharedShardPool(
            pool_spec.executor,
            pool_spec.workers,
            oversubscription=pool_spec.oversubscription,
        )
        self.stats.pool_executor = self._pool.executor
        self.stats.pool_workers = self._pool.workers
        registry_dir = self.registry_dir
        for name, tenant in self.spec.tenants.items():
            demand = self._tenant_demand(name)
            if (
                pool_spec.max_tenants is not None
                and len(self._services) >= pool_spec.max_tenants
            ):
                self.stats.reject(
                    name,
                    f"max_tenants={pool_spec.max_tenants} already admitted",
                    tenant.slo,
                )
                continue
            try:
                lease = self._pool.lease(name, demand)
            except ConfigurationError as exc:
                self.stats.reject(name, str(exc), tenant.slo)
                continue
            # Every tenant calibrates into the shared fleet registry;
            # its own registry_dir (if any) is superseded here.
            serve_spec = dataclasses.replace(
                tenant.serve,
                calibration=dataclasses.replace(
                    tenant.serve.calibration, registry_dir=registry_dir
                ),
            )
            service = ReadoutService(
                serve_spec,
                profile=self._profile_override,
                namespace=name,
                pool=lease,
                recal_gate=self._recal_gate,
            )
            # Register before warm(): a failed warm must tear the
            # session (and its lease) down with the rest of the fleet.
            self._services[name] = service
            self._leases[name] = lease
            self._demand[name] = demand
            service.warm()
            self.stats.admit(name, tenant.slo, workers_leased=demand)
            self.stats.cold_fits += service.stats.cold_fits
        if not self._services:
            reasons = "; ".join(
                f"{r['tenant']}: {r['reason']}"
                for r in self.stats.admission_rejections
            )
            raise ConfigurationError(
                f"no tenant was admitted to the fleet ({reasons})"
            )
        self._scheduler = FairShareScheduler(
            [
                TenantShare(
                    name=name,
                    weight=self.spec.tenants[name].slo.priority,
                    min_share=self.spec.tenants[name].slo.min_share,
                    max_share=self.spec.tenants[name].slo.max_share,
                )
                for name in self._services
            ]
        )

    # -- serving -------------------------------------------------------

    def submit(
        self,
        tenant: str,
        shots: int | None = None,
        seed: int | None = None,
    ) -> RunRequest:
        """Queue one run request for ``tenant``; serve with :meth:`drain`.

        ``shots``/``seed`` override the tenant spec's traffic section
        for this run, exactly like :meth:`ReadoutService.run`.
        """
        self.warm()
        if tenant not in self._services:
            stats = self.stats.tenants.get(tenant)
            if stats is not None and not stats.admitted:
                raise ConfigurationError(
                    f"tenant {tenant!r} was rejected at admission: "
                    f"{stats.rejection_reason}"
                )
            known = ", ".join(self._services)
            raise ConfigurationError(
                f"unknown tenant {tenant!r}; admitted tenants: {known}"
            )
        assert self._scheduler is not None
        request = self._scheduler.submit(
            tenant, shots=shots, seed=seed,
            submitted_at=time.perf_counter(),
        )
        self.stats.submitted += 1
        return request

    def pending(self, tenant: str | None = None) -> int:
        """Queued (not yet dispatched) requests, per tenant or total."""
        if self._scheduler is None:
            return 0
        return self._scheduler.pending(tenant)

    def _run_one(
        self, request: RunRequest, queue_wait: float
    ) -> TenantRunRecord:
        service = self._services[request.tenant]
        recals_before = service.stats.recalibrations
        report = service.run(shots=request.shots, seed=request.seed)
        run = service.stats.runs[-1]
        return self.stats.record_run(
            request.tenant,
            report,
            wall_seconds=run.wall_seconds,
            queue_wait_seconds=queue_wait,
            recalibrated=service.stats.recalibrations > recals_before,
        )

    def drain(self, max_runs: int | None = None) -> list[TenantRunRecord]:
        """Serve queued requests under fair sharing; returns the records.

        Dispatches while free pool capacity allows (in-flight lease
        demand never exceeds the pool's worker count; at most one
        in-flight run per tenant, so each tenant's runs stay sequential
        and deterministic). ``max_runs`` bounds the dispatches of this
        call — remaining requests stay queued for a later drain, which
        is how an oversubscribed fleet throttles (but never starves —
        the scheduler's min-share floor and stride order see to it) its
        low-priority tenants.
        """
        self.warm()
        assert self._scheduler is not None and self._pool is not None
        budget = max_runs
        records: list[TenantRunRecord] = []
        failures: list[BaseException] = []
        in_flight: dict[str, tuple] = {}
        drain_start = time.perf_counter()
        with ThreadPoolExecutor(
            max_workers=max(1, len(self._services)),
            thread_name_prefix="fleet-drain",
        ) as dispatcher:
            while True:
                while not failures and (budget is None or budget > 0):
                    free = self._pool.workers - sum(
                        self._demand[name] for name in in_flight
                    )
                    eligible = {
                        name
                        for name in self._services
                        if name not in in_flight
                        and self._demand[name] <= free
                    }
                    request = self._scheduler.next(eligible)
                    if request is None:
                        break
                    # Credit at dispatch with the planned shots so the
                    # fair-share order is wall-clock independent.
                    planned = (
                        request.shots
                        if request.shots is not None
                        else self.spec.tenants[
                            request.tenant
                        ].serve.traffic.shots
                    )
                    self._scheduler.observe(request.tenant, planned)
                    queue_wait = max(
                        0.0, time.perf_counter() - request.submitted_at
                    )
                    future = dispatcher.submit(
                        self._run_one, request, queue_wait
                    )
                    in_flight[request.tenant] = (future,)
                    self.stats.dispatched += 1
                    if budget is not None:
                        budget -= 1
                if not in_flight:
                    break
                done, _ = wait(
                    [f for (f,) in in_flight.values()],
                    return_when=FIRST_COMPLETED,
                )
                for name, (future,) in list(in_flight.items()):
                    if future in done:
                        del in_flight[name]
                        try:
                            records.append(future.result())
                        except BaseException as exc:  # repro: allow(broad-except) collected; first failure re-raised after drain
                            # Keep draining what is already in flight;
                            # re-raise once the pool is quiet.
                            failures.append(exc)
        self.stats.drain_wall_seconds += time.perf_counter() - drain_start
        if failures:
            raise failures[0]
        return records

    # -- teardown ------------------------------------------------------

    def close(self) -> None:
        """Tear every session down and release the shared substrate.

        Idempotent; cumulative :attr:`stats` survive, and the next
        :meth:`warm` re-admits.
        """
        for service in self._services.values():
            service.close()
        self._services.clear()
        for lease in self._leases.values():
            lease.close()
        self._leases.clear()
        self._demand.clear()
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._scheduler = None
        if self._tmp_registry is not None:
            self._tmp_registry.cleanup()
            self._tmp_registry = None
        self._warmed = False

    def __enter__(self) -> "ReadoutFleet":
        self.warm()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
