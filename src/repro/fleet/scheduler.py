"""Weighted fair-share scheduling of queued tenant run requests.

When aggregate tenant demand exceeds the shared pool's capacity, the
fleet queues run requests per tenant and dispatches them by *stride
scheduling* over served shots: each tenant carries a virtual time
``served_shots / priority``, and the pending tenant with the smallest
virtual time runs next, so a priority-4 tenant is dispatched ~4x as
often as a priority-1 tenant under sustained contention. Two bounds
shape the ordering:

- **min_share floor** — a tenant whose served fraction of fleet shots
  sits below its guaranteed ``min_share`` preempts the weighted order
  entirely (most-deficient first). This is what makes priorities safe:
  no weight can starve a tenant with a floor, and even without one the
  stride order itself is starvation-free (a waiting tenant's virtual
  time stands still while every running tenant's grows past it).
- **max_share cap** — a tenant above its cap is passed over while any
  uncapped tenant has work, but runs when it is alone with work
  (work-conserving: capacity is never idled to enforce a cap).

Ties break on declaration order, and each tenant's queue is FIFO, so
the dispatch sequence is fully deterministic for a given submit
sequence — the property the fleet's bit-identical isolation tests
stand on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.analysis.lockgraph import trace_lock
from repro.exceptions import ConfigurationError

__all__ = ["TenantShare", "RunRequest", "FairShareScheduler"]


@dataclass(frozen=True)
class TenantShare:
    """One tenant's scheduling contract (from its fleet SLO section)."""

    name: str
    weight: int = 1
    min_share: float = 0.0
    max_share: float = 1.0


@dataclass(frozen=True)
class RunRequest:
    """One queued run: a tenant and its run() arguments.

    ``sequence`` is the fleet-wide submission index; ``submitted_at``
    is the caller's clock at submit time (queue wait is measured from
    it at dispatch).
    """

    tenant: str
    shots: int | None = None
    seed: int | None = None
    sequence: int = 0
    submitted_at: float = 0.0


class FairShareScheduler:
    """Per-tenant FIFO queues drained in weighted fair-share order.

    Construction takes the fleet's :class:`TenantShare` contracts (a
    mapping or iterable; iteration order is the declaration order used
    for tie-breaks). ``submit`` enqueues, ``next`` pops the request to
    dispatch, ``observe`` credits served work — the fleet credits at
    dispatch time with the planned shot count, so the ordering never
    depends on wall-clock completion times.
    """

    def __init__(
        self, shares: "Mapping[str, TenantShare] | Iterable[TenantShare]"
    ) -> None:
        if isinstance(shares, Mapping):
            shares = list(shares.values())
        self._shares: dict[str, TenantShare] = {}
        for share in shares:
            if share.name in self._shares:
                raise ConfigurationError(
                    f"duplicate tenant share {share.name!r}"
                )
            if share.weight < 1:
                raise ConfigurationError(
                    f"tenant {share.name!r} weight must be >= 1, got "
                    f"{share.weight}"
                )
            self._shares[share.name] = share
        if not self._shares:
            raise ConfigurationError("scheduler needs at least one tenant")
        self._order = {name: i for i, name in enumerate(self._shares)}
        self._queues: dict[str, deque[RunRequest]] = {
            name: deque() for name in self._shares
        }
        self._served: dict[str, int] = {name: 0 for name in self._shares}
        self._sequence = 0
        self._lock = trace_lock("fleet.scheduler")

    @property
    def tenants(self) -> tuple[str, ...]:
        return tuple(self._shares)

    def submit(
        self,
        tenant: str,
        shots: int | None = None,
        seed: int | None = None,
        submitted_at: float = 0.0,
    ) -> RunRequest:
        """Enqueue one run request for ``tenant``; returns it."""
        with self._lock:
            if tenant not in self._shares:
                known = ", ".join(self._shares)
                raise ConfigurationError(
                    f"unknown tenant {tenant!r}; expected one of: {known}"
                )
            request = RunRequest(
                tenant=tenant,
                shots=shots,
                seed=seed,
                sequence=self._sequence,
                submitted_at=submitted_at,
            )
            self._sequence += 1
            self._queues[tenant].append(request)
            return request

    def pending(self, tenant: str | None = None) -> int:
        """Queued requests for one tenant, or across the fleet."""
        with self._lock:
            if tenant is not None:
                if tenant not in self._queues:
                    return 0
                return len(self._queues[tenant])
            return sum(len(q) for q in self._queues.values())

    def served(self) -> dict[str, int]:
        """Shots credited per tenant so far (dispatch-time accounting)."""
        with self._lock:
            return dict(self._served)

    def observe(self, tenant: str, shots: int) -> None:
        """Credit ``shots`` of served work to ``tenant``."""
        with self._lock:
            if tenant in self._served:
                self._served[tenant] += int(shots)

    def next(self, eligible: "set[str] | None" = None) -> RunRequest | None:
        """Pop the next request to dispatch under weighted fair share.

        ``eligible`` restricts the choice (the fleet passes tenants that
        are not already in flight and whose lease fits the free pool
        capacity); ``None`` considers every tenant. Returns ``None``
        when no eligible tenant has pending work.
        """
        with self._lock:
            candidates = [
                name
                for name in self._shares
                if self._queues[name]
                and (eligible is None or name in eligible)
            ]
            if not candidates:
                return None
            total = sum(self._served.values())

            def share_of(name: str) -> float:
                return self._served[name] / total if total else 0.0

            # Floor first: the most-deficient tenant below its
            # guaranteed share runs regardless of priorities.
            deficient = [
                name
                for name in candidates
                if self._shares[name].min_share > 0
                and share_of(name) < self._shares[name].min_share
            ]
            if deficient:
                pick = min(
                    deficient,
                    key=lambda n: (
                        share_of(n) - self._shares[n].min_share,
                        self._order[n],
                    ),
                )
            else:
                uncapped = [
                    name
                    for name in candidates
                    if share_of(name) < self._shares[name].max_share
                ]
                # Work-conserving: if everyone eligible is at cap, run
                # the fairest of them rather than idling the pool.
                pool = uncapped or candidates
                pick = min(
                    pool,
                    key=lambda n: (
                        self._served[n] / self._shares[n].weight,
                        self._order[n],
                    ),
                )
            return self._queues[pick].popleft()
