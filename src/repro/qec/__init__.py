"""Surface-code leakage dynamics and leakage speculation.

Implements the downstream-QEC side of the paper's evaluation:

- :mod:`repro.qec.surface_code` — rotated surface code layout (any odd
  distance) with the standard stabilizer adjacency.
- :mod:`repro.qec.leakage_sim` — Monte-Carlo leakage dynamics over QEC
  cycles: injection at entangling gates, transport between gate partners,
  seepage, ancilla reset, and the leakage-conditioned random-syndrome
  signature.
- :mod:`repro.qec.eraser` — the ERASER speculation policy (MICRO'23) and
  its multi-level-readout extension ERASER+M, wired to a readout error
  rate so the discriminator comparisons of Table VI can be reproduced.
- :mod:`repro.qec.lrc` — leakage reduction circuit model.
- :mod:`repro.qec.cycle_time` — surface-17 QEC cycle-time model
  (Sec VII.B's 17% cycle-time reduction).
"""

from repro.qec.cycle_time import SurfaceCodeTiming, cycle_time_ns, cycle_time_reduction
from repro.qec.eraser import (
    EraserConfig,
    LevelStreamSpeculator,
    SpeculationReport,
    run_eraser,
)
from repro.qec.leakage_sim import LeakageParams, LeakageSimulator
from repro.qec.lrc import LRCModel
from repro.qec.surface_code import RotatedSurfaceCode, Stabilizer

__all__ = [
    "RotatedSurfaceCode",
    "Stabilizer",
    "LeakageParams",
    "LeakageSimulator",
    "LRCModel",
    "EraserConfig",
    "LevelStreamSpeculator",
    "SpeculationReport",
    "run_eraser",
    "SurfaceCodeTiming",
    "cycle_time_ns",
    "cycle_time_reduction",
]
