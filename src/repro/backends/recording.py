"""Recording and replay backends: production traffic capture.

:class:`RecordingBackend` tees any inner backend's chunks into a
versioned on-disk corpus (see :mod:`repro.backends.corpus`) while the
serving session consumes them unchanged — the serving analogue of
production traffic capture. :class:`ReplayBackend` serves such a corpus
back bit-deterministically, refusing (by chip SHA) to replay traces onto
a different device than they were recorded from.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from repro.backends.base import InstrumentBackend
from repro.backends.corpus import CorpusWriter, RecordedCorpus, load_corpus
from repro.exceptions import ConfigurationError
from repro.physics.device import ChipConfig
from repro.pipeline.source import ShotChunk

__all__ = ["RecordingBackend", "ReplayBackend"]


class RecordingBackend(InstrumentBackend):
    """Tees an inner backend's acquisitions into an on-disk corpus.

    Every chunk is written (with its checksum) as it streams; the
    manifest is checkpointed after each completed acquisition and
    finalized on :meth:`close`. The recorded seed is the first
    acquisition's — replay of a multi-acquisition session replays the
    concatenated stream.
    """

    name = "record"

    def __init__(self, inner: InstrumentBackend, path: str | Path) -> None:
        self.inner = inner
        self.path = Path(path)
        self._writer: CorpusWriter | None = None

    @property
    def chip(self) -> ChipConfig | None:  # type: ignore[override]
        return self.inner.chip

    def open(self) -> "RecordingBackend":
        if self._writer is None:
            self.inner.open()
            self._writer = CorpusWriter(
                self.path,
                self.inner.chip,
                source=self.inner.describe(),
            )
        return self

    def acquire(
        self, shots: int, seed: int | None = None
    ) -> Iterator[ShotChunk]:
        writer = self._writer
        if writer is None:
            raise ConfigurationError(
                "RecordingBackend must be opened before acquire()"
            )
        if writer.n_chunks == 0:
            writer.seed = seed
        for chunk in self.inner.acquire(shots, seed=seed):
            writer.append(chunk)
            yield chunk
        writer.checkpoint()

    def resolve_shots(self, shots: int) -> int:
        return self.inner.resolve_shots(shots)

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None
        self.inner.close()

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "record_path": str(self.path),
                "source": self.inner.describe(),
            }
        )
        return info


class ReplayBackend(InstrumentBackend):
    """Serves a recorded corpus back, bit-deterministically.

    ``acquire`` ignores both its arguments: the stream is fixed — the
    recorded chunks, in recorded order, as read-only views.
    :meth:`resolve_shots` reports the corpus size so callers size their
    run bookkeeping from the data, not the request.

    Parameters
    ----------
    path:
        Corpus directory (validated at :meth:`open`).
    chip:
        The serving chip. When given, the corpus's chip SHA must match
        it exactly (:meth:`RecordedCorpus.require_chip`); ``None``
        adopts the recorded chip as :attr:`chip`.
    """

    name = "replay"

    def __init__(
        self, path: str | Path, chip: ChipConfig | None = None
    ) -> None:
        self.path = Path(path)
        self.chip = chip
        self._corpus: RecordedCorpus | None = None

    @classmethod
    def from_corpus(
        cls, corpus: RecordedCorpus, chip: ChipConfig | None = None
    ) -> "ReplayBackend":
        """Wrap an already-loaded (already-verified) corpus."""
        backend = cls(corpus.path, chip=chip)
        backend._adopt(corpus)
        return backend

    def _adopt(self, corpus: RecordedCorpus) -> None:
        if self.chip is not None:
            corpus.require_chip(self.chip)
        else:
            self.chip = corpus.chip
        self._corpus = corpus

    @property
    def corpus(self) -> RecordedCorpus:
        if self._corpus is None:
            raise ConfigurationError(
                "ReplayBackend must be opened before use"
            )
        return self._corpus

    def open(self) -> "ReplayBackend":
        if self._corpus is None:
            self._adopt(load_corpus(self.path))
        return self

    def close(self) -> None:
        self._corpus = None

    def acquire(
        self, shots: int, seed: int | None = None
    ) -> Iterator[ShotChunk]:
        del shots, seed  # the recorded stream is already fixed
        return self.corpus.chunks()

    def resolve_shots(self, shots: int) -> int:
        del shots
        return self.corpus.n_shots

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "deterministic": True,
                "corpus": self.corpus.summary()
                if self._corpus is not None
                else {"path": str(self.path)},
            }
        )
        return info
