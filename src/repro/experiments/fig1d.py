"""Fig 1(d) — LUT utilization of HERQULES, the FNN, and the paper's design.

Paper values on the xczu7ev: FNN ~420% (does not fit), HERQULES ~28%,
OURS ~7% — a 60x reduction vs the FNN and 4x vs HERQULES.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.experiments.common import (
    FNN_ARCHITECTURE,
    HERQULES_ARCHITECTURE,
    OURS_ARCHITECTURE,
    OURS_REPLICAS,
)
from repro.experiments.report import format_rows
from repro.fpga import XCZU7EV, estimate_network_resources

__all__ = ["Fig1dResult", "run_fig1d"]

PAPER_LUT_UTILIZATION = {"herqules": 0.28, "fnn": 4.20, "ours": 0.07}


@dataclass(frozen=True)
class Fig1dResult(ExperimentResult):
    """LUT utilization fraction per design (1.0 = full device)."""

    utilization: dict

    def _measured(self) -> dict:
        return dict(self.utilization)

    def _paper_values(self) -> dict:
        return PAPER_LUT_UTILIZATION

    @property
    def fnn_over_ours(self) -> float:
        return self.utilization["fnn"] / self.utilization["ours"]

    @property
    def herqules_over_ours(self) -> float:
        return self.utilization["herqules"] / self.utilization["ours"]

    def format_table(self) -> str:
        table = format_rows(
            ("Design", "LUT util", "Paper"),
            [
                (d, round(u, 4), PAPER_LUT_UTILIZATION[d])
                for d, u in self.utilization.items()
            ],
            title="Fig 1(d): LUT utilization on xczu7ev",
        )
        return (
            f"{table}\n"
            f"FNN/OURS = {self.fnn_over_ours:.1f}x (paper ~60x), "
            f"HERQULES/OURS = {self.herqules_over_ours:.1f}x (paper ~4x)"
        )


@experiment("fig1d", tags=("fpga",), paper_ref="Fig. 1(d)")
def run_fig1d(profile: Profile = QUICK) -> Fig1dResult:
    """Estimate LUT utilization of the three architectures."""
    estimates = {
        "herqules": estimate_network_resources(HERQULES_ARCHITECTURE),
        "fnn": estimate_network_resources(FNN_ARCHITECTURE),
        "ours": estimate_network_resources(
            OURS_ARCHITECTURE, n_replicas=OURS_REPLICAS
        ),
    }
    utilization = {
        name: est.utilization(XCZU7EV)["lut"] for name, est in estimates.items()
    }
    return Fig1dResult(utilization=utilization)
