"""Shim for environments without the ``wheel`` package.

``pip install -e .`` needs to build a PEP 660 wheel, which requires the
``wheel`` distribution; on offline boxes without it, ``python setup.py
develop`` provides the equivalent editable install. All metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
