"""Common interface for multi-level readout discriminators."""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.data.basis import state_to_digits
from repro.data.dataset import ReadoutCorpus
from repro.exceptions import NotFittedError

__all__ = ["Discriminator"]


class Discriminator(ABC):
    """A trainable map from readout traces to joint multi-level states.

    Implementations train on a :class:`ReadoutCorpus` (restricted to given
    indices so train/test splits never leak) and predict joint basis-state
    labels; per-qubit levels derive from the joint label.
    """

    name: str = "discriminator"

    def __init__(self) -> None:
        self._fitted = False

    @property
    @abstractmethod
    def n_parameters(self) -> int:
        """Trainable parameter count — the paper's model-size metric.

        Counts NN weights and biases only: matched-filter kernels are
        calibration data, not trained parameters, matching how the paper
        reports model sizes.
        """

    @abstractmethod
    def fit(self, corpus: ReadoutCorpus, indices: np.ndarray) -> "Discriminator":
        """Train on the corpus rows selected by ``indices``."""

    @abstractmethod
    def predict(
        self, corpus: ReadoutCorpus, indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Joint state labels for the selected corpus rows."""

    def predict_qubit_levels(
        self, corpus: ReadoutCorpus, indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-qubit levels (n_shots, n_qubits) from the joint prediction."""
        joint = self.predict(corpus, indices)
        return state_to_digits(joint, corpus.n_qubits, corpus.n_levels)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted")

    @staticmethod
    def _resolve_indices(
        corpus: ReadoutCorpus, indices: np.ndarray | None
    ) -> np.ndarray:
        if indices is None:
            return np.arange(corpus.n_traces)
        return np.asarray(indices)
