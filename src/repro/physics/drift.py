"""Device parameter drift across a serving session.

Calibrated readout does not stay calibrated: readout-resonator
frequencies wander (flux noise, TLS defects pulling the resonator),
qubit T1 degrades and recovers on minutes-to-hours timescales, and drive
chains lose contrast. Multiplexed dispersive readout is especially
sensitive to per-channel frequency drift — the matched-filter kernels
and demodulation tones are calibrated at fixed intermediate frequencies,
so a detuned channel smears its baseband trajectory across the whole
readout window (Chen et al., *Multiplexed dispersive readout*; Kundu et
al., *Multiplexed readout of four qubits in 3D cQED*).

:class:`DriftModel` is the injection side of that story: a deterministic
parameter evolution that maps a calibrated :class:`~repro.physics.device
.ChipConfig` plus an elapsed-session clock (measured in shots, the only
clock a discrimination pipeline natively has) to the device as it looks
*now*. The streaming sources use it to emit traffic from a time-varying
device; the serving layer uses it to snapshot the drifted device when it
recalibrates.

Drift rates are expressed per **kilo-shot** so the numbers stay human:
``if_detune_ghz_per_kshot=5e-4`` means every 1000 shots of session
traffic pull each readout tone 0.5 MHz off its calibrated intermediate
frequency — enough to rotate the baseband by ``2*pi*0.5e6*1e-6 ~ pi``
radians across a 1 us window after a couple thousand shots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.exceptions import ConfigurationError
from repro.physics.device import ChipConfig

__all__ = ["DriftModel", "DEMO_DRIFT"]


@dataclass(frozen=True)
class DriftModel:
    """Deterministic per-kshot evolution of a chip's readout parameters.

    Parameters
    ----------
    if_detune_ghz_per_kshot:
        Linear readout-resonator (intermediate-frequency) detuning added
        to every qubit's ``if_frequency_ghz`` per 1000 shots of session
        traffic. May be negative; the drifted IF is clamped just inside
        the ADC Nyquist band so a long session degrades instead of
        becoming an unphysical device.
    t1_decay_per_kshot:
        Exponential decay rate of T1 (and the |2> lifetime) per kshot:
        after ``s`` shots, ``t1 *= exp(-rate * s / 1000)``.
    amplitude_decay_per_kshot:
        Exponential decay rate of the per-qubit drive amplitude per
        kshot — the assignment-contrast (SNR) decay channel.
    """

    if_detune_ghz_per_kshot: float = 0.0
    t1_decay_per_kshot: float = 0.0
    amplitude_decay_per_kshot: float = 0.0

    def __post_init__(self) -> None:
        problems = []
        if not isinstance(self.if_detune_ghz_per_kshot, (int, float)) or (
            isinstance(self.if_detune_ghz_per_kshot, bool)
        ):
            problems.append(
                "if_detune_ghz_per_kshot must be a number, got "
                f"{self.if_detune_ghz_per_kshot!r}"
            )
        for field_name in ("t1_decay_per_kshot", "amplitude_decay_per_kshot"):
            value = getattr(self, field_name)
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or value < 0
            ):
                problems.append(
                    f"{field_name} must be a number >= 0, got {value!r}"
                )
        if problems:
            raise ConfigurationError(
                "invalid DriftModel: " + "; ".join(problems)
            )

    @property
    def is_null(self) -> bool:
        """Whether this model leaves every parameter untouched."""
        return (
            self.if_detune_ghz_per_kshot == 0.0
            and self.t1_decay_per_kshot == 0.0
            and self.amplitude_decay_per_kshot == 0.0
        )

    def chip_at(self, chip: ChipConfig, shots_elapsed: int) -> ChipConfig:
        """The device as it looks after ``shots_elapsed`` session shots.

        Deterministic and memoryless: the same (chip, clock) pair always
        yields the same drifted device, so serving shards and
        recalibration snapshots agree on what "now" means without
        sharing state.
        """
        if shots_elapsed < 0:
            raise ConfigurationError(
                f"shots_elapsed must be >= 0, got {shots_elapsed}"
            )
        if self.is_null or shots_elapsed == 0:
            return chip
        kshots = shots_elapsed / 1000.0
        detune = self.if_detune_ghz_per_kshot * kshots
        t1_scale = math.exp(-self.t1_decay_per_kshot * kshots)
        amp_scale = math.exp(-self.amplitude_decay_per_kshot * kshots)
        # The drifted IF must stay a representable tone: clamp just
        # inside the Nyquist band rather than letting ChipConfig reject
        # the device mid-session.
        nyquist = chip.adc.sample_rate_ghz / 2.0
        limit = nyquist * (1.0 - 1e-6)
        qubits = tuple(
            replace(
                q,
                if_frequency_ghz=max(
                    -limit, min(limit, q.if_frequency_ghz + detune)
                ),
                t1_ns=q.t1_ns * t1_scale,
                t1_2_ns=q.t1_2_ns * t1_scale,
                amplitude=q.amplitude * amp_scale,
            )
            for q in chip.qubits
        )
        return replace(chip, qubits=qubits)

    def to_dict(self) -> dict:
        """Plain-value dictionary (spec serialization)."""
        return {
            "if_detune_ghz_per_kshot": self.if_detune_ghz_per_kshot,
            "t1_decay_per_kshot": self.t1_decay_per_kshot,
            "amplitude_decay_per_kshot": self.amplitude_decay_per_kshot,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DriftModel":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


#: Canned drift used by the ``repro serve --drift-demo`` flag and the
#: drift-recalibration benchmark: strong enough that accuracy visibly
#: degrades within a few hundred shots, mild enough that a single
#: recalibration fully recovers it.
DEMO_DRIFT = DriftModel(
    if_detune_ghz_per_kshot=5e-4,
    t1_decay_per_kshot=0.05,
    amplitude_decay_per_kshot=0.02,
)
