"""Socket instrument backend: traffic framed in from outside the process.

The wire format is length-prefixed frames over any stream socket (a
``socketpair``, a ``AF_UNIX`` path, a loopback TCP pair): each frame is a
4-byte big-endian length followed by a UTF-8 JSON header, optionally
followed by raw array payload bytes whose sizes the header declares.
Three frame types::

    {"type": "hello", "format_version": 1, "chip": {...}, "chip_sha": s,
     "n_shots": N, "labeled": true, "trace_len": L, "n_qubits": Q,
     "feedline_dtype": "complex64", "levels_dtype": "int8"}
    {"type": "chunk", "chunk_id": i, "n_shots": n,
     "feedline_nbytes": F, "levels_nbytes": V}   # then F + V raw bytes
    {"type": "end", "n_chunks": K}

:func:`serve_corpus_over_socket` is the counterpart producer: it frames
a recorded corpus down a socket, which is both the loopback test harness
and the reference implementation for an external digitizer process.
Arrays received by :class:`SocketBackend` are built with
``np.frombuffer`` over immutable bytes, so replayed chunks are naturally
read-only.
"""

from __future__ import annotations

import json
import socket as socketlib
import struct
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.backends.base import InstrumentBackend
from repro.backends.corpus import (
    CORPUS_FORMAT_VERSION,
    RecordedCorpus,
    chip_sha,
    load_corpus,
)
from repro.exceptions import ConfigurationError, DataError
from repro.physics.device import ChipConfig
from repro.pipeline.source import ShotChunk

__all__ = ["SocketBackend", "serve_corpus_over_socket"]

_LEN = struct.Struct(">I")

#: Refuse absurd frame headers instead of allocating unbounded buffers.
_MAX_HEADER_BYTES = 1 << 20


def _send_frame(sock: socketlib.socket, header: dict, *payloads: bytes) -> None:
    body = json.dumps(header).encode()
    sock.sendall(_LEN.pack(len(body)) + body)
    for payload in payloads:
        if payload:
            sock.sendall(payload)


def _recv_exact(sock: socketlib.socket, n: int) -> bytes:
    parts: list[bytes] = []
    remaining = n
    while remaining > 0:
        block = sock.recv(min(remaining, 1 << 20))
        if not block:
            raise DataError(
                f"socket stream ended mid-frame ({remaining} of {n} bytes "
                "missing)"
            )
        parts.append(block)
        remaining -= len(block)
    return b"".join(parts)


def _recv_header(sock: socketlib.socket) -> dict:
    length = _LEN.unpack(_recv_exact(sock, _LEN.size))[0]
    if length > _MAX_HEADER_BYTES:
        raise DataError(
            f"socket frame header of {length} bytes exceeds the "
            f"{_MAX_HEADER_BYTES}-byte bound"
        )
    try:
        header = json.loads(_recv_exact(sock, length).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise DataError(f"socket frame header is not JSON: {exc}") from exc
    if not isinstance(header, dict) or "type" not in header:
        raise DataError(f"socket frame header malformed: {header!r}")
    return header


def serve_corpus_over_socket(
    corpus: "RecordedCorpus | str | Path",
    sock: "socketlib.socket | str | Path",
) -> int:
    """Frame a recorded corpus down a socket; returns chunks sent.

    ``corpus`` may be a loaded :class:`RecordedCorpus` or a corpus
    directory path. ``sock`` is either an already-connected stream
    socket (e.g. one end of ``socket.socketpair()``) or an ``AF_UNIX``
    path to bind, listen on, and serve exactly one connection from.
    """
    if isinstance(corpus, (str, Path)):
        corpus = load_corpus(corpus)
    own_listener = None
    conn = sock
    if isinstance(sock, (str, Path)):
        own_listener = socketlib.socket(socketlib.AF_UNIX)
        own_listener.bind(str(sock))
        own_listener.listen(1)
        conn, _ = own_listener.accept()
    try:
        _send_frame(
            conn,
            {
                "type": "hello",
                "format_version": CORPUS_FORMAT_VERSION,
                "chip": corpus.chip.to_dict(),
                "chip_sha": corpus.chip_sha,
                "n_shots": corpus.n_shots,
                "labeled": corpus.labeled,
                "trace_len": corpus.trace_len,
                "n_qubits": corpus.chip.n_qubits,
                "feedline_dtype": corpus.feedline.dtype.str,
                "levels_dtype": (
                    None
                    if corpus.prepared_levels is None
                    else corpus.prepared_levels.dtype.str
                ),
            },
        )
        n_chunks = 0
        for chunk in corpus.chunks():
            feed = np.ascontiguousarray(chunk.feedline)
            levels = (
                None
                if chunk.prepared_levels is None
                else np.ascontiguousarray(chunk.prepared_levels)
            )
            _send_frame(
                conn,
                {
                    "type": "chunk",
                    "chunk_id": chunk.chunk_id,
                    "n_shots": chunk.n_shots,
                    "feedline_nbytes": feed.nbytes,
                    "levels_nbytes": 0 if levels is None else levels.nbytes,
                },
                feed.tobytes(),
                b"" if levels is None else levels.tobytes(),
            )
            n_chunks += 1
        _send_frame(conn, {"type": "end", "n_chunks": n_chunks})
        return n_chunks
    finally:
        if own_listener is not None:
            conn.close()
            own_listener.close()


class SocketBackend(InstrumentBackend):
    """Receives one framed chunk stream from a local socket peer.

    Parameters
    ----------
    address:
        ``AF_UNIX`` socket path to connect to at :meth:`open`; mutually
        exclusive with ``sock``.
    chip:
        Expected serving chip. When given, the peer's ``hello`` chip SHA
        must match exactly; ``None`` adopts the chip the peer declares.
    sock:
        An already-connected socket (e.g. the other end of a
        ``socketpair``) to read from instead of connecting.
    timeout:
        Per-receive timeout in seconds applied to the socket, so a dead
        peer fails the run instead of hanging it.

    The stream is single-use: one ``hello``, the chunk frames, one
    ``end``. A second acquisition on the same connection raises.
    """

    name = "socket"

    def __init__(
        self,
        address: "str | Path | None" = None,
        chip: ChipConfig | None = None,
        *,
        sock: "socketlib.socket | None" = None,
        timeout: float = 30.0,
    ) -> None:
        if (address is None) == (sock is None):
            raise ConfigurationError(
                "exactly one of address and sock must be given"
            )
        self.address = None if address is None else str(address)
        self.chip = chip
        self.timeout = float(timeout)
        self._sock = sock
        self._own_sock = sock is None
        self._hello: dict | None = None
        self._exhausted = False

    def open(self) -> "SocketBackend":
        if self._sock is None:
            sock = socketlib.socket(socketlib.AF_UNIX)
            sock.settimeout(self.timeout)
            try:
                sock.connect(self.address)
            except OSError as exc:
                sock.close()
                raise ConfigurationError(
                    f"cannot connect to socket backend at {self.address}: "
                    f"{exc}"
                ) from exc
            self._sock = sock
        else:
            self._sock.settimeout(self.timeout)
        if self._hello is None:
            hello = _recv_header(self._sock)
            if hello.get("type") != "hello":
                raise DataError(
                    f"socket peer opened with {hello.get('type')!r}, "
                    "expected 'hello'"
                )
            if hello.get("format_version") != CORPUS_FORMAT_VERSION:
                raise DataError(
                    f"socket peer speaks format_version "
                    f"{hello.get('format_version')!r}, expected "
                    f"{CORPUS_FORMAT_VERSION}"
                )
            peer_chip = ChipConfig.from_dict(hello["chip"])
            if self.chip is not None:
                serving = chip_sha(self.chip)
                if hello["chip_sha"] != serving:
                    raise ConfigurationError(
                        f"socket peer streams chip {hello['chip_sha'][:12]}, "
                        f"the serving chip is {serving[:12]}; refusing to "
                        "discriminate another device's traces"
                    )
            else:
                self.chip = peer_chip
            self._hello = hello
        return self

    def close(self) -> None:
        if self._sock is not None and self._own_sock:
            self._sock.close()
        self._sock = None
        self._hello = None

    def _require_open(self) -> dict:
        if self._sock is None or self._hello is None:
            raise ConfigurationError(
                "SocketBackend must be opened before use"
            )
        return self._hello

    def resolve_shots(self, shots: int) -> int:
        del shots
        return int(self._require_open()["n_shots"])

    def acquire(
        self, shots: int, seed: int | None = None
    ) -> Iterator[ShotChunk]:
        del shots, seed  # the peer's stream is already fixed
        hello = self._require_open()
        if self._exhausted:
            raise DataError(
                "socket stream already consumed; the peer sends one "
                "chunk sequence per connection"
            )
        self._exhausted = True
        trace_len = int(hello["trace_len"])
        n_qubits = int(hello["n_qubits"])
        while True:
            header = _recv_header(self._sock)
            kind = header.get("type")
            if kind == "end":
                return
            if kind != "chunk":
                raise DataError(
                    f"unexpected socket frame type {kind!r} mid-stream"
                )
            n = int(header["n_shots"])
            feed_bytes = _recv_exact(
                self._sock, int(header["feedline_nbytes"])
            )
            feedline = np.frombuffer(
                feed_bytes, dtype=np.dtype(hello["feedline_dtype"])
            ).reshape(n, trace_len)
            levels = None
            levels_nbytes = int(header.get("levels_nbytes", 0))
            if levels_nbytes:
                levels = np.frombuffer(
                    _recv_exact(self._sock, levels_nbytes),
                    dtype=np.dtype(hello["levels_dtype"]),
                ).reshape(n, n_qubits)
            yield ShotChunk(
                feedline=feedline,
                prepared_levels=levels,
                chunk_id=int(header["chunk_id"]),
            )

    def describe(self) -> dict:
        info = super().describe()
        info.update(
            {
                "address": self.address,
                "external": True,
                "labeled": (
                    None
                    if self._hello is None
                    else bool(self._hello.get("labeled"))
                ),
            }
        )
        if self._hello is not None:
            info["peer_chip_sha"] = self._hello["chip_sha"]
            info["peer_shots"] = self._hello["n_shots"]
        return info
