"""One runner per paper table/figure.

Each ``run_*`` function takes a :class:`repro.config.Profile`, performs the
experiment at that scale, and returns a structured result object carrying
both the measured values and the paper's published values, so benches and
the CLI can print paper-vs-measured side by side.
"""

from repro.experiments.common import ReadoutBundle, get_readout_bundle, get_trained
from repro.experiments.fig1c import run_fig1c
from repro.experiments.fig1d import run_fig1d
from repro.experiments.fig3 import run_fig3
from repro.experiments.fig5a import run_fig5a
from repro.experiments.fig5b import run_fig5b
from repro.experiments.headline import run_headline
from repro.experiments.fnn_scaling import run_fnn_scaling
from repro.experiments.scaling import run_scaling
from repro.experiments.sec3 import run_sec3_cnot_leakage
from repro.experiments.sec7b import run_sec7b_cycle_time
from repro.experiments.sec7d import run_sec7d_power
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6

EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "table4": run_table4,
    "table5": run_table5,
    "table6": run_table6,
    "fig1c": run_fig1c,
    "fig1d": run_fig1d,
    "fig3": run_fig3,
    "fig5a": run_fig5a,
    "fig5b": run_fig5b,
    "sec3": run_sec3_cnot_leakage,
    "sec7b": run_sec7b_cycle_time,
    "sec7d": run_sec7d_power,
    "headline": run_headline,
    "scaling": run_scaling,
    "fnn_scaling": run_fnn_scaling,
}

__all__ = [
    "ReadoutBundle",
    "get_readout_bundle",
    "get_trained",
    "EXPERIMENTS",
    *(f"run_{name}" for name in ()),
    "run_table1",
    "run_table2",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_fig1c",
    "run_fig1d",
    "run_fig3",
    "run_fig5a",
    "run_fig5b",
    "run_sec3_cnot_leakage",
    "run_sec7b_cycle_time",
    "run_sec7d_power",
    "run_headline",
    "run_scaling",
    "run_fnn_scaling",
]
