"""Tests for demodulation, filtering, MTV, and matched filters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp import (
    MatchedFilterBank,
    apply_matched_filter,
    boxcar_decimate,
    demodulate,
    demodulate_all_qubits,
    fir_lowpass,
    matched_filter_kernel,
    mean_trace_value,
    moving_average,
    mtv_points,
)
from repro.exceptions import ConfigurationError, DataError, ShapeError


class TestDemod:
    def test_demodulation_recovers_constant_baseband(self):
        times = np.arange(128) * 2.0
        tone = 0.7 * np.exp(1j * 2 * np.pi * 0.15 * times)
        base = demodulate(tone, 0.15, times)
        np.testing.assert_allclose(base, 0.7, atol=1e-12)

    def test_neighbor_tone_averages_out_after_boxcar(self):
        times = np.arange(500) * 2.0
        neighbor = np.exp(1j * 2 * np.pi * 0.09 * times)
        base = boxcar_decimate(demodulate(neighbor, 0.18, times), 25)
        assert np.max(np.abs(base)) < 0.1

    def test_demodulate_all_qubits_shape(self, five_qubit_chip, rng):
        feed = rng.normal(size=(4, 500)) + 0j
        out = demodulate_all_qubits(feed, five_qubit_chip)
        assert out.shape == (5, 4, 500)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            demodulate(np.zeros(10, complex), 0.1, np.zeros(9))


class TestFilters:
    def test_boxcar_reduces_noise_variance(self, rng):
        noise = rng.normal(size=(50, 400))
        out = boxcar_decimate(noise, 10)
        assert out.shape == (50, 40)
        assert out.var() == pytest.approx(noise.var() / 10, rel=0.2)

    def test_boxcar_preserves_mean(self, rng):
        x = rng.normal(size=(3, 100)) + 5.0
        np.testing.assert_allclose(
            boxcar_decimate(x, 4).mean(axis=1), x[:, :100].mean(axis=1), atol=1e-9
        )

    def test_boxcar_drops_trailing_remainder(self):
        x = np.arange(10.0)
        out = boxcar_decimate(x, 3)
        assert out.shape == (3,)
        np.testing.assert_allclose(out, [1.0, 4.0, 7.0])

    def test_boxcar_factor_one_is_copy(self, rng):
        x = rng.normal(size=(2, 8))
        out = boxcar_decimate(x, 1)
        np.testing.assert_array_equal(out, x)
        assert out is not x

    def test_boxcar_rejects_factor_longer_than_trace(self):
        with pytest.raises(ShapeError):
            boxcar_decimate(np.zeros(5), 10)

    def test_moving_average_smooths(self, rng):
        x = rng.normal(size=500)
        assert moving_average(x, 25).var() < x.var()

    def test_fir_lowpass_attenuates_high_frequency(self):
        times = np.arange(512) * 2.0
        low = np.cos(2 * np.pi * 0.01 * times)
        high = np.cos(2 * np.pi * 0.2 * times)
        out_low = fir_lowpass(low, 0.05, 0.5)
        out_high = fir_lowpass(high, 0.05, 0.5)
        assert np.std(out_low[64:]) > 5 * np.std(out_high[64:])

    def test_fir_validates_taps(self):
        with pytest.raises(ConfigurationError):
            fir_lowpass(np.zeros(10), 0.05, 0.5, n_taps=4)


class TestMTV:
    def test_mtv_is_temporal_mean(self, rng):
        traces = rng.normal(size=(6, 30)) + 1j * rng.normal(size=(6, 30))
        np.testing.assert_allclose(mean_trace_value(traces), traces.mean(axis=1))

    def test_mtv_points_layout(self, rng):
        traces = rng.normal(size=(6, 30)) + 1j * rng.normal(size=(6, 30))
        pts = mtv_points(traces)
        assert pts.shape == (6, 2)
        np.testing.assert_allclose(pts[:, 0] + 1j * pts[:, 1], traces.mean(axis=1))


class TestMatchedFilter:
    def _clouds(self, rng, sep=1.0, n=400, t=60, noise=1.0):
        mean_a = np.zeros(t, complex)
        mean_b = np.full(t, sep, complex)
        noise_a = (rng.normal(size=(n, t)) + 1j * rng.normal(size=(n, t))) * noise
        noise_b = (rng.normal(size=(n, t)) + 1j * rng.normal(size=(n, t))) * noise
        return mean_a + noise_a, mean_b + noise_b

    def test_kernel_separates_classes(self, rng):
        a, b = self._clouds(rng)
        kernel = matched_filter_kernel(a, b)
        scores_a = apply_matched_filter(kernel, a)
        scores_b = apply_matched_filter(kernel, b)
        assert scores_b.mean() > scores_a.mean()
        snr = (scores_b.mean() - scores_a.mean()) / np.sqrt(
            0.5 * (scores_a.var() + scores_b.var())
        )
        assert snr > 5.0

    def test_matched_filter_beats_boxcar_on_shaped_signal(self, rng):
        # Signal difference concentrated in the first half of the trace:
        # matched weighting must out-SNR uniform averaging.
        t = 80
        template = np.concatenate([np.ones(40), np.zeros(40)]).astype(complex)
        n = 600
        a = (rng.normal(size=(n, t)) + 1j * rng.normal(size=(n, t)))
        b = template + (rng.normal(size=(n, t)) + 1j * rng.normal(size=(n, t)))
        kernel = matched_filter_kernel(a, b)
        boxcar = np.ones(t, dtype=complex)

        def snr(k):
            sa = apply_matched_filter(k, a)
            sb = apply_matched_filter(k, b)
            return (sb.mean() - sa.mean()) / np.sqrt(0.5 * (sa.var() + sb.var()))

        assert snr(kernel) > 1.2 * snr(boxcar)

    def test_paper_variance_difference_mode_is_finite(self, rng):
        a, b = self._clouds(rng)
        kernel = matched_filter_kernel(a, b, variance_mode="difference")
        assert np.all(np.isfinite(kernel))

    def test_unit_mode_returns_mean_difference(self, rng):
        a, b = self._clouds(rng, n=200)
        kernel = matched_filter_kernel(a, b, variance_mode="unit")
        np.testing.assert_allclose(
            kernel, b.mean(axis=0) - a.mean(axis=0), atol=1e-12
        )

    def test_too_few_traces_rejected(self, rng):
        a, b = self._clouds(rng, n=1)
        with pytest.raises(DataError):
            matched_filter_kernel(a, b)

    def test_invalid_mode_rejected(self, rng):
        a, b = self._clouds(rng, n=4)
        with pytest.raises(ConfigurationError):
            matched_filter_kernel(a, b, variance_mode="magic")

    def test_bank_transform_shape_and_truncation(self, rng):
        kernels = rng.normal(size=(4, 50)) + 1j * rng.normal(size=(4, 50))
        bank = MatchedFilterBank(("a", "b", "c", "d"), kernels)
        traces = rng.normal(size=(7, 50)) + 0j
        assert bank.transform(traces).shape == (7, 4)
        short = bank.truncated(20)
        assert short.trace_len == 20
        assert short.names == bank.names

    def test_bank_name_count_must_match(self, rng):
        with pytest.raises(ShapeError):
            MatchedFilterBank(("a",), rng.normal(size=(2, 10)) + 0j)

    @settings(max_examples=20, deadline=None)
    @given(scale=st.floats(min_value=0.1, max_value=10.0))
    def test_score_linearity_property(self, scale):
        rng = np.random.default_rng(0)
        kernel = rng.normal(size=16) + 1j * rng.normal(size=16)
        trace = rng.normal(size=16) + 1j * rng.normal(size=16)
        base = apply_matched_filter(kernel, trace)
        scaled = apply_matched_filter(kernel, scale * trace)
        assert scaled == pytest.approx(scale * base, rel=1e-9)
