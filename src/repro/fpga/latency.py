"""Pipeline latency model for the dense-NN datapath.

A fully parallel (reuse factor 1) dense network evaluates one layer per
clock, plus an input-registration stage and an output argmax stage:

    cycles = n_dense_layers * reuse_factor + 2

which reproduces the paper's published operating point — the 3-layer
design runs in 5 cycles (5 ns at 1 GHz, Sec VII.D). Larger reuse factors
serialize each layer's MACs over ``reuse_factor`` clocks, the standard
hls4ml area/latency trade.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ConfigurationError

__all__ = [
    "pipeline_latency_cycles",
    "pipeline_latency_ns",
    "readout_decision_latency_ns",
    "decision_budget_ns",
    "CycleBudgetCheck",
    "check_cycle_budget",
]

_OVERHEAD_CYCLES = 2


def pipeline_latency_cycles(
    layer_sizes: Sequence[int], reuse_factor: int = 1
) -> int:
    """Clock cycles from input-valid to class-valid."""
    sizes = [int(s) for s in layer_sizes]
    if len(sizes) < 2:
        raise ConfigurationError("layer_sizes needs input and output widths")
    if reuse_factor < 1:
        raise ConfigurationError(f"reuse_factor must be >= 1, got {reuse_factor}")
    n_dense = len(sizes) - 1
    return n_dense * reuse_factor + _OVERHEAD_CYCLES


def pipeline_latency_ns(
    layer_sizes: Sequence[int],
    clock_ghz: float = 1.0,
    reuse_factor: int = 1,
) -> float:
    """Latency in nanoseconds at a given clock."""
    if clock_ghz <= 0:
        raise ConfigurationError(f"clock_ghz must be positive, got {clock_ghz}")
    return pipeline_latency_cycles(layer_sizes, reuse_factor) / clock_ghz


def readout_decision_latency_ns(
    integration_ns: float,
    layer_sizes: Sequence[int],
    clock_ghz: float = 1.0,
    reuse_factor: int = 1,
    filter_flush_cycles: int = 3,
) -> float:
    """Total time from probe-tone start to state decision.

    Matched filters stream alongside the ADC, so they add only a small
    pipeline flush after the last sample; the NN latency follows.
    """
    if integration_ns <= 0:
        raise ConfigurationError("integration_ns must be positive")
    return integration_ns + decision_budget_ns(
        layer_sizes, clock_ghz, reuse_factor, filter_flush_cycles
    )


def decision_budget_ns(
    layer_sizes: Sequence[int],
    clock_ghz: float = 1.0,
    reuse_factor: int = 1,
    filter_flush_cycles: int = 3,
) -> float:
    """Post-integration compute budget per shot (ns).

    This is the part of :func:`readout_decision_latency_ns` the classifier
    is responsible for — matched-filter flush plus NN pipeline — i.e. the
    per-shot latency the hardware datapath achieves and against which a
    software runtime's measured stage latency is scored.
    """
    if filter_flush_cycles < 0:
        raise ConfigurationError("filter_flush_cycles must be >= 0")
    if clock_ghz <= 0:
        raise ConfigurationError(f"clock_ghz must be positive, got {clock_ghz}")
    return filter_flush_cycles / clock_ghz + pipeline_latency_ns(
        layer_sizes, clock_ghz, reuse_factor
    )


@dataclass(frozen=True)
class CycleBudgetCheck:
    """Measured per-shot decision latency scored against the FPGA budget.

    Attributes
    ----------
    budget_ns:
        Hardware decision budget from :func:`decision_budget_ns`.
    measured_ns:
        Measured per-shot compute latency of the runtime under test.
    """

    budget_ns: float
    measured_ns: float

    @property
    def within_budget(self) -> bool:
        return self.measured_ns <= self.budget_ns

    @property
    def slowdown(self) -> float:
        """How many times slower than the FPGA datapath the runtime is."""
        return self.measured_ns / self.budget_ns

    def to_dict(self) -> dict:
        """JSON form shared by the pipeline and cluster reports."""
        return {
            "budget_ns": self.budget_ns,
            "measured_ns_per_shot": self.measured_ns,
            "slowdown_vs_fpga": self.slowdown,
            "within_budget": self.within_budget,
        }


def check_cycle_budget(
    measured_ns_per_shot: float,
    layer_sizes: Sequence[int],
    clock_ghz: float = 1.0,
    reuse_factor: int = 1,
    filter_flush_cycles: int = 3,
) -> CycleBudgetCheck:
    """Score a measured per-shot latency against the hardware cycle budget."""
    if measured_ns_per_shot < 0:
        raise ConfigurationError("measured_ns_per_shot must be >= 0")
    budget = decision_budget_ns(
        layer_sizes, clock_ghz, reuse_factor, filter_flush_cycles
    )
    return CycleBudgetCheck(budget_ns=budget, measured_ns=measured_ns_per_shot)
