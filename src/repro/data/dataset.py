"""Readout trace corpus: the container every discriminator trains on."""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.data.basis import marginal_labels
from repro.exceptions import DataError, ShapeError
from repro.physics.device import ChipConfig

__all__ = ["ReadoutCorpus"]


@dataclass(frozen=True)
class ReadoutCorpus:
    """A labeled set of multiplexed readout traces.

    Attributes
    ----------
    feedline:
        complex64 (n_traces, trace_len): digitized feedline IQ signal.
    labels:
        int64 (n_traces,): joint prepared-state index (base ``n_levels``,
        qubit 0 most significant). These are the *training* labels, exactly
        as a calibration run would assign them.
    prepared_levels, initial_levels, final_levels:
        int8 (n_traces, n_qubits): intended levels, actual t=0 levels after
        preparation errors, and end-of-window levels after jumps. The last
        two are simulator ground truth used for validation and for the
        error-trace studies, never by the discriminators themselves.
    chip:
        The device the corpus was generated on.
    """

    feedline: np.ndarray
    labels: np.ndarray
    prepared_levels: np.ndarray
    initial_levels: np.ndarray
    final_levels: np.ndarray
    chip: ChipConfig

    def __post_init__(self) -> None:
        n = self.feedline.shape[0]
        if self.feedline.ndim != 2:
            raise ShapeError(f"feedline must be 2-D, got {self.feedline.shape}")
        for name in ("labels", "prepared_levels", "initial_levels", "final_levels"):
            arr = getattr(self, name)
            if arr.shape[0] != n:
                raise ShapeError(
                    f"{name} has {arr.shape[0]} rows, feedline has {n}"
                )
        if self.prepared_levels.shape[1] != self.chip.n_qubits:
            raise ShapeError(
                "prepared_levels column count must equal chip.n_qubits"
            )

    @property
    def n_traces(self) -> int:
        return self.feedline.shape[0]

    @property
    def trace_len(self) -> int:
        return self.feedline.shape[1]

    @property
    def n_qubits(self) -> int:
        return self.chip.n_qubits

    @property
    def n_levels(self) -> int:
        return self.chip.n_levels

    def qubit_labels(self, qubit: int) -> np.ndarray:
        """Prepared level of one qubit for every trace."""
        return marginal_labels(self.labels, qubit, self.n_qubits, self.n_levels)

    def iq_features(self) -> np.ndarray:
        """Raw ADC features for the FNN baseline: ``[I(t), Q(t)]`` rows.

        Shape (n_traces, 2 * trace_len), float32, I samples then Q samples —
        the paper's 1000-neuron input layout for 500-sample traces.
        """
        return np.concatenate(
            [self.feedline.real, self.feedline.imag], axis=1
        ).astype(np.float32)

    def subset(self, indices: np.ndarray) -> "ReadoutCorpus":
        """A new corpus restricted to ``indices`` (copies, no views)."""
        idx = np.asarray(indices)
        if idx.ndim != 1:
            raise ShapeError("indices must be 1-D")
        return ReadoutCorpus(
            feedline=self.feedline[idx].copy(),
            labels=self.labels[idx].copy(),
            prepared_levels=self.prepared_levels[idx].copy(),
            initial_levels=self.initial_levels[idx].copy(),
            final_levels=self.final_levels[idx].copy(),
            chip=self.chip,
        )

    def truncated(self, trace_len: int) -> "ReadoutCorpus":
        """Corpus with traces cut to the first ``trace_len`` samples.

        This is how the readout-duration sweep (Fig 5b) shortens the
        measurement window without re-simulating: discarding late samples
        is exactly what ending the integration earlier does. (Ground-truth
        final levels still refer to the original window end.)
        """
        if not 2 <= trace_len <= self.trace_len:
            raise DataError(
                f"trace_len must be in [2, {self.trace_len}], got {trace_len}"
            )
        return ReadoutCorpus(
            feedline=self.feedline[:, :trace_len].copy(),
            labels=self.labels.copy(),
            prepared_levels=self.prepared_levels.copy(),
            initial_levels=self.initial_levels.copy(),
            final_levels=self.final_levels.copy(),
            chip=self.chip.with_trace_len(trace_len),
        )

    def save(self, path: str | Path) -> None:
        """Write the corpus to an ``.npz`` file (chip config as JSON)."""
        np.savez_compressed(
            path,
            feedline=self.feedline,
            labels=self.labels,
            prepared_levels=self.prepared_levels,
            initial_levels=self.initial_levels,
            final_levels=self.final_levels,
            chip_json=np.array(json.dumps(self.chip.to_dict())),
        )

    @classmethod
    def load(cls, path: str | Path) -> "ReadoutCorpus":
        """Load a corpus written by :meth:`save`."""
        with np.load(path) as data:
            chip = ChipConfig.from_dict(json.loads(str(data["chip_json"])))
            return cls(
                feedline=data["feedline"],
                labels=data["labels"],
                prepared_levels=data["prepared_levels"],
                initial_levels=data["initial_levels"],
                final_levels=data["final_levels"],
                chip=chip,
            )
