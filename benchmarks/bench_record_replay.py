"""Bench: record-tee overhead and replay-from-disk serving throughput.

Three serving sessions over one warm registry — a plain simulator run,
the same run with a recording tee (``record_path``), and a replay of the
recorded corpus — measure what the capture seam costs on the hot path
and how fast a corpus serves back from disk. The replayed counts are
asserted identical to the recorded ones: the bit-determinism contract
is measured here, not assumed.

Standalone:

    PYTHONPATH=src:. python -m pytest benchmarks/bench_record_replay.py \
        --json BENCH_record_replay.json
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from benchmarks.conftest import record_bench_result, run_once
from repro.backends import load_corpus
from repro.serve import (
    BatchingSpec,
    CalibrationSpec,
    ClusterSpec,
    ServeSpec,
    TrafficSpec,
    serve_once,
)

SHOTS = 1600
CHUNK = 128


def _spec(registry: str, **traffic) -> ServeSpec:
    return ServeSpec(
        traffic=TrafficSpec(shots=SHOTS, chunk_size=CHUNK, **traffic),
        cluster=ClusterSpec(qubits_per_feedline=2),
        batching=BatchingSpec(batch_size=CHUNK),
        calibration=CalibrationSpec(registry_dir=registry),
    )


def _timed(spec, profile):
    start = time.perf_counter()
    report = serve_once(spec, profile=profile)
    return report, time.perf_counter() - start


def test_record_replay_round_trip(benchmark, profile):
    def run():
        with tempfile.TemporaryDirectory() as tmp:
            registry = str(Path(tmp) / "registry")
            corpus_dir = Path(tmp) / "corpus"

            # Warm the registry so every timed session serves fit-free.
            serve_once(
                _spec(registry).with_traffic(shots=CHUNK), profile=profile
            )

            plain, plain_wall = _timed(_spec(registry), profile)
            recorded, record_wall = _timed(
                _spec(registry, record_path=str(corpus_dir)), profile
            )
            corpus_bytes = sum(
                f.stat().st_size for f in corpus_dir.iterdir()
            )
            replayed, replay_wall = _timed(
                _spec(
                    registry,
                    backend="replay",
                    corpus_path=str(corpus_dir),
                ),
                profile,
            )
            corpus = load_corpus(corpus_dir, verify=False)
            return {
                "n_shots": SHOTS,
                "chunk_size": CHUNK,
                "plain": {
                    "wall_seconds": plain_wall,
                    "shots_per_second": SHOTS / plain_wall,
                },
                "record": {
                    "wall_seconds": record_wall,
                    "shots_per_second": SHOTS / record_wall,
                    "tee_overhead_ratio": record_wall / plain_wall,
                    "corpus_bytes": corpus_bytes,
                    "n_chunks": len(corpus.manifest["chunks"]),
                },
                "replay": {
                    "wall_seconds": replay_wall,
                    "shots_per_second": SHOTS / replay_wall,
                },
                "counts_identical": (
                    replayed.assignment_counts == recorded.assignment_counts
                ),
            }

    result = run_once(benchmark, run)
    record_bench_result("record_replay", result)
    print("\nrecord/replay round trip "
          f"({result['n_shots']} shots, chunk {result['chunk_size']}):")
    for phase in ("plain", "record", "replay"):
        row = result[phase]
        print(
            f"  {phase:7s}: {row['wall_seconds']:.3f}s "
            f"({row['shots_per_second']:,.0f} shots/s)"
        )
    print(
        f"  tee overhead: {result['record']['tee_overhead_ratio']:.2f}x, "
        f"corpus {result['record']['corpus_bytes'] / 1e6:.1f} MB in "
        f"{result['record']['n_chunks']} chunks"
    )
    print(f"  replayed counts identical: {result['counts_identical']}")
    assert result["counts_identical"]
    # The tee writes every chunk + checksums; allow generous headroom
    # but catch pathological regressions on the capture path.
    assert result["record"]["tee_overhead_ratio"] < 5.0
