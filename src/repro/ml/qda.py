"""Quadratic discriminant analysis (Gaussian classes, per-class covariance).

The second discriminant-analysis baseline from Table V. Uses per-class
covariance estimates, so decision boundaries are quadratic; this helps for
readout clouds whose variances differ between states (e.g. relaxation
broadening of the |1> and |2> clouds).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_1d_int, as_2d_float
from repro.exceptions import DataError, NotFittedError

__all__ = ["QuadraticDiscriminantAnalysis"]


class QuadraticDiscriminantAnalysis:
    """Gaussian QDA classifier.

    Parameters
    ----------
    regularization:
        Ridge term added to each class covariance diagonal, as a fraction of
        its mean diagonal value.
    """

    def __init__(self, regularization: float = 1e-6) -> None:
        if regularization < 0:
            raise DataError(f"regularization must be >= 0, got {regularization}")
        self.regularization = regularization
        self.classes_: np.ndarray | None = None
        self.means_: np.ndarray | None = None
        self.priors_: np.ndarray | None = None
        self._precisions: list[np.ndarray] | None = None
        self._log_dets: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "QuadraticDiscriminantAnalysis":
        """Estimate per-class means, covariances, and priors."""
        x = as_2d_float(x)
        y = as_1d_int(y)
        if x.shape[0] != y.shape[0]:
            raise DataError(f"{x.shape[0]} samples but {y.shape[0]} labels")
        classes, counts = np.unique(y, return_counts=True)
        if classes.size < 2:
            raise DataError("QDA requires at least two classes")
        d = x.shape[1]
        means, precisions, log_dets = [], [], []
        for c in classes:
            xc = x[y == c]
            mu = xc.mean(axis=0)
            centered = xc - mu
            cov = centered.T @ centered / max(1, xc.shape[0] - 1)
            ridge = self.regularization * max(np.trace(cov) / d, 1e-300)
            cov[np.diag_indices_from(cov)] += ridge
            sign, log_det = np.linalg.slogdet(cov)
            if sign <= 0:
                # Degenerate class cloud: fall back to a stronger ridge.
                cov[np.diag_indices_from(cov)] += np.trace(cov) / d + 1e-12
                sign, log_det = np.linalg.slogdet(cov)
            means.append(mu)
            precisions.append(np.linalg.pinv(cov))
            log_dets.append(log_det)
        self.classes_ = classes
        self.means_ = np.vstack(means)
        self.priors_ = counts / x.shape[0]
        self._precisions = precisions
        self._log_dets = np.asarray(log_dets)
        return self

    def _require_fitted(self) -> None:
        if self._precisions is None or self.classes_ is None:
            raise NotFittedError("QuadraticDiscriminantAnalysis is not fitted")

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Per-class log-posterior scores (up to a shared constant)."""
        self._require_fitted()
        x = as_2d_float(x)
        scores = np.empty((x.shape[0], self.classes_.size))
        for i, (mu, prec) in enumerate(zip(self.means_, self._precisions)):
            centered = x - mu
            maha = np.einsum("ij,jk,ik->i", centered, prec, centered)
            scores[:, i] = (
                -0.5 * maha - 0.5 * self._log_dets[i] + np.log(self.priors_[i])
            )
        return scores

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most likely class label for each row of ``x``."""
        return self.classes_[np.argmax(self.decision_function(x), axis=1)]

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Posterior class probabilities."""
        scores = self.decision_function(x)
        scores -= scores.max(axis=1, keepdims=True)
        probs = np.exp(scores)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(x, y)``."""
        y = as_1d_int(y)
        return float(np.mean(self.predict(x) == y))
