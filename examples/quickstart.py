"""Quickstart: generate readout data, train the paper's discriminator,
and report three-level readout fidelity.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.data import generate_corpus
from repro.discriminators import MLRDiscriminator
from repro.ml import stratified_split
from repro.ml.metrics import geometric_mean_fidelity, per_qubit_fidelity
from repro.physics import default_five_qubit_chip


def main() -> None:
    # 1. A synthetic five-qubit chip (the stand-in for the paper's device).
    chip = default_five_qubit_chip()
    print(f"chip: {chip.n_qubits} qubits, {chip.trace_len} samples "
          f"@ {chip.adc.sample_rate_ghz * 1000:.0f} MS/s")

    # 2. Readout traces for all 3^5 = 243 joint basis states.
    corpus = generate_corpus(chip, shots_per_state=16, seed=42)
    print(f"corpus: {corpus.n_traces} traces "
          f"({corpus.trace_len * chip.dt_ns:.0f} ns readout window)")

    # 3. The paper's 30-70 per-state train/test split.
    train_idx, test_idx = stratified_split(corpus.labels, 0.30, seed=43)

    # 4. Train the paper's discriminator: 9 matched filters per qubit
    #    feeding tiny per-qubit neural networks (45 -> 22 -> 11 -> 3).
    discriminator = MLRDiscriminator(epochs=80, learning_rate=3e-3, seed=44)
    discriminator.fit(corpus, train_idx)
    print(f"model size: {discriminator.n_parameters} parameters "
          f"(the FNN baseline needs ~687k)")

    # 5. Evaluate: per-qubit fidelity and the cumulative F5Q.
    predictions = discriminator.predict(corpus, test_idx)
    fidelities = per_qubit_fidelity(
        corpus.labels[test_idx], predictions, corpus.n_qubits, corpus.n_levels
    )
    for q, fid in enumerate(fidelities):
        print(f"  qubit {q + 1}: fidelity {fid:.3f}")
    print(f"F5Q (geometric mean): {geometric_mean_fidelity(fidelities):.4f} "
          f"(paper: 0.9052)")

    # 6. Where do the residual errors come from? Check against the
    #    simulator's ground truth: traces whose qubit decayed mid-readout.
    test_jumped = (
        corpus.final_levels[test_idx] != corpus.prepared_levels[test_idx]
    ).any(axis=1)
    joint_correct = predictions == corpus.labels[test_idx]
    print(f"exact-joint-state accuracy: {np.mean(joint_correct):.3f} "
          f"(clean traces: {np.mean(joint_correct[~test_jumped]):.3f}, "
          f"traces with mid-readout jumps: "
          f"{np.mean(joint_correct[test_jumped]):.3f})")


if __name__ == "__main__":
    main()
