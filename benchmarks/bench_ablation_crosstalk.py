"""Ablation bench: all-qubit features vs own-qubit features under crosstalk.

The paper merges every qubit's matched-filter scores into each per-qubit
network input so the heads can undo readout crosstalk. This ablation
trains the identical architecture with and without neighbor features on
the same (crosstalky) corpus.
"""

from repro.discriminators import MLRDiscriminator
from repro.experiments.common import NN_LEARNING_RATE, get_readout_bundle
from repro.ml.metrics import geometric_mean_fidelity, per_qubit_fidelity


def test_ablation_neighbor_features(benchmark, profile):
    bundle = get_readout_bundle(profile)

    def run():
        out = {}
        for label, neighbor in (("all-qubit", True), ("own-qubit", False)):
            disc = MLRDiscriminator(
                neighbor_features=neighbor,
                epochs=profile.nn_epochs,
                learning_rate=NN_LEARNING_RATE,
                seed=profile.seed + 99,
            )
            disc.fit(bundle.corpus, bundle.train_idx)
            pred = disc.predict(bundle.corpus, bundle.test_idx)
            fid = per_qubit_fidelity(
                bundle.test_labels, pred,
                bundle.corpus.n_qubits, bundle.corpus.n_levels,
            )
            out[label] = geometric_mean_fidelity(fid)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nneighbor-feature (crosstalk) ablation (F5Q):")
    for label, f5q in results.items():
        print(f"  {label:10s}: {f5q:.4f}")
    # Crosstalk correction requires neighbor information.
    assert results["all-qubit"] > results["own-qubit"] + 0.02
