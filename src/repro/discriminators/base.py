"""Common interface for multi-level readout discriminators."""

from __future__ import annotations

import json
from abc import ABC, abstractmethod
from pathlib import Path

import numpy as np

from repro.data.basis import state_to_digits
from repro.data.dataset import ReadoutCorpus
from repro.discriminators import registry as _registry
from repro.exceptions import DataError, NotFittedError

__all__ = ["Discriminator"]


class Discriminator(ABC):
    """A trainable map from readout traces to joint multi-level states.

    Implementations train on a :class:`ReadoutCorpus` (restricted to given
    indices so train/test splits never leak) and predict joint basis-state
    labels; per-qubit levels derive from the joint label.
    """

    name: str = "discriminator"

    def __init__(self) -> None:
        self._fitted = False

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        _registry.record_artifact_class(cls)

    @classmethod
    def from_profile(cls, profile) -> "Discriminator":
        """Build an unfitted instance sized for a :class:`Profile`.

        Designs published through :func:`repro.discriminators.registry
        .register` must override this; it is how every by-name code path
        (experiment training, pipeline calibration, CLI design choices)
        constructs discriminators.
        """
        raise NotImplementedError(
            f"{cls.__name__} does not define from_profile()"
        )

    @property
    @abstractmethod
    def n_parameters(self) -> int:
        """Trainable parameter count — the paper's model-size metric.

        Counts NN weights and biases only: matched-filter kernels are
        calibration data, not trained parameters, matching how the paper
        reports model sizes.
        """

    @abstractmethod
    def fit(self, corpus: ReadoutCorpus, indices: np.ndarray) -> "Discriminator":
        """Train on the corpus rows selected by ``indices``."""

    @abstractmethod
    def predict(
        self, corpus: ReadoutCorpus, indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Joint state labels for the selected corpus rows."""

    def predict_qubit_levels(
        self, corpus: ReadoutCorpus, indices: np.ndarray | None = None
    ) -> np.ndarray:
        """Per-qubit levels (n_shots, n_qubits) from the joint prediction."""
        joint = self.predict(corpus, indices)
        return state_to_digits(joint, corpus.n_qubits, corpus.n_levels)

    def _require_fitted(self) -> None:
        if not self._fitted:
            raise NotFittedError(f"{type(self).__name__} is not fitted")

    @staticmethod
    def _resolve_indices(
        corpus: ReadoutCorpus, indices: np.ndarray | None
    ) -> np.ndarray:
        """Validate trace indices against the corpus before fancy indexing.

        Rejecting malformed selections here gives callers a clear error at
        the API boundary instead of a numpy ``IndexError`` (or a silently
        wrapped negative index) deep inside a feature-extraction stage.
        """
        if indices is None:
            return np.arange(corpus.n_traces)
        idx = np.asarray(indices)
        if idx.ndim != 1:
            raise DataError(f"indices must be 1-D, got shape {idx.shape}")
        if idx.size == 0:
            raise DataError("indices must select at least one trace")
        if not np.issubdtype(idx.dtype, np.integer):
            raise DataError(f"indices must be integers, got dtype {idx.dtype}")
        low = int(idx.min())
        high = int(idx.max())
        if low < 0:
            raise DataError(f"indices must be non-negative, got minimum {low}")
        if high >= corpus.n_traces:
            raise DataError(
                f"index {high} out of range for corpus with "
                f"{corpus.n_traces} traces"
            )
        return idx

    # ------------------------------------------------------------------
    # Calibration-artifact serialization
    #
    # Fitted discriminators can export everything inference needs —
    # matched-filter kernels, feature scalers, NN weights — to a single
    # ``.npz`` file, and be reconstructed from it without retraining.
    # Subclasses opt in by implementing the three protocol hooks below;
    # the base class owns the on-disk format so every artifact carries its
    # class name and can be loaded through ``Discriminator.load_artifacts``.
    # ------------------------------------------------------------------

    def _artifact_meta(self) -> dict:
        """JSON-serializable config needed to rebuild this discriminator."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support artifact export"
        )

    def _artifact_arrays(self) -> dict[str, np.ndarray]:
        """Named numpy arrays holding the fitted state."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support artifact export"
        )

    @classmethod
    def _from_artifacts(
        cls, meta: dict, arrays: dict[str, np.ndarray]
    ) -> "Discriminator":
        """Rebuild a fitted instance from :meth:`_artifact_meta` /
        :meth:`_artifact_arrays` output."""
        raise NotImplementedError(
            f"{cls.__name__} does not support artifact import"
        )

    # Shared pack/unpack helpers so every discriminator serializes its
    # scaler and MLP(s) through one code path.

    @staticmethod
    def _pack_mlp(arrays: dict, model, prefix: str) -> None:
        """Add one MLPClassifier's parameters to an artifact dict."""
        for i, param in enumerate(model.network.parameters()):
            arrays[f"{prefix}_param{i}"] = param

    @staticmethod
    def _unpack_mlp(layer_sizes, arrays: dict, prefix: str):
        """Rebuild a fitted MLPClassifier from packed parameters."""
        from repro.ml.nn import MLPClassifier

        model = MLPClassifier([int(s) for s in layer_sizes])
        model.network.set_weights(
            [
                arrays[f"{prefix}_param{i}"]
                for i in range(len(model.network.parameters()))
            ]
        )
        model.mark_fitted()
        return model

    @staticmethod
    def _pack_scaler(arrays: dict, scaler) -> None:
        arrays["scaler_mean"] = scaler.mean_
        arrays["scaler_scale"] = scaler.scale_

    @staticmethod
    def _unpack_scaler(arrays: dict):
        from repro.ml.dataset import StandardScaler

        scaler = StandardScaler()
        scaler.mean_ = np.asarray(arrays["scaler_mean"])
        scaler.scale_ = np.asarray(arrays["scaler_scale"])
        return scaler

    def save_artifacts(self, path: str | Path) -> None:
        """Write the fitted state to ``path`` (``.npz`` with JSON header)."""
        self._require_fitted()
        meta = {"class": type(self).__name__, **self._artifact_meta()}
        arrays = self._artifact_arrays()
        np.savez_compressed(
            path, artifact_meta=np.array(json.dumps(meta)), **arrays
        )

    @classmethod
    def load_artifacts(cls, path: str | Path) -> "Discriminator":
        """Load a discriminator saved by :meth:`save_artifacts`.

        Callable on the base class (the stored class name selects the
        implementation) or on a concrete subclass (which then must match).
        """
        with np.load(path, allow_pickle=False) as data:
            if "artifact_meta" not in data:
                raise DataError(f"{path} is not a discriminator artifact file")
            meta = json.loads(str(data["artifact_meta"]))
            arrays = {k: data[k] for k in data.files if k != "artifact_meta"}
        class_name = meta.pop("class", None)
        target = _registry.artifact_class(class_name)
        if target is None:
            raise DataError(f"unknown discriminator class {class_name!r}")
        if cls is not Discriminator and not issubclass(target, cls):
            raise DataError(
                f"artifact holds a {class_name}, not a {cls.__name__}"
            )
        return target._from_artifacts(meta, arrays)
