"""The shared report sink every runtime sanitizer writes into.

A :class:`SanitizerReport` is the runtime twin of the static
:class:`~repro.analysis.findings.Finding`: one witnessed contract
violation, carrying the sanitizer name, a human-readable message, and
the ``file.py:line`` call site where the violated object was created or
misused. Reports convert losslessly into findings
(:meth:`SanitizerReport.to_finding`), so armed test sessions and CLI
consumers print both sides of the analysis through one formatter.

Sanitizers append to the process-wide :data:`GLOBAL_LOG`; the pytest
``sessionfinish`` hook fails armed runs when :meth:`ReportLog.outstanding`
is non-empty. Tests that *seed* violations pass a private
:class:`ReportLog` (the same idiom as private ``LockGraph`` instances),
or :meth:`ReportLog.drain` what they provoked, so the global log stays
clean for the rest of the session.
"""

from __future__ import annotations

import os
import sys
import threading
from dataclasses import dataclass
from pathlib import Path

from ..findings import Finding

__all__ = [
    "ENV_FLAG",
    "enabled",
    "SanitizerReport",
    "ReportLog",
    "GLOBAL_LOG",
    "call_site",
]

#: Environment flag arming the runtime sanitizers (any value but
#: ''/'0'/'false'/'off'), checked at ring construction and on every shm
#: lifecycle hook — the ``REPRO_LOCK_DEBUG`` idiom.
ENV_FLAG = "REPRO_SANITIZE"


def enabled() -> bool:
    """Whether the runtime sanitizers are armed for this process."""
    return os.environ.get(ENV_FLAG, "").strip().lower() not in (
        "", "0", "false", "off",
    )


def call_site() -> str:
    """``file.py:line`` of the nearest caller outside the sanitizers."""
    package = str(Path(__file__).parent)
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename.startswith(package):
        frame = frame.f_back
    if frame is None:  # pragma: no cover - the stack always has a caller
        return "<unknown>"
    return f"{Path(frame.f_code.co_filename).name}:{frame.f_lineno}"


@dataclass(frozen=True)
class SanitizerReport:
    """One witnessed runtime contract violation."""

    sanitizer: str
    message: str
    site: str

    def format(self) -> str:
        return self.to_finding().format()

    def to_finding(self) -> Finding:
        """The :class:`Finding` form, so both analysis sides print alike.

        The witness site (``file.py:line``) becomes the finding
        location; sanitizer reports carry no column, so ``col`` is 0.
        """
        path, _, line = self.site.rpartition(":")
        lineno = int(line) if line.isdigit() else 0
        return Finding(
            rule=f"sanitize:{self.sanitizer}",
            path=path or self.site,
            line=lineno,
            col=0,
            message=self.message,
        )


class ReportLog:
    """A thread-safe append-only sink for sanitizer reports."""

    def __init__(self) -> None:
        self._guard = threading.Lock()
        self._reports: list[SanitizerReport] = []

    def report(
        self, sanitizer: str, message: str, site: str | None = None
    ) -> SanitizerReport:
        """Record (and return) one violation witnessed at ``site``."""
        entry = SanitizerReport(
            sanitizer=sanitizer,
            message=message,
            site=site if site is not None else call_site(),
        )
        with self._guard:
            self._reports.append(entry)
        return entry

    def outstanding(self) -> tuple[SanitizerReport, ...]:
        with self._guard:
            return tuple(self._reports)

    def drain(self) -> tuple[SanitizerReport, ...]:
        """Return all reports and clear the log (seeded-bug tests)."""
        with self._guard:
            drained = tuple(self._reports)
            self._reports.clear()
        return drained

    def clear(self) -> None:
        with self._guard:
            self._reports.clear()


#: The process-wide log every armed sanitizer reports into.
GLOBAL_LOG = ReportLog()
