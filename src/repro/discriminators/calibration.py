"""Calibration-free leakage-cluster detection (Sec V.A, Fig 3a/3b).

Preparing |2> on demand is an extra, error-prone calibration step. The
paper instead spectral-clusters the MTV points of ordinary *two-level*
calibration shots into three clusters; the two large clusters are the
computational states and the small remainder is naturally occurring
leakage. Cluster labels are assigned from the prepared-state composition:
the cluster dominated by |0>-prepared shots is "0", the remaining large
cluster is "1", and the smallest cluster is "L".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_random_state
from repro.data.dataset import ReadoutCorpus
from repro.dsp.demod import demodulate
from repro.dsp.filters import boxcar_decimate
from repro.dsp.mtv import mtv_points
from repro.exceptions import ConfigurationError, DataError
from repro.ml.kmeans import KMeans
from repro.ml.spectral import SpectralClustering

__all__ = ["LeakageDetectionResult", "detect_leakage_clusters"]


@dataclass(frozen=True)
class LeakageDetectionResult:
    """Outcome of clustering one qubit's calibration shots.

    Attributes
    ----------
    qubit:
        Qubit index on the chip.
    assigned_levels:
        Per-shot level estimate in {0, 1, 2}; 2 means "leaked".
    mtv:
        The clustered MTV points, (n_shots, 2).
    cluster_sizes:
        Shot counts of the clusters after label assignment, index = level.
    n_true_leaked, n_detected, n_correctly_detected:
        Ground-truth leaked shots, shots flagged as leaked, and their
        overlap (available because the simulator records true initial
        levels; a lab would validate differently).
    """

    qubit: int
    assigned_levels: np.ndarray
    mtv: np.ndarray
    cluster_sizes: np.ndarray
    n_true_leaked: int
    n_detected: int
    n_correctly_detected: int

    @property
    def precision(self) -> float:
        """Fraction of flagged shots that are truly leaked."""
        return self.n_correctly_detected / self.n_detected if self.n_detected else 0.0

    @property
    def recall(self) -> float:
        """Fraction of truly leaked shots that were flagged."""
        if self.n_true_leaked == 0:
            return 0.0
        return self.n_correctly_detected / self.n_true_leaked


def _assign_cluster_levels(
    cluster_labels: np.ndarray, prepared: np.ndarray, n_clusters: int
) -> dict[int, int]:
    """Map raw cluster ids to levels 0/1/2 using prepared-state composition."""
    sizes = np.bincount(cluster_labels, minlength=n_clusters)
    leaked_cluster = int(np.argmin(sizes))
    remaining = [c for c in range(n_clusters) if c != leaked_cluster]
    # Among the two computational clusters, the one richer in |0>-prepared
    # shots is level 0.
    zero_fractions = []
    for c in remaining:
        members = cluster_labels == c
        frac = np.mean(prepared[members] == 0) if np.any(members) else 0.0
        zero_fractions.append(frac)
    zero_cluster = remaining[int(np.argmax(zero_fractions))]
    one_cluster = remaining[1 - int(np.argmax(zero_fractions))]
    return {zero_cluster: 0, one_cluster: 1, leaked_cluster: 2}


def detect_leakage_clusters(
    corpus: ReadoutCorpus,
    qubit: int,
    method: str = "spectral",
    decimation: int = 5,
    max_points: int = 2000,
    gamma_scale: float = 25.0,
    seed: int | np.random.Generator | None = None,
) -> LeakageDetectionResult:
    """Find naturally leaked shots of one qubit in two-level calibration data.

    Parameters
    ----------
    corpus:
        Two-level calibration shots (see
        :func:`repro.data.generate_calibration_shots`).
    qubit:
        Which qubit to analyze.
    method:
        ``"spectral"`` (the paper's choice) or ``"kmeans"`` (ablation).
    decimation:
        Boxcar decimation before MTV computation.
    max_points:
        Subsample cap for the spectral affinity matrix.
    gamma_scale:
        RBF bandwidth tightening relative to the median heuristic. The
        leaked cluster holds ~1% of the shots; a tight kernel keeps it
        from being absorbed into the balanced cuts spectral clustering
        prefers.
    seed:
        RNG seed or generator.
    """
    if not 0 <= qubit < corpus.n_qubits:
        raise ConfigurationError(f"qubit must be in [0, {corpus.n_qubits})")
    if method not in ("spectral", "kmeans"):
        raise ConfigurationError(
            f"method must be 'spectral' or 'kmeans', got {method!r}"
        )
    prepared = corpus.prepared_levels[:, qubit].astype(np.int64)
    if np.any(prepared > 1):
        raise DataError(
            "calibration corpus must only prepare computational states"
        )
    rng = check_random_state(seed)
    times = corpus.chip.sample_times(corpus.trace_len)
    baseband = demodulate(
        corpus.feedline, corpus.chip.qubits[qubit].if_frequency_ghz, times
    )
    points = mtv_points(boxcar_decimate(baseband, decimation))

    if method == "spectral":
        # Tight RBF bandwidth: gamma_scale x the median heuristic. The
        # leaked population is ~1% of shots, so a plausibility bound on
        # the flagged-cluster size guards against degenerate cuts; other
        # bandwidths are tried before falling back to k-means.
        sq_norms = np.sum(points * points, axis=1)
        d2 = sq_norms[:, None] - 2.0 * points @ points.T + sq_norms[None, :]
        off_diag = d2[~np.eye(d2.shape[0], dtype=bool)]
        base_gamma = 1.0 / (2.0 * max(float(np.median(off_diag)), 1e-12))
        n = points.shape[0]
        size_lo = max(4, int(0.002 * n))
        size_hi = int(0.15 * n)
        raw = None
        for scale in (gamma_scale, gamma_scale / 2.5, gamma_scale * 2.0):
            clusterer = SpectralClustering(
                n_clusters=3,
                affinity="rbf",
                gamma=base_gamma * scale,
                max_points=max_points,
                seed=rng,
            )
            candidate = clusterer.fit_predict(points)
            smallest = int(np.bincount(candidate, minlength=3).min())
            if size_lo <= smallest <= size_hi:
                raw = candidate
                break
        if raw is None:
            raw = KMeans(n_clusters=3, seed=rng).fit_predict(points)
    else:
        raw = KMeans(n_clusters=3, seed=rng).fit_predict(points)

    mapping = _assign_cluster_levels(raw, prepared, 3)
    assigned = np.vectorize(mapping.__getitem__)(raw).astype(np.int64)

    truth = corpus.initial_levels[:, qubit].astype(np.int64)
    true_leaked = truth == 2
    detected = assigned == 2
    sizes = np.bincount(assigned, minlength=3)
    return LeakageDetectionResult(
        qubit=qubit,
        assigned_levels=assigned,
        mtv=points,
        cluster_sizes=sizes,
        n_true_leaked=int(true_leaked.sum()),
        n_detected=int(detected.sum()),
        n_correctly_detected=int((true_leaked & detected).sum()),
    )
