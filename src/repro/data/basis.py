"""Joint basis-state indexing for ``n`` qudits with ``k`` levels each.

A joint state of five 3-level qubits is one of ``3**5 = 243`` basis states.
We index them with the big-endian base-``k`` convention used throughout the
paper's figures: qubit 0 is the most significant digit, so state index
``s`` assigns qubit ``q`` the level ``(s // k**(n-1-q)) % k`` and the label
string reads left to right, e.g. ``"20110"`` for qubit 0 leaked.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "n_basis_states",
    "state_to_digits",
    "digits_to_state",
    "state_label",
    "all_states",
    "marginal_labels",
]


def _validate(n_qudits: int, n_levels: int) -> None:
    if n_qudits < 1:
        raise ConfigurationError(f"n_qudits must be >= 1, got {n_qudits}")
    if n_levels < 2:
        raise ConfigurationError(f"n_levels must be >= 2, got {n_levels}")


def n_basis_states(n_qudits: int, n_levels: int) -> int:
    """Number of joint basis states, ``n_levels ** n_qudits``."""
    _validate(n_qudits, n_levels)
    return n_levels**n_qudits


def state_to_digits(
    state: int | np.ndarray, n_qudits: int, n_levels: int
) -> np.ndarray:
    """Decompose joint state indices into per-qudit levels.

    Accepts a scalar or an array of state indices; returns an array whose
    last axis has length ``n_qudits`` (most significant digit first).
    """
    _validate(n_qudits, n_levels)
    arr = np.asarray(state, dtype=np.int64)
    if np.any(arr < 0) or np.any(arr >= n_levels**n_qudits):
        raise ConfigurationError(
            f"state index out of range [0, {n_levels ** n_qudits})"
        )
    powers = n_levels ** np.arange(n_qudits - 1, -1, -1, dtype=np.int64)
    return (arr[..., None] // powers) % n_levels


def digits_to_state(digits: np.ndarray, n_levels: int) -> np.ndarray:
    """Combine per-qudit levels (last axis) into joint state indices."""
    arr = np.asarray(digits, dtype=np.int64)
    if arr.shape[-1] < 1:
        raise ConfigurationError("digits must have at least one qudit")
    if np.any(arr < 0) or np.any(arr >= n_levels):
        raise ConfigurationError(f"digits must lie in [0, {n_levels})")
    n_qudits = arr.shape[-1]
    powers = n_levels ** np.arange(n_qudits - 1, -1, -1, dtype=np.int64)
    return np.sum(arr * powers, axis=-1)


def state_label(state: int, n_qudits: int, n_levels: int) -> str:
    """Human-readable label, e.g. state 0 of 5 qutrits -> ``"00000"``."""
    digits = state_to_digits(int(state), n_qudits, n_levels)
    return "".join(str(int(d)) for d in digits)


def all_states(n_qudits: int, n_levels: int) -> np.ndarray:
    """All joint state indices, ``[0, n_levels**n_qudits)``."""
    return np.arange(n_basis_states(n_qudits, n_levels), dtype=np.int64)


def marginal_labels(
    joint: np.ndarray, qudit: int, n_qudits: int, n_levels: int
) -> np.ndarray:
    """Per-qudit level of ``qudit`` for an array of joint state indices."""
    if not 0 <= qudit < n_qudits:
        raise ConfigurationError(f"qudit must be in [0, {n_qudits})")
    digits = state_to_digits(np.asarray(joint), n_qudits, n_levels)
    return digits[..., qudit]
