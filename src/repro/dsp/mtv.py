"""Mean Trace Value (MTV) — the per-trace temporal mean of Sec V.A.

For a demodulated trace ``Tr``, ``MTV = mean_t Tr(t)``: one complex point
per shot. MTV clouds of different prepared states form the clusters that
spectral clustering separates to find naturally leaked traces (Fig 3a/3b).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError

__all__ = ["mean_trace_value", "mtv_points"]


def mean_trace_value(traces: np.ndarray) -> np.ndarray:
    """Temporal mean of each trace; complex scalar per shot."""
    traces = np.asarray(traces)
    if traces.ndim == 1:
        return traces.mean()
    if traces.ndim == 2:
        return traces.mean(axis=1)
    raise ShapeError(f"traces must be 1-D or 2-D, got {traces.shape}")


def mtv_points(traces: np.ndarray) -> np.ndarray:
    """MTVs as real (n_shots, 2) points — the IQ-plane scatter of Fig 3."""
    mtv = np.atleast_1d(mean_trace_value(traces))
    return np.column_stack([mtv.real, mtv.imag])
