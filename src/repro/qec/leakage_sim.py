"""Monte-Carlo leakage dynamics over surface-code QEC cycles.

One simulated QEC cycle, per shot:

1. **Entangling gates.** Every stabilizer couples its ancilla to each of
   its data qubits. Each gate can inject leakage into either participant
   (``p_leak_gate``), and a leaked participant can transport leakage to
   its partner (``p_transport`` — the mechanism measured in Sec III.A).
2. **Syndromes.** Each stabilizer's measurement flips with a background
   Pauli-error probability; if the ancilla or any adjacent data qubit is
   leaked, the outcome is *random* (p=1/2) — the leakage signature ERASER
   keys on. Readout error adds classification noise on top.
3. **Ancilla readout + reset.** Ancilla leakage state is reported through
   the (multi-level) readout with error ``readout_error``; unconditional
   reset then clears ancilla leakage with probability
   ``ancilla_reset_efficiency``.
4. **Seepage.** Leaked data qubits decay back to the computational
   subspace with probability ``p_seep`` per cycle (T1 of |2>).

This is the phenomenological level at which ERASER itself was evaluated;
no Pauli-frame tracking is needed for leakage-speculation metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro._util import check_random_state
from repro.exceptions import ConfigurationError
from repro.qec.surface_code import RotatedSurfaceCode

__all__ = ["LeakageParams", "CycleRecord", "LeakageSimulator"]


@dataclass(frozen=True)
class LeakageParams:
    """Physical rates for the leakage Monte-Carlo.

    Defaults follow the literature values the paper cites: per-gate
    leakage probability in the 1e-4..1e-3 range, transport per gate in the
    1.5-2% range, |2> seepage set by T1 over a ~1 us cycle.

    ``ancilla_reset_efficiency`` is deliberately low: the unconditional
    per-round ancilla reset is a |1> -> |0> operation that leaves |2>
    mostly untouched, so under plain two-level readout a leaked ancilla
    *persists* and randomizes its stabilizer for several rounds — the
    pollution that multi-level readout (which detects the |2> directly
    and triggers a targeted reset) removes.
    """

    p_leak_gate: float = 4e-4
    p_transport: float = 0.05
    p_seep: float = 0.10
    p_pauli: float = 0.03
    p_leak_measurement: float = 6e-3
    ancilla_reset_efficiency: float = 0.25
    readout_error: float = 0.05
    false_two_fraction: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "p_leak_gate",
            "p_transport",
            "p_seep",
            "p_pauli",
            "p_leak_measurement",
            "ancilla_reset_efficiency",
            "readout_error",
            "false_two_fraction",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")


@dataclass
class CycleRecord:
    """Observables produced by one QEC cycle (one shot).

    Attributes
    ----------
    syndrome:
        Measured stabilizer bits (already noisy).
    ancilla_level_readout:
        Readout of each ancilla's level in {0, 1, 2} *as reported by the
        discriminator* (2 = leaked); only meaningful when the control
        stack runs multi-level readout.
    data_leaked_truth, ancilla_leaked_truth:
        Ground-truth leakage flags *before* ancilla reset, for scoring.
    """

    syndrome: np.ndarray
    ancilla_level_readout: np.ndarray
    data_leaked_truth: np.ndarray
    ancilla_leaked_truth: np.ndarray


@dataclass
class LeakageSimulator:
    """Stateful per-shot leakage dynamics for one code patch."""

    code: RotatedSurfaceCode
    params: LeakageParams = field(default_factory=LeakageParams)
    seed: int | np.random.Generator | None = None

    def __post_init__(self) -> None:
        self.rng = check_random_state(self.seed)
        self.data_leaked = np.zeros(self.code.n_data, dtype=bool)
        self.ancilla_leaked = np.zeros(self.code.n_ancilla, dtype=bool)
        self._prev_syndrome = np.zeros(self.code.n_ancilla, dtype=np.int8)
        # Precompute the gate list: (ancilla, data) pairs.
        self.gates = [
            (stab.index, data)
            for stab in self.code.stabilizers
            for data in stab.data_qubits
        ]

    def reset(self) -> None:
        """Clear all leakage and syndrome history (new shot)."""
        self.data_leaked[:] = False
        self.ancilla_leaked[:] = False
        self._prev_syndrome[:] = 0

    def inject_data_leakage(self, data_qubit: int) -> None:
        """Force a data qubit into the leaked state (for controlled tests)."""
        self.data_leaked[data_qubit] = True

    def _apply_gates(self) -> None:
        p = self.params
        for ancilla, data in self.gates:
            a_leak = self.ancilla_leaked[ancilla]
            d_leak = self.data_leaked[data]
            if a_leak and not d_leak:
                if self.rng.random() < p.p_transport:
                    self.data_leaked[data] = True
            elif d_leak and not a_leak:
                if self.rng.random() < p.p_transport:
                    self.ancilla_leaked[ancilla] = True
            if not self.ancilla_leaked[ancilla] and self.rng.random() < p.p_leak_gate:
                self.ancilla_leaked[ancilla] = True
            if not self.data_leaked[data] and self.rng.random() < p.p_leak_gate:
                self.data_leaked[data] = True

    def _measure_syndrome(self) -> np.ndarray:
        p = self.params
        syndrome = np.zeros(self.code.n_ancilla, dtype=np.int8)
        for stab in self.code.stabilizers:
            disturbed = self.ancilla_leaked[stab.index] or any(
                self.data_leaked[q] for q in stab.data_qubits
            )
            if disturbed:
                bit = self.rng.random() < 0.5
            else:
                bit = self.rng.random() < p.p_pauli
            # Readout classification error flips the reported bit.
            if self.rng.random() < p.readout_error:
                bit = not bit
            syndrome[stab.index] = int(bit)
        return syndrome

    def _read_ancilla_levels(self) -> np.ndarray:
        """Multi-level readout of ancilla leakage with classification error.

        The |2> confusion is asymmetric: a leaked ancilla is missed with
        the full classification error, but a computational ancilla is
        misreported as |2> only ``false_two_fraction`` of the time an
        error occurs (most discriminator confusions are 0<->1).
        """
        p = self.params
        reported = np.where(self.ancilla_leaked, 2, 1).astype(np.int8)
        u = self.rng.random(self.code.n_ancilla)
        missed = self.ancilla_leaked & (u < p.readout_error)
        reported[missed] = 1
        false_two = ~self.ancilla_leaked & (
            u < p.readout_error * p.false_two_fraction
        )
        reported[false_two] = 2
        return reported

    def run_cycle(self) -> CycleRecord:
        """Advance one QEC cycle and return its observables."""
        p = self.params
        self._apply_gates()
        # Measurement-induced excitation leaks ancillas during readout —
        # the error mechanism the readout simulator models as
        # ``excite_12_rate`` (Sec IV.A).
        meas_leak = self.rng.random(self.code.n_ancilla) < p.p_leak_measurement
        self.ancilla_leaked |= meas_leak
        data_truth = self.data_leaked.copy()
        ancilla_truth = self.ancilla_leaked.copy()
        syndrome = self._measure_syndrome()
        levels = self._read_ancilla_levels()
        # Unconditional ancilla reset clears (most) ancilla leakage.
        stay = self.rng.random(self.code.n_ancilla) >= p.ancilla_reset_efficiency
        self.ancilla_leaked &= stay
        # Seepage of leaked data qubits.
        seep = self.rng.random(self.code.n_data) < p.p_seep
        self.data_leaked &= ~seep
        self._prev_syndrome = syndrome
        return CycleRecord(
            syndrome=syndrome,
            ancilla_level_readout=levels,
            data_leaked_truth=data_truth,
            ancilla_leaked_truth=ancilla_truth,
        )

    @property
    def leakage_population(self) -> float:
        """Current fraction of leaked data qubits."""
        return float(np.mean(self.data_leaked))
