"""Linear discriminant analysis (Gaussian classes, shared covariance).

One of the two discriminant-analysis baselines the paper compares against in
Table V. Implemented from the standard generative derivation: class means,
a pooled covariance, and the resulting linear decision function.
"""

from __future__ import annotations

import numpy as np

from repro._util import as_1d_int, as_2d_float
from repro.exceptions import DataError, NotFittedError

__all__ = ["LinearDiscriminantAnalysis"]


class LinearDiscriminantAnalysis:
    """Gaussian LDA classifier.

    Parameters
    ----------
    regularization:
        Ridge term added to the pooled covariance diagonal, as a fraction of
        the mean diagonal value. Keeps the solver well-posed when features
        are nearly collinear (common for matched-filter scores).
    """

    def __init__(self, regularization: float = 1e-6) -> None:
        if regularization < 0:
            raise DataError(f"regularization must be >= 0, got {regularization}")
        self.regularization = regularization
        self.classes_: np.ndarray | None = None
        self.means_: np.ndarray | None = None
        self.priors_: np.ndarray | None = None
        self._coef: np.ndarray | None = None
        self._intercept: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LinearDiscriminantAnalysis":
        """Estimate class means, priors, and the pooled covariance."""
        x = as_2d_float(x)
        y = as_1d_int(y)
        if x.shape[0] != y.shape[0]:
            raise DataError(f"{x.shape[0]} samples but {y.shape[0]} labels")
        classes, counts = np.unique(y, return_counts=True)
        if classes.size < 2:
            raise DataError("LDA requires at least two classes")
        n, d = x.shape
        means = np.vstack([x[y == c].mean(axis=0) for c in classes])
        pooled = np.zeros((d, d))
        for c, mu in zip(classes, means):
            centered = x[y == c] - mu
            pooled += centered.T @ centered
        pooled /= max(1, n - classes.size)
        ridge = self.regularization * max(np.trace(pooled) / d, 1e-300)
        pooled[np.diag_indices_from(pooled)] += ridge

        precision = np.linalg.pinv(pooled)
        priors = counts / n
        # Linear discriminant: x @ coef.T + intercept, one row per class.
        self._coef = means @ precision
        self._intercept = (
            -0.5 * np.einsum("ij,ij->i", means @ precision, means) + np.log(priors)
        )
        self.classes_ = classes
        self.means_ = means
        self.priors_ = priors
        return self

    def _require_fitted(self) -> None:
        if self._coef is None or self.classes_ is None:
            raise NotFittedError("LinearDiscriminantAnalysis is not fitted")

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Per-class linear scores (log-posterior up to a constant)."""
        self._require_fitted()
        x = as_2d_float(x)
        return x @ self._coef.T + self._intercept

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Most likely class label for each row of ``x``."""
        scores = self.decision_function(x)
        return self.classes_[np.argmax(scores, axis=1)]

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Posterior class probabilities."""
        scores = self.decision_function(x)
        scores -= scores.max(axis=1, keepdims=True)
        probs = np.exp(scores)
        probs /= probs.sum(axis=1, keepdims=True)
        return probs

    def score(self, x: np.ndarray, y: np.ndarray) -> float:
        """Mean accuracy on ``(x, y)``."""
        y = as_1d_int(y)
        return float(np.mean(self.predict(x) == y))
