"""FPGA deployment study: quantize the trained model and cost it out.

Trains the paper's discriminator, converts it to a fixed-point HLS-style
model, verifies the quantized accuracy, and prints the resource / latency
/ power estimates of Sec VII.C-D.

Run with::

    python examples/fpga_deployment.py
"""

from __future__ import annotations

import numpy as np

from repro.data import generate_corpus
from repro.discriminators import MLRDiscriminator
from repro.fpga import (
    XCZU7EV,
    FixedPointFormat,
    HLSNetworkModel,
    estimate_network_resources,
    pipeline_latency_ns,
)
from repro.fpga.power import estimate_design_power_mw
from repro.ml import stratified_split
from repro.physics import default_five_qubit_chip


def main() -> None:
    chip = default_five_qubit_chip()
    corpus = generate_corpus(chip, shots_per_state=12, seed=3)
    train_idx, test_idx = stratified_split(corpus.labels, 0.3, seed=4)

    disc = MLRDiscriminator(epochs=80, learning_rate=3e-3, seed=5)
    disc.fit(corpus, train_idx)

    # Quantize each per-qubit network and compare float vs fixed accuracy.
    features = disc.scaler.transform(
        disc.extractor.transform(corpus, test_idx)
    )
    print("per-qubit float vs 8-bit-quantized accuracy:")
    for q, model in enumerate(disc.models):
        hls = HLSNetworkModel.from_classifier(
            model,
            weight_format=FixedPointFormat(8, 3),
            activation_format=FixedPointFormat(16, 8),
        )
        y = corpus.qubit_labels(q)[test_idx]
        float_acc = float(np.mean(model.predict(features) == y))
        fixed_acc = float(np.mean(hls.predict(features) == y))
        print(f"  qubit {q + 1}: float {float_acc:.3f} -> fixed {fixed_acc:.3f}")

    # Resource, latency, and power estimates for the full 5-network design.
    arch = disc.models[0].layer_sizes
    est = estimate_network_resources(arch, n_replicas=len(disc.models))
    util = est.utilization(XCZU7EV)
    print(f"\narchitecture per qubit: {arch}")
    print(f"estimated LUT utilization on xczu7ev: {util['lut']:.1%} "
          f"(paper ~7%)")
    print(f"estimated FF utilization:  {util['ff']:.1%}")
    print(f"pipeline latency: {pipeline_latency_ns(arch):.0f} ns at 1 GHz "
          f"(paper: 5 ns)")
    print(f"power at one inference per microsecond: "
          f"{estimate_design_power_mw(disc.n_parameters):.3f} mW "
          f"(paper: 1.561 mW)")


if __name__ == "__main__":
    main()
