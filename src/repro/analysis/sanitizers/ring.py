"""Use-after-recycle and writability sanitizers for :class:`BufferRing`.

The zero-copy serving loop's ownership contract (a ring slot is valid
from ``acquire`` until the ring wraps back to it) is documented but —
unarmed — unenforced: a sink that retains a batch, or a test that
compares two batches without copying, silently reads whatever the next
batch overwrote. :class:`GuardedBufferRing` turns both hazards into
hard, witnessed failures:

- every ``acquire`` bumps the slot's *generation* and returns a
  :class:`RingSlotView` handle stamped with that generation and the
  acquiring call site; touching the handle (indexing, assignment, any
  ufunc) after the slot recycled raises :class:`UseAfterRecycleError`
  naming where the stale batch was originally acquired, and logs a
  :class:`~repro.analysis.sanitizers.reports.SanitizerReport` so even a
  swallowed exception fails an armed session;
- recycled slots are *poison-filled* (NaN) before hand-off, so stale
  views that escaped as plain arrays (``np.asarray`` strips the guard)
  read never-plausible data instead of the next tenant's traces;
- :meth:`GuardedBufferRing.seal` flips an assembled batch view to
  ``writeable=False`` before it leaves the batcher, so downstream
  stages — which own only the *paired features* buffer — cannot
  scribble on the feedline block they were handed.

Construction goes through :func:`repro.pipeline.buffers.make_buffer_ring`,
which returns this class only when ``REPRO_SANITIZE`` armed the process
(the ``trace_lock`` creation-time idiom); the unarmed hot path keeps the
plain :class:`~repro.pipeline.buffers.BufferRing` with zero overhead.
"""

from __future__ import annotations

import numpy as np

from repro.pipeline.buffers import BufferRing

from .reports import GLOBAL_LOG, ReportLog, call_site

__all__ = ["UseAfterRecycleError", "RingSlotView", "GuardedBufferRing"]

#: Never-plausible trace data for recycled slots.
_POISON = complex(float("nan"), float("nan"))


class UseAfterRecycleError(RuntimeError):
    """A ring-slot view was touched after its slot recycled."""


class RingSlotView(np.ndarray):
    """A feedline batch handle stamped with its slot's generation.

    Element access, assignment, and every ufunc first verify the
    owning slot has not recycled since this handle was issued. Plain
    views (``np.asarray``, ``.view(np.ndarray)``) shed the guard — the
    poison fill is the backstop for those — and ufunc *results* are
    returned as plain arrays, so freshly-owned derived data never
    inherits a stale generation stamp.
    """

    def __array_finalize__(self, obj) -> None:
        if obj is None:
            return
        if self.base is None:
            # Owns its data — a .copy() of a handle, the sanctioned way
            # to retain a batch. Fresh storage carries no slot guard.
            self._ring = None
            self._ring_slot = None
            self._ring_generation = None
            self._ring_site = None
            return
        self._ring = getattr(obj, "_ring", None)
        self._ring_slot = getattr(obj, "_ring_slot", None)
        self._ring_generation = getattr(obj, "_ring_generation", None)
        self._ring_site = getattr(obj, "_ring_site", None)

    def _assert_current(self) -> None:
        ring = getattr(self, "_ring", None)
        if ring is not None:
            ring._assert_handle_current(self)

    def __getitem__(self, key):
        self._assert_current()
        return super().__getitem__(key)

    def __setitem__(self, key, value) -> None:
        self._assert_current()
        super().__setitem__(key, value)

    def __array_ufunc__(self, ufunc, method, *inputs, **kwargs):
        out = kwargs.get("out")
        for operand in inputs + tuple(out or ()):
            if isinstance(operand, RingSlotView):
                operand._assert_current()
        cast = tuple(
            op.view(np.ndarray) if isinstance(op, RingSlotView) else op
            for op in inputs
        )
        if out is not None:
            kwargs["out"] = tuple(
                op.view(np.ndarray) if isinstance(op, RingSlotView) else op
                for op in out
            )
        return getattr(ufunc, method)(*cast, **kwargs)


class GuardedBufferRing(BufferRing):
    """A :class:`BufferRing` whose slots are generation-tagged.

    Drop-in compatible with the plain ring; ``log`` defaults to the
    process-wide sanitizer report log (seeded-bug tests pass a private
    :class:`ReportLog`, mirroring private ``LockGraph`` instances).
    """

    def __init__(
        self,
        max_batch: int,
        n_features: int,
        slots: int = 2,
        *,
        log: ReportLog | None = None,
    ) -> None:
        super().__init__(max_batch, n_features, slots)
        self._log = GLOBAL_LOG if log is None else log
        self._generations = [0] * len(self._slots)
        self._sites: list[str | None] = [None] * len(self._slots)

    def slot_generation(self, index: int) -> int:
        """How many times slot ``index`` has been handed out."""
        return self._generations[index]

    def acquire(self, n_shots: int, trace_len: int) -> np.ndarray | None:
        index = self._next
        view = super().acquire(n_shots, trace_len)
        if view is None:
            return None
        slot = self._slots[index]
        # Poison before hand-off: stale plain views that escaped the
        # previous generation read NaN — never the next batch's traces —
        # and unwritten rows of the new batch are NaN too.
        slot.feedline.fill(_POISON)
        slot.features.fill(np.nan)
        self._generations[index] += 1
        site = call_site()
        self._sites[index] = site
        handle = view.view(RingSlotView)
        handle._ring = self
        handle._ring_slot = index
        handle._ring_generation = self._generations[index]
        handle._ring_site = site
        return handle

    def seal(self, view: np.ndarray) -> np.ndarray:
        """Make an assembled batch read-only outside the owning stage."""
        view.flags.writeable = False
        return view

    def paired_features(self, feedline: np.ndarray) -> np.ndarray | None:
        if isinstance(feedline, RingSlotView):
            feedline._assert_current()
        return super().paired_features(feedline)

    def _assert_handle_current(self, handle: RingSlotView) -> None:
        slot = handle._ring_slot
        issued = handle._ring_generation
        current = self._generations[slot]
        if current == issued:
            return
        message = (
            f"use-after-recycle: ring slot {slot} view acquired at "
            f"{handle._ring_site} (generation {issued}) touched after the "
            f"ring wrapped (now generation {current}); batches retained "
            f"past the next {len(self._slots) - 1} acquisitions must be "
            f"copied"
        )
        self._log.report("ring-recycle", message, site=handle._ring_site)
        raise UseAfterRecycleError(message)
