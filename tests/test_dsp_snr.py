"""Tests for SNR analysis and readout confusion channels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsp.snr import (
    cloud_separation_snr,
    gaussian_overlap_fidelity,
    pairwise_snr_matrix,
)
from repro.exceptions import DataError, ShapeError
from repro.ml.confusion import ReadoutConfusion, confusion_from_labels


class TestSNR:
    def test_known_separation(self, rng):
        a = rng.normal([0, 0], 1.0, size=(5000, 2))
        b = rng.normal([4, 0], 1.0, size=(5000, 2))
        assert cloud_separation_snr(a, b) == pytest.approx(4.0, rel=0.05)

    def test_snr_scales_with_noise(self, rng):
        a = rng.normal([0, 0], 1.0, size=(2000, 2))
        b = rng.normal([2, 0], 1.0, size=(2000, 2))
        a2 = rng.normal([0, 0], 2.0, size=(2000, 2))
        b2 = rng.normal([2, 0], 2.0, size=(2000, 2))
        assert cloud_separation_snr(a, b) > cloud_separation_snr(a2, b2)

    def test_fidelity_limits(self):
        assert gaussian_overlap_fidelity(0.0) == pytest.approx(0.5)
        assert gaussian_overlap_fidelity(10.0) > 0.999

    def test_fidelity_matches_empirical_threshold_error(self, rng):
        snr = 3.0
        a = rng.normal(0.0, 1.0, size=20000)
        b = rng.normal(snr, 1.0, size=20000)
        threshold = snr / 2.0
        empirical = 0.5 * (np.mean(a < threshold) + np.mean(b >= threshold))
        assert gaussian_overlap_fidelity(snr) == pytest.approx(empirical, abs=0.01)

    def test_pairwise_matrix_symmetry(self, rng):
        points = np.vstack(
            [rng.normal([c, 0], 0.5, size=(100, 2)) for c in (0, 3, 7)]
        )
        labels = np.repeat([0, 1, 2], 100)
        snr = pairwise_snr_matrix(points, labels, 3)
        np.testing.assert_allclose(snr, snr.T)
        assert snr[0, 2] > snr[0, 1]  # farther clouds, higher SNR
        np.testing.assert_allclose(np.diag(snr), 0.0)

    def test_validation(self, rng):
        with pytest.raises(DataError):
            cloud_separation_snr(np.zeros((1, 2)), np.zeros((5, 2)))
        with pytest.raises(ShapeError):
            cloud_separation_snr(np.zeros((5, 2)), np.zeros((5, 3)))

    @settings(max_examples=20, deadline=None)
    @given(snr=st.floats(min_value=0.0, max_value=20.0))
    def test_fidelity_monotone_property(self, snr):
        f = gaussian_overlap_fidelity(snr)
        assert 0.5 <= f <= 1.0
        assert gaussian_overlap_fidelity(snr + 0.5) >= f


class TestReadoutConfusion:
    def test_perfect_readout(self):
        levels = np.array([0, 1, 2, 0, 1, 2])
        confusion = confusion_from_labels(levels, levels)
        assert confusion.error_rate == pytest.approx(0.0)
        assert confusion.false_leak_rate == pytest.approx(0.0)
        assert confusion.missed_leak_rate == pytest.approx(0.0)

    def test_asymmetric_two_confusion(self):
        # 0/1 always right; leaked state missed half the time.
        true = np.array([0] * 10 + [1] * 10 + [2] * 10)
        reported = true.copy()
        reported[20:25] = 1
        confusion = confusion_from_labels(true, reported)
        assert confusion.missed_leak_rate == pytest.approx(0.5)
        assert confusion.false_leak_rate == pytest.approx(0.0)

    def test_false_two_fraction_bounds(self):
        true = np.array([0] * 50 + [1] * 50 + [2] * 10)
        rng = np.random.default_rng(0)
        reported = true.copy()
        flip = rng.random(true.size) < 0.2
        reported[flip] = (true[flip] + 1) % 3
        confusion = confusion_from_labels(true, reported)
        assert 0.0 <= confusion.false_two_fraction <= 1.0

    def test_missing_level_gets_identity_row(self):
        true = np.array([0, 0, 1, 1])
        confusion = confusion_from_labels(true, true)
        np.testing.assert_allclose(confusion.matrix[2], [0, 0, 1])

    def test_rejects_malformed_matrix(self):
        with pytest.raises(DataError):
            ReadoutConfusion(np.full((3, 3), 0.5))
