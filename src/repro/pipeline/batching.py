"""Micro-batching: re-chunk an incoming shot stream to the dispatch size.

Sources produce chunks sized for *generation* efficiency; the
discrimination stages want batches sized for *vectorization* and latency.
:class:`MicroBatcher` decouples the two: it accumulates incoming
:class:`~repro.pipeline.source.ShotChunk` blocks per feedline and emits
uniform micro-batches, flushing any remainder at end of stream so no shot
is ever dropped.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.exceptions import ConfigurationError
from repro.pipeline.source import ShotChunk

__all__ = ["MicroBatcher"]


class MicroBatcher:
    """Accumulate shots and re-emit them in fixed-size micro-batches.

    Parameters
    ----------
    batch_size:
        Shots per emitted batch. The final batch may be smaller (the
        end-of-stream flush).
    """

    def __init__(self, batch_size: int) -> None:
        if batch_size < 1:
            raise ConfigurationError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = int(batch_size)

    def rebatch(self, chunks: Iterable[ShotChunk]) -> Iterator[ShotChunk]:
        """Yield uniform micro-batches from an arbitrary chunk stream.

        Batch ids are re-numbered from zero. Ground-truth labels are
        carried per batch: a batch has labels exactly when every chunk
        contributing shots to it has them, so an unlabeled chunk blanks
        only the batches its shots land in, not the rest of the stream.
        """
        # Buffered (feedline, levels-or-None) segments, in arrival order.
        segments: list[tuple[np.ndarray, np.ndarray | None]] = []
        buffered = 0
        batch_id = 0

        def emit(take: int) -> ShotChunk:
            nonlocal buffered, batch_id
            feeds: list[np.ndarray] = []
            levels: list[np.ndarray] = []
            labeled = True
            need = take
            while need:
                feed, lev = segments[0]
                n = feed.shape[0]
                if n <= need:
                    segments.pop(0)
                    feeds.append(feed)
                    if lev is None:
                        labeled = False
                    else:
                        levels.append(lev)
                    need -= n
                else:
                    feeds.append(feed[:need])
                    if lev is None:
                        labeled = False
                    else:
                        levels.append(lev[:need])
                    segments[0] = (
                        feed[need:],
                        None if lev is None else lev[need:],
                    )
                    need = 0
            batch = ShotChunk(
                feedline=feeds[0] if len(feeds) == 1 else np.concatenate(feeds),
                prepared_levels=(
                    (levels[0] if len(levels) == 1 else np.concatenate(levels))
                    if labeled
                    else None
                ),
                chunk_id=batch_id,
            )
            buffered -= take
            batch_id += 1
            return batch

        for chunk in chunks:
            segments.append((chunk.feedline, chunk.prepared_levels))
            buffered += chunk.n_shots
            while buffered >= self.batch_size:
                yield emit(self.batch_size)
        if buffered:
            yield emit(buffered)
