"""Sec III.A bench: CNOT malfunction with a leaked control.

Paper: ~3x leakage growth within 12 CNOTs, 1.5-2% transfer per gate.
"""

import pytest

from benchmarks.conftest import run_once
from repro.experiments.sec3 import run_sec3_cnot_leakage


def test_sec3_repeated_cnot_leakage(benchmark, profile):
    result = run_once(benchmark, run_sec3_cnot_leakage, profile)
    print("\n" + result.format_table())
    assert 0.015 <= result.single_gate_transfer <= 0.02
    assert result.growth_ratio_at_12 == pytest.approx(3.0, abs=0.6)
    leaked = result.leaked_control_population
    normal = result.normal_control_population
    assert all(a >= b for a, b in zip(leaked, normal))
