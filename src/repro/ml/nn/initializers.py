"""Weight initializers for dense layers."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["glorot_uniform", "he_normal", "get_initializer"]


def glorot_uniform(
    fan_in: int, fan_out: int, rng: np.random.Generator
) -> np.ndarray:
    """Glorot/Xavier uniform initialization, suited to tanh/linear layers."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def he_normal(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """He normal initialization, suited to ReLU layers."""
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=(fan_in, fan_out))


_REGISTRY = {"glorot_uniform": glorot_uniform, "he_normal": he_normal}


def get_initializer(name: str):
    """Look up an initializer callable by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown initializer {name!r}; expected one of {known}"
        )
