"""Backend registry: resolve a ``TrafficSpec.backend`` name to a backend.

The serving layer (:class:`~repro.serve.service.ReadoutService`,
:class:`~repro.fleet.ReadoutFleet` tenants) calls :func:`create_backend`
with the spec's traffic fields instead of constructing trace sources
inline — one place decides what a backend name means, and recording
(``record_path``) composes over any recordable backend.
"""

from __future__ import annotations

from repro.backends.base import InstrumentBackend
from repro.backends.dummy import DummyBackend
from repro.backends.recording import RecordingBackend, ReplayBackend
from repro.backends.simulator import SimulatorBackend
from repro.backends.socketio import SocketBackend
from repro.exceptions import ConfigurationError
from repro.physics.device import ChipConfig

__all__ = ["BACKEND_NAMES", "create_backend"]

#: Valid ``TrafficSpec.backend`` selections.
BACKEND_NAMES = ("simulator", "dummy", "replay", "socket")


def create_backend(
    name: str,
    chip: ChipConfig,
    *,
    chunk_size: int = 256,
    drift=None,
    corpus_path: str | None = None,
    record_path: str | None = None,
    socket_path: str | None = None,
) -> InstrumentBackend:
    """Build the named backend for ``chip``; not yet opened.

    ``record_path`` wraps the built backend in a
    :class:`~repro.backends.recording.RecordingBackend` (invalid for
    ``replay`` — a replayed stream already *is* a recording).
    Cross-field requirements mirror ``TrafficSpec`` validation so
    programmatic callers get the same errors as spec files.
    """
    if name not in BACKEND_NAMES:
        known = ", ".join(BACKEND_NAMES)
        raise ConfigurationError(
            f"backend must be one of: {known}; got {name!r}"
        )
    drifting = drift is not None and not drift.is_null
    if name == "replay" and corpus_path is None:
        raise ConfigurationError("the replay backend requires corpus_path")
    if name != "replay" and corpus_path is not None:
        raise ConfigurationError(
            "corpus_path is only meaningful with the replay backend"
        )
    if name == "socket" and socket_path is None:
        raise ConfigurationError("the socket backend requires socket_path")
    if name != "socket" and socket_path is not None:
        raise ConfigurationError(
            "socket_path is only meaningful with the socket backend"
        )
    if name == "replay" and record_path is not None:
        raise ConfigurationError(
            "record_path cannot be combined with the replay backend: a "
            "replayed stream is already a recording"
        )
    if drifting and name != "simulator":
        raise ConfigurationError(
            "drift injection requires the simulator backend, got "
            f"{name!r}"
        )

    if name == "replay":
        backend: InstrumentBackend = ReplayBackend(corpus_path, chip=chip)
    elif name == "socket":
        backend = SocketBackend(socket_path, chip=chip)
    elif name == "dummy":
        backend = DummyBackend(chip, chunk_size=chunk_size)
    else:
        backend = SimulatorBackend(chip, chunk_size=chunk_size, drift=drift)
    if record_path is not None:
        backend = RecordingBackend(backend, record_path)
    return backend
