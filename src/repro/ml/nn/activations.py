"""Activation functions and their derivatives.

Each activation is a pair of vectorized callables ``f(z)`` and
``df(z, a)`` where ``a = f(z)`` is passed back in so derivatives that are
cheaper in terms of the output (sigmoid, tanh) avoid recomputation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["Activation", "get_activation", "softmax"]


@dataclass(frozen=True)
class Activation:
    """A named activation with forward and derivative callables."""

    name: str
    forward: Callable[[np.ndarray], np.ndarray]
    derivative: Callable[[np.ndarray, np.ndarray], np.ndarray]


def _relu(z: np.ndarray) -> np.ndarray:
    return np.maximum(z, 0.0)


def _relu_derivative(z: np.ndarray, a: np.ndarray) -> np.ndarray:
    return (z > 0.0).astype(z.dtype)


def _leaky_relu(z: np.ndarray) -> np.ndarray:
    return np.where(z > 0.0, z, 0.01 * z)


def _leaky_relu_derivative(z: np.ndarray, a: np.ndarray) -> np.ndarray:
    return np.where(z > 0.0, 1.0, 0.01).astype(z.dtype)


def _tanh(z: np.ndarray) -> np.ndarray:
    return np.tanh(z)


def _tanh_derivative(z: np.ndarray, a: np.ndarray) -> np.ndarray:
    return 1.0 - a * a


def _sigmoid(z: np.ndarray) -> np.ndarray:
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


def _sigmoid_derivative(z: np.ndarray, a: np.ndarray) -> np.ndarray:
    return a * (1.0 - a)


def _identity(z: np.ndarray) -> np.ndarray:
    return z


def _identity_derivative(z: np.ndarray, a: np.ndarray) -> np.ndarray:
    return np.ones_like(z)


_REGISTRY = {
    "relu": Activation("relu", _relu, _relu_derivative),
    "leaky_relu": Activation("leaky_relu", _leaky_relu, _leaky_relu_derivative),
    "tanh": Activation("tanh", _tanh, _tanh_derivative),
    "sigmoid": Activation("sigmoid", _sigmoid, _sigmoid_derivative),
    "identity": Activation("identity", _identity, _identity_derivative),
}


def get_activation(name: str) -> Activation:
    """Look up an activation by name.

    Raises
    ------
    ConfigurationError
        If ``name`` is not one of the registered activations.
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(f"unknown activation {name!r}; expected one of {known}")


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax along ``axis``."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    ez = np.exp(shifted)
    return ez / np.sum(ez, axis=axis, keepdims=True)
