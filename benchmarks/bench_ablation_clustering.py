"""Ablation bench: spectral clustering vs k-means for leakage detection."""

from repro.data import generate_calibration_shots
from repro.discriminators import detect_leakage_clusters
from repro.physics import default_five_qubit_chip


def test_ablation_clustering_method(benchmark, profile):
    chip = default_five_qubit_chip()
    calibration = generate_calibration_shots(
        chip, n_shots=profile.calibration_shots, seed=profile.seed + 93
    )

    def run():
        out = {}
        for method in ("spectral", "kmeans"):
            result = detect_leakage_clusters(
                calibration,
                qubit=3,
                method=method,
                max_points=profile.spectral_max_points,
                seed=profile.seed + 94,
            )
            out[method] = result
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nclustering-method ablation (leak-prone qubit):")
    for method, r in results.items():
        print(
            f"  {method:9s}: precision={r.precision:.2f} recall={r.recall:.2f} "
            f"flagged={r.n_detected} (truth {r.n_true_leaked})"
        )
    # Both find the leakage; spectral flags a tighter (more precise)
    # cluster than raw k-means.
    assert results["spectral"].recall > 0.6
    assert results["kmeans"].recall > 0.6
    assert results["spectral"].precision >= results["kmeans"].precision - 0.02
