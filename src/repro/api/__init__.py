"""The programmatic front door to the reproduction.

Everything the CLI can do is available as a library call::

    from repro.api import run, run_suite, experiments

    result = run("table4", profile="quick")
    print(result.format_table())
    print(result.to_json())                  # measured vs paper, diffable

    suite = run_suite(tags=["fpga"], workers=2)
    for name, res in suite.results.items():
        print(name, res.deviations())

Pieces
------
- :data:`experiments` — the :class:`ExperimentRegistry`; every
  ``repro.experiments.*`` module registers itself via the
  :func:`experiment` decorator, and :func:`discover` imports them all.
- :class:`ExperimentResult` — the uniform result base: ``measured``,
  ``paper_values``, ``deviations()``, ``to_dict()``/``to_json()`` on top
  of ``format_table()``.
- :func:`run` / :func:`run_suite` — execute one experiment or a
  name/tag selection (optionally concurrent, with shared caches).
- :func:`run_pipeline` — the streaming runtime as a library call: one
  or many feedlines, pluggable shard executors, adaptive micro-batching.
  Since the serving redesign it is a thin shim over
  :mod:`repro.serve` — repeated traffic should hold a
  :class:`repro.serve.ReadoutService` and amortize warm-up across runs.
- ``repro.discriminators.registry`` — the sibling plugin registry that
  resolves design names (``"ours"``, ``"fnn"``, ...) to discriminator
  classes for training, pipeline calibration, and artifact loading.
"""

from repro.api.pipeline import run_pipeline
from repro.api.registry import (
    ExperimentRegistry,
    ExperimentSpec,
    discover,
    experiment,
    experiments,
)
from repro.api.results import ExperimentResult, jsonify
from repro.api.suite import SuiteEntry, SuiteResult, run, run_suite

__all__ = [
    "ExperimentRegistry",
    "ExperimentSpec",
    "ExperimentResult",
    "SuiteEntry",
    "SuiteResult",
    "discover",
    "experiment",
    "experiments",
    "jsonify",
    "run",
    "run_pipeline",
    "run_suite",
]
