"""Table I bench: ERASER vs ERASER+M speculation (d=7, 10 cycles).

Paper: ERASER 0.957 / 4.19e-3; ERASER+M 0.971 / 2.97e-3. Shape asserted:
+M wins on accuracy and on leakage population.
"""

from benchmarks.conftest import run_once
from repro.experiments.table1 import run_table1


def test_table1_eraser_speculation(benchmark, profile):
    result = run_once(benchmark, run_table1, profile)
    print("\n" + result.format_table())
    by_name = {r["design"]: r for r in result.rows}
    assert by_name["ERASER+M"]["accuracy"] >= by_name["ERASER"]["accuracy"]
    assert (
        by_name["ERASER+M"]["leakage_population"]
        < by_name["ERASER"]["leakage_population"]
    )
    # Absolute scale within a factor-3 band of the paper's numbers.
    assert 0.9 < by_name["ERASER"]["accuracy"] <= 1.0
    assert 1e-3 < by_name["ERASER"]["leakage_population"] < 2e-2
