"""Loss functions returning (scalar loss, gradient w.r.t. network output)."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ShapeError
from repro.ml.nn.activations import softmax

__all__ = ["softmax_cross_entropy", "mean_squared_error", "one_hot"]


def one_hot(labels: np.ndarray, n_classes: int) -> np.ndarray:
    """Encode integer ``labels`` as one-hot rows of width ``n_classes``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
    if labels.size and (labels.min() < 0 or labels.max() >= n_classes):
        raise ShapeError(
            f"labels must lie in [0, {n_classes}), got range "
            f"[{labels.min()}, {labels.max()}]"
        )
    encoded = np.zeros((labels.shape[0], n_classes))
    encoded[np.arange(labels.shape[0]), labels] = 1.0
    return encoded


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Cross-entropy of softmax(logits) against integer ``labels``.

    Returns the mean loss over the batch and the gradient with respect to
    the logits (already carrying the 1/N batch factor, so layer backward
    passes can simply accumulate).
    """
    if logits.ndim != 2:
        raise ShapeError(f"logits must be 2-D, got shape {logits.shape}")
    n = logits.shape[0]
    probs = softmax(logits)
    targets = one_hot(labels, logits.shape[1])
    eps = 1e-12
    loss = float(-np.sum(targets * np.log(probs + eps)) / n)
    grad = (probs - targets) / n
    return loss, grad


def mean_squared_error(
    predictions: np.ndarray, targets: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean squared error and its gradient w.r.t. ``predictions``."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ShapeError(
            f"shape mismatch: predictions {predictions.shape} vs "
            f"targets {targets.shape}"
        )
    diff = predictions - targets
    loss = float(np.mean(diff * diff))
    grad = 2.0 * diff / diff.size
    return loss, grad
