"""Matched filters for state discrimination (Sec V.B).

The paper defines the kernel for two trace classes as the mean difference
normalized by the variance difference,

    K(t) = (mu_1(t) - mu_0(t)) / (sigma_1^2(t) - sigma_0^2(t)),

and applies it by dot product, producing one likelihood score per trace.
The variance *difference* is singular whenever the two classes are equally
noisy (exactly the case for additive amplifier noise), so this module also
provides the standard variance-*sum* normalization and makes the choice an
explicit parameter:

- ``variance_mode="sum"`` (default): ``sigma_0^2 + sigma_1^2`` — the
  classic SNR-optimal filter for Gaussian noise.
- ``variance_mode="difference"``: the paper's formula, guarded by an
  epsilon floor. Benchmarked against "sum" in the MF ablation.
- ``variance_mode="unit"``: plain mean-difference (boxcar-weighted) filter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError, DataError, ShapeError

__all__ = [
    "matched_filter_kernel",
    "apply_matched_filter",
    "fuse_demod_decimation",
    "MatchedFilterBank",
    "FusedKernelBank",
]

_VARIANCE_MODES = ("sum", "difference", "unit")


def _class_stats(traces: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-time mean (complex) and total variance (real) of a trace class."""
    traces = np.asarray(traces)
    if traces.ndim != 2:
        raise ShapeError(f"traces must be 2-D, got {traces.shape}")
    if traces.shape[0] < 2:
        raise DataError("need at least 2 traces per class for variance")
    mean = traces.mean(axis=0)
    centered = traces - mean
    variance = np.mean(np.abs(centered) ** 2, axis=0)
    return mean, variance


def matched_filter_kernel(
    traces_a: np.ndarray,
    traces_b: np.ndarray,
    variance_mode: str = "sum",
    epsilon: float = 1e-9,
) -> np.ndarray:
    """Build a complex kernel separating class ``b`` (high) from ``a`` (low).

    Parameters
    ----------
    traces_a, traces_b:
        Complex trace arrays (n_shots, trace_len) for the two classes.
    variance_mode:
        Normalization of the mean difference; see module docstring.
    epsilon:
        Floor added to the denominator magnitude (relative to its median)
        to keep the paper's difference mode finite.
    """
    if variance_mode not in _VARIANCE_MODES:
        raise ConfigurationError(
            f"variance_mode must be one of {_VARIANCE_MODES}, got {variance_mode!r}"
        )
    mean_a, var_a = _class_stats(traces_a)
    mean_b, var_b = _class_stats(traces_b)
    if mean_a.shape != mean_b.shape:
        raise ShapeError("classes have different trace lengths")

    diff = mean_b - mean_a
    if variance_mode == "unit":
        return diff
    if variance_mode == "sum":
        denom = var_a + var_b
    else:
        denom = var_b - var_a
    scale = np.median(np.abs(denom))
    floor = epsilon * max(scale, 1e-300)
    guarded = np.sign(denom) * np.maximum(np.abs(denom), floor)
    guarded = np.where(guarded == 0.0, floor, guarded)
    return diff / guarded


def apply_matched_filter(kernel: np.ndarray, traces: np.ndarray) -> np.ndarray:
    """Score traces against a kernel: ``Re <K, z> = Re sum_t conj(K) z``.

    Higher scores mean "more like class b". Accepts a single trace or a
    batch; returns float scores.
    """
    kernel = np.asarray(kernel)
    traces = np.asarray(traces)
    if traces.shape[-1] != kernel.shape[0]:
        raise ShapeError(
            f"trace length {traces.shape[-1]} != kernel length {kernel.shape[0]}"
        )
    return np.real(traces @ np.conj(kernel))


def fuse_demod_decimation(
    kernels: np.ndarray, tone: np.ndarray, factor: int
) -> np.ndarray:
    """Fold demod tone and boxcar decimation into matched-filter kernels.

    The legacy per-channel chain computes, per trace ``z``,

        score_k = Re < K_k, boxcar(z * tone, factor) >,

    which is linear in ``z`` — so the whole chain collapses into one
    weight row per filter operating on the *raw* feedline:

        score_k = Re( z[:m] @ W_k ),   W_k[j] = tone[j] conj(K_k[j//d]) / d,

    with ``m = n_bins * factor`` (trailing samples beyond the last full
    boxcar group drop out, matching :func:`repro.dsp.filters
    .boxcar_decimate`). Returns the pre-conjugated weight matrix ``W``
    of shape ``(n_filters, n_bins * factor)`` — scores are
    ``np.real(feedline[:, :m] @ W.T)`` with no demodulated or decimated
    intermediates.
    """
    if factor < 1:
        raise ConfigurationError(f"factor must be >= 1, got {factor}")
    kernels = np.atleast_2d(np.asarray(kernels))
    tone = np.asarray(tone)
    n_bins = kernels.shape[1]
    if tone.shape[0] != n_bins * factor:
        raise ShapeError(
            f"tone length {tone.shape[0]} != {n_bins} bins x factor {factor}"
        )
    expanded = np.repeat(np.conj(kernels), factor, axis=1)
    return expanded * (tone / factor)


@dataclass(frozen=True)
class FusedKernelBank:
    """All channels' demod+decimate+matched-filter weights, stacked.

    One weight row per (qubit, filter), qubit-major — applying the bank
    to a raw feedline batch is a single matmul producing the exact
    feature layout :class:`~repro.discriminators.features
    .MatchedFilterFeatureExtractor` defines, with no per-qubit
    ``feedline * tone`` copies and no decimated intermediates.

    Attributes
    ----------
    weights:
        Pre-conjugated complex weights ``(n_qubits * filters_per_qubit,
        n_samples)`` built by :func:`fuse_demod_decimation`.
    filters_per_qubit:
        Filters per channel (the per-qubit row block height).
    decimation:
        Boxcar factor folded into the weights.
    """

    weights: np.ndarray
    filters_per_qubit: int
    decimation: int

    def __post_init__(self) -> None:
        weights = np.asarray(self.weights)
        if weights.ndim != 2:
            raise ShapeError(f"weights must be 2-D, got {weights.shape}")
        if self.filters_per_qubit < 1:
            raise ConfigurationError("filters_per_qubit must be >= 1")
        if weights.shape[0] % self.filters_per_qubit:
            raise ShapeError(
                f"{weights.shape[0]} rows not divisible by "
                f"{self.filters_per_qubit} filters per qubit"
            )
        # Row-major weights make ``feedline @ weights.T`` hit the fast
        # BLAS path without an internal transpose copy per batch.
        object.__setattr__(
            self, "weights", np.ascontiguousarray(weights)
        )

    @property
    def n_filters(self) -> int:
        return self.weights.shape[0]

    @property
    def n_qubits(self) -> int:
        return self.weights.shape[0] // self.filters_per_qubit

    @property
    def n_samples(self) -> int:
        """Raw feedline samples consumed (``n_bins * decimation``)."""
        return self.weights.shape[1]

    def scores(
        self,
        feedline: np.ndarray,
        out: np.ndarray | None = None,
        scratch: np.ndarray | None = None,
    ):
        """Score a raw feedline batch: ``Re(feedline[:, :m] @ W.T)``.

        ``out`` — an optional preallocated float row block the real
        scores are written into (the zero-copy serving path); a fresh
        array is returned when omitted. ``scratch`` — an optional
        complex ``(n_shots, n_filters)`` workspace for the matmul, so a
        warm serving loop performs no per-batch allocation at all.
        """
        feedline = np.atleast_2d(np.asarray(feedline))
        if feedline.shape[1] < self.n_samples:
            raise ShapeError(
                f"trace length {feedline.shape[1]} shorter than fused "
                f"window {self.n_samples}"
            )
        view = feedline[:, : self.n_samples]
        expected = (feedline.shape[0], self.n_filters)
        if (
            scratch is not None
            and scratch.shape == expected
            and scratch.dtype == np.result_type(view.dtype, self.weights.dtype)
        ):
            complex_scores = np.matmul(view, self.weights.T, out=scratch)
        else:
            complex_scores = view @ self.weights.T
        if out is None:
            return np.ascontiguousarray(complex_scores.real)
        np.copyto(out, complex_scores.real)
        return out


@dataclass(frozen=True)
class MatchedFilterBank:
    """An ordered set of named kernels applied together.

    The paper's per-qubit filter bank is nine kernels (three QMFs, three
    RMFs, three EMFs); :meth:`transform` turns a batch of demodulated
    traces into the (n_shots, n_filters) score block that feeds the NN.
    """

    names: tuple[str, ...]
    kernels: np.ndarray  # (n_filters, trace_len) complex

    def __post_init__(self) -> None:
        kernels = np.asarray(self.kernels)
        if kernels.ndim != 2:
            raise ShapeError(f"kernels must be 2-D, got {kernels.shape}")
        if len(self.names) != kernels.shape[0]:
            raise ShapeError(
                f"{len(self.names)} names for {kernels.shape[0]} kernels"
            )
        object.__setattr__(self, "names", tuple(self.names))
        object.__setattr__(self, "kernels", kernels)

    @property
    def n_filters(self) -> int:
        return self.kernels.shape[0]

    @property
    def trace_len(self) -> int:
        return self.kernels.shape[1]

    def transform(self, traces: np.ndarray) -> np.ndarray:
        """Apply every kernel; returns (n_shots, n_filters) scores."""
        traces = np.atleast_2d(np.asarray(traces))
        return np.real(traces @ np.conj(self.kernels).T)

    def truncated(self, trace_len: int) -> "MatchedFilterBank":
        """Bank with kernels cut to a shorter readout window."""
        if not 1 <= trace_len <= self.trace_len:
            raise DataError(
                f"trace_len must be in [1, {self.trace_len}], got {trace_len}"
            )
        return MatchedFilterBank(
            self.names,
            self.kernels[:, :trace_len].copy(),  # repro: allow(no-hidden-copy) load-time kernel prep, not per-batch
        )
