"""Uniform result interface carried by every experiment runner.

Every paper table/figure returns a frozen dataclass subclassing
:class:`ExperimentResult`, which layers a machine-readable contract on
top of the existing ``format_table()`` text view:

- ``measured`` — measured values as a JSON-safe dict, shaped to mirror
  the paper's published values where those exist;
- ``paper_values`` — the published numbers (empty for qualitative
  figures);
- ``deviations()`` — measured-vs-paper deltas computed by walking the
  two dicts in parallel, so any experiment is diffable against the paper
  without bespoke code;
- ``to_dict()`` / ``to_json()`` — the full record (name, profile, seed,
  measured, paper, deviations) for benches, dashboards, and ``repro run
  --json``.

Numpy scalars/arrays, tuples, and tuple dict keys are converted to
JSON-safe types by :func:`jsonify`; complex arrays become
``{"real": ..., "imag": ...}`` pairs.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

import numpy as np

__all__ = ["ExperimentResult", "jsonify"]


def jsonify(value: Any) -> Any:
    """Recursively convert a value into JSON-serializable builtins."""
    if isinstance(value, dict):
        return {_jsonify_key(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonify(v) for v in value]
    if isinstance(value, np.ndarray):
        if np.iscomplexobj(value):
            return {
                "real": value.real.tolist(),
                "imag": value.imag.tolist(),
            }
        return value.tolist()
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, complex):
        return {"real": value.real, "imag": value.imag}
    return value


def _jsonify_key(key: Any) -> str:
    if isinstance(key, str):
        return key
    if isinstance(key, tuple):
        return ",".join(str(jsonify(k)) for k in key)
    return str(jsonify(key))


class ExperimentResult:
    """Base class for all experiment results.

    Subclasses are frozen dataclasses; the experiment decorator binds
    ``name``/``profile`` onto each instance after the runner returns, so
    results are self-describing without every runner threading metadata
    through its constructor.
    """

    #: Bound by ``@experiment`` after the runner returns.
    _experiment_name: str | None = None
    _profile_name: str | None = None
    _profile_seed: int | None = None

    @property
    def name(self) -> str | None:
        """Registry name of the experiment that produced this result."""
        return self._experiment_name

    @property
    def profile_name(self) -> str | None:
        """Name of the sizing profile the experiment ran under."""
        return self._profile_name

    @property
    def profile_seed(self) -> int | None:
        """Base RNG seed the experiment ran under."""
        return self._profile_seed

    def _bind(self, name: str, profile) -> None:
        # The subclasses are frozen dataclasses, whose __setattr__ raises
        # even for non-field attributes. Binding metadata (not spec
        # fields) once, right after construction, is the sanctioned
        # exception to the frozen-spec contract.
        object.__setattr__(self, "_experiment_name", name)  # repro: allow(frozen-spec) one-time metadata bind
        object.__setattr__(self, "_profile_name", getattr(profile, "name", None))  # repro: allow(frozen-spec) one-time metadata bind
        object.__setattr__(self, "_profile_seed", getattr(profile, "seed", None))  # repro: allow(frozen-spec) one-time metadata bind

    # -- measured / paper views -----------------------------------------

    def _measured(self) -> dict:
        """Raw measured values; default is the dataclass fields.

        Subclasses override to mirror the paper dict's shape (so
        :meth:`deviations` lines up) or to drop bulky array panels.
        """
        if dataclasses.is_dataclass(self):
            return {
                f.name: getattr(self, f.name)
                for f in dataclasses.fields(self)
            }
        return {}

    def _paper_values(self) -> dict:
        """Published values this experiment reproduces; default none."""
        return {}

    @property
    def measured(self) -> dict:
        """Measured values as a JSON-safe dict."""
        return jsonify(self._measured())

    @property
    def paper_values(self) -> dict:
        """The paper's published values as a JSON-safe dict."""
        return jsonify(self._paper_values())

    # -- deviations ------------------------------------------------------

    def deviations(self) -> dict:
        """Measured-vs-paper deltas for every aligned numeric value.

        The paper and measured dicts are walked in parallel; wherever
        both hold a number (or equal-length numeric sequences, compared
        elementwise) at the same path, an entry ``path: {measured,
        paper, delta, relative}`` is emitted. Paths the paper publishes
        but the run did not measure (or vice versa) are skipped.
        """
        out: dict[str, dict] = {}
        self._walk_deviations(self.paper_values, self.measured, (), out)
        return out

    @staticmethod
    def _walk_deviations(
        paper: Any, measured: Any, path: tuple[str, ...], out: dict
    ) -> None:
        if isinstance(paper, dict) and isinstance(measured, dict):
            for key, paper_value in paper.items():
                if key in measured:
                    ExperimentResult._walk_deviations(
                        paper_value, measured[key], path + (str(key),), out
                    )
            return
        if isinstance(paper, list) and isinstance(measured, list):
            if len(paper) == len(measured):
                for i, (pv, mv) in enumerate(zip(paper, measured)):
                    ExperimentResult._walk_deviations(
                        pv, mv, path + (str(i),), out
                    )
            return
        if _is_number(paper) and _is_number(measured):
            delta = float(measured) - float(paper)
            out[".".join(path)] = {
                "measured": float(measured),
                "paper": float(paper),
                "delta": delta,
                "relative": delta / abs(float(paper)) if paper else None,
            }

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """Full machine-readable record of this run."""
        return {
            "name": self.name,
            "profile": self.profile_name,
            "seed": self.profile_seed,
            "measured": self.measured,
            "paper": self.paper_values,
            "deviations": self.deviations(),
        }

    def to_json(
        self, path: str | Path | None = None, indent: int = 2
    ) -> str:
        """Serialize :meth:`to_dict` to JSON; optionally write ``path``."""
        payload = json.dumps(self.to_dict(), indent=indent, sort_keys=True)
        if path is not None:
            Path(path).write_text(payload + "\n")
        return payload

    def format_table(self) -> str:
        """Human-readable text view (every subclass provides one)."""
        raise NotImplementedError


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)
