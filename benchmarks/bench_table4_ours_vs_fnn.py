"""Table IV bench: the paper's design vs the FNN baseline.

Paper: OURS F5Q = 0.9052 vs FNN 0.8985 (6.6% relative improvement).
Asserted shape: OURS improves on the FNN and lands in the paper's
absolute band, with a ~100x smaller model.
"""

from benchmarks.conftest import run_once
from repro.experiments.table4 import run_table4


def test_table4_ours_vs_fnn(benchmark, profile):
    result = run_once(benchmark, run_table4, profile)
    print("\n" + result.format_table())
    by_name = {r["design"]: r for r in result.rows}
    assert by_name["ours"]["f5q"] > by_name["fnn"]["f5q"]
    assert result.relative_improvement > 0.0
    # OURS absolute F5Q in the paper's neighborhood.
    assert 0.85 < by_name["ours"]["f5q"] <= 1.0
    # Model-size headline: ~100x smaller.
    ratio = by_name["fnn"]["n_parameters"] / by_name["ours"]["n_parameters"]
    assert 80 < ratio < 130
