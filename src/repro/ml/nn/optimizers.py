"""Gradient-descent optimizers operating on lists of parameter arrays."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer: subclasses update parameters in place."""

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        """Apply one update. ``params[i]`` is updated in place from ``grads[i]``."""
        raise NotImplementedError

    def reset(self) -> None:
        """Clear any accumulated state (momenta, step counters)."""


class SGD(Optimizer):
    """Stochastic gradient descent with optional classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.0) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be > 0, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: list[np.ndarray] | None = None

    def reset(self) -> None:
        self._velocity = None

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._velocity is None:
            self._velocity = [np.zeros_like(p) for p in params]
        for p, g, v in zip(params, grads, self._velocity):
            v *= self.momentum
            v -= self.learning_rate * g
            p += v


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015), optionally with decoupled weight decay."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(f"learning_rate must be > 0, got {learning_rate}")
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError(
                f"betas must be in [0, 1), got ({beta1}, {beta2})"
            )
        if weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be >= 0, got {weight_decay}")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.weight_decay = weight_decay
        self._m: list[np.ndarray] | None = None
        self._v: list[np.ndarray] | None = None
        self._t = 0

    def reset(self) -> None:
        self._m = None
        self._v = None
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        if self._m is None or self._v is None:
            self._m = [np.zeros_like(p) for p in params]
            self._v = [np.zeros_like(p) for p in params]
        self._t += 1
        bias1 = 1.0 - self.beta1**self._t
        bias2 = 1.0 - self.beta2**self._t
        for p, g, m, v in zip(params, grads, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * (g * g)
            m_hat = m / bias1
            v_hat = v / bias2
            if self.weight_decay:
                # Decoupled weight decay (AdamW).
                p *= 1.0 - self.learning_rate * self.weight_decay
            p -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
