"""Readout SNR analysis utilities.

Quantifies state distinguishability the way experimentalists do: the
separation of integrated IQ clouds in units of their spread, and the
Gaussian-overlap bound on assignment fidelity. Used to characterize
devices, to validate the simulator against target operating points, and
by the duration-sweep analysis (longer integration raises SNR as sqrt(T)
until relaxation takes over).
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erf

from repro.exceptions import DataError, ShapeError

__all__ = [
    "cloud_separation_snr",
    "gaussian_overlap_fidelity",
    "pairwise_snr_matrix",
]


def cloud_separation_snr(points_a: np.ndarray, points_b: np.ndarray) -> float:
    """Separation of two IQ clouds in pooled-standard-deviation units.

    ``SNR = |mu_a - mu_b| / sqrt((var_a + var_b) / 2)`` with isotropic
    per-cloud variance (the scalar convention used in readout papers).
    """
    a = np.asarray(points_a, dtype=np.float64)
    b = np.asarray(points_b, dtype=np.float64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ShapeError("point clouds must be 2-D with matching width")
    if a.shape[0] < 2 or b.shape[0] < 2:
        raise DataError("need >= 2 points per cloud")
    mu_a, mu_b = a.mean(axis=0), b.mean(axis=0)
    # Isotropic spread: mean per-axis variance.
    var_a = float(np.mean(a.var(axis=0)))
    var_b = float(np.mean(b.var(axis=0)))
    separation = float(np.linalg.norm(mu_a - mu_b))
    pooled = math.sqrt(max((var_a + var_b) / 2.0, 1e-300))
    return separation / pooled


def gaussian_overlap_fidelity(snr: float) -> float:
    """Assignment fidelity bound for two isotropic Gaussian clouds.

    With a midpoint threshold along the separation axis the error per
    class is ``Q(SNR / 2)``, so ``F = (1 + erf(SNR / (2 sqrt(2)))) / 2``.
    """
    if snr < 0:
        raise DataError(f"snr must be >= 0, got {snr}")
    return 0.5 * (1.0 + float(erf(snr / (2.0 * math.sqrt(2.0)))))


def pairwise_snr_matrix(
    points: np.ndarray, labels: np.ndarray, n_levels: int
) -> np.ndarray:
    """Symmetric matrix of cloud-separation SNRs between all level pairs."""
    points = np.asarray(points, dtype=np.float64)
    labels = np.asarray(labels)
    if labels.shape[0] != points.shape[0]:
        raise ShapeError("labels and points disagree on sample count")
    snr = np.zeros((n_levels, n_levels))
    clouds = []
    for level in range(n_levels):
        members = points[labels == level]
        if members.shape[0] < 2:
            raise DataError(f"need >= 2 points for level {level}")
        clouds.append(members)
    for a in range(n_levels):
        for b in range(a + 1, n_levels):
            snr[a, b] = snr[b, a] = cloud_separation_snr(clouds[a], clouds[b])
    return snr
