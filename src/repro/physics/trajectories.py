"""Resonator field trajectories conditioned on qubit level trajectories.

Applies the exact one-sample propagator of the dispersive Langevin equation
(see :mod:`repro.physics.dispersive`) as a recurrence over ADC samples:

    alpha[t+1] = ss(level_t) + (alpha[t] - ss(level_t)) * decay(level_t)

which is exact for levels held constant over each sample period and
naturally produces the ring-up transient from alpha[0] = 0 as well as the
mid-trace kinks that relaxation/excitation matched filters key on.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.physics.device import QubitParams
from repro.physics.dispersive import segment_decay, steady_state_field

__all__ = ["baseband_response", "state_mean_response"]


def baseband_response(
    qubit: QubitParams,
    level_matrix: np.ndarray,
    dt: float,
    initial_field: complex = 0.0,
) -> np.ndarray:
    """Complex baseband field traces for a batch of level trajectories.

    Parameters
    ----------
    qubit:
        Device parameters (sets pulls, linewidth, drive, LO phase).
    level_matrix:
        Integer array (n_shots, trace_len): level at each ADC sample.
    dt:
        Sample period in ns.
    initial_field:
        Field at t=0; 0 models the probe tone switching on with the window.

    Returns
    -------
    complex128 array (n_shots, trace_len); sample t holds the field at the
    *start* of sample period t, so traces begin at ``initial_field``.
    """
    levels = np.asarray(level_matrix)
    if levels.ndim != 2:
        raise ShapeError(f"level_matrix must be 2-D, got {levels.shape}")
    if dt <= 0:
        raise ConfigurationError("dt must be positive")
    pulls = qubit.level_pulls()
    if levels.min() < 0 or levels.max() >= pulls.shape[0]:
        raise ShapeError("levels out of range for a 3-level qubit")

    lo = np.exp(1j * qubit.lo_phase)
    steady = steady_state_field(qubit.drive, pulls, qubit.kappa) * lo
    decay = segment_decay(pulls, qubit.kappa, dt)

    n, trace_len = levels.shape
    out = np.empty((n, trace_len), dtype=np.complex128)
    alpha = np.full(n, complex(initial_field) * lo, dtype=np.complex128)
    for t in range(trace_len):
        out[:, t] = alpha
        ss_t = steady[levels[:, t]]
        alpha = ss_t + (alpha - ss_t) * decay[levels[:, t]]
    return out


def state_mean_response(
    qubit: QubitParams, level: int, trace_len: int, dt: float
) -> np.ndarray:
    """Noise-free, jump-free trace for a qubit pinned in ``level``.

    This is the ideal "template" trace (Fig 3c); matched filters built from
    data converge to combinations of these templates.
    """
    if not 0 <= level < 3:
        raise ConfigurationError(f"level must be in [0, 3), got {level}")
    levels = np.full((1, trace_len), level, dtype=np.int8)
    return baseband_response(qubit, levels, dt)[0]
