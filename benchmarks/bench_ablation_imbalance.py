"""Ablation bench: leaked-state training imbalance (the HERQULES collapse).

The paper's 3-level dataset is mined from natural leakage, so leaked joint
states are far rarer than computational ones (487..17,642 traces vs 15k
per computational state). This bench reproduces that imbalance and shows
the mechanism behind HERQULES' published collapse: the joint k^n head
cannot learn rare leaked combinations, while the modular per-qubit head
pools all level-2 evidence and holds.
"""

import numpy as np

from repro.data import generate_corpus
from repro.data.basis import all_states, state_to_digits
from repro.data.dataset import ReadoutCorpus
from repro.discriminators import HerqulesDiscriminator, MLRDiscriminator
from repro.experiments.common import NN_LEARNING_RATE
from repro.ml import stratified_split
from repro.ml.metrics import geometric_mean_fidelity, per_qubit_fidelity
from repro.physics import default_five_qubit_chip


def _imbalanced_corpus(profile):
    chip = default_five_qubit_chip()
    states = all_states(5, 3)
    digits = state_to_digits(states, 5, 3)
    computational = states[(digits < 2).all(axis=1)]
    leaked = states[(digits == 2).any(axis=1)]
    comp = generate_corpus(
        chip, shots_per_state=3 * profile.shots_per_state,
        states=computational, seed=profile.seed + 95,
    )
    rare = generate_corpus(
        chip, shots_per_state=max(4, profile.shots_per_state // 3),
        states=leaked, seed=profile.seed + 96,
    )
    corpus = ReadoutCorpus(
        feedline=np.concatenate([comp.feedline, rare.feedline]),
        labels=np.concatenate([comp.labels, rare.labels]),
        prepared_levels=np.concatenate([comp.prepared_levels, rare.prepared_levels]),
        initial_levels=np.concatenate([comp.initial_levels, rare.initial_levels]),
        final_levels=np.concatenate([comp.final_levels, rare.final_levels]),
        chip=chip,
    )
    return corpus, leaked


def test_ablation_leaked_state_imbalance(benchmark, profile):
    corpus, leaked_states = _imbalanced_corpus(profile)
    train, test = stratified_split(corpus.labels, 0.3, seed=profile.seed + 97)
    leaked_mask = np.isin(corpus.labels[test], leaked_states)

    def run():
        out = {}
        for name, disc in (
            ("modular", MLRDiscriminator(
                epochs=profile.nn_epochs, learning_rate=NN_LEARNING_RATE,
                seed=profile.seed + 98)),
            ("joint", HerqulesDiscriminator(
                epochs=profile.nn_epochs, learning_rate=NN_LEARNING_RATE,
                seed=profile.seed + 98)),
        ):
            disc.fit(corpus, train)
            pred = disc.predict(corpus, test)
            fid_all = per_qubit_fidelity(corpus.labels[test], pred, 5, 3)
            fid_leaked = per_qubit_fidelity(
                corpus.labels[test][leaked_mask], pred[leaked_mask], 5, 3
            )
            out[name] = (
                geometric_mean_fidelity(fid_all),
                geometric_mean_fidelity(fid_leaked),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nmined-leakage imbalance ablation:")
    for name, (f_all, f_leaked) in results.items():
        print(f"  {name:8s}: F5Q(all)={f_all:.4f} F5Q(leaked states)={f_leaked:.4f}")
    modular_gap = results["modular"][0] - results["modular"][1]
    joint_gap = results["joint"][0] - results["joint"][1]
    # The joint head degrades more on the rare leaked states.
    assert joint_gap > modular_gap - 0.01
    assert results["modular"][1] > results["joint"][1]
