"""Shared-memory trace hand-off between cluster processes.

Dispatching a pre-built trace corpus to a worker process used to mean
pickling the full ``(n_shots, trace_len)`` complex array into the task
payload — megabytes serialized, copied through a pipe, and deserialized
per feedline. This module moves the hand-off to POSIX shared memory:
the parent publishes each feedline's arrays once as a
:class:`SharedTraceBlock`, ships only the tiny picklable
:class:`SharedTraceDescriptor` (segment name + dtypes + shapes), and
workers attach by name and stream zero-copy chunk views straight out of
the mapping via :class:`SharedMemoryTraceSource`.

Lifecycle contract: the creating process owns the segment and must call
:meth:`SharedTraceBlock.unlink` when every consumer is done (the runner
does this in a ``finally``); attached readers only ever :meth:`close
<SharedMemoryTraceSource.close>` their mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Iterator

import numpy as np

from repro.analysis.sanitizers import shmaudit
from repro.data.dataset import ReadoutCorpus
from repro.exceptions import ConfigurationError, ShapeError
from repro.physics.device import ChipConfig
from repro.pipeline.source import ShotChunk, TraceSource

__all__ = [
    "SharedTraceDescriptor",
    "SharedTraceBlock",
    "SharedMemoryTraceSource",
]


def _attach(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting its lifetime.

    On Python < 3.13 ``SharedMemory`` has no ``track=False``: every
    attach re-registers the segment with the resource tracker. That is
    safe here — shard workers are forked, so they share the creator's
    tracker process, and re-registering an already-tracked name is an
    idempotent set-add that the creator's single ``unlink`` clears.
    Explicitly *unregistering* after attach (the common workaround)
    would be wrong for the same reason: in the serial executor the
    attacher IS the creator, and stripping the registration makes the
    later ``unlink`` double-unregister and spew tracker KeyErrors.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        # Armed runs witness attach-after-unlink instead of leaving the
        # reader with only a bare FileNotFoundError.
        shmaudit.note_failed_attach(name)
        raise
    shmaudit.note_attach(name)
    return shm


@dataclass(frozen=True)
class SharedTraceDescriptor:
    """Picklable handle to one feedline's shared trace arrays.

    The feedline traces and their prepared-level labels live
    back-to-back in a single segment; offsets are implied (labels start
    at ``feedline_nbytes``).
    """

    name: str
    n_shots: int
    trace_len: int
    n_qubits: int
    feedline_dtype: str
    levels_dtype: str

    def __post_init__(self) -> None:
        if self.n_shots < 1:
            raise ConfigurationError(f"n_shots must be >= 1, got {self.n_shots}")
        if self.trace_len < 1:
            raise ConfigurationError(
                f"trace_len must be >= 1, got {self.trace_len}"
            )
        if self.n_qubits < 1:
            raise ConfigurationError(
                f"n_qubits must be >= 1, got {self.n_qubits}"
            )

    @property
    def feedline_nbytes(self) -> int:
        return (
            self.n_shots
            * self.trace_len
            * np.dtype(self.feedline_dtype).itemsize
        )

    @property
    def levels_nbytes(self) -> int:
        return (
            self.n_shots * self.n_qubits * np.dtype(self.levels_dtype).itemsize
        )


class SharedTraceBlock:
    """Creator-side shared-memory publication of one trace corpus.

    Parameters
    ----------
    feedline:
        Complex traces ``(n_shots, trace_len)`` to publish.
    prepared_levels:
        Ground-truth labels ``(n_shots, n_qubits)``.
    label:
        Optional human-readable owner tag (e.g. the feedline name);
        sanitizer-armed runs include it in lifetime-audit witnesses.

    The arrays are copied into the segment once at construction; workers
    attach by :attr:`descriptor` and read views. Call :meth:`unlink`
    (idempotent) when all consumers are done.
    """

    def __init__(
        self,
        feedline: np.ndarray,
        prepared_levels: np.ndarray,
        label: str | None = None,
    ) -> None:
        feedline = np.ascontiguousarray(feedline)
        prepared_levels = np.ascontiguousarray(prepared_levels)
        if feedline.ndim != 2:
            raise ShapeError(f"feedline must be 2-D, got {feedline.shape}")
        if (
            prepared_levels.ndim != 2
            or prepared_levels.shape[0] != feedline.shape[0]
        ):
            raise ShapeError(
                "prepared_levels must be (n_shots, n_qubits) matching feedline"
            )
        self._shm = shared_memory.SharedMemory(
            create=True,
            size=feedline.nbytes + prepared_levels.nbytes,
        )
        self.descriptor = SharedTraceDescriptor(
            name=self._shm.name,
            n_shots=feedline.shape[0],
            trace_len=feedline.shape[1],
            n_qubits=prepared_levels.shape[1],
            feedline_dtype=feedline.dtype.str,
            levels_dtype=prepared_levels.dtype.str,
        )
        self.label = label
        shmaudit.note_create(self._shm.name, self._shm.size, label=label)
        dst_feed = np.ndarray(
            feedline.shape, dtype=feedline.dtype, buffer=self._shm.buf
        )
        dst_feed[:] = feedline
        dst_levels = np.ndarray(
            prepared_levels.shape,
            dtype=prepared_levels.dtype,
            buffer=self._shm.buf,
            offset=feedline.nbytes,
        )
        dst_levels[:] = prepared_levels

    @classmethod
    def from_corpus(
        cls, corpus: ReadoutCorpus, label: str | None = None
    ) -> "SharedTraceBlock":
        """Publish an existing corpus's arrays."""
        return cls(corpus.feedline, corpus.prepared_levels, label=label)

    def unlink(self) -> None:
        """Release the segment (idempotent; creator-side only)."""
        if self._shm is None:
            return
        shm, self._shm = self._shm, None
        shm.close()
        shm.unlink()
        shmaudit.note_unlink(shm.name)


class SharedMemoryTraceSource(TraceSource):
    """Streams zero-copy chunks out of an attached shared segment.

    Built from a :class:`SharedTraceDescriptor` inside a worker (or the
    parent itself — attaching locally is equally valid and is how the
    serial executor replays). Every yielded chunk's arrays are views
    into the mapping: nothing on the read path allocates trace storage.

    The chip is passed alongside the descriptor because the segment
    carries raw arrays only; the caller already ships chip configs in
    its task payload.
    """

    def __init__(
        self,
        descriptor: SharedTraceDescriptor,
        chip: ChipConfig,
        chunk_size: int = 256,
    ) -> None:
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if chip.n_qubits != descriptor.n_qubits:
            raise ShapeError(
                f"descriptor labels {descriptor.n_qubits} qubits, chip has "
                f"{chip.n_qubits}"
            )
        self.chip = chip
        self.descriptor = descriptor
        self.chunk_size = int(chunk_size)
        self._shm = _attach(descriptor.name)
        self.feedline = np.ndarray(
            (descriptor.n_shots, descriptor.trace_len),
            dtype=np.dtype(descriptor.feedline_dtype),
            buffer=self._shm.buf,
        )
        self.prepared_levels = np.ndarray(
            (descriptor.n_shots, descriptor.n_qubits),
            dtype=np.dtype(descriptor.levels_dtype),
            buffer=self._shm.buf,
            offset=descriptor.feedline_nbytes,
        )

    @property
    def n_shots(self) -> int:
        return self.descriptor.n_shots

    def chunks(self) -> Iterator[ShotChunk]:
        for chunk_id, start in enumerate(
            range(0, self.n_shots, self.chunk_size)
        ):
            stop = start + self.chunk_size
            # Read-only views: the segment is shared with the creator
            # and every sibling shard — no stage may write into it.
            feedline = self.feedline[start:stop]
            feedline.flags.writeable = False
            levels = self.prepared_levels[start:stop]
            levels.flags.writeable = False
            yield ShotChunk(
                feedline=feedline,
                prepared_levels=levels,
                chunk_id=chunk_id,
            )

    def close(self) -> None:
        """Drop this process's mapping (idempotent; never unlinks)."""
        if self._shm is None:
            return
        # Views into the mapping keep the buffer alive; releasing the
        # arrays first lets close() unmap without ``BufferError``.
        self.feedline = None
        self.prepared_levels = None
        shm, self._shm = self._shm, None
        shmaudit.note_close(shm.name)
        try:
            shm.close()
        except BufferError:
            # A consumer still holds a chunk view; the mapping is
            # reclaimed at process exit instead, and the creator's
            # unlink is unaffected.
            pass
