"""Tests for basis-state bookkeeping and the readout corpus."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    ReadoutCorpus,
    digits_to_state,
    generate_calibration_shots,
    generate_corpus,
    n_basis_states,
    state_label,
    state_to_digits,
)
from repro.data.basis import all_states, marginal_labels
from repro.exceptions import ConfigurationError, DataError


class TestBasis:
    def test_counts(self):
        assert n_basis_states(5, 3) == 243
        assert n_basis_states(5, 2) == 32

    def test_big_endian_convention(self):
        # State index 1 has qubit n-1 (least significant) at level 1.
        digits = state_to_digits(1, 3, 3)
        np.testing.assert_array_equal(digits, [0, 0, 1])
        assert state_label(9, 3, 3) == "100"

    def test_round_trip_array(self):
        states = all_states(4, 3)
        digits = state_to_digits(states, 4, 3)
        np.testing.assert_array_equal(digits_to_state(digits, 3), states)

    def test_marginal_labels(self):
        joint = np.array([0, 1, 3, 9])  # 2 qutrits... 9 invalid for 2 qutrits
        joint = np.array([0, 1, 3, 8])
        np.testing.assert_array_equal(
            marginal_labels(joint, 0, 2, 3), [0, 0, 1, 2]
        )
        np.testing.assert_array_equal(
            marginal_labels(joint, 1, 2, 3), [0, 1, 0, 2]
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            state_to_digits(243, 5, 3)
        with pytest.raises(ConfigurationError):
            digits_to_state(np.array([3]), 3)

    @settings(max_examples=40, deadline=None)
    @given(
        n_qudits=st.integers(min_value=1, max_value=6),
        n_levels=st.integers(min_value=2, max_value=4),
        data=st.data(),
    )
    def test_round_trip_property(self, n_qudits, n_levels, data):
        state = data.draw(
            st.integers(min_value=0, max_value=n_levels**n_qudits - 1)
        )
        digits = state_to_digits(state, n_qudits, n_levels)
        assert digits_to_state(digits, n_levels) == state
        assert np.all(digits >= 0) and np.all(digits < n_levels)


class TestCorpus:
    def test_generation_covers_all_states(self, tiny_corpus):
        assert tiny_corpus.n_traces == 9 * 40
        assert set(np.unique(tiny_corpus.labels)) == set(range(9))

    def test_labels_match_prepared_levels(self, tiny_corpus):
        digits = state_to_digits(tiny_corpus.labels, 2, 3)
        np.testing.assert_array_equal(digits, tiny_corpus.prepared_levels)

    def test_qubit_labels_marginalize(self, tiny_corpus):
        np.testing.assert_array_equal(
            tiny_corpus.qubit_labels(0), tiny_corpus.prepared_levels[:, 0]
        )

    def test_iq_features_layout(self, tiny_corpus):
        features = tiny_corpus.iq_features()
        assert features.shape == (tiny_corpus.n_traces, 2 * tiny_corpus.trace_len)
        np.testing.assert_allclose(
            features[:, : tiny_corpus.trace_len],
            tiny_corpus.feedline.real,
            atol=1e-6,
        )

    def test_subset_selects_rows(self, tiny_corpus):
        sub = tiny_corpus.subset(np.array([0, 5, 7]))
        assert sub.n_traces == 3
        np.testing.assert_array_equal(sub.labels, tiny_corpus.labels[[0, 5, 7]])

    def test_truncated_shortens_window(self, tiny_corpus):
        short = tiny_corpus.truncated(50)
        assert short.trace_len == 50
        assert short.chip.trace_len == 50
        np.testing.assert_array_equal(
            short.feedline, tiny_corpus.feedline[:, :50]
        )

    def test_truncated_rejects_longer_window(self, tiny_corpus):
        with pytest.raises(DataError):
            tiny_corpus.truncated(tiny_corpus.trace_len + 1)

    def test_save_load_round_trip(self, tiny_corpus, tmp_path):
        path = tmp_path / "corpus.npz"
        tiny_corpus.save(path)
        loaded = ReadoutCorpus.load(path)
        np.testing.assert_array_equal(loaded.feedline, tiny_corpus.feedline)
        np.testing.assert_array_equal(loaded.labels, tiny_corpus.labels)
        assert loaded.chip.n_qubits == tiny_corpus.chip.n_qubits
        assert loaded.chip.qubits[0].chi == tiny_corpus.chip.qubits[0].chi

    def test_generation_is_deterministic(self, two_qubit_chip):
        a = generate_corpus(two_qubit_chip, shots_per_state=3, seed=5)
        b = generate_corpus(two_qubit_chip, shots_per_state=3, seed=5)
        np.testing.assert_array_equal(a.feedline, b.feedline)

    def test_chunking_does_not_change_content(self, two_qubit_chip):
        a = generate_corpus(two_qubit_chip, shots_per_state=3, seed=5, chunk_states=2)
        b = generate_corpus(two_qubit_chip, shots_per_state=3, seed=5, chunk_states=9)
        # Chunking changes RNG consumption order, so only shapes/labels match.
        np.testing.assert_array_equal(a.labels, b.labels)
        assert a.feedline.shape == b.feedline.shape

    def test_state_subset_generation(self, two_qubit_chip):
        corpus = generate_corpus(
            two_qubit_chip, shots_per_state=4, states=np.array([0, 8]), seed=1
        )
        assert set(np.unique(corpus.labels)) == {0, 8}


class TestCalibrationShots:
    def test_only_computational_states_prepared(self, tiny_calibration):
        assert tiny_calibration.prepared_levels.max() <= 1

    def test_natural_leakage_present(self, tiny_calibration):
        assert np.any(tiny_calibration.initial_levels == 2)

    def test_leakage_only_from_excited_preparation(self, tiny_calibration):
        leaked = tiny_calibration.initial_levels == 2
        prepared = tiny_calibration.prepared_levels
        assert np.all(prepared[leaked] == 1)
