"""Shared fixtures: small chips and corpora reused across the suite."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.data import generate_calibration_shots, generate_corpus
from repro.physics.adc import ADCConfig
from repro.physics.device import ChipConfig, QubitParams, default_five_qubit_chip


def make_two_qubit_chip(trace_len: int = 200, noise_std: float = 3.0) -> ChipConfig:
    """A light two-qubit chip for fast unit tests."""
    mhz = lambda v: 2.0 * math.pi * v * 1e-3  # noqa: E731 - local shorthand
    qubits = (
        QubitParams(
            name="A", if_frequency_ghz=-0.12, kappa=mhz(2.0), chi=mhz(1.0),
            amplitude=1.0, t1_ns=30_000.0, t1_2_ns=15_000.0,
            excite_01_rate=1e-5, excite_12_rate=2e-5, excite_02_rate=1e-6,
            prep_leak_prob=0.02, prep_thermal_prob=0.004,
        ),
        QubitParams(
            name="B", if_frequency_ghz=0.13, kappa=mhz(2.0), chi=mhz(0.9),
            amplitude=0.9, t1_ns=20_000.0, t1_2_ns=10_000.0,
            excite_01_rate=1e-5, excite_12_rate=3e-5, excite_02_rate=1e-6,
            prep_leak_prob=0.03, prep_thermal_prob=0.004,
        ),
    )
    crosstalk = np.zeros((2, 2), dtype=complex)
    crosstalk[0, 1] = crosstalk[1, 0] = 0.08 * np.exp(0.5j)
    return ChipConfig(
        qubits=qubits,
        adc=ADCConfig(),
        trace_len=trace_len,
        noise_std=noise_std,
        crosstalk=crosstalk,
    )


@pytest.fixture(scope="session")
def two_qubit_chip() -> ChipConfig:
    return make_two_qubit_chip()


@pytest.fixture(scope="session")
def tiny_corpus(two_qubit_chip):
    """All 9 joint states of the two-qubit chip, 40 shots each."""
    return generate_corpus(two_qubit_chip, shots_per_state=40, seed=101)


@pytest.fixture(scope="session")
def tiny_calibration(two_qubit_chip):
    """Two-level calibration shots on the two-qubit chip."""
    return generate_calibration_shots(two_qubit_chip, n_shots=1200, seed=102)


@pytest.fixture(scope="session")
def five_qubit_chip():
    return default_five_qubit_chip()


@pytest.fixture(scope="session")
def five_qubit_corpus(five_qubit_chip):
    """A small corpus on the paper's five-qubit chip (all 243 states)."""
    return generate_corpus(five_qubit_chip, shots_per_state=6, seed=103)


@pytest.fixture()
def rng():
    return np.random.default_rng(7)


def pytest_sessionfinish(session, exitstatus):
    """Fail armed runs on outstanding lock-order or sanitizer reports.

    With ``REPRO_LOCK_DEBUG=1``, every traced lock in the serving stack
    reported its acquisitions into the process-wide graph while the
    suite ran; a cycle means two code paths disagree about acquisition
    order — a potential deadlock even if this run never blocked.

    With ``REPRO_SANITIZE=1``, the runtime sanitizers logged every
    use-after-recycle, shm lifetime breach, and still-live segment; any
    outstanding report fails the session with its witness. Tests that
    deliberately seed violations use private LockGraph / ReportLog /
    ShmLedger instances (or drain what they provoked), so the global
    sinks stay clean.
    """
    from repro.analysis import lockgraph, sanitizers

    if lockgraph.enabled():
        violations = lockgraph.GLOBAL_GRAPH.violations()
        if violations:
            print("\nlock-order violations in the global acquisition graph:")
            for violation in violations:
                print(violation.format())
            session.exitstatus = 1
    if sanitizers.enabled():
        reports = sanitizers.session_reports()
        if reports:
            print("\noutstanding sanitizer reports:")
            for report in reports:
                print(report.format())
            session.exitstatus = 1
