"""Lifetime auditing for shared-memory trace segments.

The shm hand-off contract (:mod:`repro.pipeline.shm`) is
creator-unlinks-once, readers-only-close. Violations are quiet in the
happy path — a leaked segment just lingers in ``/dev/shm`` until the
resource tracker reaps it at exit — so armed runs keep a ledger instead:
:mod:`repro.pipeline.shm` calls the :func:`note_create` /
:func:`note_attach` / :func:`note_close` / :func:`note_unlink` hooks
(no-ops unless ``REPRO_SANITIZE`` is set), and the ledger turns each
contract breach into a witnessed
:class:`~repro.analysis.sanitizers.reports.SanitizerReport`:

- **leaked segment** — created but never unlinked; surfaced by
  :meth:`ShmLedger.leak_reports`, which the pytest ``sessionfinish``
  hook calls so a leak anywhere in an armed suite fails the session,
  naming the segment, its label, and the creating call site;
- **double-unlink** — unlinking a name the ledger already saw unlinked
  (or never saw created) reports immediately;
- **attach-after-unlink** — attaching (or failing to attach) a name the
  creator already released reports with both the attach site and the
  original creation site.

The ledger is per-process; forked shard workers inherit a snapshot, and
the session verdict comes from the parent's ledger, where every
creator-side ``unlink`` happens.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .reports import (
    GLOBAL_LOG,
    ReportLog,
    SanitizerReport,
    call_site,
    enabled,
)

__all__ = [
    "SegmentRecord",
    "ShmLedger",
    "GLOBAL_LEDGER",
    "note_create",
    "note_attach",
    "note_failed_attach",
    "note_close",
    "note_unlink",
]

@dataclass(frozen=True)
class SegmentRecord:
    """One shared-memory segment's creation witness."""

    name: str
    nbytes: int
    label: str | None
    site: str

    def describe(self) -> str:
        label = f" ({self.label})" if self.label else ""
        return f"segment {self.name}{label}, {self.nbytes} bytes, created at {self.site}"


class ShmLedger:
    """Create/attach/close/unlink bookkeeping for shm segments."""

    def __init__(self, *, log: ReportLog | None = None) -> None:
        self._guard = threading.Lock()
        self._log = GLOBAL_LOG if log is None else log
        self._live: dict[str, SegmentRecord] = {}
        self._unlinked: dict[str, SegmentRecord] = {}
        self._attachments: dict[str, int] = {}

    # -- recording -----------------------------------------------------

    def note_create(
        self,
        name: str,
        nbytes: int,
        label: str | None = None,
        site: str | None = None,
    ) -> None:
        record = SegmentRecord(
            name=name,
            nbytes=int(nbytes),
            label=label,
            site=site if site is not None else call_site(),
        )
        with self._guard:
            self._live[name] = record
            self._unlinked.pop(name, None)

    def note_attach(self, name: str, site: str | None = None) -> None:
        site = site if site is not None else call_site()
        with self._guard:
            stale = self._unlinked.get(name)
            if stale is None:
                self._attachments[name] = self._attachments.get(name, 0) + 1
                return
        self._log.report(
            "shm-attach-after-unlink",
            f"attach to unlinked {stale.describe()}; the creator already "
            f"released it — hand descriptors off before unlink",
            site=site,
        )

    def note_failed_attach(self, name: str, site: str | None = None) -> None:
        """A by-name attach raised; witness it if we know why."""
        site = site if site is not None else call_site()
        with self._guard:
            stale = self._unlinked.get(name)
        if stale is not None:
            self._log.report(
                "shm-attach-after-unlink",
                f"attach failed: {stale.describe()} was already unlinked",
                site=site,
            )

    def note_close(self, name: str) -> None:
        with self._guard:
            count = self._attachments.get(name, 0)
            if count > 1:
                self._attachments[name] = count - 1
            else:
                self._attachments.pop(name, None)

    def note_unlink(self, name: str, site: str | None = None) -> None:
        site = site if site is not None else call_site()
        with self._guard:
            record = self._live.pop(name, None)
            if record is not None:
                self._unlinked[name] = record
                return
            stale = self._unlinked.get(name)
        if stale is not None:
            self._log.report(
                "shm-double-unlink",
                f"second unlink of {stale.describe()}",
                site=site,
            )
        else:
            self._log.report(
                "shm-double-unlink",
                f"unlink of unknown segment {name!r} (never created in this "
                f"process, or already reaped)",
                site=site,
            )

    # -- analysis ------------------------------------------------------

    def live(self) -> tuple[SegmentRecord, ...]:
        with self._guard:
            return tuple(self._live.values())

    def leak_reports(self) -> list[SanitizerReport]:
        """One report per segment created but never unlinked.

        Read-only: repeated calls (a mid-test probe, then the session
        hook) see the same verdict, and a segment unlinked after a probe
        stops being a leak.
        """
        return [
            SanitizerReport(
                sanitizer="shm-leak",
                message=f"leaked {record.describe()}; the creator never "
                f"called unlink()",
                site=record.site,
            )
            for record in self.live()
        ]

    def reset(self) -> None:
        with self._guard:
            self._live.clear()
            self._unlinked.clear()
            self._attachments.clear()


#: The process-wide ledger the armed shm hooks report into.
GLOBAL_LEDGER = ShmLedger()


def note_create(name: str, nbytes: int, label: str | None = None) -> None:
    """Record segment creation (armed runs only)."""
    if enabled():
        GLOBAL_LEDGER.note_create(name, nbytes, label=label)


def note_attach(name: str) -> None:
    """Record a successful by-name attach (armed runs only)."""
    if enabled():
        GLOBAL_LEDGER.note_attach(name)


def note_failed_attach(name: str) -> None:
    """Record a failed by-name attach (armed runs only)."""
    if enabled():
        GLOBAL_LEDGER.note_failed_attach(name)


def note_close(name: str) -> None:
    """Record one mapping being dropped (armed runs only)."""
    if enabled():
        GLOBAL_LEDGER.note_close(name)


def note_unlink(name: str) -> None:
    """Record the creator releasing a segment (armed runs only)."""
    if enabled():
        GLOBAL_LEDGER.note_unlink(name)
