"""Tests for repro.analysis: lint rules, pragmas, CLI, lock-order graph."""

from __future__ import annotations

import json
import textwrap
import threading
from pathlib import Path

import numpy as np
import pytest

from repro.analysis import check_source, lint_paths, rule_names
from repro.analysis.checker import iter_python_files
from repro.analysis.cli import run_lint
from repro.analysis.findings import Finding, pragma_allowances
from repro.analysis.lockgraph import (
    ENV_FLAG,
    LockGraph,
    LockOrderError,
    TracedLock,
    enabled,
    trace_lock,
)
from repro.analysis.sanitizers import ENV_FLAG as SANITIZE_FLAG
from repro.analysis.sanitizers import (
    ReportLog,
    SanitizerReport,
    session_reports,
    shmaudit,
)
from repro.analysis.sanitizers.ring import (
    GuardedBufferRing,
    RingSlotView,
    UseAfterRecycleError,
)
from repro.exceptions import ConfigurationError
from repro.pipeline.batching import MicroBatcher
from repro.pipeline.buffers import BufferRing, make_buffer_ring
from repro.pipeline.shm import SharedMemoryTraceSource, SharedTraceBlock
from repro.pipeline.source import ShotChunk

REPO_SRC = Path(__file__).resolve().parent.parent / "src"


def rules_of(findings: list[Finding]) -> list[str]:
    return [finding.rule for finding in findings]


class TestPragmas:
    def test_parses_rules_and_ignores_reason(self):
        source = (
            "x = 1  # repro: allow(broad-except) recovery path\n"
            "y = 2\n"
            "z = 3  # repro: allow(fit-once, json-finite)\n"
        )
        allowances = pragma_allowances(source)
        assert allowances == {
            1: {"broad-except"},
            3: {"fit-once", "json-finite"},
        }

    def test_empty_pragma_allows_nothing(self):
        assert pragma_allowances("x = 1  # repro: allow()\n") == {1: set()}

    def test_suppresses_only_named_rule_on_its_line(self):
        source = textwrap.dedent(
            """
            try:
                pass
            except Exception:  # repro: allow(broad-except) test fixture
                pass
            try:
                pass
            except Exception:
                pass
            """
        )
        findings = check_source(source, "x.py", rules=["broad-except"])
        assert len(findings) == 1
        assert findings[0].line == 8


class TestFitOnceRule:
    def test_flags_fit_call_outside_calibration_layers(self):
        source = "def serve(model, X, y):\n    model.fit(X, y)\n"
        findings = check_source(
            source, "src/repro/serve/bad.py", rules=["fit-once"]
        )
        assert rules_of(findings) == ["fit-once"]

    def test_flags_get_trained_outside_calibration_layers(self):
        source = "def warm():\n    return get_trained('quick', 'ours')\n"
        findings = check_source(
            source, "src/repro/fleet/bad.py", rules=["fit-once"]
        )
        assert rules_of(findings) == ["fit-once"]

    def test_allows_fit_in_discriminators_and_registry(self):
        source = "def calibrate(model, X, y):\n    model.fit(X, y)\n"
        for path in (
            "src/repro/discriminators/nn.py",
            "src/repro/ml/logistic.py",
            "src/repro/pipeline/registry.py",
        ):
            assert check_source(source, path, rules=["fit-once"]) == []

    def test_pragma_suppresses(self):
        source = "model.fit(X, y)  # repro: allow(fit-once) bench fixture\n"
        assert check_source(
            source, "src/repro/serve/bad.py", rules=["fit-once"]
        ) == []


class TestFrozenSpecRule:
    def test_flags_setattr_outside_post_init(self):
        source = textwrap.dedent(
            """
            def rebind(spec):
                object.__setattr__(spec, "shots", 3)
            """
        )
        findings = check_source(source, "x.py", rules=["frozen-spec"])
        assert rules_of(findings) == ["frozen-spec"]

    def test_allows_setattr_in_post_init(self):
        source = textwrap.dedent(
            """
            class ServeSpec:
                def __post_init__(self):
                    object.__setattr__(self, "shots", 3)
            """
        )
        assert check_source(source, "x.py", rules=["frozen-spec"]) == []

    def test_flags_spec_field_assignment(self):
        source = "serve_spec.shots = 500\n"
        findings = check_source(source, "x.py", rules=["frozen-spec"])
        assert rules_of(findings) == ["frozen-spec"]

    def test_pragma_suppresses(self):
        source = (
            'object.__setattr__(r, "_name", n)'
            "  # repro: allow(frozen-spec) one-time bind\n"
        )
        assert check_source(source, "x.py", rules=["frozen-spec"]) == []


class TestJsonFiniteRule:
    def test_flags_unwrapped_nan_capable_value(self):
        source = textwrap.dedent(
            """
            class Stats:
                def to_dict(self):
                    return {"p99_ms": self.p99_ms}
            """
        )
        findings = check_source(source, "x.py", rules=["json-finite"])
        assert rules_of(findings) == ["json-finite"]

    def test_flags_nan_literal(self):
        source = textwrap.dedent(
            """
            def summary():
                return {"latency": float("nan")}
            """
        )
        findings = check_source(source, "x.py", rules=["json-finite"])
        assert rules_of(findings) == ["json-finite"]

    def test_wrapped_value_passes(self):
        source = textwrap.dedent(
            """
            class Stats:
                def to_dict(self):
                    return {"p99_ms": json_finite(self.p99_ms)}
            """
        )
        assert check_source(source, "x.py", rules=["json-finite"]) == []

    def test_only_payload_functions_are_checked(self):
        source = textwrap.dedent(
            """
            def debug_view(self):
                return {"p99_ms": self.p99_ms}
            """
        )
        assert check_source(source, "x.py", rules=["json-finite"]) == []

    def test_pragma_suppresses(self):
        source = textwrap.dedent(
            """
            def to_dict(self):
                return {
                    "margin": self.margin,  # repro: allow(json-finite) clamped
                }
            """
        )
        assert check_source(source, "x.py", rules=["json-finite"]) == []


class TestNoPickleRule:
    def test_flags_import_and_call(self):
        source = "import pickle\n\npayload = pickle.dumps(model)\n"
        findings = check_source(source, "x.py", rules=["no-pickle-fitted"])
        assert rules_of(findings) == ["no-pickle-fitted", "no-pickle-fitted"]

    def test_flags_from_import(self):
        source = "from pickle import dumps\n"
        findings = check_source(source, "x.py", rules=["no-pickle-fitted"])
        assert rules_of(findings) == ["no-pickle-fitted"]

    def test_pragma_suppresses(self):
        source = "import pickle  # repro: allow(no-pickle-fitted) test aid\n"
        assert check_source(source, "x.py", rules=["no-pickle-fitted"]) == []


class TestBroadExceptRule:
    def test_flags_bare_and_blanket_handlers(self):
        source = textwrap.dedent(
            """
            try:
                work()
            except Exception:
                pass
            try:
                work()
            except:
                pass
            try:
                work()
            except (ValueError, BaseException):
                pass
            """
        )
        findings = check_source(source, "x.py", rules=["broad-except"])
        assert rules_of(findings) == ["broad-except"] * 3

    def test_reraising_handler_passes(self):
        source = textwrap.dedent(
            """
            try:
                work()
            except BaseException:
                cleanup()
                raise
            """
        )
        assert check_source(source, "x.py", rules=["broad-except"]) == []

    def test_narrow_handler_passes(self):
        source = "try:\n    work()\nexcept ValueError:\n    pass\n"
        assert check_source(source, "x.py", rules=["broad-except"]) == []

    def test_pragma_suppresses(self):
        source = textwrap.dedent(
            """
            try:
                work()
            except Exception:  # repro: allow(broad-except) deferred to close()
                pass
            """
        )
        assert check_source(source, "x.py", rules=["broad-except"]) == []


class TestAllConsistencyRule:
    def test_flags_dead_export(self):
        source = '__all__ = ["missing"]\n\nx = 1\n'
        findings = check_source(source, "x.py", rules=["all-consistency"])
        assert rules_of(findings) == ["all-consistency"]
        assert "missing" in findings[0].message

    def test_flags_unexported_public_def(self):
        source = '__all__ = ["f"]\n\n\ndef f():\n    pass\n\n\ndef g():\n    pass\n'
        findings = check_source(source, "x.py", rules=["all-consistency"])
        assert rules_of(findings) == ["all-consistency"]
        assert "'g'" in findings[0].message

    def test_private_defs_and_gated_imports_pass(self):
        source = textwrap.dedent(
            """
            __all__ = ["flocked"]

            try:
                import fcntl as flocked
            except ImportError:
                flocked = None


            def _helper():
                pass
            """
        )
        assert check_source(source, "x.py", rules=["all-consistency"]) == []

    def test_module_without_all_is_unchecked(self):
        assert check_source(
            "def anything():\n    pass\n", "x.py", rules=["all-consistency"]
        ) == []


class TestCheckerDrivers:
    def test_syntax_error_is_a_parse_error_finding(self):
        findings = check_source("def broken(:\n", "x.py")
        assert rules_of(findings) == ["parse-error"]

    def test_unknown_rule_rejected(self):
        with pytest.raises(ConfigurationError):
            check_source("x = 1\n", "x.py", rules=["no-such-rule"])

    def test_rule_names_cover_the_contract_set(self):
        assert set(rule_names()) >= {
            "fit-once",
            "frozen-spec",
            "json-finite",
            "no-pickle-fitted",
            "broad-except",
            "all-consistency",
            "guarded-by",
            "blocking-under-lock",
            "no-hidden-copy",
        }

    def test_iter_python_files_rejects_missing_path(self):
        with pytest.raises(ConfigurationError):
            iter_python_files(["definitely/not/here"])

    def test_finding_format_is_compiler_style(self):
        finding = Finding("fit-once", "a.py", 3, 7, "boom")
        assert finding.format() == "a.py:3:7: [fit-once] boom"

    def test_src_tree_is_clean(self):
        # The repo's own source must satisfy its own contracts; any new
        # finding here is either a real bug or needs a reasoned pragma.
        findings = lint_paths([REPO_SRC])
        assert findings == [], "\n".join(f.format() for f in findings)


class TestLintCli:
    def test_self_scan_exits_zero(self, capsys):
        assert run_lint([str(REPO_SRC)]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_findings_exit_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\n")
        assert run_lint([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "[no-pickle-fitted]" in out
        assert "lint: 1 finding(s) in 1 file(s)" in out

    def test_rule_subset_filters(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\n")
        assert run_lint(["--rules", "broad-except", str(bad)]) == 0
        capsys.readouterr()

    def test_json_record_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import pickle\n")
        out_path = tmp_path / "lint.json"
        assert run_lint(["--json", str(out_path), str(bad)]) == 1
        capsys.readouterr()
        record = json.loads(out_path.read_text())
        assert record["n_findings"] == 1
        (finding,) = record["findings"]
        assert finding["rule"] == "no-pickle-fitted"
        assert finding["path"].endswith("bad.py")
        assert {"line", "col", "message"} <= set(finding)
        # Strict JSON round-trip: the payload itself obeys json-finite.
        json.dumps(record, allow_nan=False)

    def test_list_rules(self, capsys):
        assert run_lint(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "fit-once" in out and "all-consistency" in out


class TestLockGraph:
    def test_inversion_detected_with_witnesses(self):
        # Seed the classic A -> B / B -> A inversion on a private graph
        # (the global graph must stay clean for the armed-suite check).
        graph = LockGraph()
        a = TracedLock("A", graph)
        b = TracedLock("B", graph)
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        (violation,) = graph.violations()
        assert violation.cycle == ("A", "B")
        assert {(w.source, w.target) for w in violation.witnesses} == {
            ("A", "B"),
            ("B", "A"),
        }
        witness = next(w for w in violation.witnesses if w.source == "A")
        assert witness.held == ("A",)
        assert witness.thread
        assert ":" in witness.site
        formatted = violation.format()
        assert "lock-order cycle: A -> B -> A" in formatted
        assert "witness:" in formatted

    def test_check_raises_with_witness_text(self):
        graph = LockGraph()
        a, b = TracedLock("A", graph), TracedLock("B", graph)
        with a, b:
            pass
        with b, a:
            pass
        with pytest.raises(LockOrderError) as excinfo:
            graph.check()
        assert "A -> B -> A" in str(excinfo.value)

    def test_consistent_order_is_clean(self):
        graph = LockGraph()
        a, b, c = (TracedLock(n, graph) for n in "ABC")
        for _ in range(3):
            with a, b, c:
                pass
        assert graph.violations() == []
        graph.check()

    def test_three_node_cycle_reported_once(self):
        graph = LockGraph()
        a, b, c = (TracedLock(n, graph) for n in "ABC")
        with a, b:
            pass
        with b, c:
            pass
        with c, a:
            pass
        (violation,) = graph.violations()
        assert violation.cycle == ("A", "B", "C")
        assert len(violation.witnesses) == 3

    def test_rlock_reentry_adds_no_self_edge(self):
        graph = LockGraph()
        lock = TracedLock("R", graph, rlock=True)
        with lock:
            with lock:
                pass
        assert graph.edges() == {}
        assert graph.violations() == []

    def test_release_restores_held_stack(self):
        graph = LockGraph()
        a, b = TracedLock("A", graph), TracedLock("B", graph)
        with a:
            with b:
                assert graph.held_by_current_thread() == ("A", "B")
            assert graph.held_by_current_thread() == ("A",)
        assert graph.held_by_current_thread() == ()

    def test_edges_recorded_across_threads(self):
        graph = LockGraph()
        a, b = TracedLock("A", graph), TracedLock("B", graph)

        def worker():
            with b:
                with a:
                    pass

        with a:
            with b:
                pass
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        (violation,) = graph.violations()
        threads = {w.thread for w in violation.witnesses}
        assert len(threads) == 2

    def test_traced_lock_mutual_exclusion(self):
        lock = TracedLock("X", LockGraph())
        assert lock.acquire()
        assert lock.locked()
        assert not lock.acquire(blocking=False)
        lock.release()
        assert not lock.locked()


class TestTraceLockFactory:
    def test_plain_lock_when_disabled(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert not enabled()
        lock = trace_lock("plain")
        assert not isinstance(lock, TracedLock)
        with lock:
            pass

    def test_traced_when_armed(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        assert enabled()
        graph = LockGraph()
        lock = trace_lock("armed", graph=graph)
        assert isinstance(lock, TracedLock)

    def test_explicit_graph_always_traces(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        lock = trace_lock("seeded", graph=LockGraph())
        assert isinstance(lock, TracedLock)

    @pytest.mark.parametrize("value", ["", "0", "false", "off", "OFF"])
    def test_flag_off_values(self, monkeypatch, value):
        monkeypatch.setenv(ENV_FLAG, value)
        assert not enabled()

    def test_flock_notes_respect_flag(self, monkeypatch):
        import repro.analysis.lockgraph as lockgraph

        graph = LockGraph()
        monkeypatch.setattr(lockgraph, "GLOBAL_GRAPH", graph)
        monkeypatch.setenv(ENV_FLAG, "1")
        gate = TracedLock("registry.fit-lock:dev/all/quick.v0", graph)
        with gate:
            lockgraph.note_flock_acquire("/store/dev/all.v1.npz")
            lockgraph.note_flock_release("/store/dev/all.v1.npz")
        edges = graph.edges()
        assert (
            "registry.fit-lock:dev/all/quick.v0",
            "flock:store/dev/all.v1.npz",
        ) in edges
        assert graph.violations() == []

    def test_flock_notes_noop_when_disarmed(self, monkeypatch):
        import repro.analysis.lockgraph as lockgraph

        graph = LockGraph()
        monkeypatch.setattr(lockgraph, "GLOBAL_GRAPH", graph)
        monkeypatch.delenv(ENV_FLAG, raising=False)
        lockgraph.note_flock_acquire("/store/dev/all.npz")
        assert graph.held_by_current_thread() == ()
        assert graph.edges() == {}


class TestGuardedByRule:
    LOCKED_CLASS = textwrap.dedent(
        """
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()
                self._closed = False

            def close(self):
                with self._lock:
                    self._closed = True

            def reset(self):
                self._closed = False
        """
    )

    def test_flags_unguarded_write_of_guarded_attribute(self):
        findings = check_source(
            self.LOCKED_CLASS, "src/repro/pipeline/pool.py",
            rules=["guarded-by"],
        )
        assert rules_of(findings) == ["guarded-by"]
        assert "self._closed" in findings[0].message
        # The unguarded site (in reset, the last occurrence) is the
        # finding — not the exempt __init__ write, not the guarded one.
        lines = self.LOCKED_CLASS.splitlines()
        assert findings[0].line == max(
            i for i, line in enumerate(lines, 1)
            if line.strip() == "self._closed = False"
        )

    def test_trace_lock_factory_counts_as_a_lock(self):
        source = self.LOCKED_CLASS.replace(
            "threading.Lock()", 'trace_lock("pool")'
        )
        findings = check_source(source, "x.py", rules=["guarded-by"])
        assert rules_of(findings) == ["guarded-by"]

    def test_clean_when_every_write_is_guarded(self):
        source = self.LOCKED_CLASS.replace(
            "    def reset(self):\n        self._closed = False",
            "    def reset(self):\n        with self._lock:\n"
            "            self._closed = False",
        )
        assert check_source(source, "x.py", rules=["guarded-by"]) == []

    def test_init_writes_are_exempt(self):
        # __init__ publishes before any reader exists: the bare
        # ``self._closed = False`` there is not a race.
        source = self.LOCKED_CLASS.replace(
            "    def reset(self):\n        self._closed = False\n", ""
        )
        assert check_source(source, "x.py", rules=["guarded-by"]) == []

    def test_attr_never_guarded_is_not_flagged(self):
        # Writes never made under the lock carry no guarded-by claim;
        # only both-sides attributes are races this rule can prove.
        source = textwrap.dedent(
            """
            import threading

            class Pool:
                def __init__(self):
                    self._lock = threading.Lock()

                def bump(self):
                    self._hits = 1

                def reset(self):
                    self._hits = 0
            """
        )
        assert check_source(source, "x.py", rules=["guarded-by"]) == []

    def test_augassign_under_lock_pairs_with_bare_write(self):
        source = textwrap.dedent(
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def hit(self):
                    with self._lock:
                        self._n += 1

                def undo(self):
                    self._n -= 1
            """
        )
        findings = check_source(source, "x.py", rules=["guarded-by"])
        assert rules_of(findings) == ["guarded-by"]

    def test_pragma_suppresses(self):
        source = self.LOCKED_CLASS.replace(
            "        self._closed = False",
            "        self._closed = False  "
            "# repro: allow(guarded-by) teardown is single-threaded",
        )
        assert check_source(source, "x.py", rules=["guarded-by"]) == []


class TestBlockingUnderLockRule:
    def test_flags_sleep_and_result_inside_lock_body(self):
        source = textwrap.dedent(
            """
            import time

            class Pool:
                def refresh(self):
                    with self._lock:
                        time.sleep(0.1)
                        return self._future.result()
            """
        )
        findings = check_source(
            source, "src/repro/pipeline/pool.py",
            rules=["blocking-under-lock"],
        )
        assert rules_of(findings) == ["blocking-under-lock"] * 2
        assert "time.sleep" in findings[0].message
        assert "self._future.result" in findings[1].message

    def test_flags_flock_and_recv_under_gate(self):
        source = textwrap.dedent(
            """
            import fcntl

            def pull(sock, gate, fh):
                with gate:
                    fcntl.flock(fh, fcntl.LOCK_EX)
                    return sock.recv(4096)
            """
        )
        findings = check_source(source, "x.py", rules=["blocking-under-lock"])
        assert rules_of(findings) == ["blocking-under-lock"] * 2

    def test_clean_outside_the_lock(self):
        source = textwrap.dedent(
            """
            import time

            def refresh(pool):
                with pool._lock:
                    token = pool.token
                time.sleep(0.1)
                return token
            """
        )
        assert check_source(
            source, "x.py", rules=["blocking-under-lock"]
        ) == []

    def test_non_lock_context_is_not_a_region(self):
        source = textwrap.dedent(
            """
            import time

            def run(path):
                with open(path) as fh:
                    time.sleep(0.1)
                    return fh.read()
            """
        )
        assert check_source(
            source, "x.py", rules=["blocking-under-lock"]
        ) == []

    def test_closure_defined_under_lock_is_exempt(self):
        source = textwrap.dedent(
            """
            import time

            def plan(lock):
                with lock:
                    def later():
                        time.sleep(1.0)
                    return later
            """
        )
        assert check_source(
            source, "x.py", rules=["blocking-under-lock"]
        ) == []

    def test_pragma_suppresses(self):
        source = textwrap.dedent(
            """
            import time

            def refresh(lock):
                with lock:
                    time.sleep(0.01)  # repro: allow(blocking-under-lock) settle window is the contract
            """
        )
        assert check_source(
            source, "x.py", rules=["blocking-under-lock"]
        ) == []


class TestNoHiddenCopyRule:
    ALLOCATING = textwrap.dedent(
        """
        import numpy as np

        def stage(x):
            a = np.concatenate([x, x])
            b = x.copy()
            c = x.astype(float)
            d = x[[0, 2]]
            return a, b, c, d
        """
    )

    def test_flags_every_allocation_in_hot_path_module(self):
        findings = check_source(
            self.ALLOCATING, "src/repro/dsp/demod.py",
            rules=["no-hidden-copy"],
        )
        assert rules_of(findings) == ["no-hidden-copy"] * 4

    def test_pipeline_hot_modules_are_hot(self):
        for path in (
            "src/repro/pipeline/stages.py",
            "src/repro/pipeline/buffers.py",
            "src/repro/pipeline/shm.py",
        ):
            findings = check_source(
                self.ALLOCATING, path, rules=["no-hidden-copy"]
            )
            assert rules_of(findings) == ["no-hidden-copy"] * 4

    def test_cold_modules_are_exempt(self):
        # The same allocations off the hot path are ordinary numpy.
        for path in (
            "src/repro/serve/service.py",
            "src/repro/pipeline/runner.py",
            "src/repro/ml/scaler.py",
        ):
            assert check_source(
                self.ALLOCATING, path, rules=["no-hidden-copy"]
            ) == []

    def test_basic_slicing_is_not_fancy_indexing(self):
        source = "def stage(x):\n    return x[2:5, ::2]\n"
        assert check_source(
            source, "src/repro/dsp/demod.py", rules=["no-hidden-copy"]
        ) == []

    def test_pragma_suppresses(self):
        source = (
            "def prep(x):\n"
            "    return x.copy()  "
            "# repro: allow(no-hidden-copy) load-time, not per-batch\n"
        )
        assert check_source(
            source, "src/repro/dsp/demod.py", rules=["no-hidden-copy"]
        ) == []


class TestLintCliSchema:
    def test_unknown_rule_exits_2_and_names_it(self, capsys, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("x = 1\n")
        code = run_lint(["--rules", "no-such-rule", str(target)])
        captured = capsys.readouterr()
        assert code == 2
        assert "no-such-rule" in captured.err
        assert "registered rules" in captured.err
        # Usage errors never masquerade as a clean (or dirty) verdict.
        assert captured.out == ""

    def test_list_rules_json_documents_all_nine(self, capsys):
        code = run_lint(["--list-rules", "--json"])
        captured = capsys.readouterr()
        assert code == 0
        record = json.loads(captured.out)
        assert record["n_rules"] == 9
        names = {rule["name"] for rule in record["rules"]}
        assert names == {
            "fit-once",
            "frozen-spec",
            "json-finite",
            "no-pickle-fitted",
            "broad-except",
            "all-consistency",
            "guarded-by",
            "blocking-under-lock",
            "no-hidden-copy",
        }
        assert all(rule["description"] for rule in record["rules"])


class TestSanitizerReports:
    def test_report_converts_to_finding(self):
        report = SanitizerReport(
            "ring-recycle", "stale view touched", "runner.py:277"
        )
        finding = report.to_finding()
        assert finding.rule == "sanitize:ring-recycle"
        assert finding.path == "runner.py"
        assert finding.line == 277
        assert finding.col == 0
        assert report.format() == (
            "runner.py:277:0: [sanitize:ring-recycle] stale view touched"
        )

    def test_drain_empties_the_log(self):
        log = ReportLog()
        log.report("ring-recycle", "one", site="a.py:1")
        log.report("shm-leak", "two", site="b.py:2")
        assert len(log.outstanding()) == 2
        drained = log.drain()
        assert [r.sanitizer for r in drained] == ["ring-recycle", "shm-leak"]
        assert log.outstanding() == ()

    def test_session_reports_merges_log_and_ledger(self, monkeypatch):
        log = ReportLog()
        monkeypatch.setattr("repro.analysis.sanitizers.GLOBAL_LOG", log)
        monkeypatch.setattr(
            shmaudit, "GLOBAL_LEDGER", shmaudit.ShmLedger(log=log)
        )
        log.report("ring-recycle", "stale view", site="x.py:1")
        shmaudit.GLOBAL_LEDGER.note_create("seg", 64, label="leak-me")
        reports = session_reports()
        assert sorted(r.sanitizer for r in reports) == [
            "ring-recycle",
            "shm-leak",
        ]


class TestRingSanitizer:
    def test_use_after_wrap_raises_with_acquisition_site(self):
        log = ReportLog()
        ring = GuardedBufferRing(4, 3, slots=2, log=log)
        stale = ring.acquire(4, 5)
        stale[:] = 1.0
        ring.acquire(4, 5)
        ring.acquire(4, 5)  # wraps; slot 0 recycled
        with pytest.raises(UseAfterRecycleError) as err:
            stale[0, 0]
        message = str(err.value)
        assert "use-after-recycle" in message
        assert "test_analysis.py" in message  # original acquisition site
        assert [r.sanitizer for r in log.drain()] == ["ring-recycle"]

    def test_stale_write_and_ufunc_also_raise(self):
        log = ReportLog()
        ring = GuardedBufferRing(2, 3, slots=2, log=log)
        stale = ring.acquire(2, 4)
        ring.acquire(2, 4)
        ring.acquire(2, 4)
        with pytest.raises(UseAfterRecycleError):
            stale[0, 0] = 9.0
        with pytest.raises(UseAfterRecycleError):
            stale + 1
        assert len(log.drain()) == 2

    def test_recycled_slot_is_poison_filled(self):
        log = ReportLog()
        ring = GuardedBufferRing(2, 3, slots=2, log=log)
        first = ring.acquire(2, 4)
        first[:] = 7.0
        raw = np.asarray(first)  # plain view: guard shed, poison backstop
        ring.acquire(2, 4)
        ring.acquire(2, 4)  # wrap repoisons slot 0
        assert np.isnan(raw).all()
        assert log.outstanding() == ()

    def test_current_handle_behaves_like_its_array(self):
        log = ReportLog()
        ring = GuardedBufferRing(3, 4, slots=2, log=log)
        handle = ring.acquire(3, 5)
        handle[:] = 2.0
        assert isinstance(handle, RingSlotView)
        total = np.add(handle, 1)
        # Derived results are plain arrays — fresh data never inherits
        # a slot's generation stamp.
        assert type(total) is np.ndarray
        assert np.all(total == 3.0)
        assert log.outstanding() == ()

    def test_copy_is_the_sanctioned_way_to_retain(self):
        log = ReportLog()
        ring = GuardedBufferRing(2, 3, slots=2, log=log)
        handle = ring.acquire(2, 3)
        handle[:] = 3.0
        keep = handle.copy()
        ring.acquire(2, 3)
        ring.acquire(2, 3)
        assert np.all(keep == 3.0)  # owning copy carries no guard
        assert log.outstanding() == ()

    def test_sealed_view_rejects_writes(self):
        log = ReportLog()
        ring = GuardedBufferRing(2, 3, slots=2, log=log)
        handle = ring.acquire(2, 3)
        handle[:] = 1.0
        sealed = ring.seal(handle)
        assert sealed is handle
        with pytest.raises(ValueError):
            sealed[0, 0] = 5.0
        # The slot itself stays writable: the next wrap repoisons it.
        fresh = ring.acquire(2, 3)
        ring.acquire(2, 3)
        fresh[:] = 2.0
        assert log.outstanding() == ()

    def test_paired_features_resolves_through_the_guard(self):
        log = ReportLog()
        ring = GuardedBufferRing(4, 6, slots=2, log=log)
        handle = ring.acquire(2, 5)
        features = ring.paired_features(handle)
        assert features is not None
        assert features.shape == (2, 6)
        ring.acquire(2, 5)
        ring.acquire(2, 5)
        with pytest.raises(UseAfterRecycleError):
            ring.paired_features(handle)
        assert [r.sanitizer for r in log.drain()] == ["ring-recycle"]

    def test_plain_ring_seal_is_a_no_op(self):
        ring = BufferRing(2, 3)
        view = ring.acquire(2, 3)
        assert ring.seal(view) is view
        assert view.flags.writeable
        view[0, 0] = 1.0

    def test_make_buffer_ring_arms_on_the_env_flag(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_FLAG, raising=False)
        assert type(make_buffer_ring(2, 3)) is BufferRing
        monkeypatch.setenv(SANITIZE_FLAG, "1")
        assert isinstance(make_buffer_ring(2, 3), GuardedBufferRing)

    def test_rebatch_hands_off_sealed_guarded_batches(self):
        log = ReportLog()
        ring = GuardedBufferRing(4, 6, slots=2, log=log)
        chunks = [
            ShotChunk(
                feedline=np.full((4, 5), i + 1, dtype=complex),
                prepared_levels=np.zeros((4, 2), dtype=np.int64),
                chunk_id=i,
            )
            for i in range(3)
        ]
        batches = list(MicroBatcher(4).rebatch(chunks, ring=ring))
        assert len(batches) == 3
        last = batches[-1].feedline
        assert isinstance(last, RingSlotView)
        assert not last.flags.writeable  # sealed at hand-off
        assert np.all(np.asarray(last) == 3.0)
        assert ring.paired_features(last) is not None
        # batches[0] used slot 0, recycled by batches[2]: retaining it
        # past the wrap is the seeded bug.
        with pytest.raises(UseAfterRecycleError):
            batches[0].feedline[0, 0]
        assert [r.sanitizer for r in log.drain()] == ["ring-recycle"]


class TestShmLifetimeAuditor:
    def test_leaked_block_is_witnessed_until_unlinked(self, monkeypatch):
        log = ReportLog()
        monkeypatch.setenv(SANITIZE_FLAG, "1")
        monkeypatch.setattr(
            shmaudit, "GLOBAL_LEDGER", shmaudit.ShmLedger(log=log)
        )
        block = SharedTraceBlock(
            np.zeros((4, 8), dtype=complex),
            np.zeros((4, 2), dtype=np.int64),
            label="feed-a",
        )
        try:
            leaks = shmaudit.GLOBAL_LEDGER.leak_reports()
            assert len(leaks) == 1
            assert leaks[0].sanitizer == "shm-leak"
            assert "feed-a" in leaks[0].message
            assert "shm.py" in leaks[0].message  # creation site witness
        finally:
            block.unlink()
        assert shmaudit.GLOBAL_LEDGER.leak_reports() == []
        assert log.outstanding() == ()

    def test_block_unlink_is_idempotent_not_a_double_unlink(
        self, monkeypatch
    ):
        log = ReportLog()
        monkeypatch.setenv(SANITIZE_FLAG, "1")
        monkeypatch.setattr(
            shmaudit, "GLOBAL_LEDGER", shmaudit.ShmLedger(log=log)
        )
        block = SharedTraceBlock(
            np.zeros((2, 4), dtype=complex), np.zeros((2, 1), dtype=np.int64)
        )
        block.unlink()
        block.unlink()  # guarded by the block; never reaches the segment
        assert log.outstanding() == ()

    def test_ledger_reports_double_unlink(self):
        log = ReportLog()
        ledger = shmaudit.ShmLedger(log=log)
        ledger.note_create("seg", 64, label="x")
        ledger.note_unlink("seg")
        assert log.outstanding() == ()
        ledger.note_unlink("seg")
        reports = log.drain()
        assert [r.sanitizer for r in reports] == ["shm-double-unlink"]
        assert "seg" in reports[0].message
        ledger.note_unlink("ghost")
        reports = log.drain()
        assert [r.sanitizer for r in reports] == ["shm-double-unlink"]
        assert "ghost" in reports[0].message

    def test_ledger_reports_attach_after_unlink(self):
        log = ReportLog()
        ledger = shmaudit.ShmLedger(log=log)
        ledger.note_create("seg", 64)
        ledger.note_attach("seg")
        ledger.note_close("seg")
        ledger.note_unlink("seg")
        assert log.outstanding() == ()
        ledger.note_attach("seg")
        ledger.note_failed_attach("seg")
        assert [r.sanitizer for r in log.drain()] == [
            "shm-attach-after-unlink",
            "shm-attach-after-unlink",
        ]
        # A failed attach to a name we never saw carries no verdict.
        ledger.note_failed_attach("never-created")
        assert log.outstanding() == ()

    def test_attach_after_unlink_witnessed_end_to_end(
        self, monkeypatch, two_qubit_chip
    ):
        log = ReportLog()
        monkeypatch.setenv(SANITIZE_FLAG, "1")
        monkeypatch.setattr(
            shmaudit, "GLOBAL_LEDGER", shmaudit.ShmLedger(log=log)
        )
        block = SharedTraceBlock(
            np.zeros((4, 8), dtype=complex), np.zeros((4, 2), dtype=np.int64)
        )
        descriptor = block.descriptor
        block.unlink()
        with pytest.raises(FileNotFoundError):
            SharedMemoryTraceSource(descriptor, two_qubit_chip)
        assert [r.sanitizer for r in log.drain()] == [
            "shm-attach-after-unlink"
        ]

    def test_clean_lifecycle_leaves_no_reports(
        self, monkeypatch, two_qubit_chip, tiny_corpus
    ):
        log = ReportLog()
        monkeypatch.setenv(SANITIZE_FLAG, "1")
        monkeypatch.setattr(
            shmaudit, "GLOBAL_LEDGER", shmaudit.ShmLedger(log=log)
        )
        block = SharedTraceBlock.from_corpus(tiny_corpus, label="corpus")
        source = SharedMemoryTraceSource(
            block.descriptor, two_qubit_chip, chunk_size=128
        )
        total = sum(chunk.n_shots for chunk in source.chunks())
        source.close()
        block.unlink()
        assert total == tiny_corpus.feedline.shape[0]
        assert shmaudit.GLOBAL_LEDGER.leak_reports() == []
        assert log.outstanding() == ()

    def test_hooks_are_inert_when_disarmed(self, monkeypatch):
        log = ReportLog()
        monkeypatch.delenv(SANITIZE_FLAG, raising=False)
        monkeypatch.setattr(
            shmaudit, "GLOBAL_LEDGER", shmaudit.ShmLedger(log=log)
        )
        block = SharedTraceBlock(
            np.zeros((2, 4), dtype=complex), np.zeros((2, 1), dtype=np.int64)
        )
        assert shmaudit.GLOBAL_LEDGER.live() == ()
        block.unlink()
        assert log.outstanding() == ()
