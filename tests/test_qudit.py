"""Tests for the qutrit density-matrix simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError
from repro.qudit import (
    DensityMatrix,
    QuditCircuit,
    amplitude_damping_kraus,
    basis_ket,
    cnot_embedded,
    cz_embedded,
    dephasing_kraus,
    depolarizing_kraus,
    hadamard_embedded,
    joint_ket,
    leaky_cnot_kraus,
    x01,
    x12,
)
from repro.qudit.channels import apply_kraus, check_completeness
from repro.qudit.gates import swap_full, z_embedded


def _is_unitary(u):
    return np.allclose(u @ u.conj().T, np.eye(u.shape[0]), atol=1e-12)


class TestStatesAndGates:
    def test_basis_kets_orthonormal(self):
        kets = [basis_ket(i) for i in range(3)]
        gram = np.array([[abs(np.vdot(a, b)) for b in kets] for a in kets])
        np.testing.assert_allclose(gram, np.eye(3), atol=1e-12)

    def test_joint_ket_ordering(self):
        ket = joint_ket([2, 0])
        assert ket[6] == 1.0  # |2,0> -> index 2*3+0

    @pytest.mark.parametrize(
        "gate",
        [x01(), x12(), hadamard_embedded(), z_embedded(), cnot_embedded(),
         cz_embedded(), swap_full()],
    )
    def test_gates_are_unitary(self, gate):
        assert _is_unitary(gate)

    def test_cnot_flips_only_when_control_is_one(self):
        cnot = cnot_embedded()
        for control, target, expected in [(0, 1, (0, 1)), (1, 0, (1, 1)),
                                          (1, 1, (1, 0)), (2, 0, (2, 0))]:
            ket_in = joint_ket([control, target])
            ket_out = cnot @ ket_in
            np.testing.assert_allclose(ket_out, joint_ket(list(expected)))

    def test_x12_prepares_leaked_state(self):
        np.testing.assert_allclose(x12() @ basis_ket(1), basis_ket(2))


class TestChannels:
    @pytest.mark.parametrize(
        "kraus",
        [
            amplitude_damping_kraus(0.05, 0.1, 0.01),
            dephasing_kraus(0.2),
            depolarizing_kraus(0.3),
            leaky_cnot_kraus(),
            leaky_cnot_kraus(0.0, 0.0, 0.0),
        ],
    )
    def test_completeness(self, kraus):
        assert check_completeness(kraus)

    def test_amplitude_damping_moves_population_down(self):
        rho = np.outer(basis_ket(2), basis_ket(2).conj())
        out = apply_kraus(rho, amplitude_damping_kraus(0.0, 0.5, 0.0))
        assert out[1, 1].real == pytest.approx(0.5)
        assert out[2, 2].real == pytest.approx(0.5)

    def test_leaky_cnot_transfer_rate(self):
        kraus = leaky_cnot_kraus(p_flip=0.05, p_transfer=0.0175, p_leak=0.0)
        rho = np.outer(joint_ket([2, 0]), joint_ket([2, 0]).conj())
        out = apply_kraus(rho, kraus)
        # Target leaked with exactly the transfer probability.
        target_leaked = sum(
            out[3 * c + 2, 3 * c + 2].real for c in range(3)
        )
        assert target_leaked == pytest.approx(0.0175, abs=1e-10)

    def test_leaky_cnot_is_ideal_without_leaked_control(self):
        kraus = leaky_cnot_kraus(p_flip=0.5, p_transfer=0.3, p_leak=0.0)
        rho = np.outer(joint_ket([1, 0]), joint_ket([1, 0]).conj())
        out = apply_kraus(rho, kraus)
        expected = np.outer(joint_ket([1, 1]), joint_ket([1, 1]).conj())
        np.testing.assert_allclose(out, expected, atol=1e-12)

    def test_invalid_probabilities_rejected(self):
        with pytest.raises(ConfigurationError):
            leaky_cnot_kraus(p_flip=0.8, p_transfer=0.4)
        with pytest.raises(ConfigurationError):
            amplitude_damping_kraus(-0.1, 0.0)

    @settings(max_examples=20, deadline=None)
    @given(
        p_flip=st.floats(min_value=0.0, max_value=0.5),
        p_transfer=st.floats(min_value=0.0, max_value=0.5),
        p_leak=st.floats(min_value=0.0, max_value=0.5),
    )
    def test_leaky_cnot_completeness_property(self, p_flip, p_transfer, p_leak):
        assert check_completeness(leaky_cnot_kraus(p_flip, p_transfer, p_leak))


class TestDensityMatrix:
    def test_initial_state_is_ground(self):
        state = DensityMatrix(2)
        assert state.probabilities()[0] == pytest.approx(1.0)
        assert state.trace == pytest.approx(1.0)
        assert state.purity == pytest.approx(1.0)

    def test_unitary_on_selected_qudit(self):
        state = DensityMatrix(2)
        state.apply_unitary(x01(), (1,))
        probs = state.probabilities()
        assert probs[1] == pytest.approx(1.0)  # |01>

    def test_unitary_on_first_qudit(self):
        state = DensityMatrix(2)
        state.apply_unitary(x01(), (0,))
        assert state.probabilities()[3] == pytest.approx(1.0)  # |10>

    def test_two_qudit_gate_with_reversed_targets(self):
        # CNOT with control=qudit1, target=qudit0.
        state = DensityMatrix.from_levels([0, 1])
        state.apply_unitary(cnot_embedded(), (1, 0))
        assert state.probabilities()[4] == pytest.approx(1.0)  # |11>

    def test_channel_preserves_trace(self):
        state = DensityMatrix.from_levels([2, 1])
        state.apply_kraus(amplitude_damping_kraus(0.1, 0.2, 0.01), (0,))
        assert state.trace == pytest.approx(1.0)

    def test_level_populations_marginalize(self):
        state = DensityMatrix.from_levels([2, 0])
        np.testing.assert_allclose(state.level_populations(0), [0, 0, 1])
        np.testing.assert_allclose(state.level_populations(1), [1, 0, 0])
        assert state.leakage_population(0) == pytest.approx(1.0)

    def test_sampling_matches_distribution(self, rng):
        state = DensityMatrix(1)
        state.apply_unitary(hadamard_embedded(), (0,))
        samples = state.sample_measurements(4000, rng)
        assert np.mean(samples[:, 0] == 0) == pytest.approx(0.5, abs=0.05)

    def test_too_large_system_rejected(self):
        with pytest.raises(ConfigurationError):
            DensityMatrix(9, d=3)


class TestCircuit:
    def test_bell_state_on_computational_subspace(self):
        circuit = QuditCircuit(2).h(0).cnot(0, 1)
        rho = circuit.run()
        probs = rho.probabilities()
        assert probs[0] == pytest.approx(0.5)  # |00>
        assert probs[4] == pytest.approx(0.5)  # |11>

    def test_x12_prepares_leakage(self):
        rho = QuditCircuit(1).x01(0).x12(0).run()
        assert rho.leakage_population(0) == pytest.approx(1.0)

    def test_repeated_leaky_cnot_monotone_growth(self):
        populations = []
        circuit = QuditCircuit(2)
        for _ in range(6):
            circuit.leaky_cnot(0, 1)
            populations.append(circuit.run((2, 0)).leakage_population(1))
        assert all(b > a for a, b in zip(populations, populations[1:]))

    def test_paper_growth_ratio_near_three(self):
        leaked = QuditCircuit(2)
        normal = QuditCircuit(2)
        for _ in range(12):
            leaked.leaky_cnot(0, 1)
            normal.leaky_cnot(0, 1)
        ratio = leaked.run((2, 0)).leakage_population(1) / normal.run(
            (1, 0)
        ).leakage_population(1)
        assert ratio == pytest.approx(3.0, abs=0.6)

    def test_depth_counts_operations(self):
        circuit = QuditCircuit(2).h(0).cnot(0, 1).leaky_cnot(0, 1)
        assert circuit.depth == 3

    def test_bad_target_rejected(self):
        with pytest.raises(ConfigurationError):
            QuditCircuit(2).x01(5)
