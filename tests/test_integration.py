"""End-to-end integration tests across subsystem boundaries."""

import numpy as np
import pytest

from repro.data import ReadoutCorpus, generate_corpus
from repro.discriminators import MLRDiscriminator
from repro.fpga import HLSNetworkModel
from repro.ml import stratified_split
from repro.ml.metrics import geometric_mean_fidelity, per_qubit_fidelity
from repro.qec import EraserConfig, LeakageParams, RotatedSurfaceCode, run_eraser


class TestReadoutPipeline:
    """Physics -> DSP -> features -> NN -> metrics, end to end."""

    @pytest.fixture(scope="class")
    def pipeline(self, two_qubit_chip):
        corpus = generate_corpus(two_qubit_chip, shots_per_state=50, seed=55)
        train, test = stratified_split(corpus.labels, 0.3, seed=56)
        disc = MLRDiscriminator(epochs=80, learning_rate=3e-3, seed=57)
        disc.fit(corpus, train)
        return corpus, train, test, disc

    def test_full_pipeline_fidelity(self, pipeline):
        corpus, _, test, disc = pipeline
        pred = disc.predict(corpus, test)
        fid = per_qubit_fidelity(corpus.labels[test], pred, 2, 3)
        assert geometric_mean_fidelity(fid) > 0.85

    def test_errors_concentrate_on_jump_traces(self, pipeline):
        corpus, _, test, disc = pipeline
        pred = disc.predict(corpus, test)
        correct = pred == corpus.labels[test]
        jumped = (
            corpus.final_levels[test] != corpus.prepared_levels[test]
        ).any(axis=1)
        if jumped.sum() >= 10:
            assert correct[~jumped].mean() > correct[jumped].mean()

    def test_corpus_round_trip_preserves_predictions(self, pipeline, tmp_path):
        corpus, _, test, disc = pipeline
        path = tmp_path / "corpus.npz"
        corpus.save(path)
        loaded = ReadoutCorpus.load(path)
        np.testing.assert_array_equal(
            disc.predict(corpus, test[:30]), disc.predict(loaded, test[:30])
        )

    def test_quantized_deployment_matches_float(self, pipeline):
        corpus, _, test, disc = pipeline
        features = disc.scaler.transform(disc.extractor.transform(corpus, test))
        for q, model in enumerate(disc.models):
            hls = HLSNetworkModel.from_classifier(model)
            agreement = np.mean(hls.predict(features) == model.predict(features))
            assert agreement > 0.95

    def test_shorter_window_degrades_gracefully(self, pipeline):
        corpus, train, test, disc = pipeline
        fid_by_len = []
        for trace_len in (60, 200):
            short = corpus.truncated(trace_len)
            clone = disc.with_recalibrated_scaler(short, train)
            pred = clone.predict(short, test)
            fid = per_qubit_fidelity(corpus.labels[test], pred, 2, 3)
            fid_by_len.append(fid.mean())
        assert fid_by_len[1] > fid_by_len[0] - 0.02


class TestReadoutToQEC:
    """Discriminator quality feeding the QEC speculation layer."""

    def test_measured_error_drives_speculation(self, two_qubit_chip):
        corpus = generate_corpus(two_qubit_chip, shots_per_state=40, seed=60)
        train, test = stratified_split(corpus.labels, 0.3, seed=61)
        disc = MLRDiscriminator(epochs=60, learning_rate=3e-3, seed=62)
        disc.fit(corpus, train)
        pred = disc.predict(corpus, test)
        fid = per_qubit_fidelity(corpus.labels[test], pred, 2, 3)
        error = float(1.0 - fid.mean())

        code = RotatedSurfaceCode(3)
        report = run_eraser(
            code,
            cycles=8,
            shots=60,
            params=LeakageParams(readout_error=min(0.5, error)),
            config=EraserConfig(multi_level=True),
            seed=63,
        )
        assert 0.5 < report.accuracy <= 1.0
