"""Tests for the dispersive-readout physics simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, ShapeError
from repro.physics import (
    ADCConfig,
    ChipConfig,
    ReadoutSimulator,
    TransitionRates,
    default_five_qubit_chip,
    sample_level_matrix,
)
from repro.physics.dispersive import (
    evolve_segment,
    segment_decay,
    steady_state_field,
)
from repro.physics.jumps import jump_statistics
from repro.physics.multiplex import apply_crosstalk, combine_feedline, upconvert
from repro.physics.noise import apply_gain_drift, complex_white_noise
from repro.physics.trajectories import baseband_response, state_mean_response


class TestDeviceConfig:
    def test_default_chip_matches_paper_setup(self, five_qubit_chip):
        assert five_qubit_chip.n_qubits == 5
        assert five_qubit_chip.trace_len == 500
        assert five_qubit_chip.adc.sample_rate_ghz == pytest.approx(0.5)
        assert five_qubit_chip.duration_ns == pytest.approx(1000.0)
        t1s = [q.t1_ns for q in five_qubit_chip.qubits]
        assert min(t1s) == pytest.approx(7_000.0)
        assert max(t1s) == pytest.approx(40_000.0)

    def test_leak_prone_qubits_have_elevated_excitation(self, five_qubit_chip):
        rates = [q.excite_12_rate for q in five_qubit_chip.qubits]
        assert rates[2] > 2 * rates[0]
        assert rates[3] > 2 * rates[0]

    def test_chip_serialization_round_trip(self, five_qubit_chip):
        rebuilt = ChipConfig.from_dict(five_qubit_chip.to_dict())
        assert rebuilt.n_qubits == five_qubit_chip.n_qubits
        np.testing.assert_allclose(rebuilt.crosstalk, five_qubit_chip.crosstalk)
        assert rebuilt.qubits[1].t1_ns == five_qubit_chip.qubits[1].t1_ns

    def test_if_outside_nyquist_rejected(self, five_qubit_chip):
        import dataclasses

        bad = dataclasses.replace(
            five_qubit_chip.qubits[0], if_frequency_ghz=0.4
        )
        with pytest.raises(ConfigurationError, match="Nyquist"):
            ChipConfig(qubits=(bad,))

    def test_crosstalk_diagonal_must_be_zero(self, five_qubit_chip):
        xt = np.eye(5, dtype=complex)
        import dataclasses

        with pytest.raises(ConfigurationError, match="diagonal"):
            dataclasses.replace(five_qubit_chip, crosstalk=xt)


class TestADC:
    def test_quantization_error_bounded_by_half_lsb(self, rng):
        adc = ADCConfig(n_bits=10, full_scale=4.0)
        signal = rng.uniform(-3, 3, 100) + 1j * rng.uniform(-3, 3, 100)
        out = adc.digitize(signal)
        assert np.max(np.abs(out.real - signal.real)) <= adc.lsb / 2 + 1e-12
        assert np.max(np.abs(out.imag - signal.imag)) <= adc.lsb / 2 + 1e-12

    def test_clipping_at_full_scale(self):
        adc = ADCConfig(n_bits=8, full_scale=1.0)
        out = adc.digitize(np.array([100.0 + 0j, -100.0 + 0j]))
        assert out[0].real <= 1.0
        assert out[1].real >= -1.0 - adc.lsb

    def test_rejects_real_signal(self):
        with pytest.raises(ConfigurationError):
            ADCConfig().digitize(np.array([1.0, 2.0]))


class TestDispersive:
    def test_steady_state_magnitude_decreases_with_detuning(self):
        near = steady_state_field(1.0, 0.001, kappa=0.0126)
        far = steady_state_field(1.0, 0.05, kappa=0.0126)
        assert abs(near) > abs(far)

    def test_segment_decay_magnitude(self):
        decay = segment_decay(0.0, kappa=0.0126, dt=2.0)
        assert abs(decay) == pytest.approx(np.exp(-0.0126))

    def test_evolution_converges_to_steady_state(self):
        alpha_ss = steady_state_field(1.0, 0.006, 0.0126)
        times = np.array([0.0, 5000.0])
        traj = evolve_segment(
            np.array([0.0 + 0j]), np.array([alpha_ss]), 0.006, 0.0126, times
        )
        assert traj[0, 0] == pytest.approx(0.0)
        assert traj[0, -1] == pytest.approx(alpha_ss, rel=1e-6)


class TestJumps:
    def test_rates_from_qubit(self, five_qubit_chip):
        qubit = five_qubit_chip.qubits[0]
        rates = TransitionRates.from_qubit(qubit)
        assert rates.matrix[1, 0] == pytest.approx(1.0 / qubit.t1_ns)
        assert rates.matrix[2, 1] == pytest.approx(1.0 / qubit.t1_2_ns)

    def test_relaxation_fraction_matches_exponential(self, rng):
        t1 = 5_000.0
        rates = TransitionRates(np.array([[0, 0, 0], [1 / t1, 0, 0], [0, 0, 0]], float).T * 0
                                + np.array([[0, 0, 0], [1 / t1, 0, 0], [0, 0, 0]]))
        levels = sample_level_matrix(
            np.ones(4000, dtype=int), rates, trace_len=500, dt=2.0, rng=rng
        )
        stats = jump_statistics(levels, np.ones(4000, dtype=int))
        expected = 1.0 - np.exp(-1000.0 / t1)
        measured = np.mean(stats["final_levels"] == 0)
        assert measured == pytest.approx(expected, abs=0.03)

    def test_no_rates_means_no_jumps(self, rng):
        rates = TransitionRates(np.zeros((3, 3)))
        levels = sample_level_matrix(
            np.array([0, 1, 2]), rates, trace_len=50, dt=2.0, rng=rng
        )
        assert np.all(levels == np.array([[0], [1], [2]]))

    def test_levels_piecewise_constant_from_initial(self, rng, five_qubit_chip):
        rates = TransitionRates.from_qubit(five_qubit_chip.qubits[3])
        init = rng.integers(0, 3, size=200)
        levels = sample_level_matrix(init, rates, 500, 2.0, rng)
        assert np.all(levels[:, 0] == init)
        assert levels.dtype == np.int8

    def test_invalid_initial_levels_rejected(self, rng):
        rates = TransitionRates(np.zeros((3, 3)))
        with pytest.raises(ConfigurationError):
            sample_level_matrix(np.array([5]), rates, 10, 2.0, rng)


class TestTrajectories:
    def test_trace_starts_at_zero_field(self, five_qubit_chip):
        trace = state_mean_response(five_qubit_chip.qubits[0], 0, 100, 2.0)
        assert abs(trace[0]) == pytest.approx(0.0)

    def test_states_reach_distinct_steady_values(self, five_qubit_chip):
        qubit = five_qubit_chip.qubits[0]
        finals = [
            state_mean_response(qubit, s, 500, 2.0)[-1] for s in range(3)
        ]
        assert abs(finals[0] - finals[1]) > 0.1
        assert abs(finals[1] - finals[2]) > 0.1

    def test_mid_trace_jump_bends_trajectory(self, five_qubit_chip):
        qubit = five_qubit_chip.qubits[0]
        levels = np.ones((1, 400), dtype=np.int8)
        levels[0, 200:] = 0  # relaxation at mid-trace
        jumped = baseband_response(qubit, levels, 2.0)[0]
        steady_one = state_mean_response(qubit, 1, 400, 2.0)
        steady_zero = state_mean_response(qubit, 0, 400, 2.0)
        np.testing.assert_allclose(jumped[:200], steady_one[:200])
        # 400 ns after the jump the field has settled to within
        # exp(-kappa/2 * 400ns) ~ 8% of the |0> steady state.
        assert abs(jumped[-1] - steady_zero[-1]) < 0.15
        assert abs(jumped[-1] - steady_one[-1]) > 1.0

    def test_shape_validation(self, five_qubit_chip):
        with pytest.raises(ShapeError):
            baseband_response(
                five_qubit_chip.qubits[0], np.zeros(10, dtype=np.int8), 2.0
            )


class TestNoiseAndMultiplex:
    def test_white_noise_statistics(self, rng):
        noise = complex_white_noise((20000,), std=3.0, rng=rng)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(9.0, rel=0.05)
        assert abs(np.mean(noise)) < 0.1

    def test_zero_noise_is_exact_zero(self, rng):
        noise = complex_white_noise((10,), std=0.0, rng=rng)
        np.testing.assert_array_equal(noise, 0.0)

    def test_gain_drift_identity_when_disabled(self, rng):
        signal = rng.normal(size=(5, 10)) + 0j
        np.testing.assert_array_equal(
            apply_gain_drift(signal, 0.0, rng), signal
        )

    def test_crosstalk_mixing_matches_matrix(self, rng):
        base = rng.normal(size=(2, 3, 8)) + 1j * rng.normal(size=(2, 3, 8))
        xt = np.array([[0.0, 0.1], [0.2j, 0.0]])
        mixed = apply_crosstalk(base, xt)
        np.testing.assert_allclose(mixed[0], base[0] + 0.1 * base[1])
        np.testing.assert_allclose(mixed[1], base[1] + 0.2j * base[0])

    def test_upconvert_then_demodulate_is_identity(self, rng):
        from repro.dsp.demod import demodulate

        times = np.arange(64) * 2.0
        base = rng.normal(size=(3, 64)) + 1j * rng.normal(size=(3, 64))
        shifted = upconvert(base, 0.11, times)
        recovered = demodulate(shifted, 0.11, times)
        np.testing.assert_allclose(recovered, base, atol=1e-12)

    def test_feedline_is_sum_of_tones(self, two_qubit_chip, rng):
        base = np.zeros((2, 1, 50), dtype=complex)
        base[0] = 1.0
        times = two_qubit_chip.sample_times(50)
        feed = combine_feedline(two_qubit_chip, base, times)
        assert feed.shape == (1, 50)


class TestSimulator:
    def test_result_shapes(self, two_qubit_chip, rng):
        sim = ReadoutSimulator(two_qubit_chip, seed=rng)
        prepared = np.array([[0, 1], [2, 0], [1, 1]])
        result = sim.simulate(prepared)
        assert result.feedline.shape == (3, two_qubit_chip.trace_len)
        assert result.feedline.dtype == np.complex64
        np.testing.assert_array_equal(result.prepared_levels, prepared)

    def test_preparation_errors_can_be_disabled(self, two_qubit_chip, rng):
        sim = ReadoutSimulator(two_qubit_chip, seed=1)
        prepared = np.tile([[0, 1]], (500, 1))
        result = sim.simulate(prepared, include_preparation_errors=False)
        np.testing.assert_array_equal(result.initial_levels, prepared)

    def test_preparation_leakage_rate(self, two_qubit_chip):
        sim = ReadoutSimulator(two_qubit_chip, seed=2)
        prepared = np.tile([[1, 1]], (4000, 1))
        result = sim.simulate(prepared)
        leak_rate = np.mean(result.initial_levels[:, 0] == 2)
        assert leak_rate == pytest.approx(
            two_qubit_chip.qubits[0].prep_leak_prob, abs=0.01
        )

    def test_determinism_with_same_seed(self, two_qubit_chip):
        prepared = np.array([[0, 1], [1, 2]])
        a = ReadoutSimulator(two_qubit_chip, seed=9).simulate(prepared)
        b = ReadoutSimulator(two_qubit_chip, seed=9).simulate(prepared)
        np.testing.assert_array_equal(a.feedline, b.feedline)

    def test_rejects_bad_levels(self, two_qubit_chip):
        sim = ReadoutSimulator(two_qubit_chip, seed=0)
        with pytest.raises(ConfigurationError):
            sim.simulate(np.array([[0, 3]]))

    @settings(max_examples=10, deadline=None)
    @given(trace_len=st.integers(min_value=10, max_value=80))
    def test_trace_len_override_property(self, trace_len):
        from tests.conftest import make_two_qubit_chip

        chip = make_two_qubit_chip(trace_len=100)
        sim = ReadoutSimulator(chip, seed=0)
        result = sim.simulate(np.array([[0, 0]]), trace_len=trace_len)
        assert result.feedline.shape == (1, trace_len)
