"""Dataset utilities: stratified splitting and feature standardization."""

from __future__ import annotations

import numpy as np

from repro._util import as_1d_int, as_2d_float, check_random_state
from repro.exceptions import ConfigurationError, DataError, NotFittedError

__all__ = ["stratified_split", "StandardScaler"]


def stratified_split(
    y: np.ndarray,
    train_fraction: float,
    seed: int | np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Split sample indices into train/test, stratified by label.

    The paper uses a 30-70 train/test split *per basis state*; stratifying
    keeps every state present on both sides even at small shot counts.

    Returns
    -------
    (train_idx, test_idx):
        Integer index arrays (shuffled within each stratum). Strata with a
        single sample go to the training side.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ConfigurationError(
            f"train_fraction must be in (0, 1), got {train_fraction}"
        )
    y = as_1d_int(y)
    rng = check_random_state(seed)
    train_parts, test_parts = [], []
    for label in np.unique(y):
        idx = np.flatnonzero(y == label)
        rng.shuffle(idx)
        if idx.size == 1:
            train_parts.append(idx)
            continue
        n_train = int(round(idx.size * train_fraction))
        n_train = min(max(n_train, 1), idx.size - 1)
        train_parts.append(idx[:n_train])
        test_parts.append(idx[n_train:])
    if not test_parts:
        raise DataError("split produced an empty test set; add more samples")
    train_idx = np.concatenate(train_parts)
    test_idx = np.concatenate(test_parts)
    rng.shuffle(train_idx)
    rng.shuffle(test_idx)
    return train_idx, test_idx


class StandardScaler:
    """Per-feature standardization to zero mean and unit variance.

    Matched-filter scores for different filters have wildly different
    scales; all NN discriminators standardize their inputs with statistics
    from the training split only.
    """

    def __init__(self) -> None:
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, x: np.ndarray) -> "StandardScaler":
        """Record the column means and standard deviations of ``x``."""
        x = as_2d_float(x)
        self.mean_ = x.mean(axis=0)
        std = x.std(axis=0)
        # Constant features pass through unscaled rather than exploding.
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, x: np.ndarray) -> np.ndarray:
        """Apply the fitted standardization."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        x = as_2d_float(x)
        if x.shape[1] != self.mean_.shape[0]:
            raise DataError(
                f"expected {self.mean_.shape[0]} features, got {x.shape[1]}"
            )
        return (x - self.mean_) / self.scale_

    def transform_inplace(self, x: np.ndarray) -> np.ndarray:
        """Standardize a float feature block in place; returns it.

        The zero-copy serving path: the caller owns a reusable float
        buffer the raw features were written into, and the
        standardization mutates it rather than allocating a fresh array
        per batch. ``x`` must already be 2-D float (no coercion — a
        coerced copy would defeat the point).
        """
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        x = np.asarray(x)
        if x.ndim != 2 or not np.issubdtype(x.dtype, np.floating):
            raise DataError(
                f"transform_inplace needs a 2-D float array, got "
                f"{x.dtype} with shape {x.shape}"
            )
        if x.shape[1] != self.mean_.shape[0]:
            raise DataError(
                f"expected {self.mean_.shape[0]} features, got {x.shape[1]}"
            )
        x -= self.mean_
        x /= self.scale_
        return x

    def fit_transform(self, x: np.ndarray) -> np.ndarray:
        """Fit on ``x`` and return its standardized copy."""
        return self.fit(x).transform(x)

    def inverse_transform(self, x: np.ndarray) -> np.ndarray:
        """Undo the standardization."""
        if self.mean_ is None or self.scale_ is None:
            raise NotFittedError("StandardScaler is not fitted")
        x = as_2d_float(x)
        return x * self.scale_ + self.mean_
