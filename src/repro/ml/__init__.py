"""From-scratch numpy machine-learning substrate.

scikit-learn and deep-learning frameworks are deliberately not used: the
paper's models (feedforward networks trained with Adam, LDA/QDA baselines,
k-means and spectral clustering for leakage detection) are re-implemented
here on top of numpy/scipy so the whole pipeline is self-contained and
auditable.
"""

from repro.ml.confusion import ReadoutConfusion, confusion_from_labels
from repro.ml.dataset import StandardScaler, stratified_split
from repro.ml.kmeans import KMeans
from repro.ml.lda import LinearDiscriminantAnalysis
from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    geometric_mean_fidelity,
    per_qubit_fidelity,
)
from repro.ml.nn import MLPClassifier
from repro.ml.qda import QuadraticDiscriminantAnalysis
from repro.ml.spectral import SpectralClustering

__all__ = [
    "MLPClassifier",
    "LinearDiscriminantAnalysis",
    "QuadraticDiscriminantAnalysis",
    "KMeans",
    "SpectralClustering",
    "StandardScaler",
    "stratified_split",
    "accuracy",
    "confusion_matrix",
    "per_qubit_fidelity",
    "geometric_mean_fidelity",
    "ReadoutConfusion",
    "confusion_from_labels",
]
