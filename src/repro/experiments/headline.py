"""Headline ratios from the abstract and introduction.

Paper claims: ~100x smaller model than the FNN, ~10x smaller than
HERQULES; 60x fewer LUTs than the FNN, 15x fewer than HERQULES; 20%
readout-time reduction; 6.6% relative accuracy improvement over the FNN.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.registry import experiment
from repro.api.results import ExperimentResult
from repro.config import QUICK, Profile
from repro.experiments.common import (
    FNN_ARCHITECTURE,
    HERQULES_ARCHITECTURE,
    OURS_ARCHITECTURE,
    OURS_REPLICAS,
)
from repro.experiments.report import format_rows
from repro.fpga import estimate_network_resources
from repro.fpga.resources import network_shape_stats

__all__ = ["HeadlineResult", "run_headline"]

#: Abstract/introduction claims: model-size and LUT reduction factors.
PAPER_RATIOS = {
    "model_size_vs_fnn": 100.0,
    "model_size_vs_herqules": 10.0,
    "lut_ratio_vs_fnn": 60.0,
    "lut_ratio_vs_herqules": 15.0,
}


@dataclass(frozen=True)
class HeadlineResult(ExperimentResult):
    """Model-size and LUT ratios between the three designs."""

    parameters: dict
    luts: dict

    def _measured(self) -> dict:
        return {
            "parameters": self.parameters,
            "luts": self.luts,
            "model_size_vs_fnn": self.model_size_vs_fnn,
            "model_size_vs_herqules": self.model_size_vs_herqules,
            "lut_ratio_vs_fnn": self.lut_ratio_vs_fnn,
            "lut_ratio_vs_herqules": self.lut_ratio_vs_herqules,
        }

    def _paper_values(self) -> dict:
        return PAPER_RATIOS

    @property
    def model_size_vs_fnn(self) -> float:
        return self.parameters["fnn"] / self.parameters["ours"]

    @property
    def model_size_vs_herqules(self) -> float:
        return self.parameters["herqules"] / self.parameters["ours"]

    @property
    def lut_ratio_vs_fnn(self) -> float:
        return self.luts["fnn"] / self.luts["ours"]

    @property
    def lut_ratio_vs_herqules(self) -> float:
        return self.luts["herqules"] / self.luts["ours"]

    def format_table(self) -> str:
        table = format_rows(
            ("Design", "Parameters", "LUTs"),
            [
                (d, self.parameters[d], round(self.luts[d], 0))
                for d in ("fnn", "herqules", "ours")
            ],
            title="Headline: model size and LUT comparison",
        )
        return (
            f"{table}\n"
            f"model size: {self.model_size_vs_fnn:.0f}x vs FNN (paper ~100x), "
            f"{self.model_size_vs_herqules:.1f}x vs HERQULES (paper ~10x)\n"
            f"LUTs: {self.lut_ratio_vs_fnn:.0f}x vs FNN (paper ~60x), "
            f"{self.lut_ratio_vs_herqules:.1f}x vs HERQULES (paper ~15x... 4x in Fig 5a)"
        )


@experiment("headline", tags=("fpga", "scaling"), paper_ref="Abstract")
def run_headline(profile: Profile = QUICK) -> HeadlineResult:
    """Compute the parameter and LUT ratios from the published shapes."""
    parameters = {
        "fnn": network_shape_stats(FNN_ARCHITECTURE)[0],
        "herqules": network_shape_stats(HERQULES_ARCHITECTURE)[0],
        "ours": network_shape_stats(OURS_ARCHITECTURE)[0] * OURS_REPLICAS,
    }
    luts = {
        "fnn": estimate_network_resources(FNN_ARCHITECTURE).luts,
        "herqules": estimate_network_resources(HERQULES_ARCHITECTURE).luts,
        "ours": estimate_network_resources(
            OURS_ARCHITECTURE, n_replicas=OURS_REPLICAS
        ).luts,
    }
    return HeadlineResult(parameters=parameters, luts=luts)
