"""Multi-tenant fleet serving: many ServeSpecs, one substrate.

The fleet counterpart of :mod:`repro.serve` — where a
:class:`~repro.serve.ReadoutService` owns a private shard pool and
registry for one spec, this package multiplexes many tenant sessions
over one shared :class:`~repro.pipeline.cluster.SharedShardPool` and
one namespaced calibration-registry root:

- :mod:`repro.fleet.spec` — :class:`FleetSpec`, the frozen, JSON
  round-trip-stable fleet configuration (tenant name →
  :class:`TenantSpec` = :class:`~repro.serve.ServeSpec` +
  :class:`FleetSLOSpec`; :class:`FleetPoolSpec` for the substrate) with
  the same exhaustive all-errors-at-once validation contract as
  ``ServeSpec``.
- :mod:`repro.fleet.scheduler` — :class:`FairShareScheduler`, the
  deterministic weighted fair-share dispatch order (priority strides,
  min-share floors, max-share caps, starvation-free).
- :mod:`repro.fleet.stats` — :class:`FleetStats` /
  :class:`TenantStats` / :class:`TenantRunRecord`: per-tenant SLO
  scoring against the FPGA decision budget, queue waits, admission
  rejections, recal storms.
- :mod:`repro.fleet.service` — :class:`ReadoutFleet`, the lifecycle:
  ``warm()`` admits tenants against pool capacity and warms each
  session through its lease; ``submit()`` queues runs; ``drain()``
  serves them fairly; one gate serializes cross-tenant recalibration.

CLI: ``repro fleet --spec fleet.json [--tenants ...] [--json]``.
"""

from repro.fleet.scheduler import FairShareScheduler, RunRequest, TenantShare
from repro.fleet.service import ReadoutFleet
from repro.fleet.spec import (
    FleetPoolSpec,
    FleetSLOSpec,
    FleetSpec,
    TenantSpec,
)
from repro.fleet.stats import FleetStats, TenantRunRecord, TenantStats

__all__ = [
    "FairShareScheduler",
    "FleetPoolSpec",
    "FleetSLOSpec",
    "FleetSpec",
    "FleetStats",
    "ReadoutFleet",
    "RunRequest",
    "TenantRunRecord",
    "TenantShare",
    "TenantSpec",
    "TenantStats",
]
