"""Tests for the sizing profiles."""

import pytest

from repro.config import FULL, PAPER, QUICK, Profile, get_profile
from repro.exceptions import ConfigurationError


def test_named_profiles_resolve():
    assert get_profile("quick") is QUICK
    assert get_profile("full") is FULL
    assert get_profile("paper") is PAPER


def test_unknown_profile_raises():
    with pytest.raises(ConfigurationError, match="unknown profile"):
        get_profile("turbo")


def test_profiles_scale_monotonically():
    assert QUICK.shots_per_state < FULL.shots_per_state < PAPER.shots_per_state
    assert QUICK.qec_shots < FULL.qec_shots <= PAPER.qec_shots


def test_paper_profile_matches_publication():
    assert PAPER.shots_per_state == 50_000


def test_with_seed_returns_new_profile():
    other = QUICK.with_seed(1)
    assert other.seed == 1
    assert other.shots_per_state == QUICK.shots_per_state
    assert QUICK.seed != 1


def test_invalid_profile_values_rejected():
    with pytest.raises(ConfigurationError):
        Profile(
            name="bad",
            shots_per_state=0,
            calibration_shots=1,
            nn_epochs=1,
            fnn_epochs=1,
            batch_size=1,
            qec_shots=1,
            qudit_shots=1,
            spectral_max_points=1,
        )
