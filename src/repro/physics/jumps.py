"""Continuous-time Markov sampling of qubit level trajectories.

During the measurement window a qubit can relax (|2> -> |1> -> |0>, plus a
small direct |2> -> |0> channel) or be excited by the measurement drive
(|0> -> |1>, |1> -> |2>, |0> -> |2>). We model the level as a
continuous-time Markov chain with state-dependent exit rates and sample
whole batches of trajectories, returning a per-ADC-sample level matrix that
the resonator recurrence consumes directly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro._util import check_random_state
from repro.exceptions import ConfigurationError
from repro.physics.device import QubitParams

__all__ = ["TransitionRates", "sample_level_matrix", "jump_statistics"]


@dataclass(frozen=True)
class TransitionRates:
    """Off-diagonal rate matrix ``R[i, j]`` = rate of i -> j transitions (1/ns)."""

    matrix: np.ndarray

    def __post_init__(self) -> None:
        m = np.asarray(self.matrix, dtype=np.float64)
        if m.ndim != 2 or m.shape[0] != m.shape[1]:
            raise ConfigurationError(f"rate matrix must be square, got {m.shape}")
        if np.any(m < 0):
            raise ConfigurationError("rates must be non-negative")
        if np.any(np.diag(m) != 0):
            raise ConfigurationError("rate matrix diagonal must be zero")
        object.__setattr__(self, "matrix", m)

    @property
    def n_levels(self) -> int:
        return self.matrix.shape[0]

    @property
    def exit_rates(self) -> np.ndarray:
        """Total departure rate from each level."""
        return self.matrix.sum(axis=1)

    @classmethod
    def from_qubit(cls, qubit: QubitParams) -> "TransitionRates":
        """Build the 3-level rate matrix from a qubit's parameters."""
        matrix = np.zeros((3, 3))
        matrix[1, 0] = 1.0 / qubit.t1_ns
        matrix[2, 1] = 1.0 / qubit.t1_2_ns
        matrix[2, 0] = qubit.direct_20_rate
        matrix[0, 1] = qubit.excite_01_rate
        matrix[1, 2] = qubit.excite_12_rate
        matrix[0, 2] = qubit.excite_02_rate
        return cls(matrix)


def sample_level_matrix(
    initial_levels: np.ndarray,
    rates: TransitionRates,
    trace_len: int,
    dt: float,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Sample per-sample level trajectories for a batch of shots.

    Parameters
    ----------
    initial_levels:
        Integer array (n_shots,) of starting levels.
    rates:
        Transition rates in 1/ns.
    trace_len, dt:
        Number of ADC samples and the sample period (ns). Jump times are
        rounded to sample boundaries (dt = 2 ns at 500 MS/s, far below
        every other timescale in the problem).

    Returns
    -------
    levels:
        int8 array (n_shots, trace_len) of the level at each sample.
    """
    if trace_len < 1:
        raise ConfigurationError(f"trace_len must be >= 1, got {trace_len}")
    if dt <= 0:
        raise ConfigurationError("dt must be positive")
    rng = check_random_state(rng)
    initial = np.asarray(initial_levels, dtype=np.int64)
    if initial.ndim != 1:
        raise ConfigurationError("initial_levels must be 1-D")
    k = rates.n_levels
    if np.any(initial < 0) or np.any(initial >= k):
        raise ConfigurationError(f"initial levels must lie in [0, {k})")

    n = initial.shape[0]
    duration = trace_len * dt
    levels = np.empty((n, trace_len), dtype=np.int8)
    levels[:] = initial[:, None]

    exit_rates = rates.exit_rates
    current_level = initial.copy()
    current_time = np.zeros(n)
    active = np.arange(n)

    while active.size:
        lam = exit_rates[current_level[active]]
        # Levels with zero exit rate never jump again.
        stuck = lam <= 0
        waits = np.full(active.size, np.inf)
        movable = ~stuck
        waits[movable] = rng.exponential(1.0 / lam[movable])
        jump_time = current_time[active] + waits
        still = jump_time < duration
        jumping = active[still]
        if jumping.size == 0:
            break
        jump_time = jump_time[still]

        # Choose destinations from the per-source categorical distribution.
        sources = current_level[jumping]
        probs = rates.matrix[sources] / exit_rates[sources][:, None]
        u = rng.random(jumping.size)
        destinations = (np.cumsum(probs, axis=1) < u[:, None]).sum(axis=1)
        destinations = np.minimum(destinations, rates.n_levels - 1)

        sample_idx = np.minimum(
            (jump_time / dt).astype(np.int64), trace_len - 1
        )
        for trace, dest, start in zip(jumping, destinations, sample_idx):
            levels[trace, start:] = dest
        current_level[jumping] = destinations
        current_time[jumping] = jump_time
        active = jumping

    return levels


def jump_statistics(
    levels: np.ndarray, initial_levels: np.ndarray
) -> dict[str, np.ndarray]:
    """Summaries of a sampled level matrix used by tests and diagnostics.

    Returns a dict with ``final_levels`` (n,), ``jumped`` (n,) bool, and
    ``n_jumps`` (n,) counting level changes along each trace.
    """
    levels = np.asarray(levels)
    initial = np.asarray(initial_levels)
    changes = np.diff(levels.astype(np.int16), axis=1) != 0
    return {
        "final_levels": levels[:, -1].astype(np.int64),
        "jumped": levels[:, -1].astype(np.int64) != initial,
        "n_jumps": changes.sum(axis=1).astype(np.int64),
    }
