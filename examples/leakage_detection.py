"""Calibration-free leakage detection (Sec V.A / Fig 3).

Preparing |2> explicitly is an extra calibration burden; this example
shows the paper's alternative: spectral-cluster the mean-trace-value (MTV)
points of ordinary two-level calibration shots and label the small cluster
as naturally occurring leakage. Ground truth from the simulator scores the
detection.

Run with::

    python examples/leakage_detection.py
"""

from __future__ import annotations

import numpy as np

from repro.data import generate_calibration_shots
from repro.discriminators import detect_leakage_clusters
from repro.physics import default_five_qubit_chip


def main() -> None:
    chip = default_five_qubit_chip()
    # Two-level calibration shots: qubits prepared only in |0>/|1>, but
    # preparation errors occasionally leave a qubit leaked.
    calibration = generate_calibration_shots(chip, n_shots=900, seed=7)
    print(f"calibration corpus: {calibration.n_traces} two-level shots\n")

    for qubit in range(chip.n_qubits):
        result = detect_leakage_clusters(calibration, qubit, seed=8 + qubit)
        truly_leaked = int((calibration.initial_levels[:, qubit] == 2).sum())
        print(
            f"qubit {qubit + 1} ({chip.qubits[qubit].name}): "
            f"clusters 0/1/L = {tuple(int(c) for c in result.cluster_sizes)}, "
            f"truly leaked {truly_leaked}, flagged {result.n_detected} "
            f"(precision {result.precision:.2f}, recall {result.recall:.2f})"
        )

    # The leak-prone qubit in detail: average MTV positions per cluster.
    qubit = 3
    result = detect_leakage_clusters(calibration, qubit, seed=20)
    print(f"\nqubit {qubit + 1} cluster centroids in the IQ plane:")
    for level, name in enumerate(("|0>", "|1>", "L")):
        members = result.mtv[result.assigned_levels == level]
        if members.size:
            center = members.mean(axis=0)
            print(f"  {name}: I={center[0]:+.3f}, Q={center[1]:+.3f} "
                  f"({members.shape[0]} shots)")

    # Ablation: k-means instead of spectral clustering.
    kmeans = detect_leakage_clusters(calibration, qubit, method="kmeans", seed=21)
    print(f"\nspectral recall {result.recall:.2f} vs k-means recall "
          f"{kmeans.recall:.2f} (spectral handles the tiny leaked cluster "
          f"better)")


if __name__ == "__main__":
    main()
