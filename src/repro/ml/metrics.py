"""Readout fidelity metrics.

The paper reports per-qubit readout fidelity ``F_i`` (state-assignment
accuracy of qubit ``i`` marginalized over the other qubits) and the
cumulative five-qubit fidelity ``F5Q = (F1 F2 F3 F4 F5)^(1/5)`` — the
geometric mean (Tables II and IV).
"""

from __future__ import annotations

import numpy as np

from repro._util import as_1d_int
from repro.data.basis import marginal_labels
from repro.exceptions import DataError, ShapeError

__all__ = [
    "accuracy",
    "confusion_matrix",
    "balanced_accuracy",
    "per_qubit_fidelity",
    "geometric_mean_fidelity",
    "assignment_error_rate",
]


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = as_1d_int(y_true, "y_true")
    y_pred = as_1d_int(y_pred, "y_pred")
    if y_true.shape != y_pred.shape:
        raise ShapeError(
            f"y_true {y_true.shape} and y_pred {y_pred.shape} differ"
        )
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray, n_classes: int | None = None
) -> np.ndarray:
    """Counts matrix ``C[i, j]`` = samples with true class i predicted as j."""
    y_true = as_1d_int(y_true, "y_true")
    y_pred = as_1d_int(y_pred, "y_pred")
    if y_true.shape != y_pred.shape:
        raise ShapeError(
            f"y_true {y_true.shape} and y_pred {y_pred.shape} differ"
        )
    if n_classes is None:
        n_classes = int(max(y_true.max(), y_pred.max())) + 1
    if y_true.min() < 0 or y_pred.min() < 0:
        raise DataError("labels must be non-negative")
    if max(y_true.max(), y_pred.max()) >= n_classes:
        raise DataError(f"labels exceed n_classes={n_classes}")
    flat = y_true * n_classes + y_pred
    counts = np.bincount(flat, minlength=n_classes * n_classes)
    return counts.reshape(n_classes, n_classes)


def balanced_accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Mean per-class recall; robust to class imbalance (leaked states are rare)."""
    cm = confusion_matrix(y_true, y_pred)
    row_sums = cm.sum(axis=1)
    present = row_sums > 0
    if not np.any(present):
        raise DataError("no classes present in y_true")
    recalls = np.diag(cm)[present] / row_sums[present]
    return float(np.mean(recalls))


def per_qubit_fidelity(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    n_qubits: int,
    n_levels: int,
) -> np.ndarray:
    """Per-qubit assignment fidelity from *joint* state labels.

    ``F_i`` is the probability that qubit ``i``'s level is reported
    correctly, marginalized over all other qubits — the quantity tabulated
    per qubit in Tables II and IV.
    """
    y_true = as_1d_int(y_true, "y_true")
    y_pred = as_1d_int(y_pred, "y_pred")
    if y_true.shape != y_pred.shape:
        raise ShapeError(
            f"y_true {y_true.shape} and y_pred {y_pred.shape} differ"
        )
    fidelities = np.empty(n_qubits)
    for q in range(n_qubits):
        true_q = marginal_labels(y_true, q, n_qubits, n_levels)
        pred_q = marginal_labels(y_pred, q, n_qubits, n_levels)
        fidelities[q] = np.mean(true_q == pred_q)
    return fidelities


def geometric_mean_fidelity(fidelities: np.ndarray) -> float:
    """Cumulative fidelity ``(prod F_i)^(1/n)`` — the paper's ``F5Q``."""
    arr = np.asarray(fidelities, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ShapeError(f"fidelities must be a non-empty 1-D array, got {arr.shape}")
    if np.any(arr < 0) or np.any(arr > 1):
        raise DataError("fidelities must lie in [0, 1]")
    if np.any(arr == 0):
        return 0.0
    return float(np.exp(np.mean(np.log(arr))))


def assignment_error_rate(
    y_true: np.ndarray,
    y_pred: np.ndarray,
    n_qubits: int,
    n_levels: int,
    exclude_qubits: tuple[int, ...] = (),
) -> float:
    """Mean per-qubit infidelity, optionally excluding qubits.

    Table VI computes readout error as the infidelity of the mean accuracy
    *excluding qubit 2* (index 1), whose hardware setup limited its
    distinguishability; this helper mirrors that convention.
    """
    fid = per_qubit_fidelity(y_true, y_pred, n_qubits, n_levels)
    keep = [q for q in range(n_qubits) if q not in exclude_qubits]
    if not keep:
        raise DataError("cannot exclude every qubit")
    return float(1.0 - np.mean(fid[keep]))
