"""Synthetic corpus generation for the paper's experimental setups."""

from __future__ import annotations

import numpy as np

from repro._util import check_random_state
from repro.data.basis import all_states, digits_to_state
from repro.data.dataset import ReadoutCorpus
from repro.exceptions import ConfigurationError
from repro.physics.device import ChipConfig, default_five_qubit_chip
from repro.physics.simulator import ReadoutSimulator

__all__ = ["generate_corpus", "generate_calibration_shots"]


def generate_corpus(
    chip: ChipConfig | None = None,
    shots_per_state: int = 16,
    states: np.ndarray | None = None,
    seed: int | np.random.Generator | None = None,
    chunk_states: int = 27,
) -> ReadoutCorpus:
    """Generate a labeled three-level corpus over joint basis states.

    The paper's dataset covers all ``3**5 = 243`` joint states of the
    five-qubit chip (leaked-state traces mined by clustering); here every
    state is prepared directly with the same per-state shot count.

    Parameters
    ----------
    chip:
        Device; defaults to :func:`default_five_qubit_chip`.
    shots_per_state:
        Traces per joint basis state.
    states:
        Subset of joint state indices; all of them by default.
    seed:
        RNG seed or generator.
    chunk_states:
        States simulated per batch, bounding peak memory (the per-qubit
        baseband intermediates are ~5x the feedline size).
    """
    chip = chip if chip is not None else default_five_qubit_chip()
    if chunk_states < 1:
        raise ConfigurationError("chunk_states must be >= 1")
    rng = check_random_state(seed)
    sim = ReadoutSimulator(chip, seed=rng)
    states = (
        all_states(chip.n_qubits, chip.n_levels)
        if states is None
        else np.asarray(states, dtype=np.int64)
    )

    feedlines, labels = [], []
    prepared, initial, final = [], [], []
    for start in range(0, states.size, chunk_states):
        chunk = states[start : start + chunk_states]
        result, chunk_labels = sim.simulate_joint_states(chunk, shots_per_state)
        feedlines.append(result.feedline)
        labels.append(chunk_labels)
        prepared.append(result.prepared_levels.astype(np.int8))
        initial.append(result.initial_levels.astype(np.int8))
        final.append(result.final_levels.astype(np.int8))

    return ReadoutCorpus(
        feedline=np.concatenate(feedlines, axis=0),
        labels=np.concatenate(labels),
        prepared_levels=np.concatenate(prepared, axis=0),
        initial_levels=np.concatenate(initial, axis=0),
        final_levels=np.concatenate(final, axis=0),
        chip=chip,
    )


def generate_calibration_shots(
    chip: ChipConfig | None = None,
    n_shots: int = 4000,
    seed: int | np.random.Generator | None = None,
    chunk_shots: int = 2000,
) -> ReadoutCorpus:
    """Generate *two-level* calibration shots with natural leakage.

    Mirrors the paper's source data: qubits are prepared only in |0> or
    |1> (cycling through the 2^n computational basis states), but
    preparation errors occasionally leave a qubit in |2>. Sec V.A's
    spectral clustering discovers those leaked traces without any |2>
    calibration; ``initial_levels`` carries the ground truth to score it.
    """
    chip = chip if chip is not None else default_five_qubit_chip()
    if n_shots < 1:
        raise ConfigurationError("n_shots must be >= 1")
    rng = check_random_state(seed)
    sim = ReadoutSimulator(chip, seed=rng)

    n_states = 2**chip.n_qubits
    state_cycle = np.tile(
        np.arange(n_states, dtype=np.int64), n_shots // n_states + 1
    )[:n_shots]
    # Expand binary joint indices to per-qubit 0/1 levels.
    shifts = np.arange(chip.n_qubits - 1, -1, -1)
    digits = (state_cycle[:, None] >> shifts) & 1

    feedlines, prepared, initial, final = [], [], [], []
    for start in range(0, n_shots, chunk_shots):
        chunk = digits[start : start + chunk_shots]
        result = sim.simulate(chunk)
        feedlines.append(result.feedline)
        prepared.append(result.prepared_levels.astype(np.int8))
        initial.append(result.initial_levels.astype(np.int8))
        final.append(result.final_levels.astype(np.int8))

    prepared_all = np.concatenate(prepared, axis=0)
    labels = digits_to_state(prepared_all.astype(np.int64), chip.n_levels)
    return ReadoutCorpus(
        feedline=np.concatenate(feedlines, axis=0),
        labels=labels,
        prepared_levels=prepared_all,
        initial_levels=np.concatenate(initial, axis=0),
        final_levels=np.concatenate(final, axis=0),
        chip=chip,
    )
