"""Tests for LDA, QDA, k-means, spectral clustering, metrics, and splits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, DataError, NotFittedError
from repro.ml import (
    KMeans,
    LinearDiscriminantAnalysis,
    QuadraticDiscriminantAnalysis,
    SpectralClustering,
    StandardScaler,
    stratified_split,
)
from repro.ml.metrics import (
    accuracy,
    assignment_error_rate,
    balanced_accuracy,
    confusion_matrix,
    geometric_mean_fidelity,
    per_qubit_fidelity,
)
from repro.ml.spectral import knn_affinity, rbf_affinity


def _blobs(rng, centers, n=120, std=0.25):
    x = np.vstack([rng.normal(c, std, size=(n, len(c))) for c in centers])
    y = np.repeat(np.arange(len(centers)), n)
    return x, y


class TestDiscriminantAnalysis:
    def test_lda_separates_blobs(self, rng):
        x, y = _blobs(rng, [(-2, 0), (2, 0), (0, 3)])
        model = LinearDiscriminantAnalysis().fit(x, y)
        assert model.score(x, y) > 0.97

    def test_qda_handles_unequal_covariances(self, rng):
        a = rng.normal(0, 0.2, size=(200, 2))
        b = rng.normal(0, 2.0, size=(200, 2))
        x = np.vstack([a, b])
        y = np.repeat([0, 1], 200)
        qda = QuadraticDiscriminantAnalysis().fit(x, y)
        lda = LinearDiscriminantAnalysis().fit(x, y)
        # Same mean, different covariance: only QDA can separate.
        assert qda.score(x, y) > 0.8
        assert qda.score(x, y) > lda.score(x, y)

    @pytest.mark.parametrize(
        "cls", [LinearDiscriminantAnalysis, QuadraticDiscriminantAnalysis]
    )
    def test_probabilities_are_normalized(self, cls, rng):
        x, y = _blobs(rng, [(-2, 0), (2, 0)])
        probs = cls().fit(x, y).predict_proba(x)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(probs >= 0)

    @pytest.mark.parametrize(
        "cls", [LinearDiscriminantAnalysis, QuadraticDiscriminantAnalysis]
    )
    def test_single_class_rejected(self, cls, rng):
        x = rng.normal(size=(10, 2))
        with pytest.raises(DataError):
            cls().fit(x, np.zeros(10, dtype=int))

    @pytest.mark.parametrize(
        "cls", [LinearDiscriminantAnalysis, QuadraticDiscriminantAnalysis]
    )
    def test_unfitted_predict_raises(self, cls):
        with pytest.raises(NotFittedError):
            cls().predict(np.zeros((2, 2)))

    def test_lda_respects_nonconsecutive_labels(self, rng):
        x, y = _blobs(rng, [(-2, 0), (2, 0)])
        labels = np.where(y == 0, 3, 7)
        model = LinearDiscriminantAnalysis().fit(x, labels)
        assert set(np.unique(model.predict(x))) <= {3, 7}


class TestKMeans:
    def test_recovers_well_separated_clusters(self, rng):
        x, y = _blobs(rng, [(-4, 0), (4, 0), (0, 6)], n=80)
        labels = KMeans(3, seed=0).fit_predict(x)
        # Cluster labels are arbitrary; check co-membership agreement.
        for cls in range(3):
            members = labels[y == cls]
            assert np.mean(members == np.bincount(members).argmax()) > 0.95

    def test_inertia_decreases_with_more_clusters(self, rng):
        x, _ = _blobs(rng, [(-4, 0), (4, 0), (0, 6)], n=60)
        inertia = [
            KMeans(k, seed=0).fit(x).inertia_ for k in (1, 2, 3)
        ]
        assert inertia[0] > inertia[1] > inertia[2]

    def test_predict_assigns_nearest_centroid(self, rng):
        x, _ = _blobs(rng, [(-4, 0), (4, 0)], n=50)
        km = KMeans(2, seed=0).fit(x)
        far_left = km.predict(np.array([[-10.0, 0.0]]))
        left_centroid = np.argmin(km.cluster_centers_[:, 0])
        assert far_left[0] == left_centroid

    def test_too_few_points_rejected(self):
        with pytest.raises(DataError):
            KMeans(5).fit(np.zeros((3, 2)))

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            KMeans(0)


class TestSpectral:
    def test_rbf_affinity_symmetric_unit_diagonal(self, rng):
        x = rng.normal(size=(20, 2))
        aff = rbf_affinity(x)
        np.testing.assert_allclose(aff, aff.T, atol=1e-12)
        np.testing.assert_allclose(np.diag(aff), 1.0)

    def test_knn_affinity_symmetric(self, rng):
        x = rng.normal(size=(30, 2))
        aff = knn_affinity(x, n_neighbors=5)
        np.testing.assert_allclose(aff, aff.T)

    def test_separates_concentric_structure(self, rng):
        # Two rings: spectral (knn) separates them, unlike raw k-means.
        theta = rng.uniform(0, 2 * np.pi, 150)
        inner = np.column_stack([np.cos(theta), np.sin(theta)]) * 1.0
        outer = np.column_stack([np.cos(theta), np.sin(theta)]) * 4.0
        x = np.vstack([inner, outer]) + rng.normal(0, 0.05, (300, 2))
        labels = SpectralClustering(
            2, affinity="knn", n_neighbors=8, seed=0
        ).fit_predict(x)
        truth = np.repeat([0, 1], 150)
        agreement = max(
            np.mean(labels == truth), np.mean(labels == 1 - truth)
        )
        assert agreement > 0.95

    def test_subsampling_path_labels_everything(self, rng):
        x, _ = _blobs(rng, [(-4, 0), (4, 0), (0, 6)], n=200)
        sc = SpectralClustering(3, max_points=100, seed=0)
        labels = sc.fit_predict(x)
        assert labels.shape == (600,)
        assert set(np.unique(labels)) <= {0, 1, 2}

    def test_invalid_affinity_rejected(self):
        with pytest.raises(ConfigurationError):
            SpectralClustering(3, affinity="cosine")


class TestMetrics:
    def test_accuracy_basic(self):
        assert accuracy(np.array([0, 1, 2]), np.array([0, 1, 1])) == pytest.approx(
            2 / 3
        )

    def test_confusion_matrix_counts(self):
        cm = confusion_matrix(np.array([0, 0, 1]), np.array([0, 1, 1]), 2)
        np.testing.assert_array_equal(cm, [[1, 1], [0, 1]])

    def test_balanced_accuracy_weighs_classes_equally(self):
        y_true = np.array([0] * 98 + [1] * 2)
        y_pred = np.zeros(100, dtype=int)
        assert accuracy(y_true, y_pred) == pytest.approx(0.98)
        assert balanced_accuracy(y_true, y_pred) == pytest.approx(0.5)

    def test_per_qubit_fidelity_marginalizes(self):
        # Joint 2-qutrit labels: truth 0 = (0,0); predict (0,1) -> qubit 0
        # right, qubit 1 wrong.
        y_true = np.array([0])
        y_pred = np.array([1])
        fid = per_qubit_fidelity(y_true, y_pred, n_qubits=2, n_levels=3)
        np.testing.assert_allclose(fid, [1.0, 0.0])

    def test_geometric_mean_matches_paper_convention(self):
        fids = np.array([0.967, 0.728, 0.928, 0.932, 0.962])
        # Paper Table IV: F5Q = 0.8985 for these per-qubit values.
        assert geometric_mean_fidelity(fids) == pytest.approx(0.8985, abs=2e-4)

    def test_geometric_mean_zero_fidelity(self):
        assert geometric_mean_fidelity(np.array([0.0, 0.9])) == 0.0

    def test_assignment_error_excludes_qubits(self):
        y_true = np.array([0, 0])
        y_pred = np.array([9, 9])  # digits (0,1,0) in base 3 for 2... invalid
        # Use a consistent 2-qubit example: state 3 = (1,0): qubit0 wrong.
        y_pred = np.array([3, 3])
        err_all = assignment_error_rate(y_true, y_pred, 2, 3)
        err_excl = assignment_error_rate(y_true, y_pred, 2, 3, exclude_qubits=(0,))
        assert err_all == pytest.approx(0.5)
        assert err_excl == pytest.approx(0.0)

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=6))
    def test_geometric_mean_bounds_property(self, fids):
        arr = np.asarray(fids)
        g = geometric_mean_fidelity(arr)
        assert arr.min() - 1e-12 <= g <= arr.max() + 1e-12


class TestSplitsAndScaling:
    def test_stratified_split_keeps_all_classes(self, rng):
        y = np.repeat(np.arange(10), 12)
        train, test = stratified_split(y, 0.3, seed=0)
        assert set(y[train]) == set(range(10))
        assert set(y[test]) == set(range(10))
        assert len(np.intersect1d(train, test)) == 0
        assert train.size + test.size == y.size

    def test_stratified_split_fraction_respected(self, rng):
        y = np.repeat(np.arange(5), 100)
        train, _ = stratified_split(y, 0.3, seed=0)
        assert train.size == pytest.approx(150, abs=5)

    def test_split_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            stratified_split(np.zeros(10, int), 1.5)

    def test_standard_scaler_round_trip(self, rng):
        x = rng.normal(3.0, 5.0, size=(50, 4))
        scaler = StandardScaler()
        z = scaler.fit_transform(x)
        np.testing.assert_allclose(z.mean(axis=0), 0.0, atol=1e-9)
        np.testing.assert_allclose(z.std(axis=0), 1.0, atol=1e-9)
        np.testing.assert_allclose(scaler.inverse_transform(z), x, atol=1e-9)

    def test_standard_scaler_constant_feature_safe(self):
        x = np.ones((10, 2))
        z = StandardScaler().fit_transform(x)
        assert np.all(np.isfinite(z))

    def test_scaler_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            StandardScaler().transform(np.zeros((2, 2)))
