"""Plain-text table formatting for experiment results."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_rows"]


def format_rows(
    headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned text table (matplotlib-free figure substitute)."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append(
            [f"{v:.4f}" if isinstance(v, float) else str(v) for v in row]
        )
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
