"""Command-line entry point: run any paper experiment from the shell.

Subcommands::

    repro run <exp|tag|all> [...] [--profile P] [--seed S] [--workers N] [--json PATH]
    repro list [--tags]
    repro pipeline [--shots N] [--workers N] [...] [--prune]
    repro serve --spec spec.json [--shots N] [--repeat K] [--json PATH]
    repro fleet --spec fleet.json [--tenants A B] [--runs K] [--json PATH]
    repro record --out DIR [--shots N] [--backend B] [--json PATH]
    repro replay --corpus DIR [--feedlines N] [--json PATH]
    repro lint [--rules R1,R2] [--json [PATH]] [paths...]

The pre-subcommand positional form (``repro table1 --profile quick``,
``repro all``, ``repro list``) is still accepted and routed through the
same code paths. Experiments resolve through the
:data:`repro.api.experiments` registry, so anything registered with the
``@experiment`` decorator is immediately addressable here. The pipeline
and serve subcommands both resolve their configuration into one
declarative :class:`repro.serve.ServeSpec` — ``pipeline`` builds it from
flags for a one-shot run, ``serve`` loads it from a JSON file and serves
repeated runs from a single warmed :class:`repro.serve.ReadoutService`.

Examples::

    repro list --tags
    repro run table4 --profile quick --json table4.json
    repro run fidelity --workers 2
    repro fig5b --profile full --seed 7
    repro pipeline --shots 2000 --workers 4 --profile quick
    repro pipeline --feedlines 3 --executor process --adaptive-batching
    repro pipeline --prune --max-age-s 604800
    repro serve --spec examples/serve_spec.json --repeat 5 --json serve.json
    repro fleet --spec examples/fleet_spec.json --runs 3 --json fleet.json
    repro record --out corpus/ --shots 2000 --json record.json
    repro replay --corpus corpus/ --json replay.json
    repro lint src/ --json lint.json
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time

from repro.api.registry import discover, experiments
from repro.api.suite import run_suite
from repro.exceptions import ConfigurationError

__all__ = [
    "main",
    "build_parser",
    "build_run_parser",
    "build_list_parser",
    "build_pipeline_parser",
    "build_serve_parser",
    "build_fleet_parser",
    "build_record_parser",
    "build_replay_parser",
]

#: First positionals dispatched to their own parser.
_SUBCOMMANDS = (
    "run", "list", "pipeline", "serve", "fleet", "record", "replay", "lint",
)


def build_parser() -> argparse.ArgumentParser:
    """Legacy positional parser (``repro <experiment>``), kept for
    back-compat and exposed for tests."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Efficient and Scalable Architectures for "
            "Multi-level Superconducting Qubit Readout' (DAC 2025)"
        ),
    )
    parser.add_argument(
        "experiment",
        help=(
            "subcommand (run/list/pipeline) or, in the legacy form, an "
            "experiment id (table1/table2/.../headline) or 'all'"
        ),
    )
    parser.add_argument(
        "--profile",
        default="quick",
        help="sizing profile: quick, full, or paper (default: quick)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the profile's base seed"
    )
    return parser


def build_run_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro run`` subcommand (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro run",
        description=(
            "Run one or more experiments selected by name, tag "
            "(fidelity/qec/fpga/scaling/...), or 'all'"
        ),
    )
    parser.add_argument(
        "selectors",
        nargs="+",
        metavar="EXPERIMENT",
        help="experiment names, tags, or 'all' (any mix)",
    )
    parser.add_argument(
        "--profile",
        default="quick",
        help="sizing profile: quick, full, or paper (default: quick)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the profile's base seed"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="run independent experiments on N threads (default: 1)",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help=(
            "write results as JSON to PATH (single experiment: its "
            "name/profile/measured/paper/deviations record; several: the "
            "whole suite)"
        ),
    )
    return parser


def build_list_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro list`` subcommand (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro list",
        description="List registered experiments",
    )
    parser.add_argument(
        "--tags",
        action="store_true",
        help="also show each experiment's tags and paper reference",
    )
    return parser


def build_pipeline_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro pipeline`` subcommand (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro pipeline",
        description=(
            "Stream simulated readout traffic through the batched "
            "demod -> matched-filter -> discriminator -> ERASER runtime, "
            "reporting shots/sec and per-stage p50/p99 latency"
        ),
    )
    parser.add_argument(
        "--shots",
        type=int,
        default=2000,
        help="shots to stream, per feedline (default: 2000)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="channel-shard workers for demod/matched-filter (default: 1)",
    )
    parser.add_argument(
        "--feedlines",
        type=int,
        default=1,
        help=(
            "readout groups (feedlines) to serve; > 1 shards one "
            "discrimination chain per feedline across --executor workers "
            "(default: 1)"
        ),
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="thread",
        help=(
            "shard backend for --feedlines > 1; process workers rebuild "
            "calibration from registry artifacts (default: thread)"
        ),
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        help="shard workers for --feedlines > 1 (default: one per feedline)",
    )
    parser.add_argument(
        "--qubits-per-feedline",
        type=int,
        default=5,
        help=(
            "qubits multiplexed on each served feedline, 1-5 "
            "(default: 5; applies to --feedlines 1 as well)"
        ),
    )
    parser.add_argument(
        "--batch-size", type=int, default=64, help="shots per micro-batch"
    )
    parser.add_argument(
        "--adaptive-batching",
        action="store_true",
        help=(
            "resize micro-batches from the observed per-shot latency EWMA "
            "against the FPGA decision budget instead of fixing --batch-size"
        ),
    )
    parser.add_argument(
        "--max-batch-size",
        type=int,
        default=1024,
        help="upper bound on the adapted batch size (default: 1024)",
    )
    parser.add_argument(
        "--target-batch-ms",
        type=float,
        default=None,
        help=(
            "per-batch compute-latency target for --adaptive-batching "
            "(default: derived from the FPGA decision budget)"
        ),
    )
    parser.add_argument(
        "--chunk-size", type=int, default=256, help="shots per source chunk"
    )
    parser.add_argument(
        "--profile",
        default="quick",
        help="calibration sizing profile: quick, full, or paper",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="override the profile's base seed"
    )
    parser.add_argument(
        "--registry",
        default=".repro-cache/calibration",
        help=(
            "calibration-registry directory; fitted artifacts are stored "
            "here so warm runs skip retraining (default: "
            ".repro-cache/calibration)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the calibration registry (always fit from scratch)",
    )
    parser.add_argument(
        "--design",
        default=None,
        help=(
            "registered discriminator design to serve (default: 'ours'; "
            "see repro.discriminators.registry — the streaming engine "
            "currently requires the MLR family)"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="also write the run report as JSON to PATH",
    )
    parser.add_argument(
        "--prune",
        action="store_true",
        help=(
            "evict stored calibration artifacts instead of streaming: "
            "apply --max-age-s / --max-bytes to the registry and exit "
            "(with neither bound, the whole registry is cleared)"
        ),
    )
    parser.add_argument(
        "--max-age-s",
        type=float,
        default=None,
        help="with --prune: evict artifacts older than this many seconds",
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        help=(
            "with --prune: evict oldest artifacts until the registry is "
            "at most this many bytes"
        ),
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro serve`` subcommand (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Serve repeated streaming runs from one warmed ReadoutService "
            "session, configured by a declarative ServeSpec JSON file: "
            "calibration is fitted or loaded once at warm-up, then every "
            "run streams against the warm state with zero refits"
        ),
    )
    parser.add_argument(
        "--spec",
        required=True,
        metavar="PATH",
        help="ServeSpec JSON file (see repro.serve.ServeSpec.to_file)",
    )
    parser.add_argument(
        "--shots",
        type=int,
        default=None,
        help="override the spec's per-run shot count",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="number of runs served from the warm session (default: 1)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="override the spec's traffic seed",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help=(
            "write the session record (spec, cumulative service stats, "
            "per-run reports) as JSON to PATH"
        ),
    )
    parser.add_argument(
        "--drift-demo",
        action="store_true",
        help=(
            "inject the canned device drift (readout-tone detuning + "
            "T1/contrast decay) and enable drift-alarm hot "
            "recalibration, overriding the spec's drift/recalibration "
            "sections — the staleness-and-recovery demo"
        ),
    )
    parser.add_argument(
        "--drift-if-detune",
        type=float,
        default=None,
        metavar="GHZ_PER_KSHOT",
        help="override the spec's readout-tone detuning drift rate",
    )
    parser.add_argument(
        "--drift-t1-decay",
        type=float,
        default=None,
        metavar="RATE_PER_KSHOT",
        help="override the spec's T1 decay drift rate",
    )
    parser.add_argument(
        "--drift-amp-decay",
        type=float,
        default=None,
        metavar="RATE_PER_KSHOT",
        help="override the spec's drive-amplitude decay drift rate",
    )
    parser.add_argument(
        "--drift-threshold",
        type=float,
        default=None,
        metavar="SCORE",
        help="override the drift-alarm threshold",
    )
    parser.add_argument(
        "--drift-no-recal",
        action="store_true",
        help=(
            "with --drift-demo: keep recalibration off (pure "
            "degradation, for comparison)"
        ),
    )
    return parser


def build_fleet_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro fleet`` subcommand (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description=(
            "Serve many tenant sessions over one shared shard-pool "
            "substrate, configured by a declarative FleetSpec JSON file: "
            "tenants are admitted against pool capacity at warm-up, then "
            "queued runs are dispatched under weighted fair sharing with "
            "per-tenant SLO scoring"
        ),
    )
    parser.add_argument(
        "--spec",
        required=True,
        metavar="PATH",
        help="FleetSpec JSON file (see repro.fleet.FleetSpec.to_file)",
    )
    parser.add_argument(
        "--tenants",
        nargs="+",
        metavar="NAME",
        default=None,
        help=(
            "serve only these tenants' queues (default: every admitted "
            "tenant; admission itself always considers the whole spec)"
        ),
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=1,
        help="runs submitted per served tenant (default: 1)",
    )
    parser.add_argument(
        "--shots",
        type=int,
        default=None,
        help="override every tenant spec's per-run shot count",
    )
    parser.add_argument(
        "--max-runs",
        type=int,
        default=None,
        help=(
            "dispatch at most this many runs in total (remaining "
            "requests stay queued — the oversubscription throttle)"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help=(
            "write the fleet record (spec, cumulative fleet stats with "
            "per-tenant runs and admission rejections) as JSON to PATH"
        ),
    )
    return parser


def _run_fleet(argv: list[str]) -> int:
    """The ``repro fleet`` subcommand: admit, queue, drain, report."""
    from repro.fleet import FleetSpec, ReadoutFleet

    args = build_fleet_parser().parse_args(argv)
    if args.runs < 1:
        raise ConfigurationError(f"--runs must be >= 1, got {args.runs}")
    spec = FleetSpec.from_file(args.spec)
    if args.tenants is not None:
        unknown = sorted(set(args.tenants) - set(spec.tenants))
        if unknown:
            known = ", ".join(spec.tenants)
            raise ConfigurationError(
                f"unknown tenant(s) {', '.join(unknown)}; the spec names: "
                f"{known}"
            )
    with ReadoutFleet.open(spec) as fleet:
        print(
            f"[fleet] warmed in {fleet.stats.warm_seconds:.2f} s "
            f"({len(fleet.tenants)} tenant(s) admitted, "
            f"{len(fleet.stats.rejected)} rejected, "
            f"{fleet.stats.cold_fits} cold fit(s))"
        )
        served = [
            name
            for name in fleet.tenants
            if args.tenants is None or name in args.tenants
        ]
        for _ in range(args.runs):
            for name in served:
                fleet.submit(name, shots=args.shots)
        fleet.drain(max_runs=args.max_runs)
        left = fleet.pending()
        stats = fleet.stats
    print(stats.format_table())
    if left:
        print(f"[fleet] {left} request(s) left queued by --max-runs")
    if args.json is not None:
        payload = {
            "spec": spec.to_dict(),
            "fleet": stats.to_dict(),
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"fleet record written to {args.json}")
    return 0


def _apply_drift_flags(spec, args):
    """Fold the ``--drift-*`` serve flags into the loaded spec."""
    import dataclasses

    from repro.physics.drift import DEMO_DRIFT

    drift_fields = {}
    if args.drift_demo:
        drift_fields = DEMO_DRIFT.to_dict()
    for flag, field_name in (
        ("drift_if_detune", "if_detune_ghz_per_kshot"),
        ("drift_t1_decay", "t1_decay_per_kshot"),
        ("drift_amp_decay", "amplitude_decay_per_kshot"),
    ):
        value = getattr(args, flag)
        if value is not None:
            drift_fields[field_name] = value
    changes = {}
    if drift_fields:
        changes["drift"] = dataclasses.replace(spec.drift, **drift_fields)
    recal_fields = {}
    if args.drift_no_recal:
        # Forces recovery off even when the spec enables it — the flag
        # promises the pure-degradation comparison arm.
        recal_fields["enabled"] = False
    elif args.drift_demo:
        recal_fields["enabled"] = True
    if args.drift_threshold is not None:
        recal_fields["threshold"] = args.drift_threshold
    if recal_fields:
        changes["recalibration"] = dataclasses.replace(
            spec.recalibration, **recal_fields
        )
    return dataclasses.replace(spec, **changes) if changes else spec


def _run_serve(argv: list[str]) -> int:
    """The ``repro serve`` subcommand: warm once, run ``--repeat`` times."""
    from repro.serve import ReadoutService, ServeSpec

    args = build_serve_parser().parse_args(argv)
    if args.repeat < 1:
        raise ConfigurationError(f"--repeat must be >= 1, got {args.repeat}")
    spec = _apply_drift_flags(ServeSpec.from_file(args.spec), args)
    reports = []
    with ReadoutService.open(spec) as service:
        print(
            f"[serve] warmed in {service.stats.warm_seconds:.2f} s "
            f"({service.stats.cold_fits} cold fit(s))"
        )
        for _ in range(args.repeat):
            reports.append(service.run(shots=args.shots, seed=args.seed))
        stats = service.stats
    print(stats.format_table())
    if args.json is not None:
        payload = {
            "spec": spec.to_dict(),
            "service": stats.to_dict(),
            "runs": [report.to_dict() for report in reports],
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"session record written to {args.json}")
    return 0


def build_record_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro record`` subcommand (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro record",
        description=(
            "Serve one run of traffic and tee every chunk into a "
            "versioned on-disk corpus (per-chunk .npy files plus a "
            "checksummed manifest), replayable bit-deterministically "
            "with 'repro replay'"
        ),
    )
    parser.add_argument(
        "--out",
        required=True,
        metavar="DIR",
        help="corpus directory to create (must not already hold one)",
    )
    parser.add_argument(
        "--shots",
        type=int,
        default=2000,
        help="shots of traffic to record (default: 2000)",
    )
    parser.add_argument(
        "--backend",
        choices=("simulator", "dummy"),
        default="simulator",
        help="generating backend to record from (default: simulator)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=256, help="shots per source chunk"
    )
    parser.add_argument(
        "--qubits-per-feedline",
        type=int,
        default=None,
        help="qubits on the recorded feedline (default: the full chip)",
    )
    parser.add_argument(
        "--profile",
        default="quick",
        help="calibration sizing profile: quick, full, or paper",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="traffic seed for the recording"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the corpus summary and run report as JSON to PATH",
    )
    return parser


def build_replay_parser() -> argparse.ArgumentParser:
    """Parser for the ``repro replay`` subcommand (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro replay",
        description=(
            "Serve a recorded corpus back through the streaming runtime, "
            "bit-deterministically: the manifest's chip SHA is validated "
            "against the serving chip, every chunk file against its "
            "checksum, and the replayed stream is the recorded one"
        ),
    )
    parser.add_argument(
        "--corpus",
        required=True,
        metavar="DIR",
        help="corpus directory written by 'repro record'",
    )
    parser.add_argument(
        "--feedlines",
        type=int,
        default=1,
        help=(
            "feedlines to broadcast the corpus to; > 1 replays over "
            "shared-memory process shards (default: 1)"
        ),
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="thread",
        help="shard backend for --feedlines > 1 (default: thread)",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=256, help="shots per source chunk"
    )
    parser.add_argument(
        "--qubits-per-feedline",
        type=int,
        default=None,
        help="qubits per served feedline (must match the recording)",
    )
    parser.add_argument(
        "--profile",
        default="quick",
        help="calibration sizing profile: quick, full, or paper",
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="write the corpus summary and run report as JSON to PATH",
    )
    return parser


def _run_record(argv: list[str]) -> int:
    """The ``repro record`` subcommand: serve once, tee to a corpus."""
    from repro.backends import load_corpus
    from repro.serve import (
        CalibrationSpec,
        ClusterSpec,
        ServeSpec,
        TrafficSpec,
        serve_once,
    )

    args = build_record_parser().parse_args(argv)
    spec = ServeSpec(
        traffic=TrafficSpec(
            shots=args.shots,
            chunk_size=args.chunk_size,
            seed=args.seed,
            backend=args.backend,
            record_path=args.out,
        ),
        cluster=ClusterSpec(
            qubits_per_feedline=args.qubits_per_feedline
        ),
        calibration=CalibrationSpec(profile=args.profile),
    )
    report = serve_once(spec)
    # Reload what was just written: the summary printed (and dumped) is
    # the *verified* on-disk corpus, not the writer's intent.
    corpus = load_corpus(args.out)
    print(report.format_table())
    summary = corpus.summary()
    print(
        f"[record] corpus written to {summary['path']} "
        f"({summary['n_chunks']} chunk(s), {summary['n_shots']} shots, "
        f"chip {summary['chip_sha'][:12]})"
    )
    if args.json is not None:
        payload = {"corpus": summary, "report": report.to_dict()}
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"record written to {args.json}")
    return 0


def _run_replay_corpus(argv: list[str]) -> int:
    """The ``repro replay`` subcommand: serve a recorded corpus back."""
    from repro.backends import load_corpus
    from repro.serve import (
        CalibrationSpec,
        ClusterSpec,
        ServeSpec,
        TrafficSpec,
        serve_once,
    )

    args = build_replay_parser().parse_args(argv)
    spec = ServeSpec(
        traffic=TrafficSpec(
            chunk_size=args.chunk_size,
            backend="replay",
            corpus_path=args.corpus,
        ),
        cluster=ClusterSpec(
            feedlines=args.feedlines,
            executor=args.executor,
            qubits_per_feedline=args.qubits_per_feedline,
        ),
        calibration=CalibrationSpec(profile=args.profile),
    )
    report = serve_once(spec)
    corpus = load_corpus(args.corpus, verify=False)  # serving verified it
    print(report.format_table())
    summary = corpus.summary()
    print(
        f"[replay] served corpus {summary['path']} "
        f"({summary['n_shots']} shots, chip {summary['chip_sha'][:12]}) "
        f"on {args.feedlines} feedline(s)"
    )
    if args.json is not None:
        payload = {"corpus": summary, "report": report.to_dict()}
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"replay record written to {args.json}")
    return 0


def _prune_registry(args) -> int:
    from repro.pipeline import CalibrationRegistry

    max_age_s, max_bytes = args.max_age_s, args.max_bytes
    if max_age_s is None and max_bytes is None:
        # No bounds given: clear everything. A zero size budget is robust
        # where a zero age is not (same-instant or future mtimes survive
        # a strict older-than-0s check).
        max_bytes = 0
    registry = CalibrationRegistry(args.registry)
    report = registry.prune(max_age_s=max_age_s, max_bytes=max_bytes)
    print(report.format_table())
    return 0


def _run_pipeline(argv: list[str]) -> int:
    from repro.serve import (
        BatchingSpec,
        CalibrationSpec,
        ClusterSpec,
        ServeSpec,
        TrafficSpec,
        serve_once,
    )

    args = build_pipeline_parser().parse_args(argv)
    if args.prune:
        return _prune_registry(args)
    # One-shot serving: the flag surface folds into a declarative
    # ServeSpec, the same config object `repro serve` loads from a file.
    design_kwargs = {} if args.design is None else {"design": args.design}
    spec = ServeSpec(
        traffic=TrafficSpec(shots=args.shots, chunk_size=args.chunk_size),
        cluster=ClusterSpec(
            feedlines=args.feedlines,
            executor=args.executor,
            workers=args.shard_workers,
            channel_workers=args.workers,
            qubits_per_feedline=args.qubits_per_feedline,
        ),
        batching=BatchingSpec(
            batch_size=args.batch_size,
            adaptive=args.adaptive_batching,
            max_batch_size=args.max_batch_size,
            target_batch_ms=args.target_batch_ms,
        ),
        calibration=CalibrationSpec(
            profile=args.profile,
            seed=args.seed,
            registry_dir=None if args.no_cache else args.registry,
            **design_kwargs,
        ),
    )
    start = time.perf_counter()
    report = serve_once(spec)
    elapsed = time.perf_counter() - start
    print(report.format_table())
    print(f"[pipeline completed in {elapsed:.1f} s]\n")
    if args.json is not None:
        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"report written to {args.json}")
    return 0


def _run_experiments(argv: list[str]) -> int:
    """The ``repro run`` subcommand (also the legacy positional target)."""
    args = build_run_parser().parse_args(argv)
    discover()
    # Resolve selectors up front so a bad experiment name is a usage
    # error (exit 2), while a bad --profile still raises like the rest
    # of the CLI; run_suite then re-resolves the validated names.
    try:
        specs = experiments.select(args.selectors)
    except ConfigurationError as exc:  # carries the known-name list
        print(str(exc), file=sys.stderr)
        return 2

    print_lock = threading.Lock()

    def _print_entry(entry) -> None:
        # Stream each result as it completes (long suites give feedback
        # early); the lock keeps parallel workers' tables unmangled.
        with print_lock:
            print(entry.result.format_table())
            print(f"[{entry.name} completed in {entry.seconds:.1f} s]\n")

    suite = run_suite(
        [spec.name for spec in specs],
        profile=args.profile,
        seed=args.seed,
        workers=args.workers,
        on_result=_print_entry,
    )
    if len(suite.entries) > 1:
        print(suite.format_table())
        print()

    if args.json is not None:
        if len(suite.entries) == 1:
            payload = suite.entries[0].result.to_dict()
        else:
            payload = suite.to_dict()
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"results written to {args.json}")
    return 0


def _list_experiments(argv: list[str]) -> int:
    """The ``repro list`` subcommand."""
    args = build_list_parser().parse_args(argv)
    discover()
    print("available experiments:")
    if args.tags:
        width = max(len(name) for name in experiments.names())
        for spec in experiments.values():
            tags = ",".join(spec.tags) or "-"
            print(f"  {spec.name.ljust(width)}  [{tags}]  {spec.paper_ref}")
        print(f"\ntags: {', '.join(experiments.tags())}")
    else:
        for name in experiments.names():
            print(f"  {name}")
    print("  pipeline  (streaming runtime; see 'repro pipeline --help')")
    print("  serve     (warm serving sessions; see 'repro serve --help')")
    print("  fleet     (multi-tenant serving; see 'repro fleet --help')")
    print("  record    (capture traffic to a corpus; see 'repro record --help')")
    print("  replay    (serve a recorded corpus; see 'repro replay --help')")
    print("  lint      (contract static analysis; see 'repro lint --help')")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    # Fast paths keep 'repro <sub> --help' on the subcommand's parser.
    if argv and argv[0] == "run":
        return _run_experiments(argv[1:])
    if argv and argv[0] == "list":
        return _list_experiments(argv[1:])
    if argv and argv[0] == "pipeline":
        return _run_pipeline(argv[1:])
    if argv and argv[0] == "serve":
        return _run_serve(argv[1:])
    if argv and argv[0] == "fleet":
        return _run_fleet(argv[1:])
    if argv and argv[0] == "record":
        return _run_record(argv[1:])
    if argv and argv[0] == "replay":
        return _run_replay_corpus(argv[1:])
    if argv and argv[0] == "lint":
        from repro.analysis.cli import run_lint

        return run_lint(argv[1:])

    # Legacy positional form. Peek at the experiment positional:
    # 'pipeline' routes to its own parser with the shared flags
    # (--profile, --seed) forwarded, so 'repro --profile full pipeline'
    # also works while flag *values* equal to 'pipeline' stay untouched.
    peek, extra = build_parser().parse_known_args(argv)
    if peek.experiment == "pipeline":
        forwarded = list(extra) + ["--profile", peek.profile]
        if peek.seed is not None:
            forwarded += ["--seed", str(peek.seed)]
        return _run_pipeline(forwarded)
    if peek.experiment == "serve":
        # The spec file carries the profile, so --profile does not
        # forward; --seed maps onto serve's own traffic-seed flag.
        forwarded = list(extra)
        if peek.seed is not None:
            forwarded += ["--seed", str(peek.seed)]
        return _run_serve(forwarded)
    if peek.experiment == "fleet":
        # The fleet spec carries profiles and seeds per tenant; nothing
        # shared forwards.
        return _run_fleet(list(extra))
    if peek.experiment == "record":
        forwarded = list(extra) + ["--profile", peek.profile]
        if peek.seed is not None:
            forwarded += ["--seed", str(peek.seed)]
        return _run_record(forwarded)
    if peek.experiment == "replay":
        # The corpus fixes the traffic; only the profile forwards.
        return _run_replay_corpus(list(extra) + ["--profile", peek.profile])
    if peek.experiment == "lint":
        from repro.analysis.cli import run_lint

        return run_lint(list(extra))
    if peek.experiment == "list":
        return _list_experiments(list(extra))

    args = build_parser().parse_args(argv)
    forwarded = [args.experiment, "--profile", args.profile]
    if args.seed is not None:
        forwarded += ["--seed", str(args.seed)]
    return _run_experiments(forwarded)


if __name__ == "__main__":
    raise SystemExit(main())
