"""Warm serving sessions: calibrate once, stream many runs.

The paper's readout datapath is persistent — calibrated once, then
discriminating shots continuously. `repro.serve` mirrors that shape:
a declarative `ServeSpec` describes the whole session (traffic, cluster
topology, batching, calibration), and a `ReadoutService` warms once and
serves repeated runs with zero refits.

The same spec can live in a JSON file (see `examples/serve_spec.json`)
and drive the CLI instead::

    PYTHONPATH=src python -m repro serve --spec examples/serve_spec.json \
        --repeat 3 --json session.json
"""

from __future__ import annotations

from repro.serve import (
    BatchingSpec,
    ClusterSpec,
    ReadoutService,
    ServeSpec,
    TrafficSpec,
)


def main() -> None:
    # One frozen spec is the single source of truth: the run_pipeline
    # kwargs and the `repro pipeline` / `repro serve` CLI flags are all
    # derived from this same object. (Sections left out take defaults;
    # ServeSpec.from_file loads the identical structure from JSON.)
    spec = ServeSpec(
        traffic=TrafficSpec(shots=200, chunk_size=50),
        cluster=ClusterSpec(qubits_per_feedline=2),
        batching=BatchingSpec(batch_size=50),
    )

    # The context manager warms the session: the discriminator is fitted
    # (or loaded from a registry) and shard pools spawn *before* the
    # first run, so every run below is pure serving.
    with ReadoutService(spec) as service:
        print(
            f"warmed in {service.stats.warm_seconds:.2f} s "
            f"({service.stats.cold_fits} cold fit(s))\n"
        )
        for _ in range(3):
            report = service.run()  # same traffic, zero refits
            print(
                f"run {service.stats.n_runs - 1}: "
                f"{report.shots_per_second:,.0f} shots/s, "
                f"accuracy {report.accuracy:.4f}"
            )
        print()
        print(service.stats.format_table())


if __name__ == "__main__":
    main()
