"""Calibration registry: fit once, serve fitted artifacts by key.

Discriminator calibration (matched-filter kernel estimation + NN training)
is minutes of work; serving a fitted model is milliseconds. The registry
makes that asymmetry explicit: fitted artifacts are serialized via the
:class:`~repro.discriminators.base.Discriminator` artifact hooks to one
``.npz`` per :class:`CalibrationKey` under a root directory, and
:meth:`CalibrationRegistry.get_or_fit` turns any pipeline start-up into a
cache lookup — a warm run never retrains.

Keys are (device, qubit, profile, version): ``qubit`` is ``"all"`` for
joint artifacts like the paper's discriminator (whose per-qubit heads
share one feature front-end) and ``"q<i>"`` for genuinely per-qubit
artifacts. ``version`` (default 0) numbers recalibrations of the same
logical artifact: hot recalibration fits version N+1 while version N
keeps serving, then atomically swaps — the fit-once contract holds *per
version* (see :meth:`CalibrationRegistry.supersede`).
"""

from __future__ import annotations

import os
import re
import time
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

try:  # pragma: no cover - POSIX everywhere we run; gate, don't require
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

import numpy as np

from repro.analysis.lockgraph import (
    note_flock_acquire,
    note_flock_release,
    trace_lock,
)
from repro.data.dataset import ReadoutCorpus
from repro.discriminators.base import Discriminator
from repro.exceptions import ConfigurationError, DataError

__all__ = ["CalibrationKey", "CalibrationRegistry", "PruneReport"]

_SLUG = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Versioned artifact stems: ``<qubit>.v<N>`` (version 0 stays bare
#: ``<qubit>`` so pre-versioning registries remain readable in place).
_VERSIONED_STEM = re.compile(r"^(?P<qubit>.+)\.v(?P<version>\d+)$")

#: Process-wide per-(root, key) fit locks: concurrent ``get_or_fit`` calls
#: for the same artifact — e.g. identical feedlines sharded across thread
#: workers — serialize here so exactly one fits and the rest get the
#: warm artifact. Keyed by the resolved root so two registry *instances*
#: over the same directory still share a lock. In-process only; separate
#: OS processes coordinate through :func:`_artifact_file_lock` (an
#: advisory ``flock`` sidecar held across the cold fit), falling back to
#: the atomic rename in :meth:`CalibrationRegistry.save` where locking
#: is unavailable (a duplicated fit there is wasted work, never a
#: corrupt artifact).
_FIT_LOCKS: dict[tuple[str, "CalibrationKey"], object] = {}
_FIT_LOCKS_GUARD = trace_lock("registry.fit-locks-guard")


def _fit_lock(root: Path, key: "CalibrationKey"):
    with _FIT_LOCKS_GUARD:
        return _FIT_LOCKS.setdefault(
            (str(root.resolve()), key),
            trace_lock(
                "registry.fit-lock:"
                f"{key.device}/{key.qubit}/{key.profile}.v{key.version}"
            ),
        )


def _fit_lock_discard(root: Path, key: "CalibrationKey") -> None:
    """Drop a key's fit lock once its artifact is on disk.

    Keeps the lock table from growing one entry per key for the process
    lifetime. Waiters already queued on the old lock object are
    unaffected, and any later caller that mints a fresh lock re-checks
    the (now stored) artifact before fitting, so fit-once still holds.
    """
    with _FIT_LOCKS_GUARD:
        _FIT_LOCKS.pop((str(root.resolve()), key), None)


def _lock_file_for(artifact_path: Path) -> Path:
    """Sidecar advisory-lock file for one artifact path.

    The ``.npz.lock`` suffix keeps lock files out of the ``*.npz``
    artifact enumeration in :meth:`CalibrationRegistry.keys`.
    """
    return artifact_path.with_name(artifact_path.name + ".lock")


@contextmanager
def _artifact_file_lock(artifact_path: Path) -> Iterator[bool]:
    """Advisory cross-process lock around one artifact's cold fit.

    Process shards sharing a calibration key each used to fit the same
    artifact independently — wasted work, never corruption, thanks to
    the atomic rename in :meth:`CalibrationRegistry.save`. Holding an
    ``fcntl.flock`` on a sidecar file while fitting dedupes that: the
    first process fits while the rest block, then re-check the (now
    stored) artifact and load it instead.

    Because ``invalidate``/``prune`` may unlink a sidecar while a fit
    holds it, acquisition re-checks after locking that the path still
    names the locked inode — a lock won on an unlinked or replaced file
    would not exclude the next opener — and retries on a fresh file
    otherwise.

    Yields whether the lock was actually taken. Degrades to an unlocked
    fit wherever advisory locking is unavailable (no ``fcntl``, or a
    filesystem that refuses to lock) — the atomic-rename fallback keeps
    that path correct, merely duplicated.
    """
    if fcntl is None:
        yield False
        return
    lock_path = _lock_file_for(artifact_path)
    handle = None
    # Each retry means another process unlinked the sidecar between our
    # open and flock; bounded so pathological churn degrades to an
    # unlocked (rename-protected) fit instead of spinning.
    for _ in range(20):
        try:
            lock_path.parent.mkdir(parents=True, exist_ok=True)
            candidate = open(lock_path, "a+b")
        except OSError:
            yield False
            return
        try:
            fcntl.flock(candidate, fcntl.LOCK_EX)
        except OSError:
            candidate.close()
            yield False
            return
        try:
            on_disk = os.stat(lock_path)
        except OSError:
            on_disk = None  # unlinked while we waited for the lock
        held = os.fstat(candidate.fileno())
        if on_disk is not None and (
            (on_disk.st_dev, on_disk.st_ino) == (held.st_dev, held.st_ino)
        ):
            handle = candidate
            break
        candidate.close()
    if handle is None:  # pragma: no cover - needs adversarial churn
        yield False
        return
    # The sidecar participates in the lock-order graph as its own node,
    # so an inversion between a thread lock and the cross-process flock
    # is just as visible as one between two thread locks.
    note_flock_acquire(artifact_path)
    try:
        yield True
    finally:
        note_flock_release(artifact_path)
        try:
            fcntl.flock(handle, fcntl.LOCK_UN)
        except OSError:  # pragma: no cover - unlock cannot really fail
            pass
        handle.close()


def _unlink_lock_sidecar(artifact_path: Path) -> None:
    """Remove an artifact's lock sidecar — unless a cold fit holds it.

    ``invalidate``/``prune`` used to unlink sidecars unconditionally.
    That defeats the cross-process fit dedup: a fitter holds the flock
    on inode X, the prune unlinks the path, and the next cold caller
    opens a *fresh* sidecar inode it can lock immediately — two
    processes then fit the same key concurrently (harmless for artifact
    integrity thanks to the atomic rename, but exactly the duplicated
    work the sidecar exists to prevent). A non-blocking probe lock
    distinguishes the cases: if it cannot be taken, a fit is in flight
    and the sidecar must stay; if it can, we hold the inode exclusively
    and re-check (as the fit path does) that the path still names it
    before unlinking.
    """
    lock_path = _lock_file_for(artifact_path)
    if fcntl is None:
        lock_path.unlink(missing_ok=True)
        return
    try:
        handle = open(lock_path, "a+b")
    except OSError:
        return  # nothing to remove (or unreadable: leave it alone)
    try:
        try:
            fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            return  # a cold fit holds it; removing would fork the lock
        try:
            on_disk = os.stat(lock_path)
        except OSError:
            return  # already gone
        held = os.fstat(handle.fileno())
        if (on_disk.st_dev, on_disk.st_ino) == (held.st_dev, held.st_ino):
            lock_path.unlink(missing_ok=True)
    finally:
        handle.close()


#: Process-local LRU of fitted discriminators fronting the disk tree:
#: a long-lived serving worker deserializes each artifact once, then
#: serves it from memory. Each entry remembers the artifact file's
#: (mtime_ns, size) fingerprint and is treated as a miss when the file
#: on disk no longer matches — an artifact rewritten by *another*
#: process is picked up, not masked. Bounded (artifacts hold NN weights
#: and matched-filter kernels); keyed like the fit locks so registry
#: instances over the same root share entries. Discriminator predict
#: paths are read-only, so sharing one instance across shard threads is
#: safe — the single-feedline engine already shares one across channel
#: workers.
_MEMORY_CACHE: dict[
    tuple[str, "CalibrationKey"], tuple[tuple[int, int], Discriminator]
] = {}
_MEMORY_CACHE_GUARD = trace_lock("registry.memory-cache-guard")
_MEMORY_CACHE_MAX = 16


def _artifact_fingerprint(path: Path) -> tuple[int, int] | None:
    try:
        stat = path.stat()
    except OSError:
        return None
    return (stat.st_mtime_ns, stat.st_size)


def _cache_get(
    root: Path, key: "CalibrationKey", fingerprint: tuple[int, int] | None
) -> Discriminator | None:
    if fingerprint is None:
        return None
    cache_key = (str(root.resolve()), key)
    with _MEMORY_CACHE_GUARD:
        entry = _MEMORY_CACHE.get(cache_key)
        if entry is None:
            return None
        stored_fingerprint, discriminator = entry
        if stored_fingerprint != fingerprint:
            del _MEMORY_CACHE[cache_key]  # rewritten on disk: stale
            return None
        _MEMORY_CACHE[cache_key] = _MEMORY_CACHE.pop(cache_key)  # LRU bump
        return discriminator


def _cache_put(
    root: Path,
    key: "CalibrationKey",
    discriminator: Discriminator,
    fingerprint: tuple[int, int] | None,
) -> None:
    if fingerprint is None:
        return
    cache_key = (str(root.resolve()), key)
    with _MEMORY_CACHE_GUARD:
        _MEMORY_CACHE.pop(cache_key, None)
        _MEMORY_CACHE[cache_key] = (fingerprint, discriminator)
        while len(_MEMORY_CACHE) > _MEMORY_CACHE_MAX:
            _MEMORY_CACHE.pop(next(iter(_MEMORY_CACHE)))


def _cache_evict(root: Path, key: "CalibrationKey") -> None:
    with _MEMORY_CACHE_GUARD:
        _MEMORY_CACHE.pop((str(root.resolve()), key), None)


@dataclass(frozen=True)
class CalibrationKey:
    """Identity of one calibration artifact.

    Parameters
    ----------
    device:
        Device identifier, e.g. ``"five-qubit-default"``.
    qubit:
        ``"all"`` for a joint artifact or ``"q<i>"`` for one qubit's.
    profile:
        Sizing-profile name the calibration was run under.
    """

    device: str
    qubit: str = "all"
    profile: str = "quick"
    version: int = 0

    def __post_init__(self) -> None:
        for field_name in ("device", "qubit", "profile"):
            value = getattr(self, field_name)
            if not _SLUG.match(value):
                raise ConfigurationError(
                    f"CalibrationKey.{field_name} must be a filesystem-safe "
                    f"slug, got {value!r}"
                )
        if isinstance(self.version, bool) or not isinstance(self.version, int):
            raise ConfigurationError(
                f"CalibrationKey.version must be an integer, got "
                f"{self.version!r}"
            )
        if self.version < 0:
            raise ConfigurationError(
                f"CalibrationKey.version must be >= 0, got {self.version}"
            )
        if _VERSIONED_STEM.match(self.qubit):
            raise ConfigurationError(
                f"CalibrationKey.qubit {self.qubit!r} collides with the "
                "versioned artifact naming scheme; use the version field"
            )

    @classmethod
    def for_qubit(cls, device: str, qubit: int, profile: str) -> "CalibrationKey":
        return cls(device=device, qubit=f"q{int(qubit)}", profile=profile)

    def with_version(self, version: int) -> "CalibrationKey":
        """Same logical artifact at a different recalibration version."""
        from dataclasses import replace

        return replace(self, version=version)

    @property
    def stem(self) -> str:
        """Artifact file stem: bare for version 0, ``.v<N>`` beyond."""
        return (
            self.qubit if self.version == 0 else f"{self.qubit}.v{self.version}"
        )

    @property
    def relative_path(self) -> Path:
        return Path(self.device) / self.profile / f"{self.stem}.npz"


@dataclass(frozen=True)
class PruneReport:
    """Outcome of one :meth:`CalibrationRegistry.prune` call."""

    removed: tuple[CalibrationKey, ...]
    bytes_freed: int
    n_remaining: int
    bytes_remaining: int

    def format_table(self) -> str:
        lines = [
            f"calibration registry prune: removed {len(self.removed)} "
            f"artifact(s), freed {self.bytes_freed} bytes",
            f"remaining: {self.n_remaining} artifact(s), "
            f"{self.bytes_remaining} bytes",
        ]
        for key in self.removed:
            lines.append(f"  - {key.device}/{key.profile}/{key.stem}")
        return "\n".join(lines)


class CalibrationRegistry:
    """Disk-backed store of fitted discriminator artifacts.

    Parameters
    ----------
    root:
        Directory holding the artifact tree
        (``<root>/<device>/<profile>/<qubit>.npz``); created on demand.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: CalibrationKey) -> Path:
        return self.root / key.relative_path

    def __contains__(self, key: CalibrationKey) -> bool:
        return self.path_for(key).is_file()

    def keys(self) -> Iterator[CalibrationKey]:
        """Scan the tree for stored artifacts.

        Foreign files under the root (non-slug path components) are
        skipped rather than aborting the whole enumeration.
        """
        for path in sorted(self.root.glob("*/*/*.npz")):
            if path.name.endswith(".tmp.npz"):
                continue
            stem, version = path.stem, 0
            match = _VERSIONED_STEM.match(stem)
            if match:
                stem = match.group("qubit")
                version = int(match.group("version"))
            try:
                yield CalibrationKey(
                    device=path.parent.parent.name,
                    qubit=stem,
                    profile=path.parent.name,
                    version=version,
                )
            except ConfigurationError:
                continue

    def save(self, key: CalibrationKey, discriminator: Discriminator) -> Path:
        """Serialize a fitted discriminator under ``key`` (atomically).

        The artifact is written to a sibling temp file and renamed into
        place, so a run killed mid-write can never leave a truncated file
        that later reads as a warm cache hit.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(".tmp.npz")
        try:
            discriminator.save_artifacts(tmp)
            os.replace(tmp, path)
        finally:
            tmp.unlink(missing_ok=True)
        # The overwritten artifact is the new truth: a memoized copy of
        # the previous one must not mask it.
        _cache_evict(self.root, key)
        return path

    def load(self, key: CalibrationKey) -> Discriminator:
        """Rebuild the fitted discriminator stored under ``key``."""
        path = self.path_for(key)
        if not path.is_file():
            raise DataError(f"no calibration artifact for {key}")
        return Discriminator.load_artifacts(path)

    def invalidate(self, key: CalibrationKey) -> bool:
        """Drop one stored artifact; returns whether it existed.

        The artifact file always goes; its lock sidecar is removed only
        when no cold fit currently holds it (see
        :func:`_unlink_lock_sidecar`).
        """
        _cache_evict(self.root, key)
        path = self.path_for(key)
        _unlink_lock_sidecar(path)
        if path.is_file():
            path.unlink()
            return True
        return False

    def latest_version(self, key: CalibrationKey) -> int | None:
        """Highest stored version of ``key``'s logical artifact.

        Versions are compared across every stored artifact sharing the
        key's (device, profile, qubit); ``None`` when none exist.
        """
        versions = [
            stored.version
            for stored in self.keys()
            if (stored.device, stored.profile, stored.qubit)
            == (key.device, key.profile, key.qubit)
        ]
        return max(versions) if versions else None

    def supersede(
        self, key: CalibrationKey, discriminator: Discriminator
    ) -> CalibrationKey:
        """Store a recalibrated artifact as the next version of ``key``.

        The new artifact lands atomically at ``max(stored, key) + 1``
        while every existing version stays on disk and keeps serving —
        swapping a live session to the returned key is the caller's
        (atomic) pointer update, so no reader ever observes a partial
        recalibration. Fit-once is preserved per version: old versions
        are never rewritten.
        """
        latest = self.latest_version(key)
        next_version = max(key.version, -1 if latest is None else latest) + 1
        new_key = key.with_version(next_version)
        self.save(new_key, discriminator)
        return new_key

    def prune(
        self,
        max_age_s: float | None = None,
        max_bytes: int | None = None,
        *,
        now: float | None = None,
    ) -> PruneReport:
        """Evict stored artifacts by age and/or total size.

        Artifacts older than ``max_age_s`` (by file mtime) are removed
        first; if the surviving tree still exceeds ``max_bytes``, the
        oldest artifacts are evicted until it fits. With neither bound
        given nothing is removed (the report still counts the tree).
        Emptied device/profile directories are cleaned up.

        Parameters
        ----------
        max_age_s:
            Maximum artifact age in seconds; ``0`` evicts everything.
        max_bytes:
            Maximum total size of the artifact tree in bytes.
        now:
            Reference timestamp (defaults to ``time.time()``), for tests.
        """
        if max_age_s is not None and max_age_s < 0:
            raise ConfigurationError("max_age_s must be >= 0")
        if max_bytes is not None and max_bytes < 0:
            raise ConfigurationError("max_bytes must be >= 0")
        reference = time.time() if now is None else now

        entries = []  # (mtime, key, path, size)
        for key in self.keys():
            path = self.path_for(key)
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, key, path, stat.st_size))
        entries.sort(key=lambda e: e[0])

        removed: list[CalibrationKey] = []
        bytes_freed = 0
        survivors = []
        for mtime, key, path, size in entries:
            if max_age_s is not None and reference - mtime > max_age_s:
                removed.append(key)
                bytes_freed += size
                path.unlink(missing_ok=True)
                _unlink_lock_sidecar(path)
                _cache_evict(self.root, key)
            else:
                survivors.append((mtime, key, path, size))

        if max_bytes is not None:
            total = sum(size for _, _, _, size in survivors)
            while survivors and total > max_bytes:
                mtime, key, path, size = survivors.pop(0)  # oldest first
                removed.append(key)
                bytes_freed += size
                total -= size
                path.unlink(missing_ok=True)
                _unlink_lock_sidecar(path)
                _cache_evict(self.root, key)

        # Orphaned sidecars: a sidecar that had to be left behind (held
        # by a fit while its artifact was removed) is reclaimed by the
        # next prune once released.
        for lock_path in self.root.glob("*/*/*.npz.lock"):
            artifact = lock_path.with_name(lock_path.name[: -len(".lock")])
            if not artifact.exists():
                _unlink_lock_sidecar(artifact)

        self._remove_empty_dirs()
        return PruneReport(
            removed=tuple(removed),
            bytes_freed=bytes_freed,
            n_remaining=len(survivors),
            bytes_remaining=sum(size for _, _, _, size in survivors),
        )

    def _remove_empty_dirs(self) -> None:
        """Drop emptied ``<device>/<profile>`` directories after a prune."""
        for profile_dir in self.root.glob("*/*/"):
            if profile_dir.is_dir() and not any(profile_dir.iterdir()):
                profile_dir.rmdir()
        for device_dir in self.root.glob("*/"):
            if device_dir.is_dir() and not any(device_dir.iterdir()):
                device_dir.rmdir()

    def get_or_fit(
        self,
        key: CalibrationKey,
        factory: Callable[[], Discriminator],
        corpus: ReadoutCorpus | Callable[[], ReadoutCorpus],
        indices: np.ndarray | None = None,
    ) -> tuple[Discriminator, bool]:
        """Serve the cached artifact, or fit, store, and serve it.

        Parameters
        ----------
        key:
            Artifact identity.
        factory:
            Builds the (unfitted) discriminator when the cache misses.
        corpus:
            Training corpus, or a zero-argument callable producing it —
            pass a callable so a warm hit never pays corpus generation.
        indices:
            Training rows for the cache-miss fit (all rows when ``None``).

        Returns
        -------
        (discriminator, cached):
            The fitted model and whether it came from the cache.

        Concurrent calls for the same key (from any number of registry
        instances over the same root, e.g. sharded feedline workers)
        stay fit-once: a per-key lock serializes the miss path, and
        late arrivals re-check the cache under the lock before fitting.
        Across OS processes an advisory file lock on an ``.npz.lock``
        sidecar extends the same dedup to process shards sharing a key;
        where file locking is unavailable the atomic artifact rename
        keeps duplicated fits harmless.
        Served artifacts are additionally memoized in a process-local
        LRU, so a long-lived worker deserializes each artifact once (the
        on-disk file remains the source of truth — a deleted artifact is
        never served from memory).
        """

        def _try_load() -> Discriminator | None:
            path = self.path_for(key)
            fingerprint = _artifact_fingerprint(path)
            if fingerprint is not None:
                cached = _cache_get(self.root, key, fingerprint)
                if cached is not None:
                    return cached
                try:
                    loaded = self.load(key)
                except Exception:  # repro: allow(broad-except) corrupt artifact of any vintage is a miss
                    # A corrupt or unreadable artifact (e.g. written by
                    # an older incompatible version) is a cache miss,
                    # not a permanently poisoned key: drop it and refit.
                    # Only the artifact, though — this path can run
                    # while *we* hold the lock sidecar, and unlinking a
                    # held sidecar would let another process mint a
                    # fresh lock and fit the same key concurrently.
                    _cache_evict(self.root, key)
                    path.unlink(missing_ok=True)
                else:
                    _cache_put(self.root, key, loaded, fingerprint)
                    return loaded
            return None

        loaded = _try_load()
        if loaded is not None:
            return loaded, True
        with _fit_lock(self.root, key):
            # Whoever held the lock first may have fitted this key
            # while we waited; serve their artifact instead of refitting.
            loaded = _try_load()
            if loaded is not None:
                return loaded, True
            with _artifact_file_lock(self.path_for(key)):
                # Another *process* may likewise have fitted this key
                # while we waited on the file lock; final re-check.
                loaded = _try_load()
                if loaded is not None:
                    return loaded, True
                discriminator = factory()
                if callable(corpus):
                    corpus = corpus()
                idx = (
                    np.arange(corpus.n_traces)
                    if indices is None
                    else np.asarray(indices)
                )
                discriminator.fit(corpus, idx)
                path = self.save(key, discriminator)
                _cache_put(
                    self.root, key, discriminator, _artifact_fingerprint(path)
                )
        _fit_lock_discard(self.root, key)
        return discriminator, False
