"""Runtime memory & concurrency sanitizers for the serving stack.

The static rules in :mod:`repro.analysis.rules` catch contract breaches
visible in source; this package catches the ones only visible at
runtime, mirroring the :mod:`repro.analysis.lockgraph` idiom — one
environment flag (``REPRO_SANITIZE``), zero overhead unarmed, and every
violation recorded as a witnessed report that converts into the same
:class:`~repro.analysis.findings.Finding` shape the lint side prints.

Three sanitizers:

- :mod:`.ring` — :class:`~repro.analysis.sanitizers.ring
  .GuardedBufferRing`: generation-tagged slot handles (use-after-recycle
  raises with the original acquisition site), poison-filled recycled
  slots, and read-only sealed batch views. Armed construction goes
  through :func:`repro.pipeline.buffers.make_buffer_ring`.
- :mod:`.shmaudit` — a create/attach/close/unlink ledger for
  shared-memory trace segments; leaks, double-unlinks, and
  attach-after-unlink each produce a witnessed report.
- :mod:`.reports` — the shared :class:`~repro.analysis.sanitizers
  .reports.ReportLog` sink both write into, and the arming flag.

Arming the tier-1 suite (CI runs this alongside the lock detector)::

    REPRO_SANITIZE=1 REPRO_LOCK_DEBUG=1 python -m pytest -x -q

The pytest ``sessionfinish`` hook in ``tests/conftest.py`` calls
:func:`session_reports` and fails the session if anything is
outstanding. Seeded-bug tests pass private :class:`ReportLog` /
:class:`~repro.analysis.sanitizers.shmaudit.ShmLedger` instances so the
global sinks stay clean.
"""

from __future__ import annotations

from .reports import (
    ENV_FLAG,
    GLOBAL_LOG,
    ReportLog,
    SanitizerReport,
    enabled,
)

__all__ = [
    "ENV_FLAG",
    "enabled",
    "SanitizerReport",
    "ReportLog",
    "GLOBAL_LOG",
    "session_reports",
]


def session_reports() -> tuple[SanitizerReport, ...]:
    """Everything an armed session must answer for at exit.

    Outstanding reports from the global log (use-after-recycle,
    double-unlink, attach-after-unlink — even when the accompanying
    exception was swallowed) plus a leak report per shm segment still
    live in the global ledger.
    """
    from . import shmaudit

    return GLOBAL_LOG.outstanding() + tuple(
        shmaudit.GLOBAL_LEDGER.leak_reports()
    )
