"""Kraus channels for qutrits, including the leakage-faulty CNOT.

The leaky CNOT reproduces the paper's Sec III.A observations: with a
leaked (|2>) control the gate malfunctions — the target suffers random
bit flips, and leakage is transferred from control to target at the
1.5-2% per-gate rate the paper measured on IBM Lagos.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError, ShapeError
from repro.qudit.gates import cnot_embedded, swap_full, x01, x12

__all__ = [
    "amplitude_damping_kraus",
    "dephasing_kraus",
    "depolarizing_kraus",
    "leaky_cnot_kraus",
    "apply_kraus",
    "check_completeness",
]


def check_completeness(kraus: list[np.ndarray], atol: float = 1e-10) -> bool:
    """True when ``sum_k K^dagger K = I`` (a trace-preserving channel)."""
    if not kraus:
        raise ConfigurationError("empty Kraus list")
    dim = kraus[0].shape[0]
    total = np.zeros((dim, dim), dtype=complex)
    for op in kraus:
        if op.shape != (dim, dim):
            raise ShapeError("Kraus operators must share one square shape")
        total += op.conj().T @ op
    return bool(np.allclose(total, np.eye(dim), atol=atol))


def amplitude_damping_kraus(
    p10: float, p21: float, p20: float = 0.0, d: int = 3
) -> list[np.ndarray]:
    """Qutrit relaxation ladder: |1>->|0> (p10), |2>->|1| (p21), |2>->|0> (p20).

    Probabilities are per application (e.g. per gate slot or idle window).
    """
    if d != 3:
        raise ConfigurationError("amplitude damping implemented for d=3")
    for name, p in (("p10", p10), ("p21", p21), ("p20", p20)):
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
    if p21 + p20 > 1.0:
        raise ConfigurationError("p21 + p20 must not exceed 1")
    k_no_jump = np.diag(
        [1.0, np.sqrt(1.0 - p10), np.sqrt(max(0.0, 1.0 - p21 - p20))]
    ).astype(complex)
    k10 = np.zeros((3, 3), dtype=complex)
    k10[0, 1] = np.sqrt(p10)
    k21 = np.zeros((3, 3), dtype=complex)
    k21[1, 2] = np.sqrt(p21)
    kraus = [k_no_jump, k10, k21]
    if p20 > 0:
        k20 = np.zeros((3, 3), dtype=complex)
        k20[0, 2] = np.sqrt(p20)
        kraus.append(k20)
    return kraus


def dephasing_kraus(p: float, d: int = 3) -> list[np.ndarray]:
    """Phase damping between every pair of levels with probability ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    identity = np.eye(d, dtype=complex)
    kraus = [np.sqrt(1.0 - p) * identity]
    for level in range(d):
        proj = np.zeros((d, d), dtype=complex)
        proj[level, level] = 1.0
        kraus.append(np.sqrt(p) * proj)
    return kraus


def depolarizing_kraus(p: float, d: int = 3) -> list[np.ndarray]:
    """Depolarizing channel via Heisenberg-Weyl operators."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    omega = np.exp(2j * np.pi / d)
    shift = np.roll(np.eye(d, dtype=complex), 1, axis=0)
    clock = np.diag(omega ** np.arange(d))
    kraus = []
    for a in range(d):
        for b in range(d):
            op = np.linalg.matrix_power(shift, a) @ np.linalg.matrix_power(
                clock, b
            )
            weight = 1.0 - p + p / (d * d) if (a, b) == (0, 0) else p / (d * d)
            kraus.append(np.sqrt(weight) * op)
    return kraus


def leaky_cnot_kraus(
    p_flip: float = 0.05,
    p_transfer: float = 0.0175,
    p_leak: float = 0.011,
    d: int = 3,
) -> list[np.ndarray]:
    """CNOT that malfunctions when its control is leaked.

    Branches conditioned on the control-leaked projector ``P2``:

    - control in the computational subspace: ideal embedded CNOT, except
      that with probability ``p_leak`` the gate itself leaks the target
      (|1> -> |2> drive error) — the intrinsic per-gate leakage that the
      no-leaked-control baseline experiment accumulates;
    - control leaked, probability ``1 - p_flip - p_transfer``: identity
      (the drive is off-resonant for a leaked control);
    - probability ``p_flip``: random bit flip on the target (the paper's
      observed CNOT malfunction);
    - probability ``p_transfer``: leakage transport — a full SWAP moves
      the |2> population from control to target (the paper measured
      1.5-2% transfer per gate).

    The defaults sit inside the paper's measured ranges and give the
    ~3x leakage-growth ratio of Sec III.A by 12 CNOTs.
    """
    if d != 3:
        raise ConfigurationError("leaky CNOT implemented for d=3")
    for name, p in (
        ("p_flip", p_flip),
        ("p_transfer", p_transfer),
        ("p_leak", p_leak),
    ):
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
    if p_flip + p_transfer > 1.0:
        raise ConfigurationError("p_flip + p_transfer must not exceed 1")

    dim = d * d
    p2 = np.zeros((dim, dim), dtype=complex)
    p2[2 * d : 3 * d, 2 * d : 3 * d] = np.eye(d)
    p_comp = np.eye(dim, dtype=complex) - p2

    ideal_u = cnot_embedded(d) @ p_comp
    ideal = np.sqrt(1.0 - p_leak) * ideal_u
    leak_inject = np.sqrt(p_leak) * (np.kron(np.eye(d), x12(d)) @ ideal_u)
    stay = np.sqrt(1.0 - p_flip - p_transfer) * p2
    flip = np.sqrt(p_flip) * (np.kron(np.eye(d), x01(d)) @ p2)
    transfer = np.sqrt(p_transfer) * (swap_full(d) @ p2)
    return [ideal, leak_inject, stay, flip, transfer]


def apply_kraus(rho: np.ndarray, kraus: list[np.ndarray]) -> np.ndarray:
    """Apply a channel to a density matrix on the operators' full space."""
    rho = np.asarray(rho, dtype=complex)
    dim = rho.shape[0]
    if rho.shape != (dim, dim):
        raise ShapeError(f"rho must be square, got {rho.shape}")
    out = np.zeros_like(rho)
    for op in kraus:
        if op.shape != (dim, dim):
            raise ShapeError(
                f"Kraus shape {op.shape} incompatible with rho {rho.shape}"
            )
        out += op @ rho @ op.conj().T
    return out
