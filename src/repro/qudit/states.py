"""Basis states and state constructors for n qudits."""

from __future__ import annotations

from functools import reduce

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["basis_ket", "basis_rho", "joint_ket", "joint_rho"]


def basis_ket(level: int, d: int = 3) -> np.ndarray:
    """Single-qudit computational basis ket |level> in dimension d."""
    if d < 2:
        raise ConfigurationError(f"d must be >= 2, got {d}")
    if not 0 <= level < d:
        raise ConfigurationError(f"level must be in [0, {d}), got {level}")
    ket = np.zeros(d, dtype=complex)
    ket[level] = 1.0
    return ket


def basis_rho(level: int, d: int = 3) -> np.ndarray:
    """Single-qudit basis density matrix |level><level|."""
    ket = basis_ket(level, d)
    return np.outer(ket, ket.conj())


def joint_ket(levels: list[int] | tuple[int, ...], d: int = 3) -> np.ndarray:
    """Product ket |l0 l1 ... l_{n-1}> (qudit 0 most significant)."""
    if not levels:
        raise ConfigurationError("need at least one qudit level")
    kets = [basis_ket(level, d) for level in levels]
    return reduce(np.kron, kets)


def joint_rho(levels: list[int] | tuple[int, ...], d: int = 3) -> np.ndarray:
    """Product density matrix for a joint basis state."""
    ket = joint_ket(levels, d)
    return np.outer(ket, ket.conj())
