"""Project-contract lint rules for the serving stack.

Each rule machine-checks one invariant the runtime's correctness
arguments lean on (see ROADMAP "Calibration-registry contract"):

- ``fit-once`` — discriminator training happens only in the calibration
  layers; serving code must go through the registry.
- ``frozen-spec`` — frozen spec dataclasses are immutable outside their
  own ``__post_init__``.
- ``json-finite`` — ``to_dict``/``summary`` payloads route NaN-capable
  floats through the :func:`repro._util.json_finite` helper so strict
  JSON never sees a ``NaN``/``Infinity`` literal.
- ``no-pickle-fitted`` — fitted models cross process boundaries only as
  registry artifacts (``save_artifacts``/``load_artifacts``), never via
  pickle.
- ``broad-except`` — bare and blanket exception handlers are accepted
  only with an explicit pragma (or when they re-raise).
- ``all-consistency`` — module ``__all__`` lists match the names the
  module actually binds.

False positives are suppressed at the site with
``# repro: allow(<rule>) <reason>`` (see :mod:`repro.analysis.findings`).
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePosixPath

from repro.analysis.checker import Checker, register_rule

__all__ = [
    "FitOnceChecker",
    "FrozenSpecChecker",
    "JsonFiniteChecker",
    "NoPickleFittedChecker",
    "BroadExceptChecker",
    "AllConsistencyChecker",
]


def _module_path(path: str) -> str:
    """The path in posix form, for suffix/segment matching."""
    return PurePosixPath(path).as_posix()


class _FunctionStackChecker(Checker):
    """Checker tracking the enclosing (possibly nested) function names."""

    def __init__(self, path, source, tree):
        super().__init__(path, source, tree)
        self._function_stack: list[str] = []

    def _visit_function(self, node):
        self._function_stack.append(node.name)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function


#: Directories/modules where discriminator training is the *job*:
#: the discriminator implementations, the classical-ML primitives they
#: build on, the offline experiment calibrations, and the two pipeline
#: modules that are the sanctioned prefit/recalibration paths.
_FIT_ALLOWED_SEGMENTS = ("repro/ml/", "repro/discriminators/", "repro/experiments/")
_FIT_ALLOWED_SUFFIXES = ("repro/pipeline/registry.py", "repro/pipeline/runner.py")


@register_rule
class FitOnceChecker(_FunctionStackChecker):
    """Training calls are confined to the calibration layers.

    Serving code (``serve/``, ``fleet/``, ``pipeline/cluster.py``, the
    CLI, ...) must obtain fitted models through
    ``CalibrationRegistry.get_or_fit`` / ``fit_or_load_discriminator``
    so the fit-once contract stays enforceable in one place. A ``.fit``
    method call or a ``get_trained`` call anywhere else is a finding.
    """

    rule = "fit-once"
    description = (
        "no Discriminator.fit()/get_trained outside the calibration layers"
    )

    def _allowed_here(self) -> bool:
        path = _module_path(self.path)
        return any(seg in path for seg in _FIT_ALLOWED_SEGMENTS) or any(
            path.endswith(suffix) for suffix in _FIT_ALLOWED_SUFFIXES
        )

    def visit_Call(self, node: ast.Call) -> None:
        if not self._allowed_here():
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "fit":
                self.report(
                    node,
                    "direct .fit() call outside the calibration layers; "
                    "serve fitted models through CalibrationRegistry."
                    "get_or_fit / fit_or_load_discriminator",
                )
            elif isinstance(func, ast.Name) and func.id == "get_trained":
                self.report(
                    node,
                    "get_trained() outside the calibration layers; warm "
                    "serving paths must load registry artifacts instead "
                    "of retraining",
                )
        self.generic_visit(node)


#: Spec-looking receiver names: ``spec.shots = 3``, ``serve_spec.x = y``.
_SPEC_NAME = re.compile(r"^(spec|[a-z0-9_]*_spec)$")


@register_rule
class FrozenSpecChecker(_FunctionStackChecker):
    """No mutation of frozen spec dataclasses outside ``__post_init__``.

    ``object.__setattr__`` is the one sanctioned way to initialize a
    frozen dataclass field, and only from ``__post_init__``; anywhere
    else it is an end-run around immutability. Plain attribute
    assignment onto a spec-named receiver (``spec.shots = n``) is the
    same bug without the ceremony — new values must go through
    ``dataclasses.replace``.
    """

    rule = "frozen-spec"
    description = (
        "no object.__setattr__ outside __post_init__, no spec field "
        "assignment"
    )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "__setattr__"
            and isinstance(func.value, ast.Name)
            and func.value.id == "object"
            and "__post_init__" not in self._function_stack
        ):
            self.report(
                node,
                "object.__setattr__ outside __post_init__ defeats frozen-"
                "dataclass immutability; build a new instance with "
                "dataclasses.replace instead",
            )
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_target(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_target(node.target)
        self.generic_visit(node)

    def _check_target(self, target: ast.expr) -> None:
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and _SPEC_NAME.match(target.value.id)
        ):
            self.report(
                target,
                f"assignment to {target.value.id}.{target.attr} mutates a "
                "spec; specs are frozen — derive a new one with "
                "dataclasses.replace",
            )


#: Attribute/call names whose values are NaN- or inf-capable floats.
_NAN_CAPABLE = re.compile(
    r"(?:^|_)(?:p50|p95|p99|percentile|nan|inf|margin)(?:_|$)|per_shot",
    re.IGNORECASE,
)

#: Call names accepted as the NaN/inf-safe JSON routing helper.
_SAFE_WRAPPERS = {"json_finite", "_json_finite"}


@register_rule
class JsonFiniteChecker(_FunctionStackChecker):
    """``to_dict``/``summary`` payloads wrap NaN-capable floats.

    Percentiles, per-shot latencies, and margins are NaN by design on
    empty runs; ``json.dumps`` happily renders them as the non-strict
    ``NaN`` literal that downstream strict parsers reject. Any dict
    value inside a ``to_dict``/``summary`` function that references a
    NaN-capable name must route through
    :func:`repro._util.json_finite` (or a ``_json_finite`` shim).
    """

    rule = "json-finite"
    description = (
        "to_dict/summary dict values route NaN-capable floats through "
        "json_finite"
    )

    _PAYLOAD_FUNCTIONS = ("to_dict", "summary")

    def visit_Dict(self, node: ast.Dict) -> None:
        if any(
            name in self._function_stack for name in self._PAYLOAD_FUNCTIONS
        ):
            for value in node.values:
                culprit = self._unwrapped_nan_source(value)
                if culprit is not None:
                    self.report(
                        value,
                        f"dict value references NaN-capable {culprit!r} "
                        "without routing through json_finite — strict "
                        "JSON cannot carry NaN/Infinity",
                    )
        self.generic_visit(node)

    def _unwrapped_nan_source(self, node: ast.expr) -> str | None:
        """The first NaN-capable reference not inside a safe wrapper."""
        if isinstance(node, ast.Call):
            func = node.func
            func_name = (
                func.attr if isinstance(func, ast.Attribute) else
                func.id if isinstance(func, ast.Name) else ""
            )
            if func_name in _SAFE_WRAPPERS:
                return None  # wrapped: everything inside is routed
            if func_name == "float" and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                    if arg.value.lstrip("+-").lower() in ("nan", "inf", "infinity"):
                        return f"float({arg.value!r})"
        name = None
        if isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Name):
            name = node.id
        if name is not None and _NAN_CAPABLE.search(name):
            return name
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                culprit = self._unwrapped_nan_source(child)
                if culprit is not None:
                    return culprit
        return None


@register_rule
class NoPickleFittedChecker(Checker):
    """Fitted models never travel by pickle.

    The process-shard design rebuilds discriminators from calibration
    artifacts (``save_artifacts``/``load_artifacts``); pickling fitted
    state couples workers to in-memory object layout and silently
    bypasses the registry's versioning. Any ``pickle`` import or
    ``pickle.*`` call is a finding.
    """

    rule = "no-pickle-fitted"
    description = (
        "no pickle use; fitted state crosses processes as registry "
        "artifacts"
    )

    _MESSAGE = (
        "pickle is banned in the serving stack: fitted discriminators "
        "cross process boundaries only via save_artifacts/load_artifacts"
    )

    def visit_Import(self, node: ast.Import) -> None:
        if any(alias.name.split(".")[0] == "pickle" for alias in node.names):
            self.report(node, self._MESSAGE)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is not None and node.module.split(".")[0] == "pickle":
            self.report(node, self._MESSAGE)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "pickle"
        ):
            self.report(node, self._MESSAGE)
        self.generic_visit(node)


@register_rule
class BroadExceptChecker(Checker):
    """Blanket exception handlers need an explicit pragma.

    Bare ``except:``, ``except Exception``, and ``except BaseException``
    swallow programming errors with the failures they meant to contain.
    A handler whose body re-raises (a bare ``raise`` statement) is the
    sanctioned cleanup-then-propagate idiom and passes; everything else
    must carry ``# repro: allow(broad-except) <reason>`` on the
    ``except`` line.
    """

    rule = "broad-except"
    description = "bare/except Exception handlers require a pragma"

    _BROAD = ("Exception", "BaseException")

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if self._is_broad(node.type) and not self._reraises(node):
            caught = "bare except" if node.type is None else (
                f"except {ast.unparse(node.type)}"
            )
            self.report(
                node,
                f"{caught} without re-raise; narrow the exception or "
                "pragma the site with the reason it must stay broad",
            )
        self.generic_visit(node)

    def _is_broad(self, annotation: ast.expr | None) -> bool:
        if annotation is None:
            return True
        names = (
            annotation.elts
            if isinstance(annotation, ast.Tuple)
            else [annotation]
        )
        return any(
            isinstance(name, ast.Name) and name.id in self._BROAD
            for name in names
        )

    def _reraises(self, handler: ast.ExceptHandler) -> bool:
        for stmt in ast.walk(handler):
            if isinstance(stmt, ast.Raise) and stmt.exc is None:
                return True
        return False


@register_rule
class AllConsistencyChecker(Checker):
    """``__all__`` matches the names the module actually binds.

    Two drifts are findings: an ``__all__`` entry naming nothing the
    module binds at top level (dead export — an importer gets
    ``AttributeError`` from ``import *``), and a public top-level class
    or function missing from an ``__all__`` the module declares (a
    silent non-export). Modules without ``__all__`` are not checked.
    """

    rule = "all-consistency"
    description = "__all__ entries exist; public defs are exported"

    def finish(self) -> None:
        exported = self._declared_all()
        if exported is None:
            return
        all_node, names = exported
        bound = self._bound_names()
        for name in names:
            if name not in bound:
                self.report(
                    all_node,
                    f"__all__ exports {name!r} but the module never binds "
                    "it at top level",
                )
        for node in self.tree.body:
            if isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                if not node.name.startswith("_") and node.name not in names:
                    self.report(
                        node,
                        f"public {type(node).__name__.replace('Def', '').lower()} "
                        f"{node.name!r} is missing from __all__",
                    )

    def _declared_all(self) -> "tuple[ast.AST, list[str]] | None":
        for node in self.tree.body:
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
            if any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in targets
            ):
                value = node.value
                if isinstance(value, (ast.List, ast.Tuple)):
                    names = [
                        elt.value
                        for elt in value.elts
                        if isinstance(elt, ast.Constant)
                        and isinstance(elt.value, str)
                    ]
                    return node, names
        return None

    def _bound_names(self) -> set[str]:
        """Names bound at module top level (one level into If/Try)."""
        bound: set[str] = set()

        def scan(body) -> None:
            for node in body:
                if isinstance(
                    node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    bound.add(node.name)
                elif isinstance(node, ast.Assign):
                    for target in node.targets:
                        for name in ast.walk(target):
                            if isinstance(name, ast.Name):
                                bound.add(name.id)
                elif isinstance(node, ast.AnnAssign):
                    if isinstance(node.target, ast.Name):
                        bound.add(node.target.id)
                elif isinstance(node, ast.Import):
                    for alias in node.names:
                        bound.add(
                            alias.asname or alias.name.split(".")[0]
                        )
                elif isinstance(node, ast.ImportFrom):
                    for alias in node.names:
                        bound.add(alias.asname or alias.name)
                elif isinstance(node, ast.If):
                    scan(node.body)
                    scan(node.orelse)
                elif isinstance(node, ast.Try):
                    scan(node.body)
                    scan(node.orelse)
                    scan(node.finalbody)
                    for handler in node.handlers:
                        scan(handler.body)

        scan(self.tree.body)
        return bound
