"""Table II bench: three-level fidelity of the FNN and HERQULES baselines.

Paper: FNN F5Q = 0.898, HERQULES F5Q = 0.591 (the joint-head collapse).
At quick-profile corpus sizes the 687k-parameter FNN is data-starved, so
its absolute F5Q is low (it recovers with shots; see EXPERIMENTS.md);
the asserted shape is that *neither* baseline reaches the paper's design
(bench_table4) and that both produce valid fidelity tables.
"""

from benchmarks.conftest import run_once
from repro.experiments.common import get_trained
from repro.experiments.table2 import run_table2


def test_table2_baseline_fidelities(benchmark, profile):
    result = run_once(benchmark, run_table2, profile)
    print("\n" + result.format_table())
    by_name = {r["design"]: r for r in result.rows}
    for row in result.rows:
        assert all(0.0 < f <= 1.0 for f in row["fidelities"])
    # The hard qubit (Q2) is the worst for every design, as in the paper.
    for row in result.rows:
        assert min(row["fidelities"]) == row["fidelities"][1]
    # Both baselines fall short of the paper's design at equal budget.
    ours = get_trained(profile, "ours")
    assert ours.f5q > by_name["herqules"]["f5q"]
    assert ours.f5q > by_name["fnn"]["f5q"]
